"""Shared helpers for the benchmark harness.

Every ``test_bench_*`` regenerates one paper table/figure at full fidelity
(default seeds, 30-day traces), prints the same rows/series the paper
reports, and writes the rendered report to ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.report import ExperimentReport
from repro.experiments import ExperimentConfig

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def full_config() -> ExperimentConfig:
    """The full-fidelity experiment configuration used by every bench."""
    return ExperimentConfig()


@pytest.fixture(scope="session")
def report_sink():
    """Returns a callable that prints and persists an experiment report."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def sink(report: ExperimentReport) -> ExperimentReport:
        text = report.render()
        print()
        print(text)
        (OUTPUT_DIR / f"{report.experiment_id}.txt").write_text(text + "\n")
        return report

    return sink
