"""Perf-regression benchmarks: scheduler decisions and batch fan-out.

Unlike the paper-figure benches, these two measure the optimisation
targets of the compiled-trace work directly and persist their numbers to
``benchmarks/output/BENCH_perf.current.json``. The committed baseline at
the repo root (``BENCH_perf.json``) is what
``tools/check_bench_regression.py`` compares against in CI; refresh it
by copying the current file after an intentional perf change.

* ``test_bench_decision_queries_compiled_vs_naive`` replays a realistic
  scheduler interrogation mix (crossing lookups + window aggregates) on a
  month-long trace through both the compiled plan and the ``naive_*``
  oracles, asserting the >= 3x acceptance-criterion speedup.
* ``test_bench_batch_sweep_64_shm_vs_grouped`` times a 64-run policy
  sweep (32 proactive variants x 2 seeds) at ``jobs=4`` with the
  shared-memory plan on and off — the win comes from per-run fan-out: the
  grouped fallback can only parallelise as wide as the number of distinct
  catalogs (2 here). The parallel-speedup entry is only recorded on boxes
  with real cores; a 1-core container degenerates to serial-plus-overhead
  and its ratio would gate nothing meaningful.
* ``test_bench_batch_sweep_64_vector_vs_event`` times the same 64-run
  sweep serially through both execution engines and asserts the vector
  engine's speedup; ``test_bench_frontier_sweep_10k`` scales it to a
  10k-run frontier sweep (slow lane) with an under-a-minute budget.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.bidding import ProactiveBidding
from repro.runtime import RunSpec, StrategySpec, TraceCatalogCache, run_batch
from repro.runtime.shm import SHM_ENV_VAR, shm_available
from repro.traces.calibration import calibration_for
from repro.traces.catalog import MarketKey
from repro.traces.generator import generate_trace
from repro.traces.trace import PriceTrace
from repro.units import days, hours

REGION = "us-east-1a"
CURRENT_PATH = Path(__file__).parent / "output" / "BENCH_perf.current.json"


def record(**entries) -> None:
    """Merge measured entries into the current-results file."""
    CURRENT_PATH.parent.mkdir(exist_ok=True)
    data = {"schema": 1, "benchmarks": {}}
    if CURRENT_PATH.exists():
        data = json.loads(CURRENT_PATH.read_text())
    data.setdefault("benchmarks", {}).update(entries)
    CURRENT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------- scheduler decision micro
@pytest.mark.benchmark(group="decisions")
def test_bench_decision_queries_compiled_vs_naive():
    """The decision mix must be >= 3x faster through the compiled plan."""
    trace = generate_trace(calibration_for(REGION, "small"), days(30), 7)
    assert len(trace) > 1000
    rng = np.random.default_rng(0)
    probes = np.sort(rng.uniform(trace.start, trace.horizon - hours(2), 400)).tolist()
    on_demand = trace.mean_price()
    bid = 2.5 * on_demand

    def compiled_pass():
        # Fresh trace per pass so plan construction + memoization are billed
        # to the compiled side, exactly as a run pays them.
        t = PriceTrace(trace.times, trace.prices, trace.horizon)
        acc = 0.0
        for probe in probes:
            acc += t.first_time_above(bid, probe) or 0.0
            acc += t.first_time_at_or_below(on_demand, probe) or 0.0
            acc += t.mean_price(probe, probe + hours(1))
            acc += t.time_above(on_demand, probe, probe + hours(1))
        return acc

    def naive_pass():
        acc = 0.0
        for probe in probes:
            acc += trace.naive_first_time_above(bid, probe) or 0.0
            acc += trace.naive_first_time_at_or_below(on_demand, probe) or 0.0
            acc += trace.naive_mean_price(probe, probe + hours(1))
            acc += trace.naive_time_above(on_demand, probe, probe + hours(1))
        return acc

    assert compiled_pass() == naive_pass()  # exactness, then speed
    compiled_s = best_of(compiled_pass)
    naive_s = best_of(naive_pass)
    speedup = naive_s / compiled_s
    record(
        scheduler_decisions_compiled_s={"value": compiled_s, "unit": "s"},
        scheduler_decisions_naive_s={"value": naive_s, "unit": "s"},
        scheduler_decisions_speedup_x={"value": speedup, "unit": "x"},
    )
    print(f"\ndecision mix: compiled {compiled_s:.4f}s, naive {naive_s:.4f}s, {speedup:.1f}x")
    assert speedup >= 3.0, f"compiled decision path only {speedup:.2f}x faster"


# ------------------------------------------------------- 64-run batch sweep
def sweep_runs():
    """32 proactive-bidding variants x 2 seeds over one small market."""
    runs = []
    key = MarketKey(REGION, "small")
    for seed in (11, 23):
        for k in np.linspace(1.5, 9.0, 16):
            for frac in (0.85, 0.95):
                runs.append(
                    RunSpec(
                        strategy=StrategySpec.single(key),
                        bidding=ProactiveBidding(k=float(k), reverse_threshold_frac=frac),
                        seed=seed,
                        horizon_s=days(30),
                        regions=(REGION,),
                        sizes=("small",),
                        label=f"k={k:.2f}/f={frac}",
                    )
                )
    return runs


@pytest.mark.benchmark(group="batch-sweep")
@pytest.mark.skipif(not shm_available(), reason="no usable shared memory")
def test_bench_batch_sweep_64_shm_vs_grouped():
    """Per-run shm fan-out beats catalog-grouped fan-out wall-clock.

    The win is parallel *width*: the 64 runs here share only 2 catalog
    keys, so the grouped fallback can never use more than 2 workers while
    the shm plan fans all 64 runs across ``jobs``. Expressing that as
    wall-clock requires actual cores — on a single-core box every mode
    degenerates to serial-plus-overhead, so there the assertion relaxes
    to a parity guard (shm must not be meaningfully slower than grouped).
    """
    runs = sweep_runs()
    assert len(runs) == 64
    cache = TraceCatalogCache()
    jobs = 4

    def timed_batch(disable_shm: bool):
        prior = os.environ.get(SHM_ENV_VAR)
        if disable_shm:
            os.environ[SHM_ENV_VAR] = "0"
        try:
            # Warm the pool and both seeds' catalogs (parent and worker side).
            run_batch(runs[:2] + runs[32:34], jobs=jobs, cache=cache)
            t0 = time.perf_counter()
            batch = run_batch(runs, jobs=jobs, cache=cache)
            return time.perf_counter() - t0, batch
        finally:
            if prior is None:
                os.environ.pop(SHM_ENV_VAR, None)
            else:
                os.environ[SHM_ENV_VAR] = prior

    run_batch(runs, jobs=1, cache=cache)  # warm the serial path too
    t0 = time.perf_counter()
    serial = run_batch(runs, jobs=1, cache=cache)
    serial_s = time.perf_counter() - t0
    grouped_s, grouped = timed_batch(disable_shm=True)
    shm_s, shm = timed_batch(disable_shm=False)
    assert list(shm.results) == list(grouped.results) == list(serial.results)
    assert shm.telemetry.shm_catalogs == 2 and grouped.telemetry.shm_catalogs == 0
    speedup = grouped_s / shm_s
    cores = os.cpu_count() or 1
    entries = dict(
        batch_sweep_64_serial_s={"value": serial_s, "unit": "s"},
        batch_sweep_64_shm_s={"value": shm_s, "unit": "s"},
        batch_sweep_64_grouped_s={"value": grouped_s, "unit": "s"},
    )
    if cores > 2:
        # A parallel "speedup" measured on a 1- or 2-core box is pool
        # overhead, not fan-out width — recording it would gate noise
        # (entry 1 recorded a misleading 0.92x exactly this way).
        entries["batch_sweep_64_speedup_x"] = {"value": speedup, "unit": "x"}
    record(**entries)
    print(
        f"\n64-run sweep @ jobs={jobs} ({cores} cores): serial {serial_s:.3f}s, "
        f"shm {shm_s:.3f}s, grouped {grouped_s:.3f}s, {speedup:.2f}x"
    )
    if cores > 2:
        assert shm_s < grouped_s, f"shm fan-out slower: {shm_s:.3f}s vs {grouped_s:.3f}s"
    else:
        assert shm_s <= grouped_s * 1.25, (
            f"shm fan-out regressed even single-core: {shm_s:.3f}s vs {grouped_s:.3f}s"
        )


# --------------------------------------------------- vector engine sweeps
@pytest.mark.benchmark(group="batch-sweep")
def test_bench_batch_sweep_64_vector_vs_event():
    """The vector engine must beat the event engine on the 64-run sweep.

    Both engines run serially in-process against a warm catalog cache, so
    the ratio isolates the execution engines from catalog builds and
    machine-speed drift (the committed entry-2 baseline additionally pins
    the absolute vector wall-clock). The floor is deliberately below the
    typically measured ~9x: shared runners throttle, and this gate exists
    to catch an accidental fallback to per-event execution, not jitter.
    """
    runs = sweep_runs()
    cache = TraceCatalogCache()
    event = run_batch(runs, engine="event", cache=cache)  # warms the cache
    vector = run_batch(runs, engine="auto", cache=cache)
    assert list(vector.results) == list(event.results)
    assert vector.telemetry.vector_runs == 64
    assert vector.telemetry.vector_checks > 0
    event_s = best_of(lambda: run_batch(runs, engine="event", cache=cache))
    vector_s = best_of(lambda: run_batch(runs, engine="auto", cache=cache))
    speedup = event_s / vector_s
    record(
        batch_sweep_64_event_s={"value": event_s, "unit": "s"},
        batch_sweep_64_vector_s={"value": vector_s, "unit": "s"},
        batch_sweep_64_vector_speedup_x={"value": speedup, "unit": "x"},
    )
    print(
        f"\n64-run sweep serial: event {event_s:.3f}s, vector {vector_s:.3f}s, "
        f"{speedup:.1f}x ({vector.telemetry.deduped_runs} deduped, "
        f"{vector.telemetry.vector_checks} checks)"
    )
    assert speedup >= 4.0, f"vector engine only {speedup:.2f}x over per-event"


@pytest.mark.benchmark(group="batch-sweep")
@pytest.mark.slow
def test_bench_frontier_sweep_10k():
    """A 10k-run frontier sweep: fused must beat the unfused reference 3x.

    10 catalog seeds x 1000 policy variants (100 bid multipliers x 5
    reverse thresholds x 2 strategies), all vector-routed, timed through
    both selectors: forced ``vector`` is the per-run unfused reference
    (comparable to the entry-2 baseline, which predates fusion), and
    ``fused`` layers capability/rank-projected dedupe, reverse-band
    cloning and shared scan contexts on top. The telemetry decomposition
    (executed vs deduped vs fused) is printed so the dedupe share stays
    visible rather than implied, and both wall-clocks are recorded —
    ``batch_sweep_10k_fused_s`` is the gated headline number.
    """
    key = MarketKey(REGION, "small")
    runs = []
    for seed in range(10):
        for k in np.linspace(1.5, 9.0, 100):
            for frac in (0.80, 0.85, 0.90, 0.95, 0.99):
                for strat in (StrategySpec.single(key), StrategySpec.pure_spot(key)):
                    runs.append(
                        RunSpec(
                            strategy=strat,
                            bidding=ProactiveBidding(
                                k=float(k), reverse_threshold_frac=frac
                            ),
                            seed=seed,
                            horizon_s=days(30),
                            regions=(REGION,),
                            sizes=("small",),
                            label=f"s{seed}/k={k:.2f}/f={frac}",
                        )
                    )
    assert len(runs) == 10_000
    cache = TraceCatalogCache()
    run_batch(runs[:20], engine="auto", cache=cache)  # warm one catalog + code
    t0 = time.perf_counter()
    vector_batch = run_batch(runs, engine="vector", cache=cache)
    vector_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch = run_batch(runs, engine="fused", cache=cache)
    fused_s = time.perf_counter() - t0
    assert list(batch.results) == list(vector_batch.results)
    tel = batch.telemetry
    executed = tel.runs - tel.deduped_runs
    speedup = vector_s / fused_s
    record(
        batch_sweep_10k_vector_s={"value": vector_s, "unit": "s"},
        batch_sweep_10k_fused_s={"value": fused_s, "unit": "s"},
        batch_sweep_10k_fused_speedup_x={"value": speedup, "unit": "x"},
    )
    print(
        f"\n10k frontier sweep: vector {vector_s:.1f}s, fused {fused_s:.1f}s "
        f"({speedup:.1f}x; {executed} executed + {tel.deduped_runs} deduped "
        f"clones, {tel.fused_runs} fused in {tel.fused_groups} groups)"
    )
    assert tel.vector_runs == 10_000
    assert tel.deduped_runs + tel.fused_runs <= tel.runs  # never double-counted
    assert fused_s < 2.5, f"fused 10k sweep took {fused_s:.1f}s (budget 2.5s)"
    assert speedup >= 3.0, f"fused sweep only {speedup:.2f}x over unfused vector"


@pytest.mark.benchmark(group="fleet")
@pytest.mark.slow
def test_bench_fleet_100_auto():
    """The 100-service fleet default (``--engine auto``) stays fast.

    The synthesized fleet is the heterogeneous counter-case to the sweep:
    ~100 distinct strategies over one shared market catalog, so fusion's
    dedupe tiers find only a handful of clones and the win here comes
    from the newly vector-routed dwell-state families (stability,
    index-tracking, portfolio-bid) that previously fell back to per-event
    execution. Auto must stay within noise of the best engine choice.
    """
    from repro.fleet.runner import run_fleet
    from repro.fleet.spec import synthesize_fleet

    spec = synthesize_fleet(n_services=100, seed=0, horizon_s=days(30))
    event = run_fleet(spec, engine="event")  # warms every catalog
    auto = run_fleet(spec, engine="auto")
    assert auto.to_json() == event.to_json()
    auto_s = best_of(lambda: run_fleet(spec, engine="auto"))
    record(fleet_100_auto_s={"value": auto_s, "unit": "s"})
    print(f"\n100-service fleet, auto engine: {auto_s:.3f}s")
    assert auto_s < 5.0, f"100-service fleet took {auto_s:.2f}s (budget 5s)"
