"""Perf-regression benchmarks for archive ingestion and segment loading.

Entry 4 of the ``BENCH_perf.json`` trajectory: the streaming demux from
:mod:`repro.traces.ingest` must stay I/O-shaped, and the mmap catalog
load must stay near-instant (it maps pages, it does not read them). Both
numbers are persisted to ``benchmarks/output/BENCH_perf.current.json``
and gated by ``tools/check_bench_regression.py`` alongside the scheduler
and batch-sweep entries.

* ``test_bench_ingest_100_market_archive`` streams a synthetic 100-market
  20k-record CSV through the full demux + compile pipeline.
* ``test_bench_segment_catalog_load`` memory-maps the resulting segment
  directory back into a catalog — the cost a worker pays to attach a
  directory-plan catalog instead of copying trace bytes.
"""

import csv

import numpy as np
import pytest

from test_bench_decisions import best_of, record
from repro.traces.ingest import ingest_archive, load_segment_catalog
from repro.traces.loader import _HEADER, format_aws_timestamp
from repro.units import hours

N_MARKETS = 100
ROWS_PER_MARKET = 200


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """One CSV with 100 markets x 200 records, timestamp-interleaved."""
    root = tmp_path_factory.mktemp("ingest-bench")
    path = root / "archive.csv"
    rng = np.random.default_rng(0)
    rows = []
    for m in range(N_MARKETS):
        az = f"zz-bench-{m % 5}z"
        itype = f"b{m}.synthetic"
        t = np.sort(rng.uniform(0.0, hours(24 * 7), size=ROWS_PER_MARKET))
        p = rng.uniform(0.01, 0.2, size=ROWS_PER_MARKET)
        rows.extend((float(ti), itype, az, float(pi)) for ti, pi in zip(t, p))
    rows.sort()
    with open(path, "w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(_HEADER)
        for t, itype, az, p in rows:
            w.writerow([format_aws_timestamp(t), itype, "Linux/UNIX", az, repr(p)])
    return root, path


@pytest.mark.benchmark(group="ingest")
def test_bench_ingest_100_market_archive(archive):
    """Stream the 100-market archive into compiled segments."""
    root, path = archive

    runs = [0]

    def one_pass():
        runs[0] += 1
        return ingest_archive(path, root / f"seg{runs[0]}", chunk_records=5_000)

    report = one_pass()
    assert report.n_markets == N_MARKETS
    assert report.n_records == N_MARKETS * ROWS_PER_MARKET
    assert report.peak_buffered_records <= 5_000
    ingest_s = best_of(one_pass)
    throughput = report.n_records / ingest_s
    record(ingest_100_market_archive_s={"value": ingest_s, "unit": "s"})
    print(
        f"\n100-market ingest: {ingest_s:.3f}s "
        f"({throughput:,.0f} records/s, peak buffer {report.peak_buffered_records})"
    )


@pytest.mark.benchmark(group="ingest")
def test_bench_segment_catalog_load(archive):
    """Memory-map the ingested directory back into a catalog."""
    root, path = archive
    ingest_archive(path, root / "seg-load", chunk_records=5_000)
    catalog = load_segment_catalog(root / "seg-load")
    assert len(catalog.markets()) == N_MARKETS
    load_s = best_of(lambda: load_segment_catalog(root / "seg-load"))
    record(segment_catalog_load_s={"value": load_s, "unit": "s"})
    print(f"\nsegment catalog load (100 markets): {load_s:.4f}s")
    # Mapping pages must stay well under re-parsing the CSV (~seconds).
    assert load_s < 1.0, f"mmap catalog load took {load_s:.2f}s"
