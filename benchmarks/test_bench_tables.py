"""Benchmarks regenerating the paper's tables (1-4).

Run with ``pytest benchmarks/ --benchmark-only``; each bench prints the
table it regenerates and asserts the paper-vs-measured verdicts hold.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="tables")
def test_bench_tab1_startup_times(benchmark, full_config, report_sink):
    """Table 1: startup latency of on-demand vs spot per region."""
    report = benchmark.pedantic(
        run_experiment, args=("tab1", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="tables")
def test_bench_tab2_migration_overheads(benchmark, full_config, report_sink):
    """Table 2: live-migration / checkpoint / disk-copy overheads."""
    report = benchmark.pedantic(
        run_experiment, args=("tab2", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="tables")
def test_bench_tab3_hosting_matrix(benchmark, full_config, report_sink):
    """Table 3: cost/availability matrix of the three hosting modes."""
    report = benchmark.pedantic(
        run_experiment, args=("tab3", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="tables")
def test_bench_tab4_io_overheads(benchmark, full_config, report_sink):
    """Table 4: nested vs native network/disk throughput."""
    report = benchmark.pedantic(
        run_experiment, args=("tab4", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()
