"""Benchmarks of the repro.runtime batch executor.

Two angles: (i) pytest-benchmark microbenchmarks of the batch hot path
(catalog-cache hits), and (ii) a wall-clock comparison of the full fig6
driver at ``jobs=1`` versus ``jobs=4``, recorded to
``benchmarks/output/runtime_speedup.txt``. The parallel run must render a
byte-identical report; the >=2x speedup assertion only applies when the
machine actually has >= 4 usable cores.
"""

import os
import time
from pathlib import Path

import pytest

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.experiments import ExperimentConfig, run_experiment
from repro.runtime import RunSpec, StrategySpec, TraceCatalogCache, run_batch
from repro.runtime.cache import shared_catalog_cache
from repro.traces.catalog import MarketKey
from repro.units import days

OUTPUT_DIR = Path(__file__).parent / "output"

KEY = MarketKey("us-east-1a", "small")


def _policy_comparison_runs(seeds=(11, 23, 37)):
    """Reactive vs proactive on the same seeds: the same-sample shape."""
    return [
        RunSpec(
            strategy=StrategySpec.single(KEY),
            bidding=bidding,
            seed=seed,
            horizon_s=days(30),
            regions=("us-east-1a",),
            sizes=("small",),
        )
        for bidding in (ReactiveBidding(), ProactiveBidding())
        for seed in seeds
    ]


@pytest.mark.benchmark(group="runtime")
def test_bench_runtime_batch_cold_cache(benchmark):
    """Six 30-day runs, fresh cache each round: pays 3 catalog builds."""
    runs = _policy_comparison_runs()

    def execute():
        return run_batch(runs, cache=TraceCatalogCache())

    batch = benchmark(execute)
    assert batch.telemetry.catalog_builds == 3
    assert batch.telemetry.catalog_cache_hits == 3


@pytest.mark.benchmark(group="runtime")
def test_bench_runtime_batch_warm_cache(benchmark):
    """The same six runs on a pre-warmed cache: zero catalog builds."""
    runs = _policy_comparison_runs()
    cache = TraceCatalogCache()
    run_batch(runs, cache=cache)

    def execute():
        return run_batch(runs, cache=cache)

    batch = benchmark(execute)
    assert batch.telemetry.catalog_builds == 0
    assert batch.telemetry.catalog_cache_hits == len(runs)


def test_runtime_fig6_parallel_speedup():
    """Record full-fidelity fig6 wall-clock at jobs=1 versus jobs=4.

    Always asserts the parallel report is byte-identical to the serial
    one; asserts the >=2x speedup only where four cores exist to provide
    it (the result file records the measurement either way).
    """
    cores = len(os.sched_getaffinity(0))

    t0 = time.perf_counter()
    parallel_report = run_experiment("fig6", ExperimentConfig(jobs=4))
    parallel_s = time.perf_counter() - t0

    shared_catalog_cache().clear()  # a fair, cold-cache serial run
    t0 = time.perf_counter()
    serial_report = run_experiment("fig6", ExperimentConfig(jobs=1))
    serial_s = time.perf_counter() - t0

    assert parallel_report.render() == serial_report.render()

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "runtime_speedup.txt").write_text(
        "fig6 full-fidelity driver, serial vs 4 workers\n"
        f"cores available : {cores}\n"
        f"jobs=1 wall     : {serial_s:.2f}s\n"
        f"jobs=4 wall     : {parallel_s:.2f}s\n"
        f"speedup         : {speedup:.2f}x\n"
        f"reports byte-identical: yes\n"
    )
    print(f"\nfig6 serial {serial_s:.2f}s, jobs=4 {parallel_s:.2f}s -> {speedup:.2f}x")
    if cores >= 4:
        assert speedup >= 2.0, f"expected >=2x speedup on {cores} cores, got {speedup:.2f}x"
