"""Performance benchmarks of the library's hot paths.

These measure throughput of the substrate itself (not paper results):
trace generation, price queries, the event engine, MVA, and one full
scheduler simulation. Useful for catching performance regressions.
"""

import numpy as np
import pytest

from repro.core.bidding import ProactiveBidding
from repro.core.simulation import SimulationConfig, run_simulation
from repro.core.strategies import SingleMarketStrategy
from repro.simulator.engine import Engine
from repro.traces.calibration import calibration_for
from repro.traces.catalog import MarketKey, build_catalog
from repro.traces.generator import generate_trace
from repro.units import days
from repro.workload.queueing import ClosedNetwork, Station, mva_sweep

KEY = MarketKey("us-east-1a", "small")


@pytest.mark.benchmark(group="perf")
def test_bench_perf_trace_generation(benchmark):
    """Generate one 30-day market trace."""
    cal = calibration_for("us-east-1a", "small")
    trace = benchmark(generate_trace, cal, days(30), 7)
    assert len(trace) > 1000


@pytest.mark.benchmark(group="perf")
def test_bench_perf_full_catalog(benchmark):
    """Generate the full 16-market catalog."""
    cat = benchmark(build_catalog, 7, days(30))
    assert len(cat) == 16


@pytest.mark.benchmark(group="perf")
def test_bench_perf_price_queries(benchmark):
    """100k vectorised price lookups on a month-long trace."""
    trace = generate_trace(calibration_for("us-east-1a", "small"), days(30), 7)
    ts = np.random.default_rng(0).uniform(0, days(30), size=100_000)

    def query():
        return trace.price_at(ts)

    out = benchmark(query)
    assert out.shape == (100_000,)


@pytest.mark.benchmark(group="perf")
def test_bench_perf_event_engine(benchmark):
    """Schedule and fire 50k events."""

    def run():
        eng = Engine()
        for i in range(50_000):
            eng.schedule(float(i % 977), lambda e, ev: None)
        eng.run()
        return eng.fired_count

    assert benchmark(run) == 50_000


@pytest.mark.benchmark(group="perf")
def test_bench_perf_mva_sweep(benchmark):
    """Exact MVA to N=400 over a 3-station network."""
    net = ClosedNetwork(
        stations=(Station("cpu", 0.032), Station("disk", 0.012), Station("net", 0.01)),
        think_time_s=7.0,
    )
    sols = benchmark(mva_sweep, net, list(range(50, 401, 50)))
    assert len(sols) == 8


@pytest.mark.benchmark(group="perf")
def test_bench_perf_single_simulation(benchmark):
    """One full 30-day proactive single-market scheduler run."""
    cfg = SimulationConfig(
        strategy=lambda: SingleMarketStrategy(KEY),
        bidding=ProactiveBidding(),
        seed=7,
        horizon_s=days(30),
        regions=("us-east-1a",),
        sizes=("small",),
    )
    result = benchmark(run_simulation, cfg)
    assert result.duration_hours > 700
