"""Benchmarks regenerating the paper's figures (1, 6-12) and Section 6.2.

Each bench reruns the full experiment pipeline (multi-seed, 30-day traces),
prints the series the figure plots, persists the report and asserts the
paper's qualitative claims hold.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="figures")
def test_bench_fig1_spot_price_traces(benchmark, full_config, report_sink):
    """Figure 1: a month of spot prices (small & large, us-east)."""
    report = benchmark.pedantic(
        run_experiment, args=("fig1", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_fig6_proactive_vs_reactive(benchmark, full_config, report_sink):
    """Figure 6(a-d): proactive vs reactive cost/unavailability/migrations."""
    report = benchmark.pedantic(
        run_experiment, args=("fig6", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_fig7_migration_mechanisms(benchmark, full_config, report_sink):
    """Figure 7: the four mechanism combos, typical & pessimistic."""
    report = benchmark.pedantic(
        run_experiment, args=("fig7", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_fig8_multi_market(benchmark, full_config, report_sink):
    """Figure 8(a-c): multi-market vs single-market within a region."""
    report = benchmark.pedantic(
        run_experiment, args=("fig8", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_fig9_multi_region(benchmark, full_config, report_sink):
    """Figure 9(a-c): multi-region vs single-region over AZ pairs."""
    report = benchmark.pedantic(
        run_experiment, args=("fig9", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_fig10_price_variability(benchmark, full_config, report_sink):
    """Figure 10: price standard deviation per region/size."""
    report = benchmark.pedantic(
        run_experiment, args=("fig10", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_fig11_pure_spot(benchmark, full_config, report_sink):
    """Figure 11(a-b): proactive vs pure-spot cost and unavailability."""
    report = benchmark.pedantic(
        run_experiment, args=("fig11", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_fig12_tpcw(benchmark, full_config, report_sink):
    """Figure 12(a-b): TPC-W response time, native vs nested."""
    report = benchmark.pedantic(
        run_experiment, args=("fig12", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="figures")
def test_bench_sec62_overhead_cost(benchmark, full_config, report_sink):
    """Section 6.2: cost savings after nested-overhead capacity inflation."""
    report = benchmark.pedantic(
        run_experiment, args=("sec62", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()
