"""Benchmarks for the design-choice ablations DESIGN.md calls out.

Not paper artifacts — these probe the knobs behind the paper's choices:
the bid multiplier k (= 4, EC2's cap), the Yank bound tau, and the
stability-aware extension the paper proposes as future work.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.benchmark(group="ablations")
def test_bench_abl_bid_multiplier(benchmark, full_config, report_sink):
    """Sweep the proactive bid multiplier k from near-reactive to the cap."""
    report = benchmark.pedantic(
        run_experiment, args=("abl-bid", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_abl_tau(benchmark, full_config, report_sink):
    """Sweep the Yank checkpoint bound tau."""
    report = benchmark.pedantic(
        run_experiment, args=("abl-tau", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_abl_stability(benchmark, full_config, report_sink):
    """Sweep the stability-aware penalty weight on a volatile region pair."""
    report = benchmark.pedantic(
        run_experiment, args=("abl-stability", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_ext_frontier(benchmark, full_config, report_sink):
    """Cost-availability frontier across every hosting policy (extension)."""
    report = benchmark.pedantic(
        run_experiment, args=("ext-frontier", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_ext_pool(benchmark, full_config, report_sink):
    """Multi-tenant pool: placement diversity vs spare-pool sizing."""
    report = benchmark.pedantic(
        run_experiment, args=("ext-pool", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_ext_elastic(benchmark, full_config, report_sink):
    """Elastic spot capacity vs peak-provisioned / elastic on-demand."""
    report = benchmark.pedantic(
        run_experiment, args=("ext-elastic", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_abl_adaptive(benchmark, full_config, report_sink):
    """Adaptive (history-driven) bidding vs the fixed 4x cap."""
    report = benchmark.pedantic(
        run_experiment, args=("abl-adaptive", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_abl_grace(benchmark, full_config, report_sink):
    """Sweep the revocation grace window (value of the 2-minute warning)."""
    report = benchmark.pedantic(
        run_experiment, args=("abl-grace", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()


@pytest.mark.benchmark(group="ablations")
def test_bench_ext_sensitivity(benchmark, full_config, report_sink):
    """Calibration-sensitivity sweep of the headline comparison."""
    report = benchmark.pedantic(
        run_experiment, args=("ext-sensitivity", full_config), rounds=1, iterations=1
    )
    report_sink(report)
    assert report.all_hold()
