"""End-to-end integration tests of the paper's headline claims.

These run real multi-seed simulations on the calibrated market world (the
same pipeline the benchmark harness uses, smaller seed counts) and assert
the *shape* of each result: who wins, by roughly what factor.
"""

import numpy as np
import pytest

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.results import aggregate
from repro.core.simulation import SimulationConfig, run_many
from repro.core.strategies import (
    MultiMarketStrategy,
    MultiRegionStrategy,
    OnDemandOnlyStrategy,
    PureSpotStrategy,
    SingleMarketStrategy,
)
from repro.traces.calibration import SIZES
from repro.traces.catalog import MarketKey
from repro.units import days
from repro.vm.mechanisms import Mechanism, PESSIMISTIC_PARAMS, TYPICAL_PARAMS

SEEDS = [11, 23, 37]
HORIZON = days(30)
KEY = MarketKey("us-east-1a", "small")


def sim(strategy, bidding=None, mechanism=Mechanism.CKPT_LR, params=TYPICAL_PARAMS,
        regions=("us-east-1a",), sizes=("small",), label="x"):
    cfg = SimulationConfig(
        strategy=strategy,
        bidding=bidding or ProactiveBidding(),
        mechanism=mechanism,
        params=params,
        horizon_s=HORIZON,
        regions=regions,
        sizes=sizes,
        label=label,
    )
    return aggregate(run_many(cfg, SEEDS), label=label)


@pytest.fixture(scope="module")
def fig6():
    """Proactive vs reactive across the four us-east-1a markets."""
    out = {}
    for size in SIZES:
        key = MarketKey("us-east-1a", size)
        for bidding in (ProactiveBidding(), ReactiveBidding()):
            out[(bidding.name, size)] = sim(
                lambda key=key: SingleMarketStrategy(key),
                bidding=bidding,
                sizes=(size,),
                label=f"{bidding.name}/{size}",
            )
    return out


class TestHeadlineCost:
    def test_single_market_cost_one_third_to_one_fifth(self, fig6):
        """Abstract: 'one-third to one-fifth the cost' of on-demand."""
        costs = [fig6[("proactive", s)].normalized_cost_percent for s in SIZES]
        assert min(costs) > 10.0
        assert max(costs) < 40.0
        assert any(c <= 100 / 3 + 2 for c in costs)

    def test_on_demand_baseline_is_100(self):
        agg = sim(lambda: OnDemandOnlyStrategy(KEY), label="od")
        assert agg.normalized_cost_percent == pytest.approx(100.0, abs=1.5)
        assert agg.unavailability_percent == 0.0


class TestFig6ProactiveVsReactive:
    def test_proactive_cheaper_or_equal(self, fig6):
        for s in SIZES:
            assert (
                fig6[("proactive", s)].normalized_cost_percent
                <= fig6[("reactive", s)].normalized_cost_percent + 1.0
            )

    def test_proactive_unavailability_much_lower(self, fig6):
        ratios = [
            fig6[("reactive", s)].unavailability_percent
            / max(fig6[("proactive", s)].unavailability_percent, 1e-9)
            for s in SIZES
        ]
        assert min(ratios) > 1.5
        assert max(ratios) > 2.5  # paper: 2.5-18x

    def test_proactive_far_fewer_forced_migrations(self, fig6):
        for s in SIZES:
            assert (
                fig6[("proactive", s)].forced_per_hour
                < 0.5 * fig6[("reactive", s)].forced_per_hour + 1e-9
            )

    def test_reactive_unavailability_below_tenth_percent(self, fig6):
        for s in SIZES:
            assert fig6[("reactive", s)].unavailability_percent < 0.12

    def test_planned_reverse_rates_same_order(self, fig6):
        for s in SIZES:
            a = fig6[("proactive", s)].planned_reverse_per_hour
            b = fig6[("reactive", s)].planned_reverse_per_hour
            assert 0.15 < a / max(b, 1e-9) < 6.0


class TestFig7Mechanisms:
    @pytest.fixture(scope="class")
    def unavail(self):
        out = {}
        for tag, params in (("typ", TYPICAL_PARAMS), ("pes", PESSIMISTIC_PARAMS)):
            for mech in Mechanism:
                out[(tag, mech)] = sim(
                    lambda: SingleMarketStrategy(KEY),
                    mechanism=mech, params=params, label=f"{tag}/{mech.value}",
                ).unavailability_percent
        return out

    def test_typical_ordering(self, unavail):
        assert unavail[("typ", Mechanism.CKPT)] > unavail[("typ", Mechanism.CKPT_LIVE)]
        assert unavail[("typ", Mechanism.CKPT_LIVE)] > unavail[("typ", Mechanism.CKPT_LR)]
        assert unavail[("typ", Mechanism.CKPT_LR)] > unavail[("typ", Mechanism.CKPT_LR_LIVE)]

    def test_best_mechanism_meets_four_nines(self, unavail):
        assert unavail[("typ", Mechanism.CKPT_LR_LIVE)] <= 0.01

    def test_pure_checkpointing_not_acceptable(self, unavail):
        """Paper: 'pure checkpointing is not desirable' — it misses the
        always-on bar that the LR variants clear."""
        assert unavail[("typ", Mechanism.CKPT)] > 2 * unavail[("typ", Mechanism.CKPT_LR)]

    def test_pessimistic_uniformly_worse(self, unavail):
        for mech in Mechanism:
            assert unavail[("pes", mech)] > unavail[("typ", mech)]

    def test_pessimistic_preserves_ordering(self, unavail):
        vals = [unavail[("pes", m)] for m in
                (Mechanism.CKPT, Mechanism.CKPT_LIVE, Mechanism.CKPT_LR,
                 Mechanism.CKPT_LR_LIVE)]
        assert vals == sorted(vals, reverse=True)


class TestFig8MultiMarket:
    @pytest.fixture(scope="class")
    def region_results(self):
        region = "us-east-1a"
        singles = [
            sim(
                lambda key=MarketKey(region, size): SingleMarketStrategy(key),
                sizes=SIZES, label=f"s/{size}",
            )
            for size in SIZES
        ]
        multi = sim(
            lambda: MultiMarketStrategy(region), sizes=SIZES, label="multi",
        )
        return singles, multi

    def test_multi_market_cheaper_than_average_single(self, region_results):
        singles, multi = region_results
        avg = np.mean([a.normalized_cost_percent for a in singles])
        assert multi.normalized_cost_percent < avg

    def test_multi_market_availability_not_worse(self, region_results):
        singles, multi = region_results
        avg = np.mean([a.unavailability_percent for a in singles])
        assert multi.unavailability_percent < 2.0 * avg + 1e-4


class TestFig9MultiRegion:
    def test_pair_with_stable_region_cheaper_than_single_average(self):
        pair = ("us-east-1b", "eu-west-1a")
        singles = [
            sim(lambda r=r: MultiMarketStrategy(r), regions=(r,), sizes=SIZES,
                label=f"single/{r}")
            for r in pair
        ]
        multi = sim(
            lambda: MultiRegionStrategy(pair), regions=pair, sizes=SIZES, label="mr",
        )
        avg = np.mean([a.normalized_cost_percent for a in singles])
        assert multi.normalized_cost_percent < avg + 1.0
        assert multi.normalized_cost_percent < 33.0


class TestFig11PureSpot:
    @pytest.fixture(scope="class")
    def pure_and_proactive(self):
        pure = sim(
            lambda: PureSpotStrategy(KEY), bidding=ReactiveBidding(), label="pure",
        )
        pro = sim(lambda: SingleMarketStrategy(KEY), label="pro")
        return pure, pro

    def test_pure_spot_unacceptably_unavailable(self, pure_and_proactive):
        pure, _ = pure_and_proactive
        assert pure.unavailability_percent > 1.0

    def test_pure_spot_cheap_but_not_much_cheaper(self, pure_and_proactive):
        pure, pro = pure_and_proactive
        assert pure.normalized_cost_percent < pro.normalized_cost_percent + 1.0
        assert pure.normalized_cost_percent > 0.3 * pro.normalized_cost_percent

    def test_migration_scheduler_orders_of_magnitude_better(self, pure_and_proactive):
        pure, pro = pure_and_proactive
        assert pure.unavailability_percent / max(pro.unavailability_percent, 1e-9) > 50
