"""Shared fixtures: small catalogs, providers, schedulers.

Trace/catalog construction lives in :mod:`repro.testkit.builders`; the
fixtures here only wire those builders into pytest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.testkit.builders import make_step_trace
from repro.testkit.builders import single_market_catalog as build_single_market_catalog
from repro.traces.catalog import MarketKey, TraceCatalog, build_catalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours


def pytest_collection_modifyitems(config, items):
    """Auto-mark tests by directory so CI lanes can slice the suite.

    ``tests/props`` → ``props`` + ``slow``; ``tests/integration`` and
    ``tests/experiments`` → ``slow``; ``tests/golden`` → ``golden`` (the
    corpus is fast, so it stays in the PR lane).
    """
    for item in items:
        path = str(item.fspath)
        if "/tests/props/" in path:
            item.add_marker(pytest.mark.props)
            item.add_marker(pytest.mark.slow)
        elif "/tests/integration/" in path or "/tests/experiments/" in path:
            item.add_marker(pytest.mark.slow)
        elif "/tests/golden/" in path:
            item.add_marker(pytest.mark.golden)


@pytest.fixture(scope="session")
def month_catalog() -> TraceCatalog:
    """A full 16-market 30-day catalog (session-scoped: generation is cheap
    but reused by many tests)."""
    return build_catalog(seed=7, horizon=days(30))


@pytest.fixture()
def small_key() -> MarketKey:
    return MarketKey("us-east-1a", "small")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture()
def flat_trace() -> PriceTrace:
    """A constant cheap price for deterministic scheduler tests."""
    return PriceTrace.constant(0.02, 0.0, days(3))


@pytest.fixture()
def step_trace() -> PriceTrace:
    """Cheap, spike above on-demand (0.06), then cheap again."""
    return make_step_trace(
        [(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)], horizon=days(2)
    )


@pytest.fixture()
def single_market_catalog(step_trace: PriceTrace) -> TraceCatalog:
    return build_single_market_catalog(step_trace)


@pytest.fixture()
def provider(single_market_catalog: TraceCatalog, rng: np.random.Generator) -> CloudProvider:
    """Provider over the deterministic step trace with zero startup jitter."""
    return CloudProvider(single_market_catalog, rng=rng, startup_cv=0.0)
