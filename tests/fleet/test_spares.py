"""Shared spare pool semantics + the generalized sizing math underneath.

Covers the multi-consumer contract documented in docs/FLEET.md: half-open
handover windows, quota-before-capacity miss classification, deterministic
ordering of simultaneous claims — and the `repro.pool.spares`
generalization (per-service windows and caps) with its single-consumer
back-compat.
"""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.fleet.spares import (
    MISS_EXHAUSTED,
    MISS_QUOTA,
    SharedSparePool,
)
from repro.pool.spares import (
    concurrent_events,
    service_demand_profile,
    spare_requirement,
)
from repro.testkit.oracles import check_spare_pool

W = 360.0


class TestSharedSparePool:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SharedSparePool(capacity=-1)
        with pytest.raises(ConfigurationError):
            SharedSparePool(capacity=1, handover_window_s=0.0)
        with pytest.raises(ConfigurationError):
            SharedSparePool(capacity=1, default_quota=-1)
        with pytest.raises(ConfigurationError):
            SharedSparePool(capacity=1, quotas={"a": -2})

    def test_empty_replay(self):
        out = SharedSparePool(capacity=2).replay([])
        assert out.claims == out.hits == out.misses == 0
        assert out.hit_rate == 1.0
        assert out.peak_in_use == 0

    def test_all_hits_when_spread_out(self):
        out = SharedSparePool(capacity=1, handover_window_s=W).replay(
            [(0.0, "a"), (1000.0, "b"), (2000.0, "a")]
        )
        assert (out.claims, out.hits, out.misses) == (3, 3, 0)
        assert out.peak_in_use == 1

    def test_pool_exhausted_miss(self):
        out = SharedSparePool(capacity=1, handover_window_s=W).replay(
            [(0.0, "a"), (10.0, "b")]
        )
        assert out.hits == 1 and out.exhausted_misses == 1
        assert out.events[1].miss_reason == MISS_EXHAUSTED

    def test_quota_miss_checked_before_capacity(self):
        # Capacity 2 but service 'a' has quota 1: its second concurrent
        # claim is a *quota* miss even though the pool has a free spare.
        out = SharedSparePool(capacity=2, handover_window_s=W).replay(
            [(0.0, "a"), (10.0, "a")]
        )
        assert out.quota_misses == 1 and out.exhausted_misses == 0
        assert out.events[1].miss_reason == MISS_QUOTA

    def test_quota_overrides(self):
        out = SharedSparePool(
            capacity=2, handover_window_s=W, quotas={"a": 2}
        ).replay([(0.0, "a"), (10.0, "a")])
        assert out.misses == 0 and out.peak_in_use == 2

    def test_half_open_window_release_frees_at_exactly_t_plus_w(self):
        # b's claim lands exactly when a's spare is returned: it is a hit.
        out = SharedSparePool(capacity=1, handover_window_s=W).replay(
            [(0.0, "a"), (W, "b")]
        )
        assert out.misses == 0
        assert out.events[-1].in_use_after == 1

    def test_simultaneous_claims_ordered_by_name(self):
        # One spare, two claims at the same instant: 'a' wins, whatever
        # the input order — the replay is deterministic.
        pool = SharedSparePool(capacity=1, handover_window_s=W)
        fwd = pool.replay([(5.0, "a"), (5.0, "b")])
        rev = pool.replay([(5.0, "b"), (5.0, "a")])
        assert fwd == rev
        assert [e.service for e in fwd.events if e.granted] == ["a"]

    def test_per_service_accounting_sums_to_totals(self):
        out = SharedSparePool(capacity=2, handover_window_s=W).replay(
            [(0.0, "a"), (1.0, "b"), (2.0, "c"), (3.0, "a"), (900.0, "c")]
        )
        assert sum(s.claims for s in out.per_service.values()) == out.claims
        assert sum(s.hits for s in out.per_service.values()) == out.hits
        assert sum(s.misses for s in out.per_service.values()) == out.misses

    def test_zero_capacity_pool_misses_everything(self):
        out = SharedSparePool(capacity=0, handover_window_s=W).replay(
            [(0.0, "a"), (10.0, "b")]
        )
        assert out.hits == 0 and out.exhausted_misses == 2

    def test_oracle_green_on_real_replay(self):
        out = SharedSparePool(
            capacity=2, handover_window_s=W, quotas={"a": 2}
        ).replay([(0.0, "a"), (1.0, "a"), (2.0, "b"), (500.0, "b"), (600.0, "c")])
        report = check_spare_pool(out, {"a": 2})
        assert report.passed, report.summary()

    def test_oracle_catches_tampered_accounting(self):
        import dataclasses

        out = SharedSparePool(capacity=2, handover_window_s=W).replay(
            [(0.0, "a"), (1.0, "b"), (2.0, "c")]
        )
        forged = dataclasses.replace(out, hits=out.hits + 1)
        report = check_spare_pool(forged, {})
        assert not report.passed
        assert any(c.name == "spare-pool.accounting" for c in report.failures)


class TestGeneralizedSizing:
    def test_profile_merges_equal_instants(self):
        # Two claims at t=0 with no cap: one +2 step, then one -2 step.
        assert service_demand_profile([0.0, 0.0], 60.0) == [(0.0, 2), (60.0, -2)]

    def test_profile_cap_clamps_concurrency(self):
        profile = service_demand_profile([0.0, 10.0, 20.0], 60.0, cap=1)
        level, peak = 0, 0
        for _, delta in profile:
            level += delta
            peak = max(peak, level)
        assert peak == 1 and level == 0

    def test_profile_validation(self):
        with pytest.raises(SchedulingError):
            service_demand_profile([0.0], 0.0)
        with pytest.raises(SchedulingError):
            service_demand_profile([0.0], 60.0, cap=-1)

    def test_legacy_single_service_matches_concurrent_events(self):
        times = [0.0, 30.0, 45.0, 200.0, 210.0, 1000.0]
        assert spare_requirement([times], 60.0) == concurrent_events(times, 60.0)

    def test_legacy_merge_unchanged(self):
        assert spare_requirement([[0.0], [10.0], [2000.0]], window_s=60.0) == 2

    def test_per_service_windows(self):
        # Same instants; service 0 holds its spare 10x longer, so its own
        # events overlap while service 1's do not.
        per_svc = [[0.0, 100.0], [0.0, 100.0]]
        assert spare_requirement(per_svc, 60.0) == 2
        assert spare_requirement(per_svc, [600.0, 60.0]) == 3

    def test_per_service_cap_bounds_one_tenants_storm(self):
        storm = [[0.0, 1.0, 2.0, 3.0], [5.0]]
        assert spare_requirement(storm, 60.0) == 5
        assert spare_requirement(storm, 60.0, per_service_cap=1) == 2
        assert spare_requirement(storm, 60.0, per_service_cap=[2, None]) == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchedulingError):
            spare_requirement([[0.0], [1.0]], [60.0])
        with pytest.raises(SchedulingError):
            spare_requirement([[0.0], [1.0]], 60.0, per_service_cap=[1])

    def test_empty(self):
        assert spare_requirement([], 60.0) == 0
        assert spare_requirement([[], []], 60.0) == 0
