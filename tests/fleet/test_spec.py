"""FleetSpec/ServiceSpec: validation, synthesis determinism, shared keys."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fleet.spec import FleetSpec, ServiceSpec, synthesize_fleet
from repro.runtime.spec import StrategySpec
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def svc(name="svc-a", **kw):
    return ServiceSpec(name=name, strategy=StrategySpec.single(KEY), **kw)


class TestServiceSpec:
    def test_defaults(self):
        s = svc()
        assert s.availability_target_percent == 99.99
        assert s.spare_quota == 1
        assert s.arrival_s == 0.0 and s.departure_s is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            svc(name="")
        with pytest.raises(ConfigurationError):
            svc(spare_quota=-1)
        with pytest.raises(ConfigurationError):
            svc(weight=0.0)
        with pytest.raises(ConfigurationError):
            svc(arrival_s=-1.0)
        with pytest.raises(ConfigurationError):
            svc(availability_target_percent=0.0)

    def test_with_(self):
        assert svc().with_(spare_quota=3).spare_quota == 3


class TestFleetSpec:
    def test_needs_services(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(services=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FleetSpec(services=(svc("a"), svc("a")))

    def test_empty_window_rejected(self):
        bad = svc(arrival_s=100.0, departure_s=100.0)
        with pytest.raises(ConfigurationError, match="empty"):
            FleetSpec(services=(bad,))

    def test_departure_beyond_horizon_rejected(self):
        bad = svc(departure_s=days(30) + 1.0)
        with pytest.raises(ConfigurationError, match="beyond horizon"):
            FleetSpec(services=(bad,), horizon_s=days(30))

    def test_active_window_defaults_to_horizon(self):
        fleet = FleetSpec(services=(svc(),), horizon_s=days(7))
        assert fleet.active_window(fleet.services[0]) == (0.0, days(7))

    def test_n_markets(self):
        fleet = FleetSpec(
            services=(svc(),),
            regions=("us-east-1a", "us-west-1a"),
            sizes=("small", "medium", "large"),
        )
        assert fleet.n_markets == 6

    def test_service_by_name(self):
        fleet = FleetSpec(services=(svc("a"), svc("b")))
        assert fleet.service_by_name("b").name == "b"
        with pytest.raises(ConfigurationError):
            fleet.service_by_name("zzz")

    def test_run_specs_share_the_catalog_identity(self):
        """The shared-market contract: every per-service RunSpec is pinned
        to the fleet's seed/horizon/regions/sizes, so all services resolve
        the identical trace catalog."""
        fleet = synthesize_fleet(8, seed=3, horizon_s=days(2))
        specs = fleet.run_specs()
        assert len(specs) == 8
        keys = {
            (r.seed, r.horizon_s, r.regions, r.sizes) for r in specs
        }
        assert keys == {
            (fleet.seed, fleet.horizon_s, tuple(fleet.regions), tuple(fleet.sizes))
        }
        assert [r.label for r in specs] == [
            f"fleet/{s.name}" for s in fleet.services
        ]


class TestSynthesize:
    def test_deterministic(self):
        a = synthesize_fleet(20, seed=7, churn_per_week=3.0, horizon_s=days(10))
        b = synthesize_fleet(20, seed=7, churn_per_week=3.0, horizon_s=days(10))
        assert a == b

    def test_seed_changes_the_fleet(self):
        a = synthesize_fleet(20, seed=0, horizon_s=days(10))
        b = synthesize_fleet(20, seed=1, horizon_s=days(10))
        assert a != b

    def test_heterogeneous(self):
        fleet = synthesize_fleet(60, seed=0, horizon_s=days(10))
        kinds = {s.strategy.kind for s in fleet.services}
        assert len(kinds) >= 3
        assert len({s.availability_target_percent for s in fleet.services}) > 1

    def test_static_fleet_has_no_churn(self):
        fleet = synthesize_fleet(10, seed=0, horizon_s=days(10))
        assert len(fleet) == 10
        assert all(s.arrival_s == 0.0 and s.departure_s is None
                   for s in fleet.services)

    def test_churned_services_live_inside_the_horizon(self):
        h = days(10)
        fleet = synthesize_fleet(10, seed=2, horizon_s=h, churn_per_week=7.0)
        arrived = [s for s in fleet.services if s.arrival_s > 0.0]
        assert arrived, "expected mid-horizon arrivals at this churn rate"
        for s in arrived:
            a, d = fleet.active_window(s)
            assert 0.0 < a < d <= h

    def test_spare_capacity_rule_of_thumb(self):
        assert synthesize_fleet(100, horizon_s=days(2)).spare_capacity == 10
        assert synthesize_fleet(3, horizon_s=days(2)).spare_capacity == 2
        assert synthesize_fleet(
            100, horizon_s=days(2), spare_capacity=1
        ).spare_capacity == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_fleet(0)
        with pytest.raises(ConfigurationError):
            synthesize_fleet(5, churn_per_week=-1.0)

    def test_specs_are_frozen(self):
        fleet = synthesize_fleet(2, horizon_s=days(2))
        with pytest.raises(dataclasses.FrozenInstanceError):
            fleet.seed = 9
