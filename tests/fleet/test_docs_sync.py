"""FLEET.md must describe the real CLI and report surface (mirrors CI)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_fleet_docs_checker_passes():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_fleet_docs.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "FLEET.md OK" in proc.stdout


def test_every_report_class_named_in_fleet_md():
    from repro.fleet import report

    doc = (REPO / "docs" / "FLEET.md").read_text(encoding="utf-8")
    for name in report.__all__:
        assert f"`{name}`" in doc


def test_fleet_md_linked_from_entry_points():
    for page in ("README.md", "docs/ARCHITECTURE.md", "docs/TESTING.md"):
        text = (REPO / page).read_text(encoding="utf-8")
        assert "FLEET.md" in text, f"{page} does not link docs/FLEET.md"
