"""repro-fleet CLI: smoke, report writing, byte-identity, error exits."""

import json

from repro.fleet.cli import main

FAST = ["--fast", "--services", "4", "--days", "1"]


def test_fast_smoke(capsys):
    assert main([*FAST, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "fleet: 4 services" in out
    assert "spare pool:" in out
    assert "top 2 services by downtime" in out


def test_top_zero_omits_table(capsys):
    assert main([*FAST, "--top", "0"]) == 0
    assert "by downtime" not in capsys.readouterr().out


def test_verify_flag(capsys):
    assert main([*FAST, "--verify"]) == 0
    assert "fleet invariant oracles green" in capsys.readouterr().out


def test_report_written_as_sorted_json(tmp_path, capsys):
    path = tmp_path / "out" / "fleet.json"
    assert main([*FAST, "--report", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["n_services"] == 4
    assert list(payload) == sorted(payload)


def test_report_byte_identical_across_jobs(tmp_path, capsys):
    p1 = tmp_path / "jobs1.json"
    p2 = tmp_path / "jobs2.json"
    assert main([*FAST, "--jobs", "1", "--report", str(p1)]) == 0
    assert main([*FAST, "--jobs", "2", "--report", str(p2)]) == 0
    assert p1.read_bytes() == p2.read_bytes()


def test_churn_flag(capsys):
    assert main([*FAST, "--churn-per-week", "14"]) == 0
    assert "arrived" in capsys.readouterr().out


def test_error_exits(capsys):
    assert main([*FAST, "--jobs", "0"]) == 2
    assert main(["--services", "0"]) == 2
    assert main([*FAST, "--resume"]) == 2  # --resume needs --ledger
    capsys.readouterr()
