"""run_fleet / assemble_report: determinism, proration, oracle wiring."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.runner import assemble_report, run_fleet
from repro.fleet.spec import FleetSpec, ServiceSpec, synthesize_fleet
from repro.runtime.spec import StrategySpec
from repro.testkit.oracles import verify_fleet
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def small_fleet(**kw):
    defaults = dict(
        seed=1,
        horizon_s=days(2),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small",),
        churn_per_week=7.0,
    )
    defaults.update(kw)
    return synthesize_fleet(6, **defaults)


class TestDeterminism:
    def test_byte_identical_across_jobs(self):
        fleet = small_fleet()
        serial = run_fleet(fleet, jobs=1)
        parallel = run_fleet(fleet, jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_byte_identical_across_engines(self):
        fleet = small_fleet()
        reports = {
            engine: run_fleet(fleet, engine=engine).to_json()
            for engine in ("event", "vector", "auto")
        }
        assert reports["event"] == reports["vector"] == reports["auto"]

    def test_byte_identical_across_ledger_resume(self, tmp_path):
        fleet = small_fleet()
        ledger = tmp_path / "fleet.ledger"
        first = run_fleet(fleet, ledger=str(ledger))
        resumed = run_fleet(fleet, ledger=str(ledger), resume=True)
        assert first.to_json() == resumed.to_json()


class TestProration:
    def test_churned_twin_costs_its_active_fraction(self):
        # Two identically configured tenants; one is active for half the
        # horizon. Same underlying simulation (shared catalog), so the
        # prorated row is exactly the full row scaled by 0.5.
        h = days(2)
        full = ServiceSpec(name="full", strategy=StrategySpec.single(KEY))
        half = full.with_(name="half", departure_s=h / 2)
        fleet = FleetSpec(
            services=(full, half),
            seed=3,
            horizon_s=h,
            regions=("us-east-1a",),
            sizes=("small",),
        )
        report = run_fleet(fleet)
        r_full, r_half = report.services
        assert r_half.active_fraction == pytest.approx(0.5)
        assert r_half.cost == pytest.approx(0.5 * r_full.cost)
        assert r_half.downtime_s == pytest.approx(0.5 * r_full.downtime_s)
        # Rates are window-invariant under steady-state proration.
        assert r_half.normalized_cost_percent == r_full.normalized_cost_percent
        assert r_half.unavailability_percent == r_full.unavailability_percent
        # Forced migrations outside [arrival, departure) are dropped.
        assert r_half.forced_migrations <= r_full.forced_migrations
        assert report.n_departed == 1

    def test_weight_scales_cost_not_rates(self):
        h = days(2)
        one = ServiceSpec(name="w1", strategy=StrategySpec.single(KEY))
        three = one.with_(name="w3", weight=3.0)
        fleet = FleetSpec(
            services=(one, three),
            seed=3,
            horizon_s=h,
            regions=("us-east-1a",),
            sizes=("small",),
        )
        report = run_fleet(fleet)
        r1, r3 = report.services
        assert r3.cost == pytest.approx(3.0 * r1.cost)
        assert r3.baseline_cost == pytest.approx(3.0 * r1.baseline_cost)
        assert r3.normalized_cost_percent == r1.normalized_cost_percent


class TestReport:
    def test_rollups_and_oracles(self):
        fleet = small_fleet()
        report = run_fleet(fleet, verify=True)  # raises if any oracle fails
        assert report.n_services == len(fleet)
        assert report.n_initial + report.n_arrived == report.n_services
        assert report.total_cost == pytest.approx(
            sum(s.cost for s in report.services)
        )
        assert 0.0 < report.normalized_cost_percent < 100.0
        sp = report.spare_pool
        assert sp.hits + sp.misses == sp.claims
        assert sp.peak_in_use <= sp.capacity

    def test_verify_fleet_cross_checks_results(self):
        fleet = small_fleet()
        from repro.runtime import run_batch

        results = list(run_batch(list(fleet.run_specs())).results)
        report = assemble_report(fleet, results)
        oracle = verify_fleet(fleet, report, results)
        assert oracle.passed, oracle.summary()
        names = {c.name for c in oracle.checks}
        assert "fleet.spare-replay" in names
        assert "spare-pool.capacity" in names

    def test_on_demand_fleet_has_no_forced_migrations(self):
        fleet = FleetSpec(
            services=tuple(
                ServiceSpec(name=f"od-{i}", strategy=StrategySpec.on_demand(KEY))
                for i in range(3)
            ),
            seed=0,
            horizon_s=days(2),
            regions=("us-east-1a",),
            sizes=("small",),
        )
        report = run_fleet(fleet)
        assert report.correlation.total_forced == 0
        assert report.spare_pool.claims == 0
        assert report.spare_pool.hit_rate == 1.0
        # On-demand pays the baseline plus small startup/volume overheads.
        assert report.normalized_cost_percent == pytest.approx(100.0, abs=1.0)

    def test_result_count_mismatch_rejected(self):
        fleet = small_fleet()
        with pytest.raises(ConfigurationError, match="results"):
            assemble_report(fleet, [])

    def test_jobs_validated(self):
        with pytest.raises(ConfigurationError):
            run_fleet(small_fleet(), jobs=0)
