"""Unit tests for unit conversions and formatting."""

import pytest

from repro import units


class TestConversions:
    def test_time_helpers(self):
        assert units.minutes(2) == 120.0
        assert units.hours(1.5) == 5400.0
        assert units.days(2) == 172800.0
        assert units.to_hours(7200.0) == 2.0
        assert units.to_days(86400.0) == 1.0

    def test_roundtrips(self):
        assert units.to_hours(units.hours(3.7)) == pytest.approx(3.7)
        assert units.to_days(units.days(0.25)) == pytest.approx(0.25)

    def test_gib_to_megabits(self):
        assert units.gib_to_megabits(1.0) == pytest.approx(1024**3 * 8 / 1e6)

    def test_transfer_seconds(self):
        # 1 GiB over 100 Mbit/s
        assert units.transfer_seconds(1.0, 100.0) == pytest.approx(85.9, rel=0.01)
        assert units.transfer_seconds(0.0, 100.0) == 0.0

    def test_transfer_seconds_validation(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(1.0, 0.0)
        with pytest.raises(ValueError):
            units.transfer_seconds(-1.0, 100.0)

    def test_percent_and_basis_points(self):
        assert units.percent(0.5) == 50.0
        assert units.basis_points(0.0001) == pytest.approx(1.0)
        # the paper's availability target: 1 basis point of unavailability
        assert units.basis_points(0.0001) == pytest.approx(
            units.percent(0.0001) * 100
        )


class TestFormatting:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (5.0, "5.0s"),
            (90.0, "1.5m"),
            (7200.0, "2.00h"),
            (172800.0, "2.00d"),
            (-90.0, "-1.5m"),
        ],
    )
    def test_fmt_duration(self, seconds, expected):
        assert units.fmt_duration(seconds) == expected

    def test_fmt_usd(self):
        assert units.fmt_usd(0.0612) == "$0.0612"
        assert units.fmt_usd(1234.5) == "$1,234.50"


class TestConstants:
    def test_clock_constants(self):
        assert units.SECONDS_PER_HOUR == 3600.0
        assert units.SECONDS_PER_DAY == 24 * 3600.0
        assert units.HOURS_PER_DAY == 24.0
