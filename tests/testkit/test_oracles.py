"""Unit tests for the invariant oracles: green on honest runs, red when the
books are cooked."""

import pytest

from repro.core.accounting import CostEntry
from repro.core.simulation import (
    SimulationConfig,
    build_stack,
    run_simulation,
    summarize_stack,
)
from repro.errors import InvariantViolation
from repro.runtime.spec import StrategySpec
from repro.testkit.faults import FaultPlan
from repro.testkit.oracles import (
    OracleReport,
    check_jobs_determinism,
    check_rerun_determinism,
    run_verified,
    verify_stack,
)
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def _config(**kw):
    base = dict(
        strategy=StrategySpec.single(KEY),
        seed=3,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
    )
    base.update(kw)
    return SimulationConfig(**base)


def _completed_stack(**kw):
    stack = build_stack(_config(**kw))
    stack.scheduler.run()
    return stack, summarize_stack(stack)


def test_honest_run_passes_all_oracles():
    stack, result = _completed_stack()
    report = verify_stack(stack, result)
    assert report.passed, report.summary()
    assert len(report.checks) >= 10


def test_faulted_run_passes_all_oracles():
    stack, result = _completed_stack(
        faults=FaultPlan.revocation_storm(7, days(3), n_spikes=3, duration_s=1200.0)
    )
    report = verify_stack(stack, result)
    assert report.passed, report.summary()


def test_report_raise_on_failure():
    report = OracleReport()
    report.add("fine", True)
    report.raise_on_failure()  # no-op while green
    report.add("broken", False, "books don't balance")
    with pytest.raises(InvariantViolation) as exc:
        report.raise_on_failure()
    assert "broken" in str(exc.value)
    assert exc.value.failures


def test_cooked_ledger_trips_billing_oracle():
    stack, result = _completed_stack()
    stack.scheduler.ledger.entries.append(
        CostEntry(time=0.0, amount=1.0, rate=99.0, kind="spot", market=str(KEY))
    )
    report = verify_stack(stack, result)
    failed = {c.name for c in report.failures}
    assert "billing.start-of-hour-rates" in failed
    assert "billing.ledger-total" in failed


def test_free_hour_without_revocation_note_trips_oracle():
    stack, result = _completed_stack()
    rate = float(stack.catalog.trace(KEY).price_at(0.0))
    stack.scheduler.ledger.entries.append(
        CostEntry(time=0.0, amount=0.0, rate=rate, kind="spot", market=str(KEY))
    )
    report = verify_stack(stack, result)
    assert "billing.start-of-hour-rates" in {c.name for c in report.failures}


def test_tampered_downtime_trips_availability_oracle():
    from repro.core.accounting import DowntimeInterval

    stack, result = _completed_stack()
    stack.scheduler.availability.downtime.append(
        DowntimeInterval(start=100.0, end=400.0, cause="tampered")
    )
    report = verify_stack(stack, result)
    assert "availability.report-agreement" in {c.name for c in report.failures}


def test_tampered_metrics_trip_metrics_oracle():
    stack, result = _completed_stack()
    stack.scheduler.metrics.counter("migrations.forced").inc(5)
    report = verify_stack(stack, result)
    assert "metrics.migration-counters" in {c.name for c in report.failures}


def test_verify_kwarg_raises_on_violation(monkeypatch):
    # Sabotage summarize_stack's output path: a result whose totals lie.
    import repro.core.simulation as sim

    real = sim.summarize_stack

    def lying(stack):
        import dataclasses

        return dataclasses.replace(real(stack), total_cost=999.0)

    monkeypatch.setattr(sim, "summarize_stack", lying)
    with pytest.raises(InvariantViolation):
        sim.run_simulation(_config(), verify=True)


def test_run_verified_returns_report_without_raising():
    observed, report = run_verified(_config())
    assert report.passed
    assert observed.result.total_cost >= 0.0
    assert observed.fired_events > 0


def test_rerun_determinism_check():
    report = check_rerun_determinism(_config())
    assert report.passed


def test_jobs_determinism_check():
    report = check_jobs_determinism(_config(), seeds=[1, 2, 3], jobs=2)
    assert report.passed


def test_verify_true_on_plain_run_is_green():
    # The public entry point: any honest simulation passes its own audit.
    result = run_simulation(_config(seed=17), verify=True)
    assert result.duration_hours > 0
