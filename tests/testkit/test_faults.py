"""Unit tests for the fault-injection layer."""

import pickle

import numpy as np
import pytest

from repro.core.simulation import SimulationConfig, build_stack, run_simulation
from repro.errors import ConfigurationError
from repro.runtime.spec import StrategySpec
from repro.testkit.builders import make_constant_trace, single_market_catalog
from repro.testkit.faults import FaultPlan, PriceSpike
from repro.traces.catalog import MarketKey
from repro.units import days, hours

KEY = MarketKey("us-east-1a", "small")


# ----------------------------------------------------------------- validation
def test_spike_validation():
    with pytest.raises(ConfigurationError):
        PriceSpike(start_s=-1.0, duration_s=10.0)
    with pytest.raises(ConfigurationError):
        PriceSpike(start_s=0.0, duration_s=0.0)
    with pytest.raises(ConfigurationError):
        PriceSpike(start_s=0.0, duration_s=10.0, factor=0.0)


def test_plan_validation():
    with pytest.raises(ConfigurationError):
        FaultPlan(checkpoint_delay_s=-1.0)
    with pytest.raises(ConfigurationError):
        FaultPlan(checkpoint_failure_rate=1.5)
    with pytest.raises(ConfigurationError):
        FaultPlan(disk_copy_factor=0.0)
    with pytest.raises(ConfigurationError):
        FaultPlan(crash_attempts=0)


def test_empty_plan_is_inert():
    plan = FaultPlan()
    assert not plan.is_active
    catalog = single_market_catalog(make_constant_trace(0.02, days(2)))
    assert plan.apply_to_catalog(catalog) is catalog


def test_plan_is_pickleable_and_hashable():
    plan = FaultPlan.revocation_storm(1, days(7), crash_seeds=(3,))
    assert pickle.loads(pickle.dumps(plan)) == plan
    hash(plan)


# ------------------------------------------------------------- catalog overlay
def test_spike_overlay_raises_price_to_factor_times_on_demand():
    catalog = single_market_catalog(make_constant_trace(0.02, days(2)), on_demand_price=0.06)
    plan = FaultPlan.correlated_spike(hours(10), hours(2), factor=5.0)
    spiked = catalog_trace = plan.apply_to_catalog(catalog).trace(KEY)
    assert spiked.price_at(hours(9)) == pytest.approx(0.02)
    assert spiked.price_at(hours(10)) == pytest.approx(0.30)  # 5 x 0.06
    assert spiked.price_at(hours(11.9)) == pytest.approx(0.30)
    assert spiked.price_at(hours(12)) == pytest.approx(0.02)  # right-open window
    assert catalog_trace.horizon == days(2)


def test_overlay_never_lowers_prices():
    trace = make_constant_trace(0.50, days(1))  # base already above the floor
    catalog = single_market_catalog(trace)
    plan = FaultPlan.correlated_spike(hours(2), hours(1), factor=5.0)  # floor 0.30
    out = plan.apply_to_catalog(catalog).trace(KEY)
    assert out.price_at(hours(2.5)) == pytest.approx(0.50)


def test_spike_market_targeting():
    other = MarketKey("us-east-1a", "large")
    traces = {
        KEY: make_constant_trace(0.02, days(1)),
        other: make_constant_trace(0.08, days(1)),
    }
    from repro.testkit.builders import make_catalog

    catalog = make_catalog(traces, {KEY: 0.06, other: 0.24})
    plan = FaultPlan.correlated_spike(hours(3), hours(1), markets=(str(KEY),))
    out = plan.apply_to_catalog(catalog)
    assert out.trace(KEY).price_at(hours(3.5)) == pytest.approx(0.30)
    assert out.trace(other).price_at(hours(3.5)) == pytest.approx(0.08)


def test_on_demand_prices_untouched():
    catalog = single_market_catalog(make_constant_trace(0.02, days(1)), on_demand_price=0.06)
    out = FaultPlan.correlated_spike(0.0, hours(1)).apply_to_catalog(catalog)
    assert out.on_demand_price(KEY) == 0.06


def test_revocation_storm_is_seeded():
    a = FaultPlan.revocation_storm(5, days(7))
    b = FaultPlan.revocation_storm(5, days(7))
    c = FaultPlan.revocation_storm(6, days(7))
    assert a == b
    assert a != c
    assert len(a.spikes) == 6
    assert all(0.0 <= s.start_s and s.end_s <= days(7) for s in a.spikes)


def test_storm_horizon_must_exceed_duration():
    with pytest.raises(ConfigurationError):
        FaultPlan.revocation_storm(1, 100.0, duration_s=200.0)


# ------------------------------------------------------------ provider wrapping
def _stack(plan, seed=3):
    config = SimulationConfig(
        strategy=StrategySpec.single(KEY),
        seed=seed,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=plan,
    )
    return build_stack(config)


def test_wrap_provider_startup_stretch():
    stretched = _stack(FaultPlan(startup_factor=3.0))
    plain = _stack(FaultPlan())
    # Same RNG stream, so the stretched sample is exactly 3x the plain one.
    a = stretched.provider.startup.sample("spot", "us-east-1a")
    b = plain.provider.startup.sample("spot", "us-east-1a")
    assert a == pytest.approx(3.0 * b)


def test_wrap_provider_disk_copy_factor_reaches_scheduler():
    stack = _stack(FaultPlan(disk_copy_factor=2.5))
    plain = _stack(FaultPlan())
    src = KEY
    dst = MarketKey("us-east-1a", "small")
    assert stack.scheduler._disk_copy_s(src, dst) == pytest.approx(
        2.5 * plain.scheduler._disk_copy_s(src, dst)
    )


def test_checkpoint_faults_counted_and_delay_applied():
    plan = FaultPlan(seed=9, checkpoint_delay_s=30.0, checkpoint_failure_rate=0.5)
    stack = _stack(plan)
    volumes = stack.provider.volumes
    vol = volumes.create("us-east-1a", 10.0)
    volumes.attach(vol.volume_id, "srv-1", "us-east-1a")
    for _ in range(20):
        volumes.write(vol.volume_id, "checkpoint", 1.0, at=100.0)
    stats = stack.provider.fault_stats
    assert stats.checkpoint_writes == 20
    assert stats.checkpoint_delayed == 20  # delay_s > 0 delays every write
    assert stats.checkpoint_failures > 0  # rate 0.5 over 20 writes
    # recorded write time includes the injected delay
    written_at, _ = volumes.read(vol.volume_id, "checkpoint")
    assert written_at >= 130.0


def test_checkpoint_faults_ignore_other_objects():
    plan = FaultPlan(seed=9, checkpoint_delay_s=30.0, checkpoint_failure_rate=1.0)
    stack = _stack(plan)
    volumes = stack.provider.volumes
    vol = volumes.create("us-east-1a", 10.0)
    volumes.attach(vol.volume_id, "srv-1", "us-east-1a")
    volumes.write(vol.volume_id, "root", 1.0, at=50.0)
    assert volumes.read(vol.volume_id, "root") == (50.0, 1.0)
    assert stack.provider.fault_stats.checkpoint_writes == 0


def test_should_crash_schedule():
    plan = FaultPlan(crash_seeds=(7, 9), crash_attempts=2)
    assert plan.should_crash(7, 0)
    assert plan.should_crash(7, 1)
    assert not plan.should_crash(7, 2)
    assert not plan.should_crash(8, 0)


# ------------------------------------------------------------------ end to end
def test_storm_forces_migrations_and_raises_cost():
    base_cfg = SimulationConfig(
        strategy=StrategySpec.single(KEY),
        seed=3,
        horizon_s=days(7),
        regions=("us-east-1a",),
        sizes=("small",),
    )
    plan = FaultPlan.revocation_storm(11, days(7), n_spikes=5, duration_s=1800.0)
    calm = run_simulation(base_cfg, verify=True)
    stormy = run_simulation(base_cfg.with_(faults=plan), verify=True)
    assert stormy.forced_migrations > calm.forced_migrations
    assert stormy.total_cost != calm.total_cost


def test_faulted_run_is_deterministic():
    cfg = SimulationConfig(
        strategy=StrategySpec.single(KEY),
        seed=5,
        horizon_s=days(5),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.revocation_storm(
            21, days(5), checkpoint_delay_s=20.0, checkpoint_failure_rate=0.3
        ),
    )
    assert run_simulation(cfg) == run_simulation(cfg)
