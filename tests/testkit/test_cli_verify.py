"""Tests for the ``repro-verify`` CLI."""

import json

import pytest

from repro.testkit.cli import main
from repro.testkit.golden import SCENARIOS, update_golden


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for s in SCENARIOS:
        assert s.name in out


def test_check_single_scenario(capsys):
    assert main(["--scenario", "calm-single"]) == 0
    out = capsys.readouterr().out
    assert "ok   calm-single" in out
    assert "1/1 golden scenario(s) match" in out


def test_update_then_check_custom_dir(tmp_path, capsys):
    assert main(["--update-golden", "--scenario", "calm-single", "--golden-dir", str(tmp_path)]) == 0
    assert (tmp_path / "calm-single.json").exists()
    assert main(["--scenario", "calm-single", "--golden-dir", str(tmp_path)]) == 0


def test_mismatch_exits_nonzero(tmp_path, capsys):
    written = update_golden(["calm-single"], golden_dir=tmp_path)
    payload = json.loads(written["calm-single"].read_text())
    payload["total_cost"] = 123.456
    written["calm-single"].write_text(json.dumps(payload))
    assert main(["--scenario", "calm-single", "--golden-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL calm-single" in out


def test_missing_expected_exits_nonzero(tmp_path):
    assert main(["--scenario", "calm-single", "--golden-dir", str(tmp_path)]) == 1


@pytest.mark.slow
def test_storm_battery(capsys):
    assert main(["--storm", "--seed", "2", "--jobs", "2", "--days", "3"]) == 0
    out = capsys.readouterr().out
    assert "all invariant oracles green" in out
    assert "determinism.jobs" in out


def test_golden_dir_env_override(tmp_path, monkeypatch, capsys):
    from repro.testkit.golden import default_golden_dir

    monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
    assert default_golden_dir() == tmp_path
