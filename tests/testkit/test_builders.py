"""Unit tests for the shared trace/catalog builders."""

import pytest

from repro.errors import TraceFormatError
from repro.testkit.builders import (
    make_catalog,
    make_constant_trace,
    make_step_trace,
    single_market_catalog,
)
from repro.traces.catalog import MarketKey
from repro.units import days, hours


def test_make_step_trace():
    t = make_step_trace([(0.0, 0.02), (hours(5), 0.10)], horizon=days(1))
    assert t.price_at(hours(1)) == 0.02
    assert t.price_at(hours(5)) == 0.10
    assert t.horizon == days(1)


def test_make_step_trace_rejects_malformed():
    with pytest.raises(TraceFormatError):
        make_step_trace([(0.0, 0.02), (0.0, 0.10)], horizon=days(1))  # not increasing
    with pytest.raises(TraceFormatError):
        make_step_trace([(0.0, -0.02)], horizon=days(1))  # negative price


def test_make_constant_trace():
    t = make_constant_trace(0.05, days(2))
    assert t.price_at(0.0) == 0.05
    assert t.price_at(days(1)) == 0.05
    assert len(t) == 1


def test_single_market_catalog_defaults():
    cat = single_market_catalog(make_constant_trace(0.02, days(1)))
    key = MarketKey("us-east-1a", "small")
    assert key in cat
    assert cat.on_demand_price(key) == 0.06
    assert len(cat) == 1


def test_single_market_catalog_custom_key():
    key = MarketKey("eu-west-1a", "xlarge")
    cat = single_market_catalog(make_constant_trace(0.10, days(1)), on_demand_price=0.96, key=key)
    assert cat.on_demand_price(key) == 0.96


def test_make_catalog_multi_market():
    a = MarketKey("us-east-1a", "small")
    b = MarketKey("us-east-1a", "large")
    cat = make_catalog(
        {a: make_constant_trace(0.02, days(1)), b: make_constant_trace(0.08, days(1))},
        {a: 0.06, b: 0.24},
    )
    assert set(cat.markets()) == {a, b}
    assert cat.horizon == days(1)
