"""Smoke tests of every experiment driver (fast mode) plus the CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, ExperimentConfig, run_experiment
from repro.experiments.registry import get_experiment
from repro.experiments.runner import build_parser, main

FAST = ExperimentConfig(fast=True)

ALL_IDS = sorted(EXPERIMENTS)


def test_registry_contains_every_paper_artifact():
    paper_artifacts = {
        "fig1", "tab1", "tab2", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "tab3", "tab4", "fig12", "sec62",
    }
    ablations = {"abl-bid", "abl-tau", "abl-stability", "abl-adaptive", "ext-frontier", "ext-pool", "ext-elastic", "ext-sensitivity", "abl-grace", "ext-fleet"}
    assert set(ALL_IDS) == paper_artifacts | ablations


def test_unknown_experiment_raises():
    with pytest.raises(ConfigurationError):
        get_experiment("fig99")


@pytest.mark.parametrize("eid", ALL_IDS)
def test_experiment_runs_and_renders(eid):
    report = run_experiment(eid, FAST)
    out = report.render()
    assert report.experiment_id == eid
    assert len(report.comparisons) >= 3
    assert out and eid in out


# The statistically-noisy experiments get a pass in fast mode; the
# deterministic ones must fully hold even there.
DETERMINISTIC = ["tab1", "tab2", "tab4", "fig12", "fig1", "fig10", "sec62", "tab3"]


@pytest.mark.parametrize("eid", DETERMINISTIC)
def test_deterministic_experiments_hold_in_fast_mode(eid):
    assert run_experiment(eid, FAST).all_hold()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for eid in ALL_IDS:
            assert eid in out

    def test_unknown_id_exits_2(self, capsys):
        assert main(["nonexistent"]) == 2

    def test_run_single(self, capsys):
        rc = main(["tab2", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tab2" in out and "paper-vs-measured" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.days == 30.0
        assert not args.fast
        assert args.jobs == 1

    def test_bad_jobs_exits_2(self, capsys):
        assert main(["tab2", "--fast", "--jobs", "0"]) == 2

    def test_run_parallel_jobs(self, capsys):
        """The --jobs path produces the same report plus a telemetry footer."""
        assert main(["fig11", "--fast", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(["fig11", "--fast"]) == 0
        serial = capsys.readouterr().out
        strip = lambda text: [l for l in text.splitlines() if "completed in" not in l]
        assert strip(parallel) == strip(serial)
        assert "cache hits" in parallel and "jobs=2" in parallel


class TestConfig:
    def test_fast_mode_shrinks(self):
        cfg = ExperimentConfig(fast=True)
        assert len(cfg.effective_seeds()) <= 2
        assert cfg.effective_horizon() < ExperimentConfig().effective_horizon()

    def test_with_helper(self):
        cfg = ExperimentConfig().with_(fast=True)
        assert cfg.fast


def test_cli_markdown_export(tmp_path, capsys):
    rc = main(["tab2", "--fast", "--markdown", str(tmp_path)])
    assert rc == 0
    md = (tmp_path / "tab2.md").read_text()
    assert md.startswith("## tab2:")
    assert "| verdict |" in md
