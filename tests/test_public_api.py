"""Contract tests for the public API surface.

A downstream user imports from ``repro`` (and subpackage roots); these
tests pin that surface: every exported name resolves, carries a docstring,
and the headline one-liner from the README keeps working.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.cloud",
    "repro.traces",
    "repro.vm",
    "repro.workload",
    "repro.simulator",
    "repro.analysis",
    "repro.pool",
    "repro.fleet",
    "repro.experiments",
]


def test_root_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ exports missing name {name}"


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_subpackage_all_resolves(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__, f"{modname} lacks a module docstring"
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{modname}.__all__ exports missing name {name}"


def test_public_classes_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) and not obj.__doc__:
            undocumented.append(name)
    assert not undocumented, f"classes without docstrings: {undocumented}"


def test_public_functions_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isfunction(obj) and not obj.__doc__:
            undocumented.append(name)
    assert not undocumented, f"functions without docstrings: {undocumented}"


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_readme_quickstart_snippet():
    """The exact flow the README's quickstart shows."""
    from repro import (
        MarketKey, Mechanism, ProactiveBidding, SimulationConfig,
        SingleMarketStrategy, run_simulation,
    )
    from repro.units import days

    key = MarketKey("us-east-1a", "small")
    result = run_simulation(SimulationConfig(
        strategy=lambda: SingleMarketStrategy(key),
        bidding=ProactiveBidding(k=4.0),
        mechanism=Mechanism.CKPT_LR_LIVE,
        horizon_s=days(7),
        regions=("us-east-1a",), sizes=("small",),
        seed=42,
    ))
    assert 5 < result.normalized_cost_percent < 60
    assert result.unavailability_percent < 0.1


def test_experiment_ids_stable():
    """Experiment ids are a public CLI contract."""
    from repro.experiments import EXPERIMENTS

    must_exist = {"fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                  "fig12", "tab1", "tab2", "tab3", "tab4", "sec62"}
    assert must_exist.issubset(EXPERIMENTS)


def test_error_hierarchy():
    """Every library error is catchable as ReproError."""
    from repro import errors

    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError) or exc is errors.ReproError
