"""Unit tests for the iperf/dd simulators and the capacity model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.vm.nested import NestedOverheadModel
from repro.workload.capacity import CapacityModel, savings_with_overhead
from repro.workload.diskbench import DiskBenchSimulator
from repro.workload.iperf import IperfSimulator


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestIperf:
    def test_means_near_table4(self, rng):
        sim = IperfSimulator(rng)
        nat = sim.mean_of(nested=False, runs=50)
        nst = sim.mean_of(nested=True, runs=50)
        assert nat.tx_mbps == pytest.approx(304.0, rel=0.03)
        assert nat.rx_mbps == pytest.approx(316.0, rel=0.03)
        assert nst.rx_mbps == pytest.approx(314.0, rel=0.03)

    def test_nested_within_two_percent(self, rng):
        sim = IperfSimulator(rng, noise_cv=0.0)
        nat = sim.run(nested=False)
        nst = sim.run(nested=True)
        assert nst.tx_mbps >= 0.98 * nat.tx_mbps
        assert nst.rx_mbps >= 0.98 * nat.rx_mbps

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            IperfSimulator(rng, noise_cv=-0.1)
        with pytest.raises(WorkloadError):
            IperfSimulator(rng).run(nested=False, duration_s=0.0)
        with pytest.raises(WorkloadError):
            IperfSimulator(rng).mean_of(nested=False, runs=0)


class TestDiskBench:
    def test_means_near_table4(self, rng):
        sim = DiskBenchSimulator(rng)
        nat = sim.mean_of(nested=False, runs=50)
        nst = sim.mean_of(nested=True, runs=50)
        assert nat.read_mbps == pytest.approx(304.6, rel=0.03)
        assert nst.read_mbps == pytest.approx(297.6, rel=0.03)
        assert nst.write_mbps == pytest.approx(274.2, rel=0.03)

    def test_nested_two_percent_slower(self, rng):
        sim = DiskBenchSimulator(rng, noise_cv=0.0)
        nat = sim.run(nested=False)
        nst = sim.run(nested=True)
        assert nst.read_mbps == pytest.approx(0.98 * nat.read_mbps)

    def test_transfer_time_helpers(self, rng):
        r = DiskBenchSimulator(rng, noise_cv=0.0).run(nested=False, data_gib=2.0)
        assert r.read_seconds == pytest.approx(2 * 8 * 1024**3 / 1e6 / r.read_mbps)
        assert r.write_seconds > r.read_seconds  # writes slower

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            DiskBenchSimulator(rng).run(nested=False, data_gib=0.0)


class TestCapacity:
    def test_io_bound_keeps_savings(self):
        assert CapacityModel(cpu_fraction=0.0).capacity_factor() == pytest.approx(
            1.0 / 0.98, rel=0.01
        )

    def test_cpu_bound_inflates(self):
        m = CapacityModel(
            overheads=NestedOverheadModel(cpu_overhead_idle=1.05, cpu_overhead_peak=1.5),
            cpu_fraction=1.0,
            utilization=1.0,
        )
        assert m.capacity_factor() == pytest.approx(1.5)

    def test_mixed_fraction_interpolates(self):
        full = CapacityModel(cpu_fraction=1.0).capacity_factor()
        none = CapacityModel(cpu_fraction=0.0).capacity_factor()
        half = CapacityModel(cpu_fraction=0.5).capacity_factor()
        assert min(full, none) < half < max(full, none)

    def test_savings_arithmetic(self):
        assert savings_with_overhead(25.0, 2.0) == pytest.approx(50.0)
        assert savings_with_overhead(17.0, 1.0) == pytest.approx(83.0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            CapacityModel(cpu_fraction=1.5)
        with pytest.raises(WorkloadError):
            savings_with_overhead(-1.0, 2.0)
        with pytest.raises(WorkloadError):
            savings_with_overhead(25.0, 0.5)
