"""Unit tests for exact multi-class MVA."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.multiclass import (
    CustomerClass,
    MultiClassNetwork,
    multiclass_mva,
    tpcw_two_class_network,
)
from repro.workload.queueing import ClosedNetwork, Station, mva


def single(name, n, z, demands):
    return MultiClassNetwork(
        station_names=tuple(f"s{i}" for i in range(len(demands))),
        classes=(CustomerClass(name, n, z, tuple(demands)),),
    )


class TestReducesToSingleClass:
    @pytest.mark.parametrize("n", [1, 5, 30])
    def test_matches_single_class_mva(self, n):
        demands = [0.05, 0.02, 0.01]
        mc = multiclass_mva(single("only", n, 7.0, demands))
        sc = mva(
            ClosedNetwork(
                stations=tuple(Station(f"s{i}", d) for i, d in enumerate(demands)),
                think_time_s=7.0,
            ),
            n,
        )
        assert mc.throughput_per_s[0] == pytest.approx(sc.throughput_per_s, rel=1e-9)
        assert mc.response_time_s[0] == pytest.approx(sc.response_time_s, rel=1e-9)

    def test_machine_repairman(self):
        mc = multiclass_mva(single("c", 2, 0.0, [1.0]))
        assert mc.response_time_s[0] == pytest.approx(2.0)
        assert mc.throughput_per_s[0] == pytest.approx(1.0)


class TestTwoClasses:
    def test_identical_classes_split_evenly(self):
        net = MultiClassNetwork(
            station_names=("cpu",),
            classes=(
                CustomerClass("a", 10, 5.0, (0.1,)),
                CustomerClass("b", 10, 5.0, (0.1,)),
            ),
        )
        sol = multiclass_mva(net)
        assert sol.throughput_per_s[0] == pytest.approx(sol.throughput_per_s[1])
        assert sol.response_time_s[0] == pytest.approx(sol.response_time_s[1])

    def test_identical_classes_match_merged_single_class(self):
        two = multiclass_mva(
            MultiClassNetwork(
                station_names=("cpu",),
                classes=(
                    CustomerClass("a", 8, 5.0, (0.1,)),
                    CustomerClass("b", 8, 5.0, (0.1,)),
                ),
            )
        )
        one = multiclass_mva(single("ab", 16, 5.0, [0.1]))
        assert two.response_time_s[0] == pytest.approx(one.response_time_s[0], rel=1e-9)
        total_x = two.throughput_per_s[0] + two.throughput_per_s[1]
        assert total_x == pytest.approx(one.throughput_per_s[0], rel=1e-9)

    def test_heavier_class_waits_longer(self):
        net = MultiClassNetwork(
            station_names=("cpu",),
            classes=(
                CustomerClass("light", 10, 5.0, (0.02,)),
                CustomerClass("heavy", 10, 5.0, (0.10,)),
            ),
        )
        sol = multiclass_mva(net)
        assert sol.response_time_s[1] > sol.response_time_s[0]

    def test_littles_law_per_class(self):
        net = MultiClassNetwork(
            station_names=("cpu", "disk"),
            classes=(
                CustomerClass("a", 12, 4.0, (0.05, 0.01)),
                CustomerClass("b", 6, 8.0, (0.02, 0.06)),
            ),
        )
        sol = multiclass_mva(net)
        for c, cls in enumerate(net.classes):
            n_c = sol.throughput_per_s[c] * (sol.response_time_s[c] + cls.think_time_s)
            assert n_c == pytest.approx(cls.population, rel=1e-9)

    def test_total_queue_consistency(self):
        net = MultiClassNetwork(
            station_names=("cpu",),
            classes=(
                CustomerClass("a", 5, 2.0, (0.1,)),
                CustomerClass("b", 5, 2.0, (0.3,)),
            ),
        )
        sol = multiclass_mva(net)
        q = sum(
            sol.throughput_per_s[c] * sol.response_time_s[c] for c in range(2)
        )
        assert sol.station_queues[0] == pytest.approx(q, rel=1e-9)

    def test_zero_population_class_ignored(self):
        net = MultiClassNetwork(
            station_names=("cpu",),
            classes=(
                CustomerClass("a", 10, 5.0, (0.1,)),
                CustomerClass("ghost", 0, 5.0, (9.9,)),
            ),
        )
        sol = multiclass_mva(net)
        one = multiclass_mva(single("a", 10, 5.0, [0.1]))
        assert sol.throughput_per_s[0] == pytest.approx(one.throughput_per_s[0])
        assert sol.throughput_per_s[1] == 0.0


class TestTpcwTwoClass:
    def test_ordering_class_slower(self):
        sol = multiclass_mva(tpcw_two_class_network(120, fetch_images=False))
        browse_ms = sol.class_response_ms(0)
        order_ms = sol.class_response_ms(1)
        assert order_ms > browse_ms

    def test_nested_multiplier_slows_cpu_bound_classes(self):
        base = multiclass_mva(tpcw_two_class_network(120, fetch_images=False))
        nested = multiclass_mva(
            tpcw_two_class_network(120, fetch_images=False, nested_cpu_mult=1.25)
        )
        assert nested.class_response_ms(1) > base.class_response_ms(1)

    def test_browse_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            tpcw_two_class_network(100, browse_fraction=1.5)
        with pytest.raises(WorkloadError):
            tpcw_two_class_network(1)


class TestValidation:
    def test_demand_arity_checked(self):
        with pytest.raises(WorkloadError):
            MultiClassNetwork(
                station_names=("cpu", "disk"),
                classes=(CustomerClass("a", 1, 0.0, (0.1,)),),
            )

    def test_negative_inputs(self):
        with pytest.raises(WorkloadError):
            CustomerClass("a", -1, 0.0, (0.1,))
        with pytest.raises(WorkloadError):
            CustomerClass("a", 1, -1.0, (0.1,))
        with pytest.raises(WorkloadError):
            CustomerClass("a", 1, 0.0, (-0.1,))

    def test_empty_network(self):
        with pytest.raises(WorkloadError):
            MultiClassNetwork(station_names=(), classes=())
