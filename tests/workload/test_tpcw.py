"""Unit tests for the TPC-W model (Figure 12)."""

import pytest

from repro.errors import WorkloadError
from repro.workload.tpcw import TpcwConfig, TpcwModel


class TestConfig:
    def test_net_demand_switches_with_images(self):
        c = TpcwConfig(fetch_images=True)
        assert c.net_demand_s == c.net_demand_images_s
        c2 = TpcwConfig(fetch_images=False)
        assert c2.net_demand_s == c2.net_demand_no_images_s

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TpcwConfig(cpu_demand_s=-0.1)
        with pytest.raises(WorkloadError):
            TpcwConfig(think_s=-1.0)


class TestImagesConfig:
    """Fig 12(a): I/O-bound, nested == native."""

    def test_network_is_bottleneck(self):
        m = TpcwModel(TpcwConfig(fetch_images=True))
        assert m.solve(400, nested=False).bottleneck == "net"

    def test_nested_matches_native_under_load(self):
        m = TpcwModel(TpcwConfig(fetch_images=True))
        assert m.degradation_percent(400) < 5.0

    def test_native_response_near_paper_at_400(self):
        m = TpcwModel(TpcwConfig(fetch_images=True))
        r = m.solve(400, nested=False).response_time_ms
        assert 14000 < r < 26000  # paper ~20 s


class TestNoImagesConfig:
    """Fig 12(b): CPU-bound, nested up to ~50 % worse."""

    def test_cpu_is_bottleneck(self):
        m = TpcwModel(TpcwConfig(fetch_images=False))
        assert m.solve(400, nested=False).bottleneck == "cpu"

    def test_nested_degrades_under_load(self):
        m = TpcwModel(TpcwConfig(fetch_images=False))
        assert 20.0 < m.degradation_percent(400) < 120.0

    def test_native_response_near_paper_at_400(self):
        m = TpcwModel(TpcwConfig(fetch_images=False))
        r = m.solve(400, nested=False).response_time_ms
        assert 4000 < r < 9000  # paper ~6 s

    def test_degradation_grows_with_load(self):
        m = TpcwModel(TpcwConfig(fetch_images=False))
        assert m.degradation_percent(400) > m.degradation_percent(100)

    def test_nested_never_faster(self):
        m = TpcwModel(TpcwConfig(fetch_images=False))
        for n in (100, 200, 400):
            nat = m.solve(n, nested=False).response_time_ms
            nst = m.solve(n, nested=True).response_time_ms
            assert nst >= nat


class TestCurves:
    def test_curve_monotone_in_ebs(self):
        m = TpcwModel(TpcwConfig(fetch_images=True))
        pts = m.response_curve([100, 200, 300, 400], nested=False)
        times = [p.response_time_ms for p in pts]
        assert times == sorted(times)

    def test_curve_population_labels(self):
        m = TpcwModel(TpcwConfig())
        pts = m.response_curve([150, 250], nested=True)
        assert [p.emulated_browsers for p in pts] == [150, 250]

    def test_cpu_utilization_bounded(self):
        m = TpcwModel(TpcwConfig(fetch_images=False))
        for p in m.response_curve([100, 400], nested=True):
            assert 0.0 <= p.cpu_utilization <= 1.0

    def test_fixed_point_converges(self):
        """Repeated solves agree (the overhead fixed point is stable)."""
        m = TpcwModel(TpcwConfig(fetch_images=False))
        a = m.solve(300, nested=True).response_time_ms
        b = m.solve(300, nested=True).response_time_ms
        assert a == pytest.approx(b)
