"""Unit tests for exact MVA."""

import pytest

from repro.errors import WorkloadError
from repro.workload.queueing import ClosedNetwork, Station, mva, mva_sweep


def net(demands, think=7.0, delays=None):
    stations = tuple(
        Station(f"s{i}", d, delay=bool(delays and delays[i]))
        for i, d in enumerate(demands)
    )
    return ClosedNetwork(stations=stations, think_time_s=think)


class TestMvaExactness:
    def test_single_customer_no_queueing(self):
        n = net([0.1, 0.2])
        sol = mva(n, 1)
        assert sol.response_time_s == pytest.approx(0.3)
        assert sol.throughput_per_s == pytest.approx(1.0 / 7.3)

    def test_machine_repairman_two_customers(self):
        """Hand-computed MVA for N=2, one station D=1, Z=0."""
        n = net([1.0], think=0.0)
        s1 = mva(n, 1)
        assert s1.throughput_per_s == pytest.approx(1.0)
        s2 = mva(n, 2)
        # R(2) = D*(1+Q(1)) = 1*(1+1) = 2; X = 2/2 = 1
        assert s2.response_time_s == pytest.approx(2.0)
        assert s2.throughput_per_s == pytest.approx(1.0)

    def test_throughput_saturates_at_bottleneck(self):
        n = net([0.05, 0.02])
        sol = mva(n, 2000)
        assert sol.throughput_per_s == pytest.approx(1.0 / 0.05, rel=0.01)

    def test_asymptotic_response_time(self):
        """R(N) -> N*D_max - Z for large N."""
        n = net([0.05, 0.02], think=7.0)
        sol = mva(n, 1000)
        assert sol.response_time_s == pytest.approx(1000 * 0.05 - 7.0, rel=0.02)

    def test_delay_station_never_queues(self):
        n = ClosedNetwork(
            stations=(Station("cpu", 0.05), Station("dns", 0.5, delay=True)),
            think_time_s=0.0,
        )
        sol = mva(n, 100)
        # the delay station contributes exactly its demand
        assert sol.station_residence_s[1] == pytest.approx(0.5)

    def test_multiserver_scaling(self):
        fast = ClosedNetwork(stations=(Station("cpu", 0.1, servers=2),), think_time_s=1.0)
        slow = ClosedNetwork(stations=(Station("cpu", 0.1, servers=1),), think_time_s=1.0)
        assert mva(fast, 50).throughput_per_s > mva(slow, 50).throughput_per_s


class TestMvaProperties:
    def test_throughput_monotone_in_population(self):
        n = net([0.05, 0.02])
        xs = [s.throughput_per_s for s in mva_sweep(n, range(1, 100))]
        assert all(b >= a - 1e-12 for a, b in zip(xs, xs[1:]))

    def test_response_monotone_in_population(self):
        n = net([0.05, 0.02])
        rs = [s.response_time_s for s in mva_sweep(n, range(1, 100))]
        assert all(b >= a - 1e-12 for a, b in zip(rs, rs[1:]))

    def test_littles_law(self):
        n = net([0.05, 0.02], think=7.0)
        for sol in mva_sweep(n, [1, 10, 50, 200]):
            q_total = sum(sol.station_queues)
            assert q_total == pytest.approx(
                sol.throughput_per_s * sol.response_time_s, rel=1e-9
            )

    def test_sweep_matches_individual(self):
        n = net([0.05, 0.02])
        sweep = mva_sweep(n, [5, 17])
        assert sweep[0].throughput_per_s == pytest.approx(mva(n, 5).throughput_per_s)
        assert sweep[1].throughput_per_s == pytest.approx(mva(n, 17).throughput_per_s)

    def test_bottleneck_identification(self):
        n = net([0.05, 0.20])
        assert mva(n, 200).bottleneck_index == 1
        assert n.bottleneck_demand_s() == 0.20

    def test_saturation_population(self):
        n = net([0.05], think=7.0)
        assert n.saturation_population() == pytest.approx((0.05 + 7.0) / 0.05)


class TestValidation:
    def test_empty_network_rejected(self):
        with pytest.raises(WorkloadError):
            ClosedNetwork(stations=(), think_time_s=1.0)

    def test_negative_think_rejected(self):
        with pytest.raises(WorkloadError):
            net([0.1], think=-1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(WorkloadError):
            Station("x", -0.1)

    def test_zero_population_rejected(self):
        with pytest.raises(WorkloadError):
            mva(net([0.1]), 0)
