"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import Engine
from repro.simulator.process import Interrupt, Process, Timeout, WaitEvent


def test_timeout_advances_clock():
    eng = Engine()
    seen = []

    def proc():
        yield Timeout(5.0)
        seen.append(eng.now)
        yield Timeout(2.5)
        seen.append(eng.now)

    Process(eng, proc())
    eng.run()
    assert seen == [5.0, 7.5]


def test_process_result_captured():
    eng = Engine()

    def proc():
        yield Timeout(1.0)
        return 42

    p = Process(eng, proc())
    eng.run()
    assert not p.alive
    assert p.result == 42


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_wait_event_delivers_value():
    eng = Engine()
    got = []
    sig = WaitEvent(eng)

    def waiter():
        value = yield sig
        got.append((eng.now, value))

    def firer():
        yield Timeout(3.0)
        sig.succeed("payload")

    Process(eng, waiter())
    Process(eng, firer())
    eng.run()
    assert got == [(3.0, "payload")]


def test_wait_event_latched_before_wait():
    eng = Engine()
    sig = WaitEvent(eng)
    sig.succeed("early")
    got = []

    def waiter():
        v = yield sig
        got.append(v)

    Process(eng, waiter())
    eng.run()
    assert got == ["early"]


def test_wait_event_double_trigger_raises():
    eng = Engine()
    sig = WaitEvent(eng)
    sig.succeed()
    with pytest.raises(SimulationError):
        sig.succeed()


def test_multiple_waiters_all_wake():
    eng = Engine()
    sig = WaitEvent(eng)
    woken = []

    def waiter(i):
        yield sig
        woken.append(i)

    for i in range(3):
        Process(eng, waiter(i), label=f"w{i}")

    def firer():
        yield Timeout(1.0)
        sig.succeed()

    Process(eng, firer())
    eng.run()
    assert sorted(woken) == [0, 1, 2]


def test_interrupt_raises_inside_generator():
    eng = Engine()
    events = []

    def proc():
        try:
            yield Timeout(100.0)
            events.append("finished")
        except Interrupt as exc:
            events.append(("interrupted", exc.cause, eng.now))

    p = Process(eng, proc())
    eng.schedule(5.0, lambda e, ev: p.interrupt("revocation"))
    eng.run()
    assert events == [("interrupted", "revocation", 5.0)]
    assert eng.now == 5.0  # the 100s timer was cancelled


def test_interrupt_dead_process_is_noop():
    eng = Engine()

    def proc():
        yield Timeout(1.0)

    p = Process(eng, proc())
    eng.run()
    assert not p.alive
    p.interrupt()  # must not raise
    eng.run()


def test_unhandled_interrupt_terminates_process():
    eng = Engine()

    def proc():
        yield Timeout(100.0)

    p = Process(eng, proc())
    eng.schedule(1.0, lambda e, ev: p.interrupt())
    eng.run()
    assert not p.alive


def test_completion_event_triggers():
    eng = Engine()

    def child():
        yield Timeout(2.0)
        return "done"

    child_p = Process(eng, child())
    got = []

    def parent():
        v = yield child_p.completion
        got.append((eng.now, v))

    Process(eng, parent())
    eng.run()
    assert got == [(2.0, "done")]


def test_yielding_garbage_raises():
    eng = Engine()

    def proc():
        yield "not-a-command"

    Process(eng, proc())
    with pytest.raises(SimulationError):
        eng.run()


def test_immediate_return_process():
    eng = Engine()

    def proc():
        return "instant"
        yield  # pragma: no cover

    p = Process(eng, proc())
    eng.run()
    assert p.result == "instant"
