"""Unit tests for named RNG streams."""

import numpy as np

from repro.simulator.rng import RngStreams, spawn_rng


def test_same_seed_same_stream():
    a = spawn_rng(1, "x").standard_normal(8)
    b = spawn_rng(1, "x").standard_normal(8)
    assert np.allclose(a, b)


def test_different_names_independent():
    a = spawn_rng(1, "x").standard_normal(8)
    b = spawn_rng(1, "y").standard_normal(8)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = spawn_rng(1, "x").standard_normal(8)
    b = spawn_rng(2, "x").standard_normal(8)
    assert not np.allclose(a, b)


def test_registry_caches_generators():
    streams = RngStreams(5)
    g1 = streams.get("a/b")
    g2 = streams.get("a/b")
    assert g1 is g2


def test_registry_names_sorted():
    streams = RngStreams(5)
    streams.get("b")
    streams.get("a")
    assert list(streams.names()) == ["a", "b"]


def test_adding_stream_does_not_perturb_others():
    """The independence-under-refactoring property."""
    s1 = RngStreams(9)
    first = s1.get("traces").standard_normal(4)

    s2 = RngStreams(9)
    s2.get("some/new/component").standard_normal(100)  # extra stream, extra draws
    second = s2.get("traces").standard_normal(4)
    assert np.allclose(first, second)


def test_child_namespacing():
    streams = RngStreams(3)
    direct = streams.get("run1/x").standard_normal(4)

    streams2 = RngStreams(3)
    child = streams2.child("run1")
    namespaced = child.get("x").standard_normal(4)
    assert np.allclose(direct, namespaced)


def test_stream_key_stable_across_processes():
    """Keys must not depend on PYTHONHASHSEED (sha-based, not hash())."""
    from repro.simulator.rng import _stable_stream_key

    assert _stable_stream_key("traces/us-east-1a/small") == _stable_stream_key(
        "traces/us-east-1a/small"
    )
    assert _stable_stream_key("a") != _stable_stream_key("b")
