"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.simulator.engine import Engine
from repro.simulator.events import EventKind


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_clock_custom_start():
    assert Engine(start_time=5.0).now == 5.0


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(3.0, lambda e, ev: fired.append(3))
    eng.schedule(1.0, lambda e, ev: fired.append(1))
    eng.schedule(2.0, lambda e, ev: fired.append(2))
    eng.run()
    assert fired == [1, 2, 3]


def test_equal_time_events_fire_fifo():
    eng = Engine()
    fired = []
    for i in range(5):
        eng.schedule(1.0, lambda e, ev, i=i: fired.append(i))
    eng.run()
    assert fired == [0, 1, 2, 3, 4]


def test_priority_breaks_ties():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda e, ev: fired.append("late"), priority=1)
    eng.schedule(1.0, lambda e, ev: fired.append("early"), priority=-1)
    eng.run()
    assert fired == ["early", "late"]


def test_clock_advances_to_event_time():
    eng = Engine()
    seen = []
    eng.schedule(7.5, lambda e, ev: seen.append(e.now))
    eng.run()
    assert seen == [7.5]
    assert eng.now == 7.5


def test_scheduling_in_past_raises():
    eng = Engine()
    eng.schedule(5.0, lambda e, ev: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule(1.0, lambda e, ev: None)


def test_schedule_after_negative_delay_raises():
    with pytest.raises(SimulationError):
        Engine().schedule_after(-1.0, lambda e, ev: None)


def test_run_until_stops_before_later_events():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda e, ev: fired.append(1))
    eng.schedule(10.0, lambda e, ev: fired.append(10))
    n = eng.run(until=5.0)
    assert n == 1 and fired == [1]
    assert eng.now == 5.0  # clock advanced exactly to the bound
    eng.run(until=20.0)
    assert fired == [1, 10]


def test_run_until_composes():
    eng = Engine()
    eng.run(until=10.0)
    eng.run(until=20.0)
    assert eng.now == 20.0


def test_cancellation_prevents_firing():
    eng = Engine()
    fired = []
    h = eng.schedule(1.0, lambda e, ev: fired.append("x"))
    h.cancel()
    eng.run()
    assert fired == []
    assert eng.pending_count() == 0


def test_cancel_is_idempotent():
    eng = Engine()
    h = eng.schedule(1.0, lambda e, ev: None)
    h.cancel()
    h.cancel()
    assert h.cancelled


def test_events_scheduled_during_run_fire():
    eng = Engine()
    fired = []

    def first(e, ev):
        fired.append("first")
        e.schedule_after(1.0, lambda e2, ev2: fired.append("second"))

    eng.schedule(1.0, first)
    eng.run()
    assert fired == ["first", "second"]
    assert eng.now == 2.0


def test_zero_delay_event_fires_at_same_time():
    eng = Engine()
    times = []

    def cb(e, ev):
        times.append(e.now)
        if len(times) < 3:
            e.schedule_after(0.0, cb)

    eng.schedule(5.0, cb)
    eng.run()
    assert times == [5.0, 5.0, 5.0]


def test_max_events_bound():
    eng = Engine()
    for i in range(10):
        eng.schedule(float(i), lambda e, ev: None)
    assert eng.run(max_events=4) == 4
    assert eng.pending_count() == 6


def test_stop_inside_callback():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda e, ev: (fired.append(1), e.stop()))
    eng.schedule(2.0, lambda e, ev: fired.append(2))
    eng.run()
    assert fired == [1]


def test_reentrant_run_raises():
    eng = Engine()

    def nested(e, ev):
        with pytest.raises(SimulationError):
            e.run()

    eng.schedule(1.0, nested)
    eng.run()


def test_trace_log_records_fired_events():
    eng = Engine(trace=True)
    eng.schedule(1.0, lambda e, ev: None, kind=EventKind.TIMER, label="t1")
    eng.schedule(2.0, lambda e, ev: None, label="t2")
    eng.run()
    assert [ev.label for ev in eng.fired_log] == ["t1", "t2"]
    assert eng.fired_log[0].kind is EventKind.TIMER


def test_peek_skips_cancelled():
    eng = Engine()
    h = eng.schedule(1.0, lambda e, ev: None)
    eng.schedule(2.0, lambda e, ev: None)
    h.cancel()
    assert eng.peek() == 2.0


def test_fired_count():
    eng = Engine()
    for i in range(5):
        eng.schedule(float(i + 1), lambda e, ev: None)
    eng.run()
    assert eng.fired_count == 5
