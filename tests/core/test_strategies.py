"""Unit tests for hosting strategies."""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.strategies import (
    MultiMarketStrategy,
    MultiRegionStrategy,
    OnDemandOnlyStrategy,
    PureSpotStrategy,
    SingleMarketStrategy,
    StabilityAwareStrategy,
)
from repro.errors import ConfigurationError
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import days

KEYS = {
    ("us-east-1a", "small"): (0.010, 0.06),
    ("us-east-1a", "medium"): (0.030, 0.12),
    ("us-east-1a", "large"): (0.200, 0.24),
    ("us-east-1a", "xlarge"): (0.100, 0.48),
    ("eu-west-1a", "small"): (0.030, 0.0672),
}


@pytest.fixture()
def provider():
    horizon = days(2)
    traces = {}
    od = {}
    for (region, size), (price, odp) in KEYS.items():
        k = MarketKey(region, size)
        traces[k] = PriceTrace.constant(price, 0.0, horizon)
        od[k] = odp
    cat = TraceCatalog(traces, od, horizon)
    return CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)


class TestSingleMarket:
    def test_one_candidate(self, provider):
        s = SingleMarketStrategy(MarketKey("us-east-1a", "small"))
        assert s.candidate_markets(provider) == [MarketKey("us-east-1a", "small")]

    def test_one_server(self, provider):
        s = SingleMarketStrategy(MarketKey("us-east-1a", "large"))
        assert s.servers_needed(MarketKey("us-east-1a", "large")) == 1

    def test_baseline_is_own_on_demand(self, provider):
        s = SingleMarketStrategy(MarketKey("us-east-1a", "small"))
        assert s.baseline_rate(provider) == pytest.approx(0.06)

    def test_migration_memory_scales_with_size(self, provider):
        small = SingleMarketStrategy(MarketKey("us-east-1a", "small"))
        xl = SingleMarketStrategy(MarketKey("us-east-1a", "xlarge"))
        assert (
            xl.migration_memory(MarketKey("us-east-1a", "xlarge")).size_gib
            > small.migration_memory(MarketKey("us-east-1a", "small")).size_gib
        )


class TestMultiMarket:
    def test_candidates_are_region_markets(self, provider):
        s = MultiMarketStrategy("us-east-1a", service_units=8)
        assert len(s.candidate_markets(provider)) == 4

    def test_packing_arithmetic(self, provider):
        s = MultiMarketStrategy("us-east-1a", service_units=8)
        assert s.servers_needed(MarketKey("us-east-1a", "small")) == 8
        assert s.servers_needed(MarketKey("us-east-1a", "medium")) == 4
        assert s.servers_needed(MarketKey("us-east-1a", "large")) == 2
        assert s.servers_needed(MarketKey("us-east-1a", "xlarge")) == 1

    def test_partial_packing_rounds_up(self, provider):
        s = MultiMarketStrategy("us-east-1a", service_units=5)
        assert s.servers_needed(MarketKey("us-east-1a", "medium")) == 3
        assert s.servers_needed(MarketKey("us-east-1a", "xlarge")) == 1

    def test_best_spot_target_minimizes_fleet_rate(self, provider):
        s = MultiMarketStrategy("us-east-1a", service_units=8)
        best = s.best_spot_target(provider, ProactiveBidding(), t=0.0)
        # fleet rates: small 8*0.01=0.08, medium 4*0.03=0.12,
        # large 2*0.2=0.4, xlarge 1*0.1=0.1 -> small wins
        assert best.key.size == "small"
        assert best.rate == pytest.approx(0.08)

    def test_exclude_skips_current_market(self, provider):
        s = MultiMarketStrategy("us-east-1a", service_units=8)
        best = s.best_spot_target(
            provider, ProactiveBidding(), 0.0, exclude=MarketKey("us-east-1a", "small")
        )
        assert best.key.size == "xlarge"  # next cheapest per fleet

    def test_ungrantable_market_skipped(self, provider):
        s = MultiMarketStrategy("us-east-1a", service_units=8)
        # reactive bids od; large spot (0.20) < od large (0.24): still fine.
        # Use a bid below the small price to knock small out:
        class TinyBid:
            name = "tiny"
            def bid_price(self, market, t=0.0):
                return 0.005 if "small" in market.name else market.on_demand_price
            def wants_planned_migration(self, p, od):
                return False
            def wants_reverse_migration(self, p, od):
                return True
        best = s.best_spot_target(provider, TinyBid(), 0.0)
        assert best.key.size != "small"

    def test_best_on_demand_target(self, provider):
        s = MultiMarketStrategy("us-east-1a", service_units=8)
        best = s.best_on_demand_target(provider)
        # on-demand fleet rates all equal (0.48) under the doubling ladder;
        # ties resolve to the first candidate examined
        assert best.rate == pytest.approx(0.48)

    def test_requires_positive_units(self):
        with pytest.raises(ConfigurationError):
            MultiMarketStrategy("us-east-1a", service_units=0)


class TestMultiRegion:
    def test_candidates_span_regions(self, provider):
        s = MultiRegionStrategy(("us-east-1a", "eu-west-1a"), service_units=1)
        keys = s.candidate_markets(provider)
        assert MarketKey("eu-west-1a", "small") in keys
        assert MarketKey("us-east-1a", "small") in keys

    def test_baseline_is_lowest_od_in_pair(self, provider):
        s = MultiRegionStrategy(("us-east-1a", "eu-west-1a"), service_units=1)
        # us-east small od (0.06) < eu small od (0.0672)
        assert s.baseline_rate(provider) == pytest.approx(0.06)

    def test_empty_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiRegionStrategy(())


class TestBaselines:
    def test_pure_spot_never_offers_on_demand(self, provider):
        s = PureSpotStrategy(MarketKey("us-east-1a", "small"))
        assert s.best_on_demand_target(provider) is None
        assert not s.allows_on_demand
        assert s.baseline_rate(provider) == pytest.approx(0.06)

    def test_on_demand_only_never_offers_spot(self, provider):
        s = OnDemandOnlyStrategy(MarketKey("us-east-1a", "small"))
        assert s.best_spot_target(provider, ReactiveBidding(), 0.0) is None
        assert s.best_on_demand_target(provider) is not None


class TestStabilityAware:
    def test_penalizes_volatile_market(self):
        horizon = days(5)
        k_volatile = MarketKey("us-east-1a", "small")
        k_stable = MarketKey("eu-west-1a", "small")
        volatile = PriceTrace(
            np.array([0.0, days(1), days(2), days(3)]),
            np.array([0.010, 0.300, 0.012, 0.010]),
            horizon,
        )
        stable = PriceTrace.constant(0.014, 0.0, horizon)
        cat = TraceCatalog(
            {k_volatile: volatile, k_stable: stable},
            {k_volatile: 0.06, k_stable: 0.0672},
            horizon,
        )
        prov = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
        greedy = MultiRegionStrategy(("us-east-1a", "eu-west-1a"), service_units=1)
        aware = StabilityAwareStrategy(
            ("us-east-1a", "eu-west-1a"), service_units=1, stability_weight=2.0
        )
        t = days(4)  # volatile market momentarily cheap
        g = greedy.best_spot_target(prov, ProactiveBidding(), t)
        a = aware.best_spot_target(prov, ProactiveBidding(), t)
        assert g.key == k_volatile  # greedy chases the cheap price
        assert a.key == k_stable  # stability-aware declines

    def test_zero_weight_matches_greedy(self, provider):
        aware = StabilityAwareStrategy(("us-east-1a",), service_units=8, stability_weight=0.0)
        greedy = MultiRegionStrategy(("us-east-1a",), service_units=8)
        a = aware.best_spot_target(provider, ProactiveBidding(), days(1))
        g = greedy.best_spot_target(provider, ProactiveBidding(), days(1))
        assert a.key == g.key

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StabilityAwareStrategy(("us-east-1a",), stability_weight=-1.0)
        with pytest.raises(ConfigurationError):
            StabilityAwareStrategy(("us-east-1a",), lookback_s=0.0)
