"""Unit tests for cost and availability accounting."""

import pytest

from repro.cloud.billing import BillingRecord
from repro.core.accounting import AvailabilityTracker, CostLedger
from repro.errors import SchedulingError
from repro.units import hours


class TestCostLedger:
    def mk(self):
        ledger = CostLedger()
        ledger.add_records(
            [
                BillingRecord(0.0, 0.02, 0.02, "spot"),
                BillingRecord(hours(1), 0.02, 0.0, "spot", note="revoked-free"),
                BillingRecord(hours(2), 0.06, 0.06, "on_demand"),
            ],
            market="us-east-1a/small",
        )
        return ledger

    def test_total(self):
        assert self.mk().total == pytest.approx(0.08)

    def test_total_by_kind(self):
        l = self.mk()
        assert l.total_by_kind("spot") == pytest.approx(0.02)
        assert l.total_by_kind("on_demand") == pytest.approx(0.06)

    def test_normalized_cost(self):
        l = self.mk()
        # baseline: 0.06/hr for 4 hours = 0.24; spend 0.08 -> 33.3 %
        assert l.normalized_cost_percent(0.06, hours(4)) == pytest.approx(100 * 0.08 / 0.24)

    def test_on_demand_only_is_100_percent(self):
        l = CostLedger()
        l.add_records([BillingRecord(hours(i), 0.06, 0.06, "on_demand") for i in range(10)],
                      market="x")
        assert l.normalized_cost_percent(0.06, hours(10)) == pytest.approx(100.0)

    def test_invalid_normalization(self):
        with pytest.raises(SchedulingError):
            CostLedger().normalized_cost_percent(0.0, hours(1))
        with pytest.raises(SchedulingError):
            CostLedger().normalized_cost_percent(0.06, 0.0)

    def test_hours_billed(self):
        assert self.mk().hours_billed() == 3

    def test_empty_ledger(self):
        assert CostLedger().total == 0.0


class TestAvailabilityTracker:
    def test_basic_unavailability(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        t.record_downtime(100.0, 200.0, "forced-migration")
        t.close_window(hours(10))
        assert t.total_downtime() == 100.0
        assert t.unavailability_percent() == pytest.approx(100 * 100.0 / hours(10))

    def test_four_nines_check(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        t.record_downtime(0.0, 3.0, "x")
        t.close_window(hours(10))  # 3s of 36000 = 0.0083 %
        assert t.meets_availability(4)
        assert not t.meets_availability(5)

    def test_overlapping_downtime_rejected(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        t.record_downtime(100.0, 200.0, "a")
        with pytest.raises(SchedulingError):
            t.record_downtime(150.0, 250.0, "b")
        # adjacent is fine
        t.record_downtime(200.0, 250.0, "c")

    def test_downtime_clamped_to_window(self):
        t = AvailabilityTracker()
        t.open_window(100.0)
        t.close_window(1000.0)
        t.record_downtime(0.0, 150.0, "early")
        assert t.total_downtime() == 50.0

    def test_downtime_before_open_raises(self):
        t = AvailabilityTracker()
        with pytest.raises(SchedulingError):
            t.record_downtime(0.0, 10.0, "x")

    def test_double_open_raises(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        with pytest.raises(SchedulingError):
            t.open_window(5.0)

    def test_close_before_open_raises(self):
        t = AvailabilityTracker()
        with pytest.raises(SchedulingError):
            t.close_window(10.0)
        t.open_window(100.0)
        with pytest.raises(SchedulingError):
            t.close_window(50.0)

    def test_window_duration_requires_close(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        with pytest.raises(SchedulingError):
            _ = t.window_duration

    def test_downtime_by_cause(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        t.record_downtime(10.0, 20.0, "forced-migration")
        t.record_downtime(30.0, 35.0, "planned-migration")
        t.record_downtime(40.0, 60.0, "forced-migration")
        t.close_window(hours(1))
        assert t.total_downtime("forced-migration") == 30.0
        assert t.total_downtime("planned-migration") == 5.0

    def test_degraded_windows_may_overlap(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        t.record_degraded(10.0, 100.0, "lazy")
        t.record_degraded(50.0, 150.0, "lazy")
        t.close_window(hours(1))
        assert t.total_degraded() == 190.0

    def test_empty_interval_ignored(self):
        t = AvailabilityTracker()
        t.open_window(0.0)
        t.record_downtime(10.0, 10.0, "zero")
        t.close_window(100.0)
        assert t.total_downtime() == 0.0
        assert t.downtime == []

    def test_zero_duration_window(self):
        t = AvailabilityTracker()
        t.open_window(5.0)
        t.close_window(5.0)
        assert t.unavailability_percent() == 0.0
