"""The strategy registry: registration rules, metadata, enumeration.

Includes the regression tests for the duplicate-registration bug: a
second ``register_strategy_kind`` for an existing kind used to silently
clobber the first builder; it now raises
:class:`~repro.errors.ConfigurationError` unless ``override=True``.
"""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.registry import (
    ArgSpec,
    StrategyInfo,
    register_strategy,
    register_strategy_kind,
    strategy_builder,
    strategy_info,
    strategy_infos,
    strategy_kinds,
    synthesis_cohort,
    unregister_strategy,
)
from repro.core.strategies import SingleMarketStrategy
from repro.errors import ConfigurationError
from repro.runtime.spec import StrategySpec
from repro.traces.catalog import MarketKey

KEY = MarketKey("us-east-1a", "small")


def _cleanup(kind):
    if kind in strategy_kinds():
        unregister_strategy(kind)


# --------------------------------------------------------------- enumeration
def test_builtin_families_are_registered():
    kinds = strategy_kinds()
    for kind in (
        "single", "multi-market", "multi-region", "pure-spot", "on-demand",
        "stability", "index-tracking", "no-ft", "portfolio-bid",
    ):
        assert kind in kinds


def test_kinds_are_sorted_and_infos_align():
    kinds = strategy_kinds()
    assert kinds == sorted(kinds)
    assert [i.kind for i in strategy_infos()] == kinds


def test_every_builtin_has_citation_and_example():
    for info in strategy_infos():
        assert info.citation, f"{info.kind}: missing citation"
        assert info.display_name, f"{info.kind}: missing display name"
        assert info.arg_schema, f"{info.kind}: missing arg schema"
        spec = registry.example_spec(info.kind)
        built = spec.build()
        assert isinstance(built, info.builder)


def test_synthesis_cohort_is_weighted_and_sorted():
    cohort = synthesis_cohort()
    assert cohort, "at least one family must be drawable"
    assert all(i.synthesis_weight > 0 and i.synthesize is not None for i in cohort)
    assert [i.kind for i in cohort] == sorted(i.kind for i in cohort)


# -------------------------------------------------- duplicate registration
def test_duplicate_registration_raises():
    register_strategy_kind("dup-test", SingleMarketStrategy)
    try:
        with pytest.raises(ConfigurationError, match="already registered"):
            register_strategy_kind("dup-test", StrategySpec)  # different builder
        # The original registration survives the failed attempt.
        assert strategy_builder("dup-test") is SingleMarketStrategy
    finally:
        _cleanup("dup-test")


def test_same_builder_reregistration_is_idempotent():
    register_strategy_kind("idem-test", SingleMarketStrategy)
    try:
        register_strategy_kind("idem-test", SingleMarketStrategy)  # no raise
        assert strategy_builder("idem-test") is SingleMarketStrategy
    finally:
        _cleanup("idem-test")


def test_override_replaces_deliberately():
    register_strategy_kind("override-test", SingleMarketStrategy)
    try:

        def other(key):  # pragma: no cover - builder identity is the point
            return SingleMarketStrategy(key)

        register_strategy_kind("override-test", other, override=True)
        assert strategy_builder("override-test") is other
    finally:
        _cleanup("override-test")


def test_decorator_duplicate_raises_too():
    @register_strategy("deco-dup-test", example_args=(KEY,))
    class First(SingleMarketStrategy):
        pass

    try:
        with pytest.raises(ConfigurationError, match="override=True"):

            @register_strategy("deco-dup-test", example_args=(KEY,))
            class Second(SingleMarketStrategy):
                pass

    finally:
        _cleanup("deco-dup-test")


# ------------------------------------------------------------------ metadata
def test_unknown_metadata_key_raises():
    try:
        with pytest.raises(ConfigurationError, match="unknown registration metadata"):
            register_strategy_kind(
                "meta-test", SingleMarketStrategy, not_a_field=1
            )
    finally:
        _cleanup("meta-test")


def test_weight_without_synthesize_raises():
    with pytest.raises(ConfigurationError, match="synthesize"):
        StrategyInfo(
            kind="w-test",
            builder=SingleMarketStrategy,
            display_name="w",
            citation="",
            vectorizable=False,
            synthesis_weight=0.5,
        )


def test_arg_spec_rejects_unknown_kind():
    with pytest.raises(ConfigurationError, match="unknown schema kind"):
        ArgSpec("x", "tuple-of-frogs")


def test_unregister_unknown_kind_raises():
    with pytest.raises(ConfigurationError, match="not registered"):
        unregister_strategy("never-registered")


def test_unknown_kind_lookup_lists_known():
    with pytest.raises(ConfigurationError, match="registered:"):
        strategy_info("no-such-kind")


def test_vectorizable_defaults_from_class_flags():
    @register_strategy("vec-derive-test", example_args=(KEY,))
    class Derived(SingleMarketStrategy):
        _vector_decisions = True

    try:
        assert strategy_info("vec-derive-test").vectorizable is True
    finally:
        _cleanup("vec-derive-test")


def test_discover_plugins_is_idempotent():
    # Builtins were loaded at import; a repeat discovery adds nothing.
    assert registry.discover_plugins() == []
    assert registry.discover_plugins(force=True) == []


def test_example_spec_round_trips_through_build():
    for kind in strategy_kinds():
        spec = registry.example_spec(kind)
        assert spec.kind == kind
        spec.build()  # must not raise
