"""Tests for the multi-tenant spot pool and spare sizing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.pool import PoolConfig, SpotPool, concurrent_events, spare_requirement
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours

REGIONS = ("us-east-1a", "us-east-1b")


class TestConcurrency:
    def test_no_events(self):
        assert concurrent_events([], 60.0) == 0

    def test_isolated_events(self):
        assert concurrent_events([0.0, 1000.0, 2000.0], 60.0) == 1

    def test_overlapping_events(self):
        assert concurrent_events([0.0, 10.0, 20.0], 60.0) == 3

    def test_half_open_window(self):
        # second event starts exactly when the first ends: no overlap
        assert concurrent_events([0.0, 60.0], 60.0) == 1

    def test_mixed(self):
        assert concurrent_events([0.0, 30.0, 200.0, 210.0, 1000.0], 60.0) == 2

    def test_invalid_window(self):
        with pytest.raises(SchedulingError):
            concurrent_events([0.0], 0.0)

    def test_spare_requirement_merges_services(self):
        assert spare_requirement([[0.0], [10.0], [2000.0]], window_s=60.0) == 2


class TestPoolConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoolConfig(n_services=0)
        with pytest.raises(ConfigurationError):
            PoolConfig(placement="random")

    def test_missing_size_rejected(self):
        key = MarketKey("us-east-1a", "small")
        cat = TraceCatalog(
            {key: PriceTrace.constant(0.02, 0.0, days(1))}, {key: 0.06}, days(1)
        )
        with pytest.raises(ConfigurationError):
            SpotPool(PoolConfig(size="xlarge", catalog=cat, horizon_s=days(1)))


class TestPoolRuns:
    @pytest.fixture(scope="class")
    def shared_world(self):
        """A deterministic 2-market world: market A spikes hard at 5h."""
        horizon = days(2)
        a = MarketKey("us-east-1a", "small")
        b = MarketKey("us-east-1b", "small")
        ta = PriceTrace(
            np.array([0.0, hours(5), hours(7)]), np.array([0.02, 1.00, 0.02]), horizon
        )
        tb = PriceTrace.constant(0.03, 0.0, horizon)
        return TraceCatalog({a: ta, b: tb}, {a: 0.06, b: 0.06}, horizon)

    def test_concentrated_couples_failures(self, shared_world):
        pool = SpotPool(PoolConfig(
            n_services=6, placement="concentrated", catalog=shared_world,
            horizon_s=days(2), regions=REGIONS,
        ))
        r = pool.run()
        # everyone started in cheap market A and was revoked together
        assert r.total_forced == 6
        assert r.spare_servers_needed == 6
        assert r.spare_fraction == 1.0

    def test_diverse_decouples_failures(self, shared_world):
        pool = SpotPool(PoolConfig(
            n_services=6, placement="diverse", catalog=shared_world,
            horizon_s=days(2), regions=REGIONS,
        ))
        r = pool.run()
        # only the 3 tenants in market A are forced
        assert r.total_forced == 3
        assert r.spare_servers_needed == 3
        assert r.spare_fraction == 0.5

    def test_diverse_costs_more_than_concentrated(self, shared_world):
        conc = SpotPool(PoolConfig(
            n_services=6, placement="concentrated", catalog=shared_world,
            horizon_s=days(2), regions=REGIONS,
        )).run()
        div = SpotPool(PoolConfig(
            n_services=6, placement="diverse", catalog=shared_world,
            horizon_s=days(2), regions=REGIONS,
        )).run()
        # diverse pays the pricier market B for half the fleet... but
        # concentrated pays on-demand after the joint revocation; the clean
        # invariant is that both stay far below the all-on-demand baseline
        assert div.normalized_cost_percent < 80
        assert conc.normalized_cost_percent < 80

    def test_pool_result_accessors(self, shared_world):
        r = SpotPool(PoolConfig(
            n_services=4, placement="diverse", catalog=shared_world,
            horizon_s=days(2), regions=REGIONS,
        )).run()
        assert r.n_services == 4
        assert r.total_cost == pytest.approx(sum(s.total_cost for s in r.services))
        assert 0 <= r.mean_unavailability_percent <= r.worst_unavailability_percent
        assert r.duration_hours == pytest.approx(48.0)

    def test_generated_world_pool(self):
        """End-to-end on generated traces: invariants only."""
        r = SpotPool(PoolConfig(
            n_services=8, placement="diverse", seed=5, horizon_s=days(7),
            regions=REGIONS,
        )).run()
        assert r.normalized_cost_percent < 100
        assert r.mean_unavailability_percent < 0.1
        assert 0 <= r.spare_servers_needed <= 8

    def test_determinism(self, shared_world):
        cfg = PoolConfig(n_services=4, placement="diverse", catalog=shared_world,
                         horizon_s=days(2), regions=REGIONS)
        a = SpotPool(cfg).run()
        b = SpotPool(cfg).run()
        assert a.total_cost == b.total_cost
        assert a.spare_servers_needed == b.spare_servers_needed
