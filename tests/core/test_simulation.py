"""Unit tests for the simulation facade and result aggregation."""

import pytest

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.results import SimulationResult, aggregate
from repro.core.simulation import SimulationConfig, run_many, run_simulation
from repro.core.strategies import OnDemandOnlyStrategy, SingleMarketStrategy
from repro.errors import ConfigurationError, SchedulingError
from repro.traces.catalog import MarketKey, build_catalog
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def cfg(**kw):
    base = dict(
        strategy=lambda: SingleMarketStrategy(KEY),
        regions=("us-east-1a",),
        sizes=("small",),
        horizon_s=days(10),
        seed=3,
    )
    base.update(kw)
    return SimulationConfig(**base)


def test_run_simulation_basic_sanity():
    r = run_simulation(cfg())
    assert 5.0 < r.normalized_cost_percent < 60.0
    assert 0.0 <= r.unavailability_percent < 0.5
    assert r.total_cost > 0
    assert r.duration_hours > 200
    assert r.baseline_cost == pytest.approx(0.06 * r.duration_hours)
    assert r.spot_cost + r.on_demand_cost == pytest.approx(r.total_cost)


def test_same_seed_reproducible():
    a = run_simulation(cfg())
    b = run_simulation(cfg())
    assert a.total_cost == b.total_cost
    assert a.downtime_s == b.downtime_s
    assert a.forced_migrations == b.forced_migrations


def test_different_seed_differs():
    a = run_simulation(cfg(seed=3))
    b = run_simulation(cfg(seed=4))
    assert a.total_cost != b.total_cost


def test_on_demand_baseline_exactly_100():
    r = run_simulation(cfg(strategy=lambda: OnDemandOnlyStrategy(KEY)))
    # partial-hour rounding adds at most one hour over the window
    assert r.normalized_cost_percent == pytest.approx(100.0, abs=1.0)
    assert r.unavailability_percent == 0.0


def test_prebuilt_catalog_reused():
    cat = build_catalog(seed=3, horizon=days(10), regions=("us-east-1a",), sizes=("small",))
    a = run_simulation(cfg(catalog=cat))
    b = run_simulation(cfg())  # same seed builds the same catalog
    assert a.total_cost == pytest.approx(b.total_cost)


def test_run_many_distinct_seeds():
    rs = run_many(cfg(), seeds=[1, 2, 3])
    assert len(rs) == 3
    assert len({r.total_cost for r in rs}) == 3
    assert [r.seed for r in rs] == [1, 2, 3]


def test_run_many_requires_seeds():
    with pytest.raises(ConfigurationError):
        run_many(cfg(), seeds=[])


def test_horizon_validation():
    with pytest.raises(ConfigurationError):
        cfg(horizon_s=100.0)


def test_label_override():
    r = run_simulation(cfg(label="my-label"))
    assert r.label == "my-label"


def test_with_helper():
    c = cfg()
    c2 = c.with_(seed=99)
    assert c2.seed == 99 and c.seed == 3


def test_result_derived_properties():
    r = run_simulation(cfg())
    assert r.forced_per_hour == pytest.approx(r.forced_migrations / r.duration_hours)
    assert r.availability_percent == pytest.approx(100.0 - r.unavailability_percent)
    assert r.savings_percent == pytest.approx(100.0 - r.normalized_cost_percent)
    assert sum(r.downtime_by_cause.values()) == pytest.approx(r.downtime_s)


class TestAggregate:
    def test_aggregate_means(self):
        rs = run_many(cfg(label="x"), seeds=[1, 2, 3])
        a = aggregate(rs)
        assert a.n_runs == 3
        assert a.label == "x"
        assert a.normalized_cost_percent == pytest.approx(
            sum(r.normalized_cost_percent for r in rs) / 3
        )
        assert a.unavailability_std >= 0

    def test_aggregate_empty_raises(self):
        with pytest.raises(SchedulingError):
            aggregate([])

    def test_aggregate_mixed_labels_raises(self):
        rs = run_many(cfg(label="x"), seeds=[1]) + run_many(cfg(label="y"), seeds=[1])
        with pytest.raises(SchedulingError):
            aggregate(rs)
        # but an explicit label overrides
        a = aggregate(rs, label="combined")
        assert a.label == "combined"

    def test_row_shape(self):
        rs = run_many(cfg(label="x"), seeds=[1])
        assert len(aggregate(rs).row()) == 5


def test_proactive_beats_reactive_on_same_sample():
    """Policy comparison on the *same* trace sample (shared catalog)."""
    cat = build_catalog(seed=8, horizon=days(30), regions=("us-east-1a",), sizes=("small",))
    pro = run_simulation(cfg(catalog=cat, bidding=ProactiveBidding(), horizon_s=days(30)))
    rea = run_simulation(cfg(catalog=cat, bidding=ReactiveBidding(), horizon_s=days(30)))
    assert pro.unavailability_percent < rea.unavailability_percent
    assert pro.forced_migrations < rea.forced_migrations
