"""Failure-injection and edge-case tests for the cloud scheduler.

These push the scheduler into corners the statistical runs rarely visit:
degenerate grace windows, pathologically slow allocations, markets that
open hostile, horizons shorter than a boot, and back-to-back revocations.
"""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.scheduler import CloudScheduler
from repro.core.strategies import PureSpotStrategy, SingleMarketStrategy
from repro.simulator.engine import Engine
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours
from repro.vm.mechanisms import Mechanism, MigrationModel, TYPICAL_PARAMS

SMALL = MarketKey("us-east-1a", "small")


def build(trace, horizon, *, bidding=None, strategy=None, grace=120.0, cv=0.0,
          startup_override=None, mechanism=Mechanism.CKPT_LR):
    cat = TraceCatalog({SMALL: trace}, {SMALL: 0.06}, horizon)
    provider = CloudProvider(cat, rng=np.random.default_rng(0), grace_s=grace,
                             startup_cv=cv)
    if startup_override is not None:
        # monkeypatch-free injection: force every allocation to take this long
        provider.startup.sample = lambda mode, zone: startup_override  # type: ignore
    sch = CloudScheduler(
        engine=Engine(), provider=provider,
        bidding=bidding or ReactiveBidding(),
        strategy=strategy or SingleMarketStrategy(SMALL),
        migration_model=MigrationModel(mechanism, TYPICAL_PARAMS),
        rng=np.random.default_rng(1), horizon=horizon,
    )
    return sch, provider


def steps(segments, horizon):
    return PriceTrace(
        np.array([s[0] for s in segments]), np.array([s[1] for s in segments]), horizon
    )


class TestHostileStart:
    def test_market_opens_above_on_demand(self):
        """Price starts above od: the scheduler must start on-demand."""
        trace = steps([(0.0, 0.09), (hours(6), 0.02)], days(1))
        sch, _ = build(trace, days(1), bidding=ProactiveBidding())
        sch.run()
        assert sch.ledger.total_by_kind("on_demand") > 0
        # and reverses onto spot once the price drops
        assert sch.migration_count("reverse") == 1

    def test_market_opens_above_bid_pure_spot_waits(self):
        trace = steps([(0.0, 0.30), (hours(6), 0.02)], days(1))
        sch, _ = build(trace, days(1), strategy=PureSpotStrategy(SMALL))
        sch.run()
        # dark until 6h plus boot; availability window covers the wait
        assert sch.availability.total_downtime() == 0.0  # window opened at first up
        assert sch.availability.window_start > hours(6)

    def test_market_never_grantable_pure_spot(self):
        trace = PriceTrace.constant(0.30, 0.0, days(1))
        sch, _ = build(trace, days(1), strategy=PureSpotStrategy(SMALL))
        sch.run()
        assert sch.availability.unavailability_percent() == pytest.approx(100.0)
        assert sch.ledger.total == 0.0


class TestDegenerateTimings:
    def test_zero_grace_window(self):
        """No warning at all: the forced path must still work (downtime
        grows by the un-overlapped startup wait)."""
        trace = steps([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)], days(1))
        sch, _ = build(trace, days(1), grace=0.0)
        sch.run()
        assert sch.migration_count("forced") == 1
        # on-demand startup (~95 s) can no longer hide inside the grace
        assert sch.availability.total_downtime() > 95.0

    def test_glacial_startup(self):
        """10-minute allocations: forced downtime includes the excess wait."""
        trace = steps([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)], days(1))
        sch, _ = build(trace, days(1), startup_override=600.0)
        sch.run()
        assert sch.migration_count("forced") == 1
        down = sch.availability.total_downtime()
        assert down > 600.0 - 120.0  # startup minus the grace overlap

    def test_horizon_shorter_than_boot(self):
        """The run ends before the first server is even ready."""
        horizon = 150.0
        trace = PriceTrace.constant(0.02, 0.0, horizon)
        sch, provider = build(trace, horizon, startup_override=300.0)
        sch.run()
        assert sch.availability.window_end == 150.0
        assert provider.active_leases() == []

    def test_one_hour_horizon(self):
        trace = PriceTrace.constant(0.02, 0.0, hours(1.5))
        sch, _ = build(trace, hours(1.5))
        sch.run()
        assert sch.availability.window_duration > 0


class TestRapidFire:
    def test_back_to_back_revocations(self):
        """Three revocations in quick succession: each gets its own forced
        migration, downtimes never overlap."""
        segs = [(0.0, 0.02)]
        for i in range(3):
            t0 = hours(3 + 3 * i)
            segs += [(t0, 0.10), (t0 + hours(0.5), 0.02)]
        trace = steps(segs, days(1))
        sch, _ = build(trace, days(1))
        sch.run()
        assert sch.migration_count("forced") == 3
        assert sch.migration_count("reverse") == 3
        # the availability tracker enforces no-overlap internally; reaching
        # here without SchedulingError is the assertion

    def test_revocation_immediately_after_reverse(self):
        """The market calms just long enough to lure the scheduler back,
        then spikes again the moment it lands."""
        trace = steps(
            [(0.0, 0.02), (hours(4), 0.10),
             (30600.0, 0.02),   # calm dip covering the reverse check
             (33000.0, 0.10),   # hot again shortly after landing
             (hours(12), 0.02)],
            days(1),
        )
        sch, _ = build(trace, days(1))
        sch.run()
        # either the reverse aborted (target-revocation race) or it landed
        # and was promptly revoked again; both are legal, neither may lose
        # the service
        assert sch.availability.window_end == days(1)
        assert sch.migration_count("forced") >= 1

    def test_spike_spanning_horizon_end(self):
        trace = steps([(0.0, 0.02), (hours(23.5), 0.10)], days(1))
        sch, _ = build(trace, days(1))
        sch.run()
        for iv in sch.availability.downtime:
            assert iv.end <= days(1)


class TestBillingEdges:
    def test_only_full_hours_billed_plus_partials(self):
        trace = PriceTrace.constant(0.02, 0.0, days(1))
        sch, _ = build(trace, days(1))
        sch.run()
        # ~24 hours minus boot time, one lease, all spot
        assert 22 <= sch.ledger.hours_billed() <= 24

    def test_costs_are_never_negative(self):
        trace = steps([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)], days(1))
        sch, _ = build(trace, days(1))
        sch.run()
        assert all(e.amount >= 0 for e in sch.ledger.entries)

    def test_free_revoked_hours_recorded_with_rate(self):
        trace = steps([(0.0, 0.02), (hours(5.5), 0.10), (hours(7), 0.02)], days(1))
        sch, _ = build(trace, days(1))
        sch.run()
        free = [e for e in sch.ledger.entries if e.note == "revoked-free"]
        assert free and all(e.rate > 0 and e.amount == 0 for e in free)
