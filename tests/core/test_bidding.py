"""Unit tests for the bidding policies."""

import numpy as np
import pytest

from repro.cloud.spot_market import SpotMarket
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.errors import ConfigurationError
from repro.traces.trace import PriceTrace


def market(od=0.06):
    t = PriceTrace(np.array([0.0]), np.array([0.02]), 1000.0)
    return SpotMarket(name="m", trace=t, on_demand_price=od)


class TestReactive:
    def test_bids_on_demand_price(self):
        assert ReactiveBidding().bid_price(market()) == 0.06

    def test_never_wants_planned(self):
        r = ReactiveBidding()
        assert not r.wants_planned_migration(0.05, 0.06)
        assert not r.wants_planned_migration(0.07, 0.06)  # revocation handles it

    def test_reverse_when_at_or_below_od(self):
        r = ReactiveBidding()
        assert r.wants_reverse_migration(0.06, 0.06)
        assert r.wants_reverse_migration(0.01, 0.06)
        assert not r.wants_reverse_migration(0.07, 0.06)

    def test_not_proactive(self):
        assert not ReactiveBidding().is_proactive


class TestProactive:
    def test_bids_k_times_od(self):
        assert ProactiveBidding(k=4.0).bid_price(market()) == pytest.approx(0.24)

    def test_bid_capped_at_provider_limit(self):
        assert ProactiveBidding(k=10.0).bid_price(market()) == pytest.approx(0.24)

    def test_wants_planned_above_od(self):
        p = ProactiveBidding()
        assert p.wants_planned_migration(0.07, 0.06)
        assert not p.wants_planned_migration(0.06, 0.06)
        assert not p.wants_planned_migration(0.05, 0.06)

    def test_reverse_hysteresis(self):
        p = ProactiveBidding(reverse_threshold_frac=0.9)
        assert p.wants_reverse_migration(0.054, 0.06)
        assert not p.wants_reverse_migration(0.058, 0.06)  # within hysteresis band

    def test_is_proactive(self):
        assert ProactiveBidding().is_proactive

    def test_k_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            ProactiveBidding(k=1.0)
        with pytest.raises(ConfigurationError):
            ProactiveBidding(k=0.5)

    def test_reverse_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            ProactiveBidding(reverse_threshold_frac=0.0)
        with pytest.raises(ConfigurationError):
            ProactiveBidding(reverse_threshold_frac=1.2)

    def test_default_k_is_ec2_cap(self):
        assert ProactiveBidding().k == 4.0
