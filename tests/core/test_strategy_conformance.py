"""Every registered hosting strategy must pass the conformance suite.

The parametrization enumerates :func:`repro.core.registry.strategy_kinds`
at collection time, so a family registered through the
``repro.strategies`` entry point — or by any test that leaves a kind
registered — is audited automatically; there is no list to update here.
"""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.policies import IndexTrackingStrategy
from repro.core.strategies import HostingStrategy, SingleMarketStrategy
from repro.errors import ConfigurationError, InvariantViolation
from repro.runtime.spec import StrategySpec
from repro.testkit.conformance import GRID_REGIONS, conformance_check
from repro.traces.catalog import MarketKey

pytestmark = pytest.mark.conformance


@pytest.mark.parametrize("kind", registry.strategy_kinds())
def test_registered_strategy_conforms(kind):
    conformance_check(kind).raise_on_failure()


def test_accepts_a_registered_class():
    report = conformance_check(SingleMarketStrategy)
    assert report.passed


def test_accepts_a_concrete_spec():
    spec = StrategySpec.index_tracking(GRID_REGIONS, band=0.25)
    report = conformance_check(spec)
    assert report.passed


def test_unregistered_class_is_rejected():
    class Orphan(HostingStrategy):
        def candidate_markets(self, provider):  # pragma: no cover
            return []

    with pytest.raises(ConfigurationError, match="not a registered strategy"):
        conformance_check(Orphan)


def test_subclass_resolves_to_its_registered_parent():
    class Tweaked(IndexTrackingStrategy):
        pass

    info = registry.info_for_builder(Tweaked)
    assert info is not None and info.kind == "index-tracking"


def test_dishonest_vectorizable_metadata_fails():
    """A family whose registry flag contradicts its instances is caught."""

    @registry.register_strategy(
        "liar-test",
        vectorizable=True,  # the class itself says False
        example_args=(MarketKey("us-east-1a", "small"),),
    )
    class Liar(SingleMarketStrategy):
        _vector_decisions = False

    try:
        report = conformance_check("liar-test")
        assert not report.passed
        with pytest.raises(InvariantViolation):
            report.raise_on_failure()
    finally:
        registry.unregister_strategy("liar-test")
