"""Tests for the elastic spot fleet and demand curves."""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.core.elastic import DemandCurve, ElasticSpotFleet
from repro.errors import ConfigurationError
from repro.simulator.engine import Engine
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_DAY, days, hours

A = MarketKey("us-east-1a", "small")
B = MarketKey("us-east-1b", "small")


def build(traces, horizon, demand, lead=hours(2)):
    od = {k: 0.06 for k in traces}
    cat = TraceCatalog(traces, od, horizon)
    provider = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
    fleet = ElasticSpotFleet(
        Engine(), provider, demand, list(traces), horizon=horizon,
        provision_lead_s=lead,
    )
    return fleet, provider


class TestDemandCurve:
    def test_diurnal_bounds(self):
        d = DemandCurve.diurnal(base=4, peak=12)
        samples = [d.at(t) for t in np.linspace(0, 7 * SECONDS_PER_DAY, 2000)]
        assert min(samples) >= 0
        assert max(samples) <= 12
        assert max(samples) >= 11  # actually reaches the peak on weekdays

    def test_peak_hour_is_maximum(self):
        d = DemandCurve.diurnal(base=4, peak=12, peak_hour=20.0)
        assert d.at(hours(20)) == 12
        assert d.at(hours(8)) == 4

    def test_weekend_dip(self):
        d = DemandCurve.diurnal(base=4, peak=12, weekend_factor=0.5)
        weekday_peak = d.at(hours(20))
        saturday_peak = d.at(5 * SECONDS_PER_DAY + hours(20))
        assert saturday_peak < weekday_peak

    def test_mean_units_between_base_and_peak(self):
        d = DemandCurve.diurnal(base=4, peak=12)
        m = d.mean_units(days(14))
        assert 4 < m < 12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DemandCurve.diurnal(base=0, peak=12)
        with pytest.raises(ConfigurationError):
            DemandCurve.diurnal(base=8, peak=4)
        with pytest.raises(ConfigurationError):
            DemandCurve(lambda t: 1.0, peak=0)


class TestFleetBehaviour:
    def test_constant_demand_holds_constant_fleet(self):
        horizon = days(2)
        demand = DemandCurve(lambda t: 5.0, peak=5)
        fleet, provider = build(
            {A: PriceTrace.constant(0.02, 0.0, horizon)}, horizon, demand,
        )
        r = fleet.run()
        assert r.scale_ups == 5
        assert r.scale_downs == 0
        assert r.replacements == 0
        # 5 servers * 48h * $0.02, minus nothing much
        assert r.total_cost == pytest.approx(5 * 48 * 0.02, rel=0.05)
        assert r.shortfall_fraction < 0.01  # only the initial boot

    def test_diurnal_demand_scales_both_ways(self):
        horizon = days(3)
        fleet, _ = build(
            {A: PriceTrace.constant(0.02, 0.0, horizon)}, horizon,
            DemandCurve.diurnal(base=2, peak=6),
        )
        r = fleet.run()
        assert r.scale_ups > 6
        assert r.scale_downs > 0

    def test_cheaper_than_both_baselines(self):
        horizon = days(3)
        fleet, _ = build(
            {A: PriceTrace.constant(0.02, 0.0, horizon)}, horizon,
            DemandCurve.diurnal(base=2, peak=6),
        )
        r = fleet.run()
        assert r.vs_peak_percent < 50
        assert r.vs_elastic_od_percent < 60
        assert r.peak_on_demand_cost > r.elastic_on_demand_cost

    def test_revoked_units_replaced(self):
        horizon = days(2)
        spike = PriceTrace(
            np.array([0.0, hours(10), hours(12)]),
            np.array([0.02, 1.00, 0.02]), horizon,
        )
        fleet, provider = build(
            {A: spike, B: PriceTrace.constant(0.03, 0.0, horizon)}, horizon,
            DemandCurve(lambda t: 4.0, peak=4),
        )
        r = fleet.run()
        # all four units sat in the cheaper market A and were all revoked
        assert r.replacements == 4
        # replacements bought in market B kept the shortfall tiny
        assert r.shortfall_fraction < 0.02
        assert provider.active_leases() == []

    def test_no_spot_falls_back_to_on_demand(self):
        horizon = days(1)
        pricey = PriceTrace.constant(0.30, 0.0, horizon)  # above every bid
        fleet, _ = build({A: pricey}, horizon, DemandCurve(lambda t: 2.0, peak=2))
        r = fleet.run()
        assert r.total_cost == pytest.approx(2 * 24 * 0.06, rel=0.1)
        assert r.replacements == 0

    def test_predictive_lead_reduces_shortfall(self):
        horizon = days(3)
        trace = PriceTrace.constant(0.02, 0.0, horizon)
        demand = DemandCurve.diurnal(base=2, peak=8)
        reactive, _ = build({A: trace}, horizon, demand, lead=0.0)
        predictive, _ = build({A: trace}, horizon, demand, lead=hours(2))
        r0 = reactive.run()
        r1 = predictive.run()
        assert r1.shortfall_fraction < 0.5 * r0.shortfall_fraction

    def test_validation(self):
        horizon = days(1)
        trace = PriceTrace.constant(0.02, 0.0, horizon)
        cat = TraceCatalog({A: trace}, {A: 0.06}, horizon)
        provider = CloudProvider(cat, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            ElasticSpotFleet(Engine(), provider, DemandCurve.diurnal(), [],
                             horizon=horizon)
        with pytest.raises(ConfigurationError):
            ElasticSpotFleet(Engine(), provider, DemandCurve.diurnal(), [A],
                             horizon=horizon, provision_lead_s=-1.0)
