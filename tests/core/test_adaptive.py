"""Tests for the adaptive (history-driven) bidding policy."""

import numpy as np
import pytest

from repro.cloud.spot_market import SpotMarket
from repro.core.adaptive import AdaptiveBidding
from repro.core.simulation import SimulationConfig, run_simulation
from repro.core.strategies import SingleMarketStrategy
from repro.errors import ConfigurationError
from repro.traces.catalog import MarketKey, TraceCatalog, build_catalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours

OD = 0.06


def market(trace):
    return SpotMarket(name="us-east-1a/small", trace=trace, on_demand_price=OD)


def calm_trace(horizon=days(14)):
    return PriceTrace.constant(0.015, 0.0, horizon)


def spiky_trace(horizon=days(14)):
    """A 30-minute spike to 3.5x od every 12 hours: low bids get revoked
    twice a day, far beyond any sane monthly budget."""
    times, prices = [0.0], [0.015]
    t = hours(6)
    while t < horizon - hours(1):
        times += [t, t + hours(0.5)]
        prices += [3.5 * OD, 0.015]
        t += hours(12)
    return PriceTrace(np.array(times), np.array(prices), horizon)


class TestBidSelection:
    def test_calm_market_bids_near_on_demand(self):
        b = AdaptiveBidding(max_revocations_per_month=2.0)
        bid = b.bid_price(market(calm_trace()), t=days(10))
        assert bid == pytest.approx(1.05 * OD)

    def test_spiky_market_bids_above_observed_spikes(self):
        """With 3.5x-od spikes twice a day, every bid below the spikes blows
        the budget: the advisor picks the cheapest bid clearing them."""
        b = AdaptiveBidding(max_revocations_per_month=2.0)
        bid = b.bid_price(market(spiky_trace()), t=days(10))
        assert 3.5 * OD < bid <= 4 * OD

    def test_insufficient_history_falls_back_to_cap(self):
        b = AdaptiveBidding()
        bid = b.bid_price(market(calm_trace()), t=hours(2))
        assert bid == pytest.approx(4 * OD)

    def test_bid_never_exceeds_cap_or_undercuts_on_demand(self):
        b = AdaptiveBidding(max_revocations_per_month=50.0)
        for t in (days(2), days(7), days(12)):
            for tr in (calm_trace(), spiky_trace()):
                bid = b.bid_price(market(tr), t=t)
                assert OD < bid <= 4 * OD + 1e-12

    def test_backward_looking_only(self):
        """Future spikes must not influence the bid chosen now."""
        horizon = days(14)
        future_spikes = PriceTrace(
            np.array([0.0, days(10)]), np.array([0.015, 3.5 * OD]), horizon
        )
        b = AdaptiveBidding(max_revocations_per_month=2.0)
        bid = b.bid_price(market(future_spikes), t=days(8))
        assert bid == pytest.approx(1.05 * OD)  # the past looked calm

    def test_cache_per_time_bucket(self):
        b = AdaptiveBidding(refresh_s=hours(6))
        m = market(calm_trace())
        a = b.bid_price(m, t=days(10))
        a2 = b.bid_price(m, t=days(10) + 60.0)  # same bucket
        assert a == a2
        assert len(b._cache) == 1
        b.bid_price(m, t=days(10) + hours(7))  # next bucket
        assert len(b._cache) == 2

    def test_migration_decisions_match_proactive(self):
        b = AdaptiveBidding()
        assert b.wants_planned_migration(0.07, OD)
        assert not b.wants_planned_migration(0.05, OD)
        assert b.wants_reverse_migration(0.05, OD)
        assert not b.wants_reverse_migration(0.058, OD)
        assert b.is_proactive

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBidding(max_revocations_per_month=-1)
        with pytest.raises(ConfigurationError):
            AdaptiveBidding(lookback_s=0)
        with pytest.raises(ConfigurationError):
            AdaptiveBidding(grid_points=1)
        with pytest.raises(ConfigurationError):
            AdaptiveBidding(refresh_s=0)


class TestInScheduler:
    def test_full_simulation_runs(self):
        key = MarketKey("us-east-1a", "small")
        r = run_simulation(SimulationConfig(
            strategy=lambda: SingleMarketStrategy(key),
            bidding=AdaptiveBidding(max_revocations_per_month=2.0),
            seed=5, horizon_s=days(14),
            regions=("us-east-1a",), sizes=("small",),
            label="adaptive",
        ))
        assert r.normalized_cost_percent < 60
        assert r.unavailability_percent < 0.1

    def test_calm_world_low_bid_same_availability(self):
        """In a deterministic calm market the adaptive bidder bids near
        on-demand yet is never revoked — budget met with minimal exposure."""
        key = MarketKey("us-east-1a", "small")
        horizon = days(14)
        cat = TraceCatalog({key: calm_trace(horizon)}, {key: OD}, horizon)
        r = run_simulation(SimulationConfig(
            strategy=lambda: SingleMarketStrategy(key),
            bidding=AdaptiveBidding(max_revocations_per_month=2.0),
            catalog=cat, horizon_s=horizon,
            regions=("us-east-1a",), sizes=("small",), label="adaptive-calm",
        ))
        assert r.forced_migrations == 0
        assert r.unavailability_percent == 0.0
