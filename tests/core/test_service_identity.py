"""Tests that the service's volume and address follow it through migrations.

These exercise the end-to-end persistence story the paper depends on: disk
state (and checkpoint images) on networked volumes survive revocations, and
the service address re-binds transparently to each new server.
"""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.scheduler import CloudScheduler
from repro.core.strategies import (
    MultiRegionStrategy,
    PureSpotStrategy,
    SingleMarketStrategy,
)
from repro.simulator.engine import Engine
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours
from repro.vm.mechanisms import Mechanism, MigrationModel, TYPICAL_PARAMS

SMALL = MarketKey("us-east-1a", "small")
EU_SMALL = MarketKey("eu-west-1a", "small")
HORIZON = days(2)


def run(traces, od, strategy, bidding):
    cat = TraceCatalog(traces, od, HORIZON)
    provider = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
    sch = CloudScheduler(
        engine=Engine(), provider=provider, bidding=bidding, strategy=strategy,
        migration_model=MigrationModel(Mechanism.CKPT_LR_LIVE, TYPICAL_PARAMS),
        rng=np.random.default_rng(1), horizon=HORIZON,
    )
    sch.run()
    return sch, provider


def spike_trace():
    return PriceTrace(
        np.array([0.0, hours(5), hours(7)]), np.array([0.02, 0.10, 0.02]), HORIZON
    )


def test_service_provisioned_with_volume_and_address():
    sch, provider = run(
        {SMALL: PriceTrace.constant(0.02, 0.0, HORIZON)}, {SMALL: 0.06},
        SingleMarketStrategy(SMALL), ProactiveBidding(),
    )
    assert sch.service is not None
    vol = provider.volumes.get(sch.service.volume_id)
    # root fs written at provisioning time
    written_at, size = provider.volumes.read(sch.service.volume_id, "root")
    assert size == pytest.approx(2.0)
    # released at horizon
    assert not vol.attached
    assert not provider.vpc.get(sch.service.address).bound


def test_volume_and_address_survive_forced_migration():
    sch, provider = run(
        {SMALL: spike_trace()}, {SMALL: 0.06},
        SingleMarketStrategy(SMALL), ReactiveBidding(),
    )
    assert sch.migration_count("forced") == 1
    # a checkpoint image was written during the grace window (and later
    # refreshed by the reverse migration's pre-stage)
    written_at, size = provider.volumes.read(sch.service.volume_id, "checkpoint")
    assert written_at >= hours(5)
    assert size > 0


def test_same_volume_kept_within_region():
    sch, provider = run(
        {SMALL: spike_trace()}, {SMALL: 0.06},
        SingleMarketStrategy(SMALL), ProactiveBidding(),
    )
    # planned + reverse migrations happened, all intra-region: one volume
    assert sch.migration_count("planned") == 1
    assert sch.service.volume_id == "vol-000001"


def test_cross_region_migration_clones_volume_and_rebinds():
    traces = {
        SMALL: spike_trace(),  # us-east spikes above od at 5h
        EU_SMALL: PriceTrace.constant(0.03, 0.0, HORIZON),
    }
    od = {SMALL: 0.06, EU_SMALL: 0.0672}
    sch, provider = run(
        traces, od, MultiRegionStrategy(("us-east-1a", "eu-west-1a"), service_units=1),
        ProactiveBidding(),
    )
    moves = [m for m in sch.migrations if m.target == str(EU_SMALL)]
    assert moves, "the fleet should relocate to the calm EU market"
    # the volume in use is now a clone homed in eu-west
    vol = provider.volumes.get(sch.service.volume_id)
    assert vol.zone == "eu-west-1a"
    assert vol.volume_id != "vol-000001"
    # original volume still exists (data was copied, not destroyed)
    original = provider.volumes.get("vol-000001")
    assert original.contents  # root fs still recorded
    # cross-geo move adds the WAN re-bind delay to the recorded downtime
    assert moves[0].downtime_s >= 5.0


def test_pure_spot_outage_reattaches_same_volume():
    traces = {
        SMALL: PriceTrace(
            np.array([0.0, hours(5), hours(9)]), np.array([0.02, 0.10, 0.02]), HORIZON
        )
    }
    sch, provider = run(
        traces, {SMALL: 0.06}, PureSpotStrategy(SMALL), ReactiveBidding(),
    )
    assert sch.migration_count("outage") == 1
    # the same volume carried the checkpoint across the dark period
    _, size = provider.volumes.read(sch.service.volume_id, "checkpoint")
    assert size > 0
    assert sch.service.volume_id == "vol-000001"


def test_address_stable_across_entire_run():
    """The service address allocated at t=0 is the one bound at the end —
    clients never re-resolve."""
    sch, provider = run(
        {SMALL: spike_trace()}, {SMALL: 0.06},
        SingleMarketStrategy(SMALL), ReactiveBidding(),
    )
    assert sch.service.address.startswith("10.0.")
    ip = provider.vpc.get(sch.service.address)
    assert ip.geo == "us-east"
