"""Tests for the repro-simulate CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.calibration import calibration_for
from repro.traces.generator import generate_trace
from repro.traces.loader import save_aws_csv
from repro.units import days

FAST = ["--days", "7", "--seeds", "1", "2"]


def test_default_run(capsys):
    assert main(FAST) == 0
    out = capsys.readouterr().out
    assert "single / proactive" in out
    assert "four-nines target" in out
    assert "mean over 2 seeds" in out


def test_reactive_run(capsys):
    assert main(FAST + ["--bidding", "reactive", "--size", "large"]) == 0
    assert "reactive" in capsys.readouterr().out


def test_multi_market(capsys):
    assert main(FAST + ["--strategy", "multi-market", "--region", "us-east-1b"]) == 0
    assert "multi-market" in capsys.readouterr().out


def test_multi_region(capsys):
    rc = main(FAST + ["--strategy", "multi-region",
                      "--region", "us-east-1a", "eu-west-1a"])
    assert rc == 0


def test_stability_strategy(capsys):
    rc = main(FAST + ["--strategy", "stability",
                      "--region", "us-east-1b", "eu-west-1a",
                      "--stability-weight", "4.0"])
    assert rc == 0


def test_pure_spot_and_on_demand(capsys):
    assert main(FAST + ["--strategy", "pure-spot"]) == 0
    assert main(FAST + ["--strategy", "on-demand"]) == 0


def test_pessimistic_mechanism(capsys):
    assert main(FAST + ["--mechanism", "ckpt", "--pessimistic"]) == 0
    assert "(pessimistic)" in capsys.readouterr().out


def test_single_seed_no_aggregate_line(capsys):
    assert main(["--days", "7", "--seeds", "5"]) == 0
    assert "mean over" not in capsys.readouterr().out


def test_csv_replay(tmp_path, capsys):
    trace = generate_trace(calibration_for("us-east-1a", "small"), days(7), seed=3)
    path = tmp_path / "hist.csv"
    save_aws_csv(trace, path, instance_type="m1.small", availability_zone="us-east-1a")
    assert main(["--csv", str(path)]) == 0
    assert "single / proactive" in capsys.readouterr().out


def test_csv_rejected_for_multi_strategies(tmp_path, capsys):
    trace = generate_trace(calibration_for("us-east-1a", "small"), days(7), seed=3)
    path = tmp_path / "hist.csv"
    save_aws_csv(trace, path)
    rc = main(["--csv", str(path), "--strategy", "multi-market"])
    assert rc == 2


def test_parser_rejects_unknown_region():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--region", "mars-1a"])


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.strategy == "single"
    assert args.k == 4.0
    assert args.mechanism == "ckpt+lr+live"


def _segment_dir(tmp_path, seed=3):
    from repro.traces.ingest import ingest_archive

    trace = generate_trace(calibration_for("us-east-1a", "small"), days(7), seed=seed)
    path = tmp_path / "hist.csv"
    save_aws_csv(trace, path, instance_type="m1.small", availability_zone="us-east-1a")
    # Default horizon: last record + 1h, matching load_aws_csv's default,
    # so --segments and --csv replays see the exact same trace frame.
    ingest_archive(path, tmp_path / "seg")
    return tmp_path / "seg", path


def test_segment_replay(tmp_path, capsys):
    seg, _ = _segment_dir(tmp_path)
    assert main(["--segments", str(seg)]) == 0
    assert "single / proactive" in capsys.readouterr().out


def test_segment_replay_matches_csv_replay(tmp_path, capsys):
    """--segments and --csv print identical per-seed rows for the same
    archive: the mmap path changes nothing but the storage."""
    seg, csv_path = _segment_dir(tmp_path)
    assert main(["--csv", str(csv_path)]) == 0
    csv_out = capsys.readouterr().out
    assert main(["--segments", str(seg)]) == 0
    seg_out = capsys.readouterr().out
    assert csv_out == seg_out


def test_segment_replay_unknown_market(tmp_path, capsys):
    seg, _ = _segment_dir(tmp_path)
    with pytest.raises(Exception):  # TraceFormatError lists available markets
        main(["--segments", str(seg), "--size", "xlarge"])


def test_csv_and_segments_mutually_exclusive(tmp_path, capsys):
    seg, csv_path = _segment_dir(tmp_path)
    assert main(["--csv", str(csv_path), "--segments", str(seg)]) == 2


def test_segments_rejected_for_multi_strategies(tmp_path, capsys):
    seg, _ = _segment_dir(tmp_path)
    assert main(["--segments", str(seg), "--strategy", "multi-market"]) == 2


def test_segments_rejected_with_ledger(tmp_path, capsys):
    seg, _ = _segment_dir(tmp_path)
    rc = main(["--segments", str(seg), "--ledger", str(tmp_path / "ledger")])
    assert rc == 2


def test_calibrate_cli_fits_segments(tmp_path, capsys):
    from repro.traces.calibrate_cli import main as calibrate_main
    from repro.traces.refit import load_calibrations

    seg, _ = _segment_dir(tmp_path)
    out = tmp_path / "cals.json"
    assert calibrate_main(["--segments", str(seg), "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "fitted calibrations" in printed
    cals = load_calibrations(out)
    assert ("us-east-1a", "small") in cals


def test_calibrate_cli_fits_csv_directly(tmp_path, capsys):
    from repro.traces.calibrate_cli import main as calibrate_main

    _, csv_path = _segment_dir(tmp_path)
    assert calibrate_main(["--csv", str(csv_path)]) == 0
    assert "fitted calibrations" in capsys.readouterr().out


def test_calibrate_cli_requires_exactly_one_source(tmp_path, capsys):
    from repro.traces.calibrate_cli import main as calibrate_main

    seg, csv_path = _segment_dir(tmp_path)
    assert calibrate_main([]) == 2
    assert calibrate_main(["--segments", str(seg), "--csv", str(csv_path)]) == 2


def test_calibrate_cli_reports_refit_errors(tmp_path, capsys):
    from repro.traces.calibrate_cli import main as calibrate_main

    assert calibrate_main(["--segments", str(tmp_path)]) == 1
    assert "refit failed" in capsys.readouterr().err
