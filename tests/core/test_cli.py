"""Tests for the repro-simulate CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.calibration import calibration_for
from repro.traces.generator import generate_trace
from repro.traces.loader import save_aws_csv
from repro.units import days

FAST = ["--days", "7", "--seeds", "1", "2"]


def test_default_run(capsys):
    assert main(FAST) == 0
    out = capsys.readouterr().out
    assert "single / proactive" in out
    assert "four-nines target" in out
    assert "mean over 2 seeds" in out


def test_reactive_run(capsys):
    assert main(FAST + ["--bidding", "reactive", "--size", "large"]) == 0
    assert "reactive" in capsys.readouterr().out


def test_multi_market(capsys):
    assert main(FAST + ["--strategy", "multi-market", "--region", "us-east-1b"]) == 0
    assert "multi-market" in capsys.readouterr().out


def test_multi_region(capsys):
    rc = main(FAST + ["--strategy", "multi-region",
                      "--region", "us-east-1a", "eu-west-1a"])
    assert rc == 0


def test_stability_strategy(capsys):
    rc = main(FAST + ["--strategy", "stability",
                      "--region", "us-east-1b", "eu-west-1a",
                      "--stability-weight", "4.0"])
    assert rc == 0


def test_pure_spot_and_on_demand(capsys):
    assert main(FAST + ["--strategy", "pure-spot"]) == 0
    assert main(FAST + ["--strategy", "on-demand"]) == 0


def test_pessimistic_mechanism(capsys):
    assert main(FAST + ["--mechanism", "ckpt", "--pessimistic"]) == 0
    assert "(pessimistic)" in capsys.readouterr().out


def test_single_seed_no_aggregate_line(capsys):
    assert main(["--days", "7", "--seeds", "5"]) == 0
    assert "mean over" not in capsys.readouterr().out


def test_csv_replay(tmp_path, capsys):
    trace = generate_trace(calibration_for("us-east-1a", "small"), days(7), seed=3)
    path = tmp_path / "hist.csv"
    save_aws_csv(trace, path, instance_type="m1.small", availability_zone="us-east-1a")
    assert main(["--csv", str(path)]) == 0
    assert "single / proactive" in capsys.readouterr().out


def test_csv_rejected_for_multi_strategies(tmp_path, capsys):
    trace = generate_trace(calibration_for("us-east-1a", "small"), days(7), seed=3)
    path = tmp_path / "hist.csv"
    save_aws_csv(trace, path)
    rc = main(["--csv", str(path), "--strategy", "multi-market"])
    assert rc == 2


def test_parser_rejects_unknown_region():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--region", "mars-1a"])


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.strategy == "single"
    assert args.k == 4.0
    assert args.mechanism == "ckpt+lr+live"
