"""Behavioural tests of the cloud scheduler on hand-crafted traces.

Startup jitter is disabled (cv=0) so every scenario is deterministic:
on-demand servers become ready 94.85 s after request, spot servers after
281.47 s (the us-east Table 1 means).
"""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider, LeaseKind
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.scheduler import CloudScheduler
from repro.core.strategies import (
    MultiMarketStrategy,
    OnDemandOnlyStrategy,
    PureSpotStrategy,
    SingleMarketStrategy,
)
from repro.simulator.engine import Engine
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours
from repro.vm.mechanisms import Mechanism, MigrationModel, TYPICAL_PARAMS

SMALL = MarketKey("us-east-1a", "small")
MEDIUM = MarketKey("us-east-1a", "medium")
OD_SMALL = 0.06
HORIZON = days(2)


def catalog(traces: dict) -> TraceCatalog:
    od = {SMALL: OD_SMALL, MEDIUM: 0.12}
    return TraceCatalog(traces, {k: od[k] for k in traces}, HORIZON)


def trace(segments):
    times = [s[0] for s in segments]
    prices = [s[1] for s in segments]
    return PriceTrace(np.array(times), np.array(prices), HORIZON)


def run_scheduler(cat, strategy, bidding, mechanism=Mechanism.CKPT_LR_LIVE):
    provider = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
    engine = Engine()
    sch = CloudScheduler(
        engine=engine,
        provider=provider,
        bidding=bidding,
        strategy=strategy,
        migration_model=MigrationModel(mechanism, TYPICAL_PARAMS),
        rng=np.random.default_rng(1),
        horizon=HORIZON,
    )
    sch.run()
    return sch


class TestSteadyState:
    def test_flat_cheap_market_stays_on_spot(self):
        cat = catalog({SMALL: trace([(0.0, 0.02)])})
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.migrations == []
        assert sch.availability.total_downtime() == 0.0
        assert sch.placement is None  # released at horizon
        # spot the whole time at 0.02: cost ~ 0.02 * 48h (minus startup partial)
        assert sch.ledger.total == pytest.approx(0.02 * 48, rel=0.05)
        assert sch.ledger.total_by_kind("on_demand") == 0.0

    def test_availability_window_opens_at_first_ready(self):
        cat = catalog({SMALL: trace([(0.0, 0.02)])})
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.availability.window_start == pytest.approx(281.47, abs=1.0)
        assert sch.availability.window_end == HORIZON

    def test_on_demand_only_costs_100_percent(self):
        cat = catalog({SMALL: trace([(0.0, 0.02)])})
        sch = run_scheduler(cat, OnDemandOnlyStrategy(SMALL), ProactiveBidding())
        assert sch.migrations == []
        hours_billed = sch.ledger.hours_billed()
        assert sch.ledger.total == pytest.approx(hours_billed * OD_SMALL)
        assert sch.ledger.total_by_kind("spot") == 0.0

    def test_expensive_spot_starts_on_demand(self):
        cat = catalog({SMALL: trace([(0.0, 0.09)])})  # above od forever
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.ledger.total_by_kind("spot") == 0.0
        assert sch.migrations == []  # 0.09 > 0.9*od: reverse never tempts


class TestProactivePlannedPath:
    """A mid-hour spike above on-demand but below the 4x bid."""

    CAT = None

    def setup_method(self):
        self.cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)])}
        )

    def test_planned_then_reverse(self):
        sch = run_scheduler(self.cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.migration_count("forced") == 0
        assert sch.migration_count("planned") == 1
        assert sch.migration_count("reverse") == 1

    def test_downtime_virtually_eliminated(self):
        sch = run_scheduler(self.cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        # two live migrations, each with a sub-second blackout
        assert sch.availability.total_downtime() < 3.0

    def test_planned_uses_checkpoint_downtime_without_live(self):
        sch = run_scheduler(
            self.cat, SingleMarketStrategy(SMALL), ProactiveBidding(),
            mechanism=Mechanism.CKPT_LR,
        )
        down = sch.availability.total_downtime()
        assert 2.0 < down < 30.0  # two pre-staged checkpoint blackouts

    def test_rides_out_spike_between_boundaries(self):
        """A blip fully inside one billing hour triggers nothing proactive."""
        blip = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5.2), 0.10), (hours(5.4), 0.02)])}
        )
        sch = run_scheduler(blip, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.migrations == []
        assert sch.availability.total_downtime() == 0.0

    def test_reactive_same_trace_gets_revoked(self):
        sch = run_scheduler(self.cat, SingleMarketStrategy(SMALL), ReactiveBidding())
        assert sch.migration_count("forced") == 1
        assert sch.migration_count("planned") == 0
        assert sch.migration_count("reverse") == 1
        # lazy-restore forced blackout: ~ final increment + 20 s resume
        assert 18.0 < sch.availability.total_downtime() < 45.0

    def test_reactive_blip_also_revokes(self):
        """The same blip that proactive rides out forces reactive off spot."""
        blip = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5.2), 0.10), (hours(5.4), 0.02)])}
        )
        sch = run_scheduler(blip, SingleMarketStrategy(SMALL), ReactiveBidding())
        assert sch.migration_count("forced") == 1

    def test_revoked_partial_hour_not_billed(self):
        sch = run_scheduler(self.cat, SingleMarketStrategy(SMALL), ReactiveBidding())
        free = [e for e in sch.ledger.entries if e.note == "revoked-free"]
        assert len(free) == 1
        assert free[0].amount == 0.0


class TestForcedPath:
    def test_sharp_spike_forces_proactive(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 1.00), (hours(7), 0.02)])}
        )
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.migration_count("forced") == 1
        assert sch.migration_count("reverse") == 1
        forced = [m for m in sch.migrations if m.kind == "forced"][0]
        assert forced.started_at == pytest.approx(hours(5))
        assert forced.downtime_s > 5.0

    def test_forced_migration_lands_on_on_demand(self):
        cat = catalog({SMALL: trace([(0.0, 0.02), (hours(5), 1.00)])})
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        # price stays above od: no reverse, service on-demand to the end
        assert sch.migration_count("forced") == 1
        assert sch.migration_count("reverse") == 0
        assert sch.ledger.total_by_kind("on_demand") > 0.06 * 40  # ~43 od hours

    def test_spike_during_planned_migration_converts_to_forced(self):
        """The price crosses on-demand (planned starts) then jumps past the
        bid before the planned suspend: the platform wins the race."""
        cat = catalog(
            {
                SMALL: trace(
                    # crosses od shortly before a billing boundary, then jumps
                    # past 4x od 30 s after the boundary decision
                    [(0.0, 0.02), (hours(5.85), 0.10), (hours(5.9), 1.00),
                     (hours(7), 0.02)]
                )
            }
        )
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.migration_count("forced") == 1
        assert sch.migration_count("planned") == 0


class TestPureSpot:
    def test_outage_until_price_returns(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(9), 0.02)])}
        )
        sch = run_scheduler(cat, PureSpotStrategy(SMALL), ReactiveBidding())
        assert sch.migration_count("outage") == 1
        # dark from suspend (~5h+grace) to re-grant (9h) + spot boot + restore
        down = sch.availability.total_downtime()
        assert hours(3.9) < down < hours(4.3)
        assert sch.ledger.total_by_kind("on_demand") == 0.0

    def test_outage_to_horizon_when_price_never_returns(self):
        cat = catalog({SMALL: trace([(0.0, 0.02), (hours(5), 0.10)])})
        sch = run_scheduler(cat, PureSpotStrategy(SMALL), ReactiveBidding())
        down = sch.availability.total_downtime()
        assert down == pytest.approx(HORIZON - hours(5) - 120.0, rel=0.01)

    def test_cheaper_than_migrating_scheduler(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(9), 0.02)])}
        )
        pure = run_scheduler(cat, PureSpotStrategy(SMALL), ReactiveBidding())
        ours = run_scheduler(cat, SingleMarketStrategy(SMALL), ReactiveBidding())
        assert pure.ledger.total <= ours.ledger.total


class TestMultiMarket:
    def test_planned_moves_to_cheaper_sibling_spot(self):
        cat = catalog(
            {
                SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)]),
                MEDIUM: trace([(0.0, 0.03)]),
            }
        )
        sch = run_scheduler(
            cat, MultiMarketStrategy("us-east-1a", service_units=1), ProactiveBidding()
        )
        assert sch.migration_count("planned") == 1
        planned = [m for m in sch.migrations if m.kind == "planned"][0]
        assert planned.target == str(MEDIUM)
        # opportunistic switching is off: the fleet stays in medium after
        assert sch.migration_count("spot-switch") == 0
        assert sch.ledger.total_by_kind("on_demand") == 0.0

    def test_opportunistic_switching_extension(self):
        cat = catalog(
            {
                SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)]),
                MEDIUM: trace([(0.0, 0.03)]),
            }
        )
        strat = MultiMarketStrategy("us-east-1a", service_units=1)
        strat.opportunistic_switching = True
        strat.min_dwell_s = hours(2)
        sch = run_scheduler(cat, strat, ProactiveBidding())
        # after the spike ends, small (0.02) beats medium (0.03) by > 25 %
        assert sch.migration_count("spot-switch") >= 1

    def test_fleet_packs_multiple_servers(self):
        cat = catalog(
            {
                SMALL: trace([(0.0, 0.02)]),
                MEDIUM: trace([(0.0, 0.05)]),
            }
        )
        strat = MultiMarketStrategy("us-east-1a", service_units=4)
        sch = run_scheduler(cat, strat, ProactiveBidding())
        # 4 small servers at 0.02: ~48h * 4 * 0.02
        assert sch.ledger.total == pytest.approx(4 * 0.02 * 48, rel=0.06)


class TestReverseAbort:
    def test_reverse_aborts_when_target_spikes_back(self):
        cat = catalog(
            {
                SMALL: trace(
                    [
                        (0.0, 0.02),
                        (hours(5), 0.10),  # reactive revoked here
                        (31900.0, 0.02),  # brief dip covering a reverse check
                        (32200.0, 0.30),  # ...that ends before the reverse lands
                        (hours(14), 0.02),
                    ]
                )
            }
        )
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ReactiveBidding())
        assert sch.migration_count("aborted-reverse") >= 1
        aborted = [m for m in sch.migrations if m.kind == "aborted-reverse"][0]
        assert aborted.downtime_s == 0.0
        # eventually reverses for real once the market calms
        assert sch.migration_count("reverse") == 1


class TestLifecycle:
    def test_all_leases_released_at_horizon(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)])}
        )
        provider = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
        engine = Engine()
        sch = CloudScheduler(
            engine=engine, provider=provider, bidding=ProactiveBidding(),
            strategy=SingleMarketStrategy(SMALL),
            migration_model=MigrationModel(Mechanism.CKPT_LR_LIVE, TYPICAL_PARAMS),
            rng=np.random.default_rng(1), horizon=HORIZON,
        )
        sch.run()
        assert provider.active_leases() == []
        assert sch.availability.window_end == HORIZON

    def test_deterministic_given_seeds(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)])}
        )
        a = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        b = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert a.ledger.total == b.ledger.total
        assert a.availability.total_downtime() == b.availability.total_downtime()
        assert [m.kind for m in a.migrations] == [m.kind for m in b.migrations]

    def test_spike_at_horizon_handled_cleanly(self):
        cat = catalog({SMALL: trace([(0.0, 0.02), (hours(47.5), 1.00)])})
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        assert sch.availability.window_end == HORIZON
        # downtime (if the forced resume spills past the horizon) is clipped
        for iv in sch.availability.downtime:
            assert iv.end <= HORIZON

    def test_migration_rates_accessors(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)])}
        )
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ReactiveBidding())
        assert sch.migrations_per_hour("forced") == pytest.approx(
            1.0 / (sch.availability.window_duration / 3600.0)
        )
        assert sch.migration_count("forced", "reverse") == 2

    def test_double_start_rejected(self):
        from repro.errors import SchedulingError
        cat = catalog({SMALL: trace([(0.0, 0.02)])})
        provider = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
        sch = CloudScheduler(
            engine=Engine(), provider=provider, bidding=ProactiveBidding(),
            strategy=SingleMarketStrategy(SMALL),
            migration_model=MigrationModel(Mechanism.CKPT_LR_LIVE, TYPICAL_PARAMS),
            rng=np.random.default_rng(1), horizon=HORIZON,
        )
        sch.start()
        with pytest.raises(SchedulingError):
            sch.start()


class TestPlacementTimeline:
    def test_timeline_covers_run_and_orders(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)])}
        )
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        log = sch.placement_log
        assert len(log) == 3  # spot -> on-demand -> spot
        assert [r.kind for r in log] == ["spot", "on_demand", "spot"]
        for a, b in zip(log, log[1:]):
            assert a.end <= b.start + 1e-9
        assert log[-1].end == HORIZON

    def test_spot_time_fraction_dominates(self):
        cat = catalog(
            {SMALL: trace([(0.0, 0.02), (hours(5), 0.10), (hours(7), 0.02)])}
        )
        sch = run_scheduler(cat, SingleMarketStrategy(SMALL), ProactiveBidding())
        # on-demand tenure is roughly the 2-hour excursion out of ~48h
        assert 0.90 < sch.spot_time_fraction() < 0.99

    def test_on_demand_only_fraction_zero(self):
        cat = catalog({SMALL: trace([(0.0, 0.02)])})
        sch = run_scheduler(cat, OnDemandOnlyStrategy(SMALL), ProactiveBidding())
        assert sch.spot_time_fraction() == 0.0
        assert all(r.kind == "on_demand" for r in sch.placement_log)

    def test_result_carries_fraction(self):
        from repro.core.simulation import SimulationConfig, run_simulation
        from repro.units import days as _days
        r = run_simulation(SimulationConfig(
            strategy=lambda: SingleMarketStrategy(SMALL),
            regions=("us-east-1a",), sizes=("small",),
            horizon_s=_days(7), seed=3,
        ))
        assert 0.5 < r.spot_time_fraction <= 1.0
