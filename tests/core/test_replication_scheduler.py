"""Behavioural tests of the replicated (hot-standby) scheduler."""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider, LeaseKind
from repro.core.bidding import ProactiveBidding
from repro.core.replication import ReplicatedScheduler
from repro.errors import SchedulingError
from repro.simulator.engine import Engine
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours
from repro.vm.replication import RemusReplication

A = MarketKey("us-east-1a", "small")
B = MarketKey("us-east-1b", "small")
HORIZON = days(2)


def run(trace_a, trace_b, horizon=HORIZON):
    cat = TraceCatalog({A: trace_a, B: trace_b}, {A: 0.06, B: 0.06}, horizon)
    provider = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
    sch = ReplicatedScheduler(
        engine=Engine(), provider=provider, bidding=ProactiveBidding(),
        service_size="small", candidate_keys=[A, B],
        remus=RemusReplication(), rng=np.random.default_rng(1), horizon=horizon,
    )
    sch.run()
    return sch, provider


def flat(p):
    return PriceTrace.constant(p, 0.0, HORIZON)


def steps(segments):
    return PriceTrace(
        np.array([s[0] for s in segments]), np.array([s[1] for s in segments]), HORIZON
    )


class TestSteadyState:
    def test_pair_runs_both_markets(self):
        sch, provider = run(flat(0.02), flat(0.025))
        assert sch.primary is None and sch.standby is None  # released
        assert provider.active_leases() == []
        # primary in the cheaper market, standby in the other
        spent = {e.market for e in sch.ledger.entries}
        assert spent == {str(A), str(B)}

    def test_cost_is_roughly_two_spot_prices(self):
        sch, _ = run(flat(0.02), flat(0.025))
        assert sch.ledger.total == pytest.approx((0.02 + 0.025) * 48, rel=0.08)

    def test_no_downtime_without_revocations(self):
        sch, _ = run(flat(0.02), flat(0.025))
        assert sch.availability.total_downtime() == 0.0

    def test_unprotected_only_during_initial_sync(self):
        sch, _ = run(flat(0.02), flat(0.025))
        # one spot boot (~281 s) + one initial sync (~60 s)
        assert 0.0 < sch.unprotected_s < 900.0


class TestFailover:
    def test_primary_revocation_fails_over_in_seconds(self):
        # market A jumps past the 4x bid cap at 5h; B stays calm
        sch, _ = run(steps([(0.0, 0.02), (hours(5), 1.00), (hours(7), 0.02)]),
                     flat(0.025))
        assert sch.migration_count("failover") == 1
        fo = [m for m in sch.migrations if m.kind == "failover"][0]
        assert fo.downtime_s < 5.0
        assert fo.source == str(A) and fo.target == str(B)
        assert sch.availability.total_downtime() < 5.0

    def test_planned_failover_on_price_above_od(self):
        # A rises above od (but below bid): planned promotion at a boundary
        sch, _ = run(steps([(0.0, 0.02), (hours(5), 0.10), (hours(9), 0.02)]),
                     flat(0.025))
        assert sch.migration_count("planned-failover") >= 1
        assert sch.migration_count("failover") == 0
        assert sch.availability.total_downtime() < 2.0

    def test_standby_revocation_causes_no_downtime(self):
        sch, _ = run(flat(0.02),
                     steps([(0.0, 0.025), (hours(5), 1.00), (hours(7), 0.025)]))
        assert sch.migration_count("standby-replace") >= 1
        assert sch.availability.total_downtime() == 0.0

    def test_double_revocation_falls_back_to_restore(self):
        # both markets spike past the cap simultaneously: the standby dies
        # with the primary, forcing the unprotected emergency path
        spike = steps([(0.0, 0.02), (hours(5), 1.00), (hours(9), 0.02)])
        sch, _ = run(spike, steps([(0.0, 0.025), (hours(5), 1.00), (hours(9), 0.025)]))
        assert sch.migration_count("unprotected-restore") == 1
        down = sch.availability.total_downtime()
        assert 15.0 < down < 120.0  # lazy restore + startup overlap

    def test_reopt_failover_escapes_expensive_market(self):
        # A is cheap then drifts pricier (still below od); B far cheaper:
        # the two-phase re-optimization promotes B
        sch, _ = run(steps([(0.0, 0.010), (hours(3), 0.045)]), flat(0.012))
        assert sch.migration_count("reopt-failover") >= 1
        reopt = [m for m in sch.migrations if m.kind == "reopt-failover"][0]
        # the service host moves to the cheap market within a few boundaries
        assert reopt.source == str(A) and reopt.target == str(B)
        assert reopt.started_at < hours(5)
        assert reopt.downtime_s < 2.0


class TestValidation:
    def test_empty_candidates_rejected(self):
        cat = TraceCatalog({A: flat(0.02)}, {A: 0.06}, HORIZON)
        provider = CloudProvider(cat, rng=np.random.default_rng(0))
        with pytest.raises(SchedulingError):
            ReplicatedScheduler(
                engine=Engine(), provider=provider, bidding=ProactiveBidding(),
                service_size="small", candidate_keys=[],
                remus=RemusReplication(), rng=np.random.default_rng(1),
                horizon=HORIZON,
            )

    def test_size_capacity_filter(self):
        cat = TraceCatalog({A: flat(0.02)}, {A: 0.06}, HORIZON)
        provider = CloudProvider(cat, rng=np.random.default_rng(0))
        with pytest.raises(SchedulingError):
            ReplicatedScheduler(
                engine=Engine(), provider=provider, bidding=ProactiveBidding(),
                service_size="xlarge", candidate_keys=[A],  # small can't host xlarge
                remus=RemusReplication(), rng=np.random.default_rng(1),
                horizon=HORIZON,
            )

    def test_window_closed_at_horizon(self):
        sch, _ = run(flat(0.02), flat(0.025))
        assert sch.availability.window_end == HORIZON
