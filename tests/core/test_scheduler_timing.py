"""Unit tests for the scheduler's timing arithmetic.

The billing-boundary anchoring and planned-migration lead times are the
heart of the proactive policy's cost advantage; these tests pin their
behaviour directly, without running full simulations.
"""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.core.bidding import ProactiveBidding
from repro.core.scheduler import CloudScheduler, _Placement
from repro.core.strategies import MultiRegionStrategy, SingleMarketStrategy
from repro.cloud.provider import LeaseKind
from repro.simulator.engine import Engine
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR, days
from repro.vm.mechanisms import Mechanism, MigrationModel, TYPICAL_PARAMS

SMALL = MarketKey("us-east-1a", "small")
EU_SMALL = MarketKey("eu-west-1a", "small")
XLARGE = MarketKey("us-east-1a", "xlarge")
HORIZON = days(2)


def make_scheduler(keys=(SMALL,), strategy=None):
    traces = {k: PriceTrace.constant(0.02, 0.0, HORIZON) for k in keys}
    od = {SMALL: 0.06, EU_SMALL: 0.0672, XLARGE: 0.48}
    cat = TraceCatalog(traces, {k: od[k] for k in keys}, HORIZON)
    provider = CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=0.0)
    return CloudScheduler(
        engine=Engine(), provider=provider, bidding=ProactiveBidding(),
        strategy=strategy or SingleMarketStrategy(keys[0]),
        migration_model=MigrationModel(Mechanism.CKPT_LR_LIVE, TYPICAL_PARAMS),
        rng=np.random.default_rng(1), horizon=HORIZON,
    )


class TestBoundaryChecks:
    def _with_placement(self, sch, ready_at):
        lease = sch.provider.request_on_demand(SMALL, max(0.0, ready_at - 94.85))
        placement = _Placement(kind=LeaseKind.ON_DEMAND, key=SMALL, leases=[lease])
        # pin the deterministic ready time
        lease.ready_at = ready_at
        sch.placement = placement
        return placement

    def test_check_lands_lead_before_each_boundary(self):
        sch = make_scheduler()
        self._with_placement(sch, ready_at=281.47)
        lead = 400.0
        check = sch._next_boundary_check(now=281.47, lead=lead)
        assert check == pytest.approx(281.47 + SECONDS_PER_HOUR - lead)

    def test_check_strictly_in_future(self):
        sch = make_scheduler()
        self._with_placement(sch, ready_at=0.0)
        boundary_minus_lead = SECONDS_PER_HOUR - 400.0
        check = sch._next_boundary_check(now=boundary_minus_lead, lead=400.0)
        assert check > boundary_minus_lead
        assert check == pytest.approx(2 * SECONDS_PER_HOUR - 400.0)

    def test_checks_advance_hourly(self):
        sch = make_scheduler()
        self._with_placement(sch, ready_at=100.0)
        c1 = sch._next_boundary_check(now=100.0, lead=300.0)
        c2 = sch._next_boundary_check(now=c1, lead=300.0)
        assert c2 - c1 == pytest.approx(SECONDS_PER_HOUR)

    def test_anchored_at_ready_not_wall_clock(self):
        sch = make_scheduler()
        self._with_placement(sch, ready_at=1234.5)
        check = sch._next_boundary_check(now=1300.0, lead=200.0)
        assert (check + 200.0 - 1234.5) % SECONDS_PER_HOUR == pytest.approx(
            0.0, abs=1e-6
        )


class TestPlannedLead:
    def test_lead_covers_startup_and_prep(self):
        sch = make_scheduler()
        lead = sch._planned_lead(SMALL)
        # spot startup mean (281) + live precopy (~40) + margin (60)
        assert 330.0 < lead < 900.0

    def test_lead_grows_with_memory(self):
        sch = make_scheduler(keys=(SMALL, XLARGE), strategy=SingleMarketStrategy(XLARGE))
        small_lead = make_scheduler()._planned_lead(SMALL)
        xl_lead = sch._planned_lead(XLARGE)
        assert xl_lead > small_lead  # 12 GiB pre-copies take longer

    def test_cross_region_lead_includes_disk_copy(self):
        strat = MultiRegionStrategy(("us-east-1a", "eu-west-1a"), service_units=1)
        sch = make_scheduler(keys=(SMALL, EU_SMALL), strategy=strat)
        lead = sch._planned_lead(SMALL)
        single = make_scheduler()._planned_lead(SMALL)
        # the 2 GiB WAN disk copy (~280 s to eu-west) must be inside the lead
        assert lead > single + 200.0

    def test_lead_capped_at_half_hour(self):
        strat = MultiRegionStrategy(("us-east-1a", "eu-west-1a"), service_units=1)
        sch = make_scheduler(keys=(SMALL, EU_SMALL), strategy=strat)
        sch.service_disk_gib = 100.0  # absurd disk: the cap must engage
        assert sch._planned_lead(SMALL) == 0.5 * SECONDS_PER_HOUR


class TestLocalOnDemandSelection:
    def test_forced_target_stays_in_source_region(self):
        strat = MultiRegionStrategy(("us-east-1a", "eu-west-1a"), service_units=1)
        sch = make_scheduler(keys=(SMALL, EU_SMALL), strategy=strat)
        # eu-west od (0.0672) is pricier than us-east od (0.06); a forced
        # migration from an eu placement must STILL pick eu on-demand
        best = sch._best_local_on_demand(EU_SMALL)
        assert best.key.region == "eu-west-1a"

    def test_falls_back_to_global_when_no_local(self):
        strat = SingleMarketStrategy(SMALL)
        sch = make_scheduler(keys=(SMALL,), strategy=strat)
        best = sch._best_local_on_demand(EU_SMALL)  # not a candidate region
        assert best.key == SMALL
