"""Property-based tests for the PriceTrace step function."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testkit.strategies import trace_and_time, traces


@given(traces())
def test_mean_price_within_min_max(trace):
    assert trace.min_price() - 1e-12 <= trace.mean_price() <= trace.max_price() + 1e-12


@given(traces())
def test_std_nonnegative_and_bounded(trace):
    std = trace.price_std()
    assert std >= 0.0
    assert std <= (trace.max_price() - trace.min_price()) + 1e-9


@given(trace_and_time())
def test_price_at_matches_some_segment(pair):
    trace, t = pair
    p = trace.price_at(t)
    assert p in set(trace.prices)


@given(trace_and_time())
def test_segments_cover_price_at(pair):
    trace, t = pair
    for s, e, price in trace.segments():
        if s <= t < e:
            assert price == trace.price_at(t)
            break
    else:  # pragma: no cover - segments always cover [start, horizon)
        raise AssertionError("no segment covered t")


@given(traces())
def test_segment_durations_sum_to_duration(trace):
    total = sum(e - s for s, e, _ in trace.segments())
    assert total == np.float64(total)
    np.testing.assert_allclose(total, trace.duration, rtol=1e-9)


@given(traces(), st.floats(min_value=1e-4, max_value=100.0))
def test_time_above_bounded(trace, threshold):
    ta = trace.time_above(threshold)
    assert 0.0 <= ta <= trace.duration + 1e-9
    if threshold >= trace.max_price():
        assert ta == 0.0
    if threshold < trace.min_price():
        np.testing.assert_allclose(ta, trace.duration, rtol=1e-9)


@given(traces(), st.floats(min_value=1e-4, max_value=100.0))
def test_crossings_alternate(trace, threshold):
    """Rising and falling crossings must interleave."""
    ups = list(trace.crossings_above(threshold))
    downs = list(trace.crossings_below(threshold))
    merged = sorted([(t, "u") for t in ups] + [(t, "d") for t in downs])
    for (t1, k1), (t2, k2) in zip(merged, merged[1:]):
        assert k1 != k2, f"two consecutive {k1}-crossings at {t1}, {t2}"


@given(trace_and_time(), st.floats(min_value=1e-4, max_value=100.0))
def test_first_time_above_is_consistent(pair, threshold):
    trace, t0 = pair
    hit = trace.first_time_above(threshold, t0)
    if hit is not None:
        assert hit >= min(t0, trace.horizon) - 1e-9
        assert trace.price_at(hit) > threshold
    else:
        # nothing above the threshold in [t0, horizon)
        assert trace.time_above(threshold, t0, trace.horizon) == 0.0


@given(traces(), st.floats(min_value=10.0, max_value=1000.0))
def test_resample_values_are_trace_prices(trace, step):
    grid, vals = trace.regular_grid(step)
    assert set(np.unique(vals)).issubset(set(trace.prices))


@given(traces(), st.floats(min_value=0.1, max_value=7.0))
def test_scale_prices_scales_mean(trace, factor):
    scaled = trace.scale_prices(factor)
    np.testing.assert_allclose(scaled.mean_price(), factor * trace.mean_price(), rtol=1e-9)


@given(traces(), st.floats(min_value=-1e5, max_value=1e5))
def test_shift_preserves_shape(trace, dt):
    shifted = trace.shift(dt)
    np.testing.assert_allclose(shifted.duration, trace.duration, rtol=1e-9)
    np.testing.assert_allclose(shifted.mean_price(), trace.mean_price(), rtol=1e-9)
