"""Property-based tests: migration-mechanism monotonicity laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testkit.strategies import links, memories
from repro.vm.mechanisms import Mechanism, MigrationModel, TYPICAL_PARAMS
from repro.vm.memory import MemoryProfile


@given(memories(), links(), st.sampled_from(list(Mechanism)))
@settings(max_examples=60, deadline=None)
def test_timings_are_finite_and_nonnegative(mem, link, mech):
    model = MigrationModel(mech, TYPICAL_PARAMS)
    p = model.planned(mem, link)
    f = model.forced(mem, link, grace_s=120.0, target_ready_after_s=95.0)
    for t in (p, f):
        assert 0.0 <= t.downtime_s < 1e5
        assert 0.0 <= t.prep_s < 1e6
        assert t.total_s >= t.downtime_s


@given(memories(), links())
@settings(max_examples=40, deadline=None)
def test_lazy_restore_never_worse_than_eager_forced(mem, link):
    eager = MigrationModel(Mechanism.CKPT).forced(mem, link, 120.0, 95.0)
    lazy = MigrationModel(Mechanism.CKPT_LR).forced(mem, link, 120.0, 95.0)
    assert lazy.downtime_s <= eager.downtime_s + 1e-9


@given(memories(), links())
@settings(max_examples=40, deadline=None)
def test_live_planned_never_worse_than_checkpoint_planned(mem, link):
    # live only converges when the link outruns the dirty rate
    if mem.dirty_rate_mbps >= 0.8 * link.memory_bandwidth_mbps:
        return
    ckpt = MigrationModel(Mechanism.CKPT_LR).planned(mem, link)
    live = MigrationModel(Mechanism.CKPT_LR_LIVE).planned(mem, link)
    assert live.downtime_s <= ckpt.downtime_s + 1e-9


@given(memories(), links(), st.floats(min_value=0.0, max_value=600.0))
@settings(max_examples=40, deadline=None)
def test_forced_downtime_monotone_in_target_delay(mem, link, delay):
    m = MigrationModel(Mechanism.CKPT_LR)
    base = m.forced(mem, link, 120.0, 0.0)
    delayed = m.forced(mem, link, 120.0, delay)
    assert delayed.downtime_s >= base.downtime_s - 1e-9


@given(memories(), links())
@settings(max_examples=40, deadline=None)
def test_larger_grace_never_hurts(mem, link):
    m = MigrationModel(Mechanism.CKPT_LR)
    short = m.forced(mem, link, 30.0, 95.0)
    longer = m.forced(mem, link, 240.0, 95.0)
    assert longer.downtime_s <= short.downtime_s + 1e-9


@given(st.floats(min_value=0.5, max_value=8.0), links())
@settings(max_examples=40, deadline=None)
def test_eager_forced_downtime_monotone_in_memory(size, link):
    m = MigrationModel(Mechanism.CKPT)
    small = m.forced(MemoryProfile(size_gib=size), link, 120.0, 95.0)
    big = m.forced(MemoryProfile(size_gib=2 * size), link, 120.0, 95.0)
    assert big.downtime_s >= small.downtime_s - 1e-9


@given(st.floats(min_value=0.5, max_value=16.0), links())
@settings(max_examples=40, deadline=None)
def test_lazy_forced_downtime_memory_independent(size, link):
    """The Fig 7 crux: lazy-restore blackout does not scale with RAM
    (the increment is tau-bounded and the resume constant)."""
    m = MigrationModel(Mechanism.CKPT_LR)
    a = m.forced(MemoryProfile(size_gib=size), link, 120.0, 95.0)
    b = m.forced(MemoryProfile(size_gib=16.0), link, 120.0, 95.0)
    assert abs(a.downtime_s - b.downtime_s) < 15.0
