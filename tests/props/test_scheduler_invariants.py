"""Property-based tests: scheduler invariants over randomized market worlds.

Whatever the price process does, a finished simulation must satisfy the
conservation laws checked here — costs non-negative and decomposable,
downtime within the window and non-overlapping, every lease released,
migrations time-ordered.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.simulation import SimulationConfig, run_simulation
from repro.core.strategies import (
    MultiMarketStrategy,
    PureSpotStrategy,
    SingleMarketStrategy,
)
from repro.testkit.strategies import worlds
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def build_config(seed, cal, policy):
    if policy == "pure-spot":
        strategy = lambda: PureSpotStrategy(KEY)
        bidding = ReactiveBidding()
    elif policy == "reactive":
        strategy = lambda: SingleMarketStrategy(KEY)
        bidding = ReactiveBidding()
    elif policy == "multi":
        strategy = lambda: MultiMarketStrategy("us-east-1a", service_units=2)
        bidding = ProactiveBidding()
    else:
        strategy = lambda: SingleMarketStrategy(KEY)
        bidding = ProactiveBidding()
    sizes = ("small", "medium", "large", "xlarge") if policy == "multi" else ("small",)
    return SimulationConfig(
        strategy=strategy,
        bidding=bidding,
        seed=seed,
        horizon_s=days(7),
        regions=("us-east-1a",),
        sizes=sizes,
        calibrations={("us-east-1a", "small"): cal},
    )


@given(worlds())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simulation_invariants(world):
    seed, cal, policy = world
    r = run_simulation(build_config(seed, cal, policy))

    # cost conservation and non-negativity
    assert r.total_cost >= 0.0
    assert abs(r.spot_cost + r.on_demand_cost - r.total_cost) < 1e-9
    assert r.baseline_cost > 0.0

    # availability bookkeeping
    assert 0.0 <= r.unavailability_percent <= 100.0
    assert 0.0 <= r.downtime_s <= days(7) + 1e-6
    assert abs(sum(r.downtime_by_cause.values()) - r.downtime_s) < 1e-6
    assert r.duration_hours <= 7 * 24 + 1e-9

    # migration counters are consistent
    assert r.forced_migrations >= 0
    assert r.planned_migrations >= 0
    assert r.reverse_migrations >= 0
    if policy == "pure-spot":
        assert r.on_demand_cost == 0.0
        assert r.forced_migrations == 0  # pure spot records outages instead

    # the scheduler never spends more than ~3x the all-on-demand baseline
    # (it migrates away from expensive spot; overlap hours are bounded)
    assert r.normalized_cost_percent < 300.0


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None)
def test_proactive_never_noticeably_more_unavailable_than_reactive(seed):
    """Directional claim on arbitrary seeds: proactive's unavailability is at
    most reactive's plus a tiny tolerance (both on the same sample)."""
    from repro.traces.catalog import build_catalog

    cat = build_catalog(seed=seed, horizon=days(7), regions=("us-east-1a",), sizes=("small",))
    pro = run_simulation(
        SimulationConfig(
            strategy=lambda: SingleMarketStrategy(KEY), bidding=ProactiveBidding(),
            catalog=cat, horizon_s=days(7), regions=("us-east-1a",), sizes=("small",),
        )
    )
    rea = run_simulation(
        SimulationConfig(
            strategy=lambda: SingleMarketStrategy(KEY), bidding=ReactiveBidding(),
            catalog=cat, horizon_s=days(7), regions=("us-east-1a",), sizes=("small",),
        )
    )
    assert pro.unavailability_percent <= rea.unavailability_percent + 0.002
