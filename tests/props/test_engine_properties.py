"""Property-based tests for the event engine and MVA."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Engine
from repro.workload.queueing import ClosedNetwork, Station, mva_sweep


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6),
            st.integers(min_value=-3, max_value=3),
        ),
        min_size=0,
        max_size=60,
    )
)
def test_events_fire_in_total_order(specs):
    eng = Engine()
    fired = []
    for t, prio in specs:
        eng.schedule(t, lambda e, ev: fired.append(ev.sort_key()), priority=prio)
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(specs)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50),
    st.data(),
)
def test_cancellation_subset_fires(times, data):
    eng = Engine()
    fired = []
    handles = [
        eng.schedule(t, lambda e, ev, i=i: fired.append(i)) for i, t in enumerate(times)
    ]
    cancelled = set()
    for i, h in enumerate(handles):
        if data.draw(st.booleans()):
            h.cancel()
            cancelled.add(i)
    eng.run()
    assert set(fired) == set(range(len(times))) - cancelled


@given(
    st.lists(st.floats(min_value=1e-4, max_value=2.0), min_size=1, max_size=5),
    st.floats(min_value=0.0, max_value=30.0),
    st.integers(min_value=2, max_value=120),
)
@settings(max_examples=60)
def test_mva_invariants(demands, think, n_max):
    net = ClosedNetwork(
        stations=tuple(Station(f"s{i}", d) for i, d in enumerate(demands)),
        think_time_s=think,
    )
    sols = mva_sweep(net, range(1, n_max + 1))
    d_max = max(demands)
    prev_x, prev_r = 0.0, 0.0
    for sol in sols:
        # throughput bounded by the bottleneck and by N/(Z + sum D)
        assert sol.throughput_per_s <= 1.0 / d_max + 1e-9
        assert sol.throughput_per_s >= prev_x - 1e-9
        assert sol.response_time_s >= prev_r - 1e-9
        assert sol.response_time_s >= sum(demands) - 1e-9
        # Little's law over the whole network (including think time)
        n_in_system = sol.throughput_per_s * (sol.response_time_s + think)
        np.testing.assert_allclose(n_in_system, sol.population, rtol=1e-6)
        prev_x, prev_r = sol.throughput_per_s, sol.response_time_s
