"""Property-based laws of the related-work policy families.

Three families, three laws:

* the LP portfolio solver returns feasible, undominated, provably optimal
  portfolios (cross-checked against ``scipy.optimize.linprog``);
* the index tracker never places the service outside its tracking band;
* the no-fault-tolerance strategy never pays for a revoked partial hour,
  never falls back to on-demand, and never touches the checkpoint path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.cloud.provider import CloudProvider
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.policies import IndexTrackingStrategy, solve_portfolio_lp
from repro.core.simulation import SimulationConfig, build_stack, summarize_stack
from repro.obs import CheckpointRestore, CheckpointWrite, MemorySink, Revocation
from repro.runtime.spec import StrategySpec
from repro.testkit.faults import FaultPlan
from repro.testkit.strategies import risk_estimates, tracking_bands
from repro.traces.catalog import MarketKey, build_catalog
from repro.units import days, hours

pytestmark = pytest.mark.props

GRID_REGIONS = ("us-east-1a", "us-west-1a")
GRID_SIZES = ("small", "medium")

# One shared catalog/provider for the decision-level properties: the laws
# quantify over strategy configuration and query time, not market data.
_CATALOG = build_catalog(
    seed=314, horizon=days(2), regions=GRID_REGIONS, sizes=GRID_SIZES
)
_PROVIDER = CloudProvider(_CATALOG, rng=np.random.default_rng(0))


# ------------------------------------------------------------ LP portfolio
@given(risk_estimates())
def test_lp_solution_is_feasible(problem):
    costs, risks, cap = problem
    w = solve_portfolio_lp(costs, risks, cap)
    if w is None:
        # Infeasible is only legal when no single market clears the cap
        # (risk is linear, so mixing cannot rescue feasibility).
        assert np.all(risks > cap)
        return
    assert np.all(w >= -1e-12)
    assert abs(float(np.sum(w)) - 1.0) <= 1e-9
    assert float(risks @ w) <= cap + 1e-9


@given(risk_estimates())
def test_lp_matches_scipy_linprog(problem):
    """Cross-check the closed-form vertex enumeration against HiGHS.

    scipy solves a *tolerance-relaxed* program (it will happily put
    weight on a market whose risk exceeds the cap by less than its
    feasibility tolerance), so the comparison goes through exactly
    feasible points only: our solution can never beat scipy's relaxed
    optimum, and whenever scipy's optimum is itself exactly feasible it
    upper-bounds ours — together that pins our objective to the true
    optimum.
    """
    costs, risks, cap = problem
    w = solve_portfolio_lp(costs, risks, cap)
    ref = linprog(
        costs,
        A_ub=[risks],
        b_ub=[cap],
        A_eq=[np.ones_like(costs)],
        b_eq=[1.0],
        bounds=(0.0, None),
        method="highs",
    )
    if w is None:
        # Exactly infeasible. scipy may still "succeed" inside its
        # tolerance, but its point must violate the exact constraint.
        if ref.success:
            assert float(risks @ ref.x) > cap
        return
    assert ref.success
    ours = float(costs @ w)
    assert ours >= ref.fun - 1e-7  # the relaxation can only do better
    exactly_feasible = (
        float(risks @ ref.x) <= cap and abs(float(np.sum(ref.x)) - 1.0) <= 1e-9
    )
    if exactly_feasible:
        assert ours <= ref.fun + 1e-7


@given(risk_estimates())
def test_lp_support_is_never_dominated(problem):
    """No market in the optimal support is strictly dominated: a cheaper
    market that is no riskier would always absorb its weight."""
    costs, risks, cap = problem
    w = solve_portfolio_lp(costs, risks, cap)
    if w is None:
        return
    for m in np.flatnonzero(w > 1e-9):
        dominated = (costs < costs[m] - 1e-9) & (risks <= risks[m])
        assert not np.any(dominated), (
            f"market {m} (cost={costs[m]}, risk={risks[m]}) kept weight "
            f"{w[m]} despite a strictly cheaper, no-riskier alternative"
        )


# ---------------------------------------------------------- index tracking
@given(
    tracking_bands(),
    st.floats(min_value=0.0, max_value=0.98),
    st.sampled_from([2.5, 3.0, 4.0]),
)
def test_index_tracker_stays_within_band(band_cfg, frac, k):
    band, n_markets = band_cfg
    strat = IndexTrackingStrategy(
        GRID_REGIONS, service_units=8, n_markets=n_markets, band=band
    )
    t = frac * _CATALOG.horizon
    target = strat.best_spot_target(_PROVIDER, ProactiveBidding(k=k), t)
    basket = strat.basket(_PROVIDER)
    assert len(basket) == min(n_markets, len(_CATALOG.markets()))
    if target is None:
        return
    assert target.key in basket
    assert target.rate <= (1.0 + band) * strat.index_rate(_PROVIDER) + 1e-9


@given(tracking_bands())
def test_index_baseline_is_the_index(band_cfg):
    band, n_markets = band_cfg
    strat = IndexTrackingStrategy(GRID_REGIONS, n_markets=n_markets, band=band)
    rates = [strat.on_demand_rate(_PROVIDER, key) for key in strat.basket(_PROVIDER)]
    assert strat.baseline_rate(_PROVIDER) == pytest.approx(float(np.mean(rates)))


# ------------------------------------------------------- no fault tolerance
@settings(max_examples=5, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.floats(min_value=10.0, max_value=40.0),
)
def test_no_ft_never_pays_revoked_partial_hour(seed, spike_start_h):
    """A correlated spike revokes the no-FT tenant; every revoked partial
    hour bills zero, no on-demand server is ever bought, and the
    checkpoint machinery stays cold."""
    cfg = SimulationConfig(
        strategy=StrategySpec.no_fault_tolerance(MarketKey("us-east-1a", "small")),
        bidding=ReactiveBidding(),
        seed=seed,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.correlated_spike(hours(spike_start_h), hours(2)),
        label="props/no-ft",
    )
    sink = MemorySink()
    stack = build_stack(cfg, sink=sink)
    stack.scheduler.run()
    summarize_stack(stack)

    revocations = [e for e in sink.events if isinstance(e, Revocation)]
    assert revocations, "the correlated spike must revoke the tenant"
    entries = stack.scheduler.ledger.entries
    assert all(e.amount == 0.0 for e in entries if e.note == "revoked-free")
    assert stack.scheduler.ledger.total_by_kind("on_demand") == 0.0
    assert not any(
        isinstance(ev, (CheckpointWrite, CheckpointRestore)) for ev in sink.events
    )
