"""Property-based tests for billing semantics."""

import math

import numpy as np
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.cloud.billing import bill_on_demand_lease, bill_spot_lease
from repro.testkit.strategies import trace_and_lease
from repro.units import SECONDS_PER_HOUR


def _off_boundary(duration: float) -> bool:
    """True when a duration is not within float noise of an N-hour mark.

    Billing absorbs sub-microsecond drift at exact hour boundaries (see
    ``repro.cloud.billing``), so the exact-ceil properties only hold away
    from boundaries; the boundary behaviour itself is pinned by unit
    tests in ``tests/cloud/test_billing.py``.
    """
    frac = duration % SECONDS_PER_HOUR
    return 0.01 < frac < SECONDS_PER_HOUR - 0.01


@given(trace_and_lease(), st.booleans())
def test_spot_bill_bounded_by_price_envelope(args, revoked):
    trace, start, end = args
    recs = bill_spot_lease(trace, start, end, revoked)
    total = sum(r.amount for r in recs)
    hours_ceil = math.ceil((end - start) / SECONDS_PER_HOUR + 1e-12)
    assert 0.0 <= total <= hours_ceil * trace.max_price() + 1e-9


@given(trace_and_lease())
def test_revoked_never_costs_more_than_voluntary(args):
    trace, start, end = args
    rev = sum(r.amount for r in bill_spot_lease(trace, start, end, revoked=True))
    vol = sum(r.amount for r in bill_spot_lease(trace, start, end, revoked=False))
    assert rev <= vol + 1e-12


@given(trace_and_lease())
def test_record_count_matches_hours(args):
    trace, start, end = args
    assume(_off_boundary(end - start))
    recs = bill_spot_lease(trace, start, end, revoked=False)
    assert len(recs) == math.ceil((end - start) / SECONDS_PER_HOUR)


@given(trace_and_lease())
def test_hour_starts_are_anchored(args):
    trace, start, end = args
    recs = bill_spot_lease(trace, start, end, revoked=False)
    for i, r in enumerate(recs):
        assert r.hour_start == start + i * SECONDS_PER_HOUR


@given(trace_and_lease())
def test_rates_are_trace_prices(args):
    trace, start, end = args
    for r in bill_spot_lease(trace, start, end, revoked=True):
        assert r.rate in set(trace.prices)


@given(
    st.floats(min_value=0.001, max_value=3.0),
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=100 * SECONDS_PER_HOUR),
)
def test_on_demand_bill_is_ceil_hours_times_rate(rate, start, dur):
    end = start + dur  # float addition may absorb a tiny dur entirely
    assume(_off_boundary(end - start))
    recs = bill_on_demand_lease(rate, start, end)
    total = sum(r.amount for r in recs)
    np.testing.assert_allclose(
        total, math.ceil((end - start) / SECONDS_PER_HOUR) * rate, rtol=1e-9
    )


@given(trace_and_lease())
def test_splitting_a_lease_never_cheaper_contiguous_hours(args):
    """Billing is per-lease-hour: splitting a voluntary lease at an hour
    boundary costs the same; splitting mid-hour costs at least as much."""
    trace, start, end = args
    if end - start < 2 * SECONDS_PER_HOUR:
        return
    whole = sum(r.amount for r in bill_spot_lease(trace, start, end, revoked=False))
    mid = start + SECONDS_PER_HOUR * math.floor((end - start) / (2 * SECONDS_PER_HOUR))
    a = sum(r.amount for r in bill_spot_lease(trace, start, mid, revoked=False))
    b = sum(r.amount for r in bill_spot_lease(trace, mid, end, revoked=False))
    assert a + b >= whole - 1e-9
