"""Property-based tests: trace-generator invariants over calibration space.

Whatever (valid) calibration the generator is handed, its output must be a
well-formed step function whose gross statistics stay inside the physical
envelope the calibration defines.
"""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testkit.strategies import calibrations
from repro.traces.calibration import calibration_for
from repro.traces.generator import generate_trace
from repro.units import days

BASE = calibration_for("us-east-1a", "small")


@given(calibrations(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_generated_trace_well_formed(cal, seed):
    trace = generate_trace(cal, days(10), seed=seed)
    # step-function invariants
    assert trace.start == 0.0
    assert np.all(np.diff(trace.times) > 0)
    assert np.all(trace.prices > 0)
    # physical envelope
    floor = cal.price_floor_frac * cal.on_demand
    ceiling = max(cal.blips.peak_hi_frac, cal.spikes.peak_hi_frac,
                  cal.sharp_spikes.peak_hi_frac) * cal.on_demand * 1.05
    assert trace.min_price() >= floor - 1e-12
    assert trace.max_price() <= ceiling
    # determinism
    again = generate_trace(cal, days(10), seed=seed)
    assert len(again) == len(trace)
    assert np.allclose(again.prices, trace.prices)


@given(calibrations(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_excursion_free_calibration_stays_below_on_demand(cal, seed):
    quiet = replace(
        cal,
        blips=replace(cal.blips, rate_per_hour=0.0),
        spikes=replace(cal.spikes, rate_per_hour=0.0),
        sharp_spikes=replace(cal.sharp_spikes, rate_per_hour=0.0),
    )
    trace = generate_trace(quiet, days(10), seed=seed)
    assert trace.max_price() <= 0.92 * cal.on_demand + 1e-12


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None)
def test_mean_price_tracks_calm_level(seed):
    """The time-weighted mean stays within a factor of the calm level."""
    trace = generate_trace(BASE, days(20), seed=seed)
    calm = BASE.calm_base_frac * BASE.on_demand
    assert 0.4 * calm < trace.mean_price() < 2.5 * calm
