"""Chaos-mode property tests: scheduler invariants under random fault plans.

The calm-world invariants (tests/props/test_scheduler_invariants.py) must
survive arbitrary hostile regimes — random revocation storms, correlated
spikes, failing checkpoints, stretched copies. Every drawn world runs with
the full post-run oracle battery attached (``verify=True``), so a red
conservation check fails the property immediately.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.spot_market import BID_CAP_MULTIPLIER
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.simulation import SimulationConfig, build_stack, summarize_stack
from repro.runtime.spec import StrategySpec
from repro.testkit.oracles import verify_stack
from repro.testkit.strategies import fault_plans
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")
HORIZON = days(5)


@st.composite
def chaos_worlds(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    plan = draw(fault_plans(horizon_s=HORIZON))
    policy = draw(st.sampled_from(["proactive", "reactive", "pure-spot", "multi"]))
    return seed, plan, policy


def build_config(seed, plan, policy):
    if policy == "pure-spot":
        strategy = StrategySpec.pure_spot(KEY)
        bidding = ReactiveBidding()
    elif policy == "reactive":
        strategy = StrategySpec.single(KEY)
        bidding = ReactiveBidding()
    elif policy == "multi":
        strategy = StrategySpec.multi_market("us-east-1a", service_units=2)
        bidding = ProactiveBidding()
    else:
        strategy = StrategySpec.single(KEY)
        bidding = ProactiveBidding()
    sizes = ("small", "medium", "large", "xlarge") if policy == "multi" else ("small",)
    return SimulationConfig(
        strategy=strategy,
        bidding=bidding,
        seed=seed,
        horizon_s=HORIZON,
        regions=("us-east-1a",),
        sizes=sizes,
        faults=plan,
    )


@given(chaos_worlds())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_invariants_hold_under_faults(world):
    from repro.obs.events import LeaseAcquired
    from repro.obs.sinks import MemorySink

    seed, plan, policy = world
    sink = MemorySink()
    stack = build_stack(build_config(seed, plan, policy), sink=sink)
    stack.scheduler.run()
    result = summarize_stack(stack)

    # the full oracle battery: billing, availability, placement, metrics
    report = verify_stack(stack, result)
    assert report.passed, report.summary()

    # no overlapping placements, all inside the horizon
    log = stack.scheduler.placement_log
    for a, b in zip(log, log[1:]):
        assert a.end <= b.start + 1e-9
    assert all(0.0 <= r.start < r.end <= HORIZON + 1e-9 for r in log)

    # every bid respects the 4x on-demand cap, even at spiked prices
    for event in sink.events:
        if isinstance(event, LeaseAcquired) and event.kind == "spot":
            cap = BID_CAP_MULTIPLIER * stack.catalog.on_demand_price(
                MarketKey(*event.market.split("/"))
            )
            assert event.bid is not None and event.bid <= cap + 1e-9

    # blackout accounting: downtime within window, causes add up
    assert 0.0 <= result.downtime_s <= HORIZON + 1e-6
    assert abs(sum(result.downtime_by_cause.values()) - result.downtime_s) < 1e-6

    # cost decomposition survives hostile markets
    assert result.total_cost >= 0.0
    assert abs(result.spot_cost + result.on_demand_cost - result.total_cost) < 1e-9
    if policy == "pure-spot":
        assert result.on_demand_cost == 0.0


@given(chaos_worlds())
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_faulted_runs_are_deterministic(world):
    seed, plan, policy = world
    from repro.core.simulation import run_simulation

    config = build_config(seed, plan, policy)
    assert run_simulation(config) == run_simulation(config)
