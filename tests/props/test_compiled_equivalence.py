"""Exact-equivalence suite: every compiled query == its naive oracle.

The compiled query plan (:mod:`repro.traces.compiled`) promises
*bit-identical* answers to the reference ``naive_*`` implementations on
:class:`PriceTrace` — not approximately equal, ``==`` equal. This suite
enforces the contract over random traces, windows and thresholds; any
drift here means a scheduler decision could differ between the fast and
reference paths, which the golden corpus would surface much less
legibly.
"""

import pickle

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.testkit.strategies import trace_and_lease, trace_and_time, traces

#: Thresholds spanning the strategy's price range (1e-4 .. 100) plus the
#: out-of-range extremes, so crossing tables get exercised empty and full.
thresholds = st.floats(min_value=1e-5, max_value=200.0, allow_nan=False)


def _windows(pair):
    """Expand a (trace, start, end) lease into interesting query windows."""
    trace, w0, w1 = pair
    return [
        (w0, w1),
        (None, None),
        (None, w1),
        (w0, None),
        (w0, w0),  # degenerate: both paths must raise identically
    ]


# ------------------------------------------------------------- scalar lookups
@given(trace_and_time())
def test_price_at_scalar_matches_naive(pair):
    trace, t = pair
    assert trace.price_at(t) == trace.naive_price_at(t)
    assert trace.compiled.price_at(t) == trace.naive_price_at(t)


@given(trace_and_time())
def test_price_at_clamps_match_naive(pair):
    trace, _ = pair
    for t in (trace.start - 123.0, trace.start, trace.horizon, trace.horizon + 456.0):
        assert trace.price_at(float(t)) == trace.naive_price_at(float(t))


@given(trace_and_time())
def test_next_change_after_matches_naive(pair):
    trace, t = pair
    for probe in (t, trace.start, float(trace.times[-1]), trace.horizon):
        assert trace.next_change_after(probe) == trace.naive_next_change_after(probe)


# ---------------------------------------------------------- window aggregates
@given(trace_and_lease())
def test_mean_price_matches_naive(pair):
    trace = pair[0]
    for t0, t1 in _windows(pair):
        try:
            fast = trace.mean_price(t0, t1)
        except TraceFormatError as exc:
            with pytest.raises(TraceFormatError) as err:
                trace.naive_mean_price(t0, t1)
            assert str(err.value) == str(exc)
        else:
            assert fast == trace.naive_mean_price(t0, t1)


@given(trace_and_lease())
def test_price_std_matches_naive(pair):
    trace = pair[0]
    for t0, t1 in _windows(pair):
        try:
            fast = trace.price_std(t0, t1)
        except TraceFormatError:
            with pytest.raises(TraceFormatError):
                trace.naive_price_std(t0, t1)
        else:
            assert fast == trace.naive_price_std(t0, t1)


@given(trace_and_lease(), thresholds)
def test_time_above_matches_naive(pair, threshold):
    trace = pair[0]
    for t0, t1 in _windows(pair):
        assert trace.time_above(threshold, t0, t1) == trace.naive_time_above(
            threshold, t0, t1
        )


@given(trace_and_lease())
def test_max_min_price_match_naive(pair):
    trace = pair[0]
    for t0, t1 in _windows(pair):
        try:
            fast = trace.max_price(t0, t1)
        except TraceFormatError:
            with pytest.raises(TraceFormatError):
                trace.naive_max_price(t0, t1)
        else:
            assert fast == trace.naive_max_price(t0, t1)
            assert trace.min_price(t0, t1) == trace.naive_min_price(t0, t1)


@given(trace_and_lease())
def test_window_arrays_match_segment_durations(pair):
    trace, t0, t1 = pair
    dur_f, pr_f = trace.compiled.window(t0, t1)
    dur_n, pr_n = trace._segment_durations(t0, t1)
    np.testing.assert_array_equal(dur_f, dur_n)
    np.testing.assert_array_equal(pr_f, pr_n)


# --------------------------------------------------------------- crossings
@given(traces(), thresholds)
def test_crossings_match_naive(trace, threshold):
    np.testing.assert_array_equal(
        trace.crossings_above(threshold), trace.naive_crossings_above(threshold)
    )
    np.testing.assert_array_equal(
        trace.crossings_below(threshold), trace.naive_crossings_below(threshold)
    )


@given(traces())
def test_crossings_at_exact_prices_match_naive(trace):
    # Thresholds equal to actual trace prices hit the > / <= boundary.
    for threshold in trace.prices[:5].tolist():
        np.testing.assert_array_equal(
            trace.crossings_above(threshold), trace.naive_crossings_above(threshold)
        )
        np.testing.assert_array_equal(
            trace.crossings_below(threshold), trace.naive_crossings_below(threshold)
        )


@given(trace_and_time(), thresholds)
def test_first_time_above_matches_naive(pair, threshold):
    trace, from_t = pair
    for probe in (from_t, trace.start - 50.0, trace.horizon, trace.horizon + 1.0):
        assert trace.first_time_above(threshold, probe) == trace.naive_first_time_above(
            threshold, probe
        )


@given(trace_and_time(), thresholds)
def test_first_time_at_or_below_matches_naive(pair, threshold):
    trace, from_t = pair
    for probe in (from_t, trace.start - 50.0, trace.horizon, trace.horizon + 1.0):
        assert trace.first_time_at_or_below(
            threshold, probe
        ) == trace.naive_first_time_at_or_below(threshold, probe)


@given(trace_and_time(), thresholds)
def test_last_crossing_lookups_match_filtered_naive(pair, threshold):
    trace, at = pair
    ups = trace.naive_crossings_above(threshold)
    downs = trace.naive_crossings_below(threshold)
    want_up = float(ups[ups <= at][-1]) if np.any(ups <= at) else None
    want_down = float(downs[downs <= at][-1]) if np.any(downs <= at) else None
    assert trace.compiled.last_crossing_above_at_or_before(threshold, at) == want_up
    assert trace.compiled.last_crossing_below_at_or_before(threshold, at) == want_down


# ---------------------------------------------------------- segments / slice
@given(trace_and_lease())
def test_segments_match_naive(pair):
    trace, t0, t1 = pair
    for window in ((t0, t1), (None, None), (t0, None), (None, t1), (t1, t0)):
        assert list(trace.segments(*window)) == list(trace.naive_segments(*window))


@given(trace_and_lease())
def test_slice_matches_naive_segments(pair):
    trace, t0, t1 = pair
    assume(t0 < t1)
    sub = trace.slice(t0, t1)
    segs = list(trace.naive_segments(t0, t1))
    np.testing.assert_array_equal(sub.times, np.array([s for s, _, _ in segs]))
    np.testing.assert_array_equal(sub.prices, np.array([p for _, _, p in segs]))
    assert sub.horizon == t1
    assert sub.market == trace.market and sub.region == trace.region


# --------------------------------------------------- compiled-plan lifecycle
@given(traces(), thresholds)
def test_pickle_round_trip_preserves_answers(trace, threshold):
    trace.crossings_above(threshold)  # populate a memo table pre-pickle
    clone = pickle.loads(pickle.dumps(trace))
    assert clone._compiled is None  # derived state is dropped, rebuilt lazily
    assert clone.mean_price() == trace.mean_price()
    np.testing.assert_array_equal(
        clone.crossings_above(threshold), trace.crossings_above(threshold)
    )
    assert clone.time_above(threshold) == trace.time_above(threshold)
