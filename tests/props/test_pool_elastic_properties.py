"""Property-based tests: pool and elastic-fleet invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.provider import CloudProvider
from repro.core.elastic import DemandCurve, ElasticSpotFleet
from repro.pool import PoolConfig, SpotPool, concurrent_events
from repro.simulator.engine import Engine
from repro.simulator.rng import RngStreams
from repro.traces.catalog import build_catalog
from repro.units import days, hours


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=40),
    st.floats(min_value=1.0, max_value=3600.0),
)
def test_concurrency_bounds(times, window):
    c = concurrent_events(times, window)
    assert 0 <= c <= len(times)
    if times:
        assert c >= 1
    # widening the window can only raise concurrency
    assert concurrent_events(times, window * 2) >= c


@given(
    st.integers(min_value=1, max_value=6),
    st.sampled_from(["diverse", "concentrated"]),
    st.integers(min_value=0, max_value=200),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_pool_invariants(n_services, placement, seed):
    pool = SpotPool(PoolConfig(
        n_services=n_services, placement=placement, seed=seed,
        horizon_s=days(5), regions=("us-east-1a", "us-east-1b"),
    ))
    r = pool.run()
    assert r.n_services == n_services
    assert r.total_cost >= 0
    assert 0 <= r.spare_servers_needed <= r.total_forced
    assert r.spare_servers_needed <= n_services
    assert 0 <= r.mean_unavailability_percent <= r.worst_unavailability_percent
    assert r.normalized_cost_percent < 150


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=4, max_value=10),
    st.integers(min_value=0, max_value=200),
    st.floats(min_value=0.0, max_value=hours(4)),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_elastic_invariants(base, peak, seed, lead):
    cat = build_catalog(seed=seed, horizon=days(5),
                        regions=("us-east-1a",), sizes=("small",))
    provider = CloudProvider(cat, rng=RngStreams(seed).get("prop/elastic"))
    fleet = ElasticSpotFleet(
        Engine(), provider, DemandCurve.diurnal(base=base, peak=peak),
        cat.markets(), horizon=days(5), provision_lead_s=lead,
    )
    r = fleet.run()
    assert r.total_cost >= 0
    assert 0.0 <= r.shortfall_fraction <= 1.0
    assert r.scale_ups >= base  # at least the initial fleet
    assert r.peak_on_demand_cost >= r.elastic_on_demand_cost
    # every lease was returned
    assert provider.active_leases() == []
    # the fleet can never beat the theoretical floor (min spot price ~ 0)
    assert r.total_cost <= r.peak_on_demand_cost * 1.5
