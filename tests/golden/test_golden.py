"""Golden-scenario regression: every committed scenario must reproduce its
expected report byte-for-byte (within float round-trip tolerance).

On an intentional behaviour change, refresh with ``repro-verify
--update-golden`` and review the JSON diff.
"""

import json

import pytest

from repro.testkit.golden import (
    SCENARIOS,
    check_scenarios,
    default_golden_dir,
    run_scenario,
    scenario_by_name,
    update_golden,
)


def test_corpus_shape():
    assert len(SCENARIOS) == 30
    names = [s.name for s in SCENARIOS]
    assert len(set(names)) == len(names)
    for s in SCENARIOS:
        assert s.description


def test_every_scenario_has_expected_report():
    golden = default_golden_dir()
    for s in SCENARIOS:
        assert (golden / f"{s.name}.json").exists(), (
            f"missing expected report for {s.name}; run repro-verify --update-golden"
        )


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_scenario_matches_expected(scenario):
    diffs = check_scenarios([scenario.name])
    assert diffs[scenario.name] == [], "\n".join(diffs[scenario.name])


def test_unknown_scenario_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        scenario_by_name("no-such-scenario")


def test_missing_expected_file_reports_difference(tmp_path):
    diffs = check_scenarios(["calm-single"], golden_dir=tmp_path)
    assert len(diffs["calm-single"]) == 1
    assert "no expected report" in diffs["calm-single"][0]


def test_update_golden_round_trips(tmp_path):
    written = update_golden(["calm-single"], golden_dir=tmp_path)
    assert written["calm-single"].exists()
    payload = json.loads(written["calm-single"].read_text())
    assert payload["label"] == "golden/calm-single"
    # A freshly written report matches itself.
    diffs = check_scenarios(["calm-single"], golden_dir=tmp_path)
    assert diffs["calm-single"] == []


def test_diff_reports_field_changes(tmp_path):
    written = update_golden(["calm-single"], golden_dir=tmp_path)
    payload = json.loads(written["calm-single"].read_text())
    payload["total_cost"] += 1.0
    payload["forced_migrations"] += 2
    written["calm-single"].write_text(json.dumps(payload))
    diffs = check_scenarios(["calm-single"], golden_dir=tmp_path)
    joined = "\n".join(diffs["calm-single"])
    assert "total_cost" in joined
    assert "forced_migrations" in joined


def test_run_scenario_passes_oracles():
    # run_scenario verifies by default; a red oracle would raise.
    report = run_scenario(scenario_by_name("storm-single"))
    assert report["forced_migrations"] > 0  # the storm actually bites
