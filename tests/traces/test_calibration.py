"""Unit tests for market calibrations."""

import pytest

from repro.errors import CalibrationError
from repro.traces.calibration import (
    ALL_REGIONS,
    DEFAULT_CALIBRATIONS,
    REGIONS,
    SIZES,
    MarketCalibration,
    SpikeModel,
    calibration_for,
    on_demand_price,
)


def test_all_markets_calibrated():
    assert set(DEFAULT_CALIBRATIONS) == {(r, s) for r in ALL_REGIONS for s in SIZES}


def test_paper_regions_are_a_strict_subset_of_calibrated_zones():
    # The paper's four evaluation AZs stay the single-run defaults;
    # ALL_REGIONS adds the extension zones fleet runs opt into.
    assert set(REGIONS) < set(ALL_REGIONS)
    assert "us-west-1b" in ALL_REGIONS and "us-west-1b" not in REGIONS


def test_on_demand_prices_follow_size_ladder():
    assert on_demand_price("us-east-1a", "small") == pytest.approx(0.06)
    assert on_demand_price("us-east-1a", "medium") == pytest.approx(0.12)
    assert on_demand_price("us-east-1a", "xlarge") == pytest.approx(0.48)


def test_eu_on_demand_premium():
    assert on_demand_price("eu-west-1a", "small") > on_demand_price("us-east-1a", "small")


def test_unknown_market_raises():
    with pytest.raises(CalibrationError):
        on_demand_price("mars-1a", "small")
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "tiny")


def test_calibration_override():
    cal = calibration_for("us-east-1a", "small", calm_base_frac=0.3)
    assert cal.calm_base_frac == 0.3
    # default untouched
    assert calibration_for("us-east-1a", "small").calm_base_frac != 0.3


def test_calm_level_below_on_demand_everywhere():
    for cal in DEFAULT_CALIBRATIONS.values():
        assert cal.calm_base_frac < 1.0


def test_us_east_more_excursion_prone_than_eu():
    for size in SIZES:
        east = calibration_for("us-east-1a", size)
        eu = calibration_for("eu-west-1a", size)
        assert east.expected_excursion_rate() > eu.expected_excursion_rate()


def test_expected_time_above_od_in_band():
    """us-east small should sit above on-demand ~1-4 % of the time (drives
    the pure-spot unavailability of Fig 11)."""
    cal = calibration_for("us-east-1a", "small")
    assert 0.005 < cal.expected_time_above_od_fraction() < 0.06


def test_sharp_spikes_exceed_bid_cap():
    for cal in DEFAULT_CALIBRATIONS.values():
        assert cal.sharp_spikes.peak_lo_frac > 4.0
        assert cal.sharp_spikes.sharp


def test_blips_stay_modest():
    for cal in DEFAULT_CALIBRATIONS.values():
        assert cal.blips.peak_hi_frac < cal.spikes.peak_hi_frac + 1e-9


def test_spike_model_validation():
    with pytest.raises(CalibrationError):
        SpikeModel(rate_per_hour=-1, duration_mean_s=100, duration_sigma=0.5,
                   peak_lo_frac=1.1, peak_hi_frac=2.0)
    with pytest.raises(CalibrationError):
        SpikeModel(rate_per_hour=0.1, duration_mean_s=0, duration_sigma=0.5,
                   peak_lo_frac=1.1, peak_hi_frac=2.0)
    with pytest.raises(CalibrationError):
        SpikeModel(rate_per_hour=0.1, duration_mean_s=10, duration_sigma=0.5,
                   peak_lo_frac=2.0, peak_hi_frac=1.0)


def test_market_calibration_validation():
    base = calibration_for("us-east-1a", "small")
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", calm_base_frac=1.5)
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", calm_change_rate_per_hour=0)
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", regional_shock_share=0.9,
                        global_shock_share=0.2)
    assert base.turbulent_mult >= 1.0


def test_turbulence_arithmetic():
    cal = calibration_for("us-east-1a", "small")
    f = cal.turbulent_fraction()
    assert 0 < f < 1
    # Stationary mean preserved: f*mt + (1-f)*mq == 1
    mq = cal.quiet_rate_mult()
    assert f * cal.turbulent_mult + (1 - f) * mq == pytest.approx(1.0)


def test_turbulence_validation():
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", turbulent_mult=0.5)
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", quiet_mean_s=-1)
    with pytest.raises(CalibrationError):
        # turbulent_mult too large for the turbulent fraction -> negative quiet rate
        calibration_for("us-east-1a", "small", turbulent_mult=10.0)


# ---------------------------------------------------------- serialization
def test_spike_model_dict_round_trip():
    m = SpikeModel(0.01, 4200.0, 0.9, 1.3, 3.8, sharp=False)
    assert SpikeModel.from_dict(m.to_dict()) == m


def test_spike_model_from_dict_rejects_unknown_fields():
    with pytest.raises(CalibrationError):
        SpikeModel.from_dict({"rate_per_hour": 0.01, "bogus": 1})


def test_market_calibration_dict_round_trip():
    cal = calibration_for("us-east-1a", "small")
    clone = MarketCalibration.from_dict(cal.to_dict())
    assert clone == cal


def test_market_calibration_from_dict_rejects_bad_payload():
    with pytest.raises(CalibrationError):
        MarketCalibration.from_dict({"region": "us-east-1a"})


def test_calibration_file_round_trip(tmp_path):
    from repro.traces.refit import load_calibrations, save_calibrations

    cals = {
        ("us-east-1a", "small"): calibration_for("us-east-1a", "small"),
        ("eu-west-1a", "large"): calibration_for("eu-west-1a", "large"),
    }
    path = tmp_path / "cals.json"
    save_calibrations(path, cals)
    assert load_calibrations(path) == cals


def test_load_calibrations_rejects_foreign_json(tmp_path):
    from repro.traces.refit import load_calibrations

    path = tmp_path / "x.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(CalibrationError):
        load_calibrations(path)


def test_load_calibrations_rejects_wrong_version(tmp_path):
    from repro.traces.refit import load_calibrations

    path = tmp_path / "x.json"
    path.write_text('{"format": "repro-calibrations", "version": 99, "markets": []}')
    with pytest.raises(CalibrationError):
        load_calibrations(path)


# ------------------------------------------------------------ refit closure
def test_fit_market_rejects_degenerate_inputs():
    from repro.traces.catalog import build_catalog
    from repro.traces.catalog import MarketKey
    from repro.traces.refit import fit_market
    from repro.units import days

    catalog = build_catalog(1, days(2), regions=("us-east-1a",), sizes=("small",))
    trace = catalog.trace(MarketKey("us-east-1a", "small"))
    with pytest.raises(CalibrationError):
        fit_market(trace, 0.0)


def test_fit_market_output_always_validates():
    """Every fitted field lands inside MarketCalibration's validated
    ranges (construction would raise otherwise)."""
    from repro.traces.catalog import build_catalog
    from repro.traces.refit import fit_market
    from repro.units import days

    for seed in (1, 2, 3):
        catalog = build_catalog(
            seed, days(20), regions=("us-east-1a", "eu-west-1a"), sizes=("small", "xlarge")
        )
        for key in catalog.markets():
            cal = fit_market(
                catalog.trace(key), catalog.on_demand_price(key), key.region, key.size
            )
            assert isinstance(cal, MarketCalibration)
            assert cal.region == key.region and cal.size == key.size


def test_refit_closure_fit_generate_refit():
    """The acceptance closure: fit a generated archive, regenerate from
    the fit, and require the regenerated traces to reproduce the source's
    excursion rate, calm-price quantiles and correlation sign within
    fixed bands."""
    import numpy as np

    from repro.traces.catalog import build_catalog
    from repro.traces.generator import CALM_CEILING_FRAC
    from repro.traces.refit import fit_catalog
    from repro.traces.statistics import (
        calm_profile,
        excursion_episodes,
        trace_correlation,
        weighted_quantile,
    )
    from repro.units import days

    regions = ("us-east-1a", "us-east-1b")
    sizes = ("small", "large")
    horizon = days(40)
    source = build_catalog(7, horizon, regions=regions, sizes=sizes)
    fitted = fit_catalog(source, grid_step_s=900.0)
    regen = build_catalog(8, horizon, regions=regions, sizes=sizes, calibrations=fitted)

    for key in source.markets():
        od = source.on_demand_price(key)
        src, new = source.trace(key), regen.trace(key)

        # Excursion (revocation-pressure) rate within a 3x band either way.
        n_src = max(len(excursion_episodes(src, od)), 1)
        n_new = max(len(excursion_episodes(new, od)), 1)
        assert 0.3 <= n_new / n_src <= 3.0, (key, n_src, n_new)

        # Calm-price quantiles: the spot discount the paper's economics
        # hinge on survives the fit -> generate round trip.
        d_src, p_src = calm_profile(src, CALM_CEILING_FRAC * od)
        d_new, p_new = calm_profile(new, CALM_CEILING_FRAC * od)
        assert p_src.size > 0 and p_new.size > 0
        med_src = weighted_quantile(p_src, d_src, 0.5)
        med_new = weighted_quantile(p_new, d_new, 0.5)
        assert 0.7 <= med_new / med_src <= 1.4, (key, med_src, med_new)
        for q, lo, hi in ((0.25, 0.6, 1.6), (0.75, 0.6, 1.6)):
            r = weighted_quantile(p_new, d_new, q) / weighted_quantile(p_src, d_src, q)
            assert lo <= r <= hi, (key, q, r)

    # Cross-market correlation keeps its sign: the fitted shock shares
    # regenerate positively correlated intra-region markets.
    a, b = (k for k in source.markets() if k.region == "us-east-1a")
    rho_src = trace_correlation(source.trace(a), source.trace(b), step=900.0)
    rho_new = trace_correlation(regen.trace(a), regen.trace(b), step=900.0)
    assert rho_src > 0.0
    assert rho_new > 0.0


def test_fit_catalog_shares_track_correlation_structure():
    """Shock shares come from the observed correlations and stay inside
    the validated budget."""
    from repro.traces.catalog import build_catalog
    from repro.traces.refit import fit_catalog
    from repro.units import days

    catalog = build_catalog(
        11, days(30), regions=("us-east-1a", "us-west-1a"), sizes=("small", "medium")
    )
    fitted = fit_catalog(catalog, grid_step_s=900.0)
    shares = {(c.regional_shock_share, c.global_shock_share) for c in fitted.values()}
    assert len(shares) == 1  # shares are catalog-wide, not per-market
    regional, global_ = shares.pop()
    assert 0.0 <= regional <= 0.6
    assert 0.0 <= global_ <= 0.3
    assert regional + global_ <= 0.9


def test_fit_market_sustained_high_fallback():
    """A trace living entirely above the calm ceiling still fits to a
    valid calibration anchored just under the ceiling."""
    import numpy as np

    from repro.traces.refit import fit_market
    from repro.traces.trace import PriceTrace
    from repro.units import days

    rng = np.random.default_rng(0)
    times = np.sort(rng.uniform(0.0, days(2) - 3600.0, size=50))
    times[0] = 0.0
    prices = rng.uniform(0.058, 0.065, size=50)  # always >= 0.92 * od
    trace = PriceTrace(times, prices, days(2), market="small", region="us-east-1a")
    cal = fit_market(trace, 0.06)
    assert cal.calm_base_frac < 0.92
    assert isinstance(cal, MarketCalibration)
