"""Unit tests for market calibrations."""

import pytest

from repro.errors import CalibrationError
from repro.traces.calibration import (
    ALL_REGIONS,
    DEFAULT_CALIBRATIONS,
    REGIONS,
    SIZES,
    MarketCalibration,
    SpikeModel,
    calibration_for,
    on_demand_price,
)


def test_all_markets_calibrated():
    assert set(DEFAULT_CALIBRATIONS) == {(r, s) for r in ALL_REGIONS for s in SIZES}


def test_paper_regions_are_a_strict_subset_of_calibrated_zones():
    # The paper's four evaluation AZs stay the single-run defaults;
    # ALL_REGIONS adds the extension zones fleet runs opt into.
    assert set(REGIONS) < set(ALL_REGIONS)
    assert "us-west-1b" in ALL_REGIONS and "us-west-1b" not in REGIONS


def test_on_demand_prices_follow_size_ladder():
    assert on_demand_price("us-east-1a", "small") == pytest.approx(0.06)
    assert on_demand_price("us-east-1a", "medium") == pytest.approx(0.12)
    assert on_demand_price("us-east-1a", "xlarge") == pytest.approx(0.48)


def test_eu_on_demand_premium():
    assert on_demand_price("eu-west-1a", "small") > on_demand_price("us-east-1a", "small")


def test_unknown_market_raises():
    with pytest.raises(CalibrationError):
        on_demand_price("mars-1a", "small")
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "tiny")


def test_calibration_override():
    cal = calibration_for("us-east-1a", "small", calm_base_frac=0.3)
    assert cal.calm_base_frac == 0.3
    # default untouched
    assert calibration_for("us-east-1a", "small").calm_base_frac != 0.3


def test_calm_level_below_on_demand_everywhere():
    for cal in DEFAULT_CALIBRATIONS.values():
        assert cal.calm_base_frac < 1.0


def test_us_east_more_excursion_prone_than_eu():
    for size in SIZES:
        east = calibration_for("us-east-1a", size)
        eu = calibration_for("eu-west-1a", size)
        assert east.expected_excursion_rate() > eu.expected_excursion_rate()


def test_expected_time_above_od_in_band():
    """us-east small should sit above on-demand ~1-4 % of the time (drives
    the pure-spot unavailability of Fig 11)."""
    cal = calibration_for("us-east-1a", "small")
    assert 0.005 < cal.expected_time_above_od_fraction() < 0.06


def test_sharp_spikes_exceed_bid_cap():
    for cal in DEFAULT_CALIBRATIONS.values():
        assert cal.sharp_spikes.peak_lo_frac > 4.0
        assert cal.sharp_spikes.sharp


def test_blips_stay_modest():
    for cal in DEFAULT_CALIBRATIONS.values():
        assert cal.blips.peak_hi_frac < cal.spikes.peak_hi_frac + 1e-9


def test_spike_model_validation():
    with pytest.raises(CalibrationError):
        SpikeModel(rate_per_hour=-1, duration_mean_s=100, duration_sigma=0.5,
                   peak_lo_frac=1.1, peak_hi_frac=2.0)
    with pytest.raises(CalibrationError):
        SpikeModel(rate_per_hour=0.1, duration_mean_s=0, duration_sigma=0.5,
                   peak_lo_frac=1.1, peak_hi_frac=2.0)
    with pytest.raises(CalibrationError):
        SpikeModel(rate_per_hour=0.1, duration_mean_s=10, duration_sigma=0.5,
                   peak_lo_frac=2.0, peak_hi_frac=1.0)


def test_market_calibration_validation():
    base = calibration_for("us-east-1a", "small")
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", calm_base_frac=1.5)
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", calm_change_rate_per_hour=0)
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", regional_shock_share=0.9,
                        global_shock_share=0.2)
    assert base.turbulent_mult >= 1.0


def test_turbulence_arithmetic():
    cal = calibration_for("us-east-1a", "small")
    f = cal.turbulent_fraction()
    assert 0 < f < 1
    # Stationary mean preserved: f*mt + (1-f)*mq == 1
    mq = cal.quiet_rate_mult()
    assert f * cal.turbulent_mult + (1 - f) * mq == pytest.approx(1.0)


def test_turbulence_validation():
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", turbulent_mult=0.5)
    with pytest.raises(CalibrationError):
        calibration_for("us-east-1a", "small", quiet_mean_s=-1)
    with pytest.raises(CalibrationError):
        # turbulent_mult too large for the turbulent fraction -> negative quiet rate
        calibration_for("us-east-1a", "small", turbulent_mult=10.0)
