"""Edge-case coverage for AWS-format CSV trace IO.

Complements tests/traces/test_loader.py with the hostile-input corners:
timezone variants, blank/whitespace rows, header-only files, combined
out-of-order + duplicate timestamps, and error-message line numbers.
"""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.loader import (
    format_aws_timestamp,
    load_aws_csv,
    parse_aws_timestamp,
)

HEADER = "Timestamp,InstanceType,ProductDescription,AvailabilityZone,SpotPrice\n"


def row(ts, price, itype="m1.small", az="us-east-1a"):
    return f"{ts},{itype},Linux/UNIX,{az},{price}\n"


# ---------------------------------------------------------------- timestamps


def test_naive_timestamp_treated_as_utc():
    assert parse_aws_timestamp("2015-02-01T00:00:00") == parse_aws_timestamp(
        "2015-02-01T00:00:00Z"
    )


def test_explicit_utc_offset_matches_z_suffix():
    assert parse_aws_timestamp("2015-02-01T05:00:00+05:00") == parse_aws_timestamp(
        "2015-02-01T00:00:00Z"
    )


def test_negative_offset_handled():
    assert parse_aws_timestamp("2015-01-31T19:00:00-05:00") == parse_aws_timestamp(
        "2015-02-01T00:00:00Z"
    )


def test_fractional_seconds_parse():
    base = parse_aws_timestamp("2015-02-01T00:00:00Z")
    assert parse_aws_timestamp("2015-02-01T00:00:00.500Z") == pytest.approx(base + 0.5)


def test_surrounding_whitespace_stripped():
    assert parse_aws_timestamp("  2015-02-01T00:00:00Z  ") == parse_aws_timestamp(
        "2015-02-01T00:00:00Z"
    )


@pytest.mark.parametrize("bad", ["", "not-a-date", "2015-13-40T00:00:00Z", "12345"])
def test_malformed_timestamps_rejected(bad):
    with pytest.raises(TraceFormatError, match="bad timestamp"):
        parse_aws_timestamp(bad)


def test_format_timestamp_is_z_suffixed():
    assert format_aws_timestamp(0.0) == "1970-01-01T00:00:00Z"


def test_mixed_timezone_styles_in_one_file():
    csv = (
        HEADER
        + row("2015-02-01T00:00:00Z", 0.01)
        + row("2015-02-01T02:00:00+01:00", 0.02)  # == 01:00:00Z
        + row("2015-02-01T02:00:00", 0.03)  # naive == 02:00:00Z
    )
    t = load_aws_csv(io.StringIO(csv))
    assert list(t.times) == [0.0, 3600.0, 7200.0]
    assert list(t.prices) == [0.01, 0.02, 0.03]


# ------------------------------------------------------------ malformed rows


def test_blank_lines_skipped():
    csv = HEADER + row("2015-02-01T00:00:00Z", 0.01) + "\n" + " , , , , \n" + row(
        "2015-02-01T01:00:00Z", 0.02
    )
    t = load_aws_csv(io.StringIO(csv))
    assert len(t) == 2


def test_fields_with_padding_are_stripped():
    csv = HEADER + " 2015-02-01T00:00:00Z , m1.small , Linux/UNIX , us-east-1a , 0.01 \n"
    t = load_aws_csv(io.StringIO(csv))
    assert t.market == "m1.small"
    assert t.price_at(0.0) == pytest.approx(0.01)


def test_too_many_fields_rejected_with_line_number():
    csv = HEADER + row("2015-02-01T00:00:00Z", 0.01) + "2015-02-01T01:00:00Z,m1.small,Linux/UNIX,us-east-1a,0.02,extra\n"
    with pytest.raises(TraceFormatError, match="line 3"):
        load_aws_csv(io.StringIO(csv))


def test_bad_price_reports_line_number():
    csv = HEADER + row("2015-02-01T00:00:00Z", 0.01) + row("2015-02-01T01:00:00Z", "free")
    with pytest.raises(TraceFormatError, match="line 3.*bad price"):
        load_aws_csv(io.StringIO(csv))


def test_bad_timestamp_inside_file_rejected():
    csv = HEADER + row("yesterday", 0.01)
    with pytest.raises(TraceFormatError, match="bad timestamp"):
        load_aws_csv(io.StringIO(csv))


def test_negative_price_rejected_by_trace_validation():
    csv = HEADER + row("2015-02-01T00:00:00Z", -0.01)
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(csv))


def test_header_whitespace_tolerated():
    csv = "Timestamp, InstanceType ,ProductDescription,AvailabilityZone,SpotPrice\n" + row(
        "2015-02-01T00:00:00Z", 0.01
    )
    assert len(load_aws_csv(io.StringIO(csv))) == 1


def test_header_wrong_order_rejected():
    csv = "InstanceType,Timestamp,ProductDescription,AvailabilityZone,SpotPrice\n"
    with pytest.raises(TraceFormatError, match="unexpected header"):
        load_aws_csv(io.StringIO(csv))


# ------------------------------------------------------------- empty inputs


def test_truly_empty_stream_rejected():
    with pytest.raises(TraceFormatError, match="empty trace file"):
        load_aws_csv(io.StringIO(""))


def test_header_only_file_rejected():
    with pytest.raises(TraceFormatError, match="no records"):
        load_aws_csv(io.StringIO(HEADER))


def test_header_and_blank_lines_only_rejected():
    with pytest.raises(TraceFormatError, match="no records"):
        load_aws_csv(io.StringIO(HEADER + "\n\n"))


def test_empty_file_on_disk_rejected(tmp_path):
    p = tmp_path / "empty.csv"
    p.write_text("")
    with pytest.raises(TraceFormatError, match="empty trace file"):
        load_aws_csv(p)


# --------------------------------------------------- ordering and duplicates


def test_out_of_order_with_duplicates_keeps_last_record():
    csv = (
        HEADER
        + row("2015-02-01T02:00:00Z", 0.03)
        + row("2015-02-01T00:00:00Z", 0.01)
        + row("2015-02-01T02:00:00Z", 0.04)  # later record for same instant wins
        + row("2015-02-01T01:00:00Z", 0.02)
    )
    t = load_aws_csv(io.StringIO(csv))
    assert np.all(np.diff(t.times) > 0)
    assert len(t) == 3
    assert t.price_at(2 * 3600.0) == pytest.approx(0.04)


def test_rebase_keeps_relative_spacing():
    csv = HEADER + row("2015-06-01T10:00:00Z", 0.01) + row("2015-06-01T13:30:00Z", 0.02)
    t = load_aws_csv(io.StringIO(csv))
    assert list(t.times) == [0.0, 3.5 * 3600.0]


def test_default_horizon_is_one_hour_past_last_record():
    csv = HEADER + row("2015-02-01T00:00:00Z", 0.01) + row("2015-02-01T02:00:00Z", 0.02)
    t = load_aws_csv(io.StringIO(csv))
    assert t.horizon == pytest.approx(2 * 3600.0 + 3600.0)


def test_filters_compose():
    csv = (
        HEADER
        + row("2015-02-01T00:00:00Z", 0.01, itype="m1.small", az="us-east-1a")
        + row("2015-02-01T00:00:00Z", 0.02, itype="m1.small", az="us-east-1b")
        + row("2015-02-01T00:00:00Z", 0.03, itype="m1.large", az="us-east-1a")
    )
    t = load_aws_csv(io.StringIO(csv), instance_type="m1.small", availability_zone="us-east-1b")
    assert len(t) == 1
    assert t.price_at(0.0) == pytest.approx(0.02)
