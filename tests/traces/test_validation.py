"""Tests for trace validation against calibrations."""

import numpy as np
import pytest

from repro.traces.calibration import DEFAULT_CALIBRATIONS, calibration_for
from repro.traces.generator import generate_trace
from repro.traces.trace import PriceTrace
from repro.traces.validation import validate_trace
from repro.units import days

CAL = calibration_for("us-east-1a", "small")


def test_generated_traces_validate_against_their_calibration():
    """The generator must satisfy its own calibration's promises."""
    for seed in range(4):
        trace = generate_trace(CAL, days(30), seed=seed)
        report = validate_trace(trace, CAL)
        assert report.ok, report.describe()


def test_every_market_self_validates():
    for (region, size), cal in DEFAULT_CALIBRATIONS.items():
        trace = generate_trace(cal, days(30), seed=11)
        report = validate_trace(trace, cal)
        assert report.ok, report.describe()


def test_wrong_units_detected():
    """A trace in cents instead of dollars fails the level checks."""
    trace = generate_trace(CAL, days(30), seed=1).scale_prices(100.0)
    report = validate_trace(trace, CAL)
    assert not report.ok
    assert any("calm price" in c.name for c in report.failures())


def test_mislabeled_market_detected():
    """An xlarge trace validated against the small calibration fails."""
    xl = calibration_for("us-east-1a", "xlarge")
    trace = generate_trace(xl, days(30), seed=1)
    report = validate_trace(trace, CAL)
    assert not report.ok


def test_constant_trace_fails_excursion_checks():
    trace = PriceTrace.constant(CAL.calm_base_frac * CAL.on_demand, 0.0, days(30))
    report = validate_trace(trace, CAL)
    assert not report.ok
    failing = {c.name for c in report.failures()}
    assert any("excursions" in n or "above on-demand" in n for n in failing)


def test_describe_output():
    trace = generate_trace(CAL, days(30), seed=2)
    text = validate_trace(trace, CAL).describe()
    assert "validation of us-east-1a/small" in text
    assert "[ok " in text


def test_tolerances_widen_bands():
    trace = generate_trace(CAL, days(30), seed=3).scale_prices(1.8)
    strict = validate_trace(trace, CAL, level_tolerance=1.2)
    loose = validate_trace(trace, CAL, level_tolerance=3.0)
    assert not strict.ok
    assert len(loose.failures()) <= len(strict.failures())
