"""Unit tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.simulator.rng import RngStreams
from repro.traces.calibration import calibration_for
from repro.traces.generator import TraceGenerator, generate_trace, sample_excursions
from repro.traces.statistics import time_above_fraction
from repro.units import days


CAL = calibration_for("us-east-1a", "small")


def test_deterministic_given_seed():
    a = generate_trace(CAL, days(10), seed=3)
    b = generate_trace(CAL, days(10), seed=3)
    assert np.allclose(a.times, b.times)
    assert np.allclose(a.prices, b.prices)


def test_different_seeds_differ():
    a = generate_trace(CAL, days(10), seed=3)
    b = generate_trace(CAL, days(10), seed=4)
    assert len(a) != len(b) or not np.allclose(a.prices[: min(len(a), len(b))],
                                               b.prices[: min(len(a), len(b))])


def test_trace_invariants():
    t = generate_trace(CAL, days(30), seed=5)
    assert t.start == 0.0
    assert t.horizon == days(30)
    assert np.all(np.diff(t.times) > 0)
    assert np.all(t.prices > 0)
    # consecutive prices differ (compressed)
    assert np.all(np.diff(t.prices) != 0)


def test_price_floor_respected():
    t = generate_trace(CAL, days(30), seed=5)
    floor = CAL.price_floor_frac * CAL.on_demand
    assert t.min_price() >= floor - 1e-12


def test_calm_level_well_below_on_demand():
    t = generate_trace(CAL, days(30), seed=5)
    assert t.mean_price() < 0.6 * CAL.on_demand


def test_some_excursions_cross_on_demand():
    t = generate_trace(CAL, days(30), seed=5)
    assert t.max_price() > CAL.on_demand
    frac = time_above_fraction(t, CAL.on_demand)
    assert 0.001 < frac < 0.10


def test_sharp_spikes_can_cross_bid_cap():
    """Over several seeds, at least one sharp spike must exceed 4x od."""
    crossed = 0
    for seed in range(8):
        t = generate_trace(CAL, days(30), seed=seed)
        if t.max_price() > 4.0 * CAL.on_demand:
            crossed += 1
    assert crossed >= 3


def test_no_excursions_when_rates_zero():
    from dataclasses import replace
    quiet = replace(
        CAL,
        blips=replace(CAL.blips, rate_per_hour=0.0),
        spikes=replace(CAL.spikes, rate_per_hour=0.0),
        sharp_spikes=replace(CAL.sharp_spikes, rate_per_hour=0.0),
    )
    t = generate_trace(quiet, days(30), seed=1)
    # calm leg is clipped below on-demand
    assert t.max_price() <= 0.92 * CAL.on_demand + 1e-12


def test_change_rate_roughly_matches_calm_rate():
    t = generate_trace(CAL, days(30), seed=2)
    changes_per_hour = len(t) / (30 * 24)
    # calm repricing at 4/hr dominates the change count
    assert 2.0 < changes_per_hour < 8.0


def test_sample_excursions_respects_horizon():
    rng = np.random.default_rng(0)
    starts = np.array([100.0, 5000.0])
    exc = sample_excursions(rng, CAL.spikes, starts, CAL.on_demand, horizon=6000.0,
                            calm_level=0.015)
    for e in exc:
        assert e.end <= 6000.0
        assert e.start < e.end


def test_sample_excursions_empty():
    rng = np.random.default_rng(0)
    assert sample_excursions(rng, CAL.spikes, np.array([]), CAL.on_demand, 100.0, 0.01) == []


def test_sharp_excursion_jumps_to_peak():
    rng = np.random.default_rng(0)
    exc = sample_excursions(
        rng, CAL.sharp_spikes, np.array([100.0]), CAL.on_demand, days(1), 0.015
    )[0]
    # first step is already at (or essentially at) the peak
    assert exc.step_prices[0] >= 4.0 * CAL.on_demand


def test_gradual_excursion_ramps():
    rng = np.random.default_rng(1)
    exc = sample_excursions(
        rng, CAL.spikes, np.array([100.0]), CAL.on_demand, days(1), 0.015
    )[0]
    assert exc.step_prices[0] < exc.peak


def test_envelope_outside_window_is_neg_inf():
    rng = np.random.default_rng(0)
    exc = sample_excursions(
        rng, CAL.spikes, np.array([100.0]), CAL.on_demand, days(1), 0.015
    )[0]
    vals = exc.envelope_at(np.array([0.0, exc.start, exc.end + 1.0]))
    assert vals[0] == -np.inf
    assert vals[1] > 0
    assert vals[2] == -np.inf


def test_shared_streams_induce_shared_events():
    """Two markets of a region share regional shock arrivals."""
    streams = RngStreams(77)
    gen = TraceGenerator(streams, days(30))
    a = gen._shared_starts("us-east-1a", "spikes")
    b = gen._shared_starts("us-east-1a", "spikes")
    assert a is b  # cached
    g = gen._shared_starts("global", "spikes")
    assert g is gen._shared_starts("global", "spikes")


def test_turbulence_intervals_within_horizon():
    streams = RngStreams(5)
    gen = TraceGenerator(streams, days(30))
    iv = gen._turbulence_intervals(CAL)
    for s, e in iv:
        assert 0 <= s <= e <= days(30)


def test_horizon_too_short_rejected():
    from repro.errors import CalibrationError
    with pytest.raises(CalibrationError):
        TraceGenerator(RngStreams(1), horizon=100.0)
