"""Unit tests for trace statistics."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.statistics import (
    correlation_matrix,
    mean_pairwise_correlation,
    summarize_trace,
    time_above_fraction,
    trace_correlation,
)
from repro.traces.trace import PriceTrace


def mk(times, prices, horizon):
    return PriceTrace(np.array(times, float), np.array(prices, float), horizon)


def test_identical_traces_correlate_fully():
    t = mk([0, 1000, 2000, 3000], [1, 2, 1, 3], 10000)
    assert trace_correlation(t, t) == pytest.approx(1.0)


def test_anti_correlated():
    a = mk([0, 5000], [1.0, 2.0], 10000)
    b = mk([0, 5000], [2.0, 1.0], 10000)
    assert trace_correlation(a, b) == pytest.approx(-1.0)


def test_constant_trace_correlation_zero():
    a = mk([0], [1.0], 10000)
    b = mk([0, 5000], [1.0, 2.0], 10000)
    assert trace_correlation(a, b) == 0.0


def test_non_overlapping_raises():
    a = mk([0], [1.0], 500)
    b = mk([0], [1.0], 10000)
    with pytest.raises(TraceError):
        trace_correlation(a, b, step=400)


def test_correlation_matrix_shape_and_symmetry():
    traces = [
        mk([0, 3000], [1.0, 2.0], 10000),
        mk([0, 5000], [2.0, 1.0], 10000),
        mk([0, 2000], [1.0, 3.0], 10000),
    ]
    m = correlation_matrix(traces)
    assert m.shape == (3, 3)
    assert np.allclose(m, m.T)
    assert np.allclose(np.diag(m), 1.0)


def test_correlation_matrix_needs_two():
    with pytest.raises(TraceError):
        correlation_matrix([mk([0], [1.0], 1000)])


def test_mean_pairwise_correlation_bounds():
    traces = [
        mk([0, 3000], [1.0, 2.0], 10000),
        mk([0, 3000], [1.0, 2.0], 10000),
        mk([0, 3000], [2.0, 1.0], 10000),
    ]
    v = mean_pairwise_correlation(traces)
    assert -1.0 <= v <= 1.0


def test_time_above_fraction():
    t = mk([0, 2500], [1.0, 5.0], 10000)
    assert time_above_fraction(t, 2.0) == pytest.approx(0.75)
    assert time_above_fraction(t, 10.0) == 0.0


def test_summarize_trace_fields():
    t = mk([0, 5000], [0.02, 0.10], 10000)
    t = PriceTrace(t.times, t.prices, t.horizon, market="small", region="us-east-1a")
    s = summarize_trace(t, on_demand=0.06)
    assert s.market == "small"
    assert s.mean_price == pytest.approx(0.06)
    assert s.max_price == 0.10
    assert s.min_price == 0.02
    assert s.frac_above_od == pytest.approx(0.5)
    assert s.excursions_above_od == 1
    assert s.n_changes == 2
    assert s.duration_hours == pytest.approx(10000 / 3600)
    assert len(s.row()) == 6
