"""Unit tests for the trace catalog."""

import pytest

from repro.errors import CalibrationError
from repro.traces.calibration import REGIONS, SIZES, calibration_for
from repro.traces.catalog import MarketKey, TraceCatalog, build_catalog
from repro.traces.trace import PriceTrace
from repro.units import days


def test_build_full_catalog(month_catalog):
    assert len(month_catalog) == len(REGIONS) * len(SIZES)
    assert month_catalog.regions() == sorted(REGIONS)


def test_markets_sorted(month_catalog):
    ms = month_catalog.markets()
    assert ms == sorted(ms)


def test_markets_in_region(month_catalog):
    ms = month_catalog.markets_in_region("us-east-1a")
    assert len(ms) == len(SIZES)
    assert all(k.region == "us-east-1a" for k in ms)


def test_on_demand_prices_present(month_catalog):
    for key in month_catalog:
        assert month_catalog.on_demand_price(key) > 0


def test_unknown_market_raises(month_catalog):
    bogus = MarketKey("nowhere-1a", "small")
    with pytest.raises(CalibrationError):
        month_catalog.trace(bogus)
    with pytest.raises(CalibrationError):
        month_catalog.on_demand_price(bogus)
    assert bogus not in month_catalog


def test_restricted_subcatalog(month_catalog):
    keys = month_catalog.markets_in_region("eu-west-1a")
    sub = month_catalog.restricted(keys)
    assert len(sub) == len(SIZES)
    assert sub.regions() == ["eu-west-1a"]


def test_subset_build():
    cat = build_catalog(seed=1, horizon=days(5), regions=("us-west-1a",), sizes=("small", "large"))
    assert len(cat) == 2


def test_catalog_determinism():
    a = build_catalog(seed=42, horizon=days(5), regions=("us-east-1a",), sizes=("small",))
    b = build_catalog(seed=42, horizon=days(5), regions=("us-east-1a",), sizes=("small",))
    ka = a.markets()[0]
    import numpy as np
    assert np.allclose(a.trace(ka).prices, b.trace(ka).prices)


def test_single_market_matches_catalog_generation():
    """generate_trace and build_catalog agree for the same seed."""
    import numpy as np
    from repro.traces.generator import generate_trace
    cal = calibration_for("us-east-1a", "small")
    solo = generate_trace(cal, days(5), seed=42)
    cat = build_catalog(seed=42, horizon=days(5), regions=("us-east-1a",), sizes=("small",))
    from_cat = cat.trace(MarketKey("us-east-1a", "small"))
    assert np.allclose(solo.prices, from_cat.prices)


def test_calibration_overrides_respected():
    cal = calibration_for("us-east-1a", "small", calm_base_frac=0.08)
    cat = build_catalog(
        seed=1, horizon=days(10), regions=("us-east-1a",), sizes=("small",),
        calibrations={("us-east-1a", "small"): cal},
    )
    t = cat.trace(MarketKey("us-east-1a", "small"))
    assert t.mean_price() < 0.25 * 0.06


def test_mismatched_horizon_rejected():
    key = MarketKey("us-east-1a", "small")
    t = PriceTrace.constant(0.02, 0.0, 100.0)
    with pytest.raises(CalibrationError):
        TraceCatalog({key: t}, {key: 0.06}, horizon=200.0)


def test_empty_catalog_rejected():
    with pytest.raises(CalibrationError):
        TraceCatalog({}, {}, horizon=100.0)


def test_missing_on_demand_rejected():
    key = MarketKey("us-east-1a", "small")
    t = PriceTrace.constant(0.02, 0.0, 100.0)
    with pytest.raises(CalibrationError):
        TraceCatalog({key: t}, {}, horizon=100.0)


def test_market_key_ordering_and_str():
    a = MarketKey("us-east-1a", "small")
    b = MarketKey("us-west-1a", "small")
    assert a < b
    assert str(a) == "us-east-1a/small"
