"""Unit tests for AWS-format CSV trace IO."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.calibration import calibration_for
from repro.traces.generator import generate_trace
from repro.traces.loader import (
    format_aws_timestamp,
    load_aws_csv,
    parse_aws_timestamp,
    roundtrip_equal,
    save_aws_csv,
)
from repro.units import days

SAMPLE = """Timestamp,InstanceType,ProductDescription,AvailabilityZone,SpotPrice
2015-02-01T00:00:00Z,m1.small,Linux/UNIX,us-east-1a,0.0071
2015-02-01T01:30:00Z,m1.small,Linux/UNIX,us-east-1a,0.0082
2015-02-01T03:00:00Z,m1.small,Linux/UNIX,us-east-1a,0.0065
"""


def test_parse_timestamp_roundtrip():
    ts = "2015-02-01T12:34:56Z"
    assert format_aws_timestamp(parse_aws_timestamp(ts)) == ts


def test_parse_timestamp_rejects_garbage():
    with pytest.raises(TraceFormatError):
        parse_aws_timestamp("yesterday")


def test_load_basic():
    t = load_aws_csv(io.StringIO(SAMPLE))
    assert len(t) == 3
    assert t.start == 0.0  # rebased
    assert t.price_at(0) == pytest.approx(0.0071)
    assert t.price_at(2 * 3600) == pytest.approx(0.0082)
    assert t.market == "m1.small"
    assert t.region == "us-east-1a"


def test_load_without_rebase():
    t = load_aws_csv(io.StringIO(SAMPLE), rebase_to_zero=False)
    assert t.start == parse_aws_timestamp("2015-02-01T00:00:00Z")


def test_load_with_horizon():
    t = load_aws_csv(io.StringIO(SAMPLE), horizon=4 * 3600.0)
    assert t.horizon == 4 * 3600.0


def test_load_empty_raises():
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(""))


def test_load_bad_header_raises():
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO("a,b,c\n1,2,3\n"))


def test_load_bad_price_raises():
    bad = SAMPLE + "2015-02-01T04:00:00Z,m1.small,Linux/UNIX,us-east-1a,cheap\n"
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(bad))


def test_load_short_row_raises():
    bad = SAMPLE + "2015-02-01T04:00:00Z,m1.small\n"
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(bad))


def test_multi_market_requires_filter():
    mixed = SAMPLE + "2015-02-01T02:00:00Z,m1.large,Linux/UNIX,us-east-1a,0.026\n"
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(mixed))
    t = load_aws_csv(io.StringIO(mixed), instance_type="m1.large")
    assert len(t) == 1


def test_filter_no_match_raises():
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(SAMPLE), availability_zone="eu-west-1a")


def test_unsorted_input_sorted():
    lines = SAMPLE.strip().split("\n")
    shuffled = "\n".join([lines[0], lines[3], lines[1], lines[2]]) + "\n"
    t = load_aws_csv(io.StringIO(shuffled))
    assert np.all(np.diff(t.times) > 0)


def test_duplicate_timestamps_keep_last():
    dup = SAMPLE + "2015-02-01T03:00:00Z,m1.small,Linux/UNIX,us-east-1a,0.0100\n"
    t = load_aws_csv(io.StringIO(dup))
    assert len(t) == 3


def test_roundtrip_generated_trace(tmp_path):
    cal = calibration_for("us-east-1a", "small")
    original = generate_trace(cal, days(5), seed=9)
    path = tmp_path / "trace.csv"
    save_aws_csv(original, path, instance_type="m1.small", availability_zone="us-east-1a")
    loaded = load_aws_csv(path, horizon=original.horizon)
    # Timestamps serialize at 1 s granularity, so two changes inside one
    # second may merge; the step function must still agree off those edges.
    assert abs(len(loaded) - len(original)) <= 3
    grid = np.arange(0.0, original.horizon, 600.0) + 2.0
    assert np.allclose(loaded.resample(grid), original.resample(grid), atol=1e-6)


def test_roundtrip_equal_helper():
    t = load_aws_csv(io.StringIO(SAMPLE))
    assert roundtrip_equal(t, t)


def test_save_to_stream():
    t = load_aws_csv(io.StringIO(SAMPLE))
    buf = io.StringIO()
    save_aws_csv(t, buf)
    buf.seek(0)
    again = load_aws_csv(buf, horizon=t.horizon)
    assert roundtrip_equal(t, again, tol=1.0)
