"""Unit tests for AWS-format CSV trace IO."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.calibration import calibration_for
from repro.traces.generator import generate_trace
from repro.traces.loader import (
    format_aws_timestamp,
    load_aws_csv,
    parse_aws_timestamp,
    roundtrip_equal,
    save_aws_csv,
)
from repro.units import days

SAMPLE = """Timestamp,InstanceType,ProductDescription,AvailabilityZone,SpotPrice
2015-02-01T00:00:00Z,m1.small,Linux/UNIX,us-east-1a,0.0071
2015-02-01T01:30:00Z,m1.small,Linux/UNIX,us-east-1a,0.0082
2015-02-01T03:00:00Z,m1.small,Linux/UNIX,us-east-1a,0.0065
"""


def test_parse_timestamp_roundtrip():
    ts = "2015-02-01T12:34:56Z"
    assert format_aws_timestamp(parse_aws_timestamp(ts)) == ts


def test_parse_timestamp_rejects_garbage():
    with pytest.raises(TraceFormatError):
        parse_aws_timestamp("yesterday")


def test_load_basic():
    t = load_aws_csv(io.StringIO(SAMPLE))
    assert len(t) == 3
    assert t.start == 0.0  # rebased
    assert t.price_at(0) == pytest.approx(0.0071)
    assert t.price_at(2 * 3600) == pytest.approx(0.0082)
    assert t.market == "m1.small"
    assert t.region == "us-east-1a"


def test_load_without_rebase():
    t = load_aws_csv(io.StringIO(SAMPLE), rebase_to_zero=False)
    assert t.start == parse_aws_timestamp("2015-02-01T00:00:00Z")


def test_load_with_horizon():
    t = load_aws_csv(io.StringIO(SAMPLE), horizon=4 * 3600.0)
    assert t.horizon == 4 * 3600.0


def test_load_empty_raises():
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(""))


def test_load_bad_header_raises():
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO("a,b,c\n1,2,3\n"))


def test_load_bad_price_raises():
    bad = SAMPLE + "2015-02-01T04:00:00Z,m1.small,Linux/UNIX,us-east-1a,cheap\n"
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(bad))


def test_load_short_row_raises():
    bad = SAMPLE + "2015-02-01T04:00:00Z,m1.small\n"
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(bad))


def test_multi_market_requires_filter():
    mixed = SAMPLE + "2015-02-01T02:00:00Z,m1.large,Linux/UNIX,us-east-1a,0.026\n"
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(mixed))
    t = load_aws_csv(io.StringIO(mixed), instance_type="m1.large")
    assert len(t) == 1


def test_filter_no_match_raises():
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(SAMPLE), availability_zone="eu-west-1a")


def test_unsorted_input_sorted():
    lines = SAMPLE.strip().split("\n")
    shuffled = "\n".join([lines[0], lines[3], lines[1], lines[2]]) + "\n"
    t = load_aws_csv(io.StringIO(shuffled))
    assert np.all(np.diff(t.times) > 0)


def test_duplicate_timestamps_keep_last():
    dup = SAMPLE + "2015-02-01T03:00:00Z,m1.small,Linux/UNIX,us-east-1a,0.0100\n"
    t = load_aws_csv(io.StringIO(dup))
    assert len(t) == 3


def test_roundtrip_generated_trace(tmp_path):
    cal = calibration_for("us-east-1a", "small")
    original = generate_trace(cal, days(5), seed=9)
    path = tmp_path / "trace.csv"
    save_aws_csv(original, path, instance_type="m1.small", availability_zone="us-east-1a")
    loaded = load_aws_csv(path, horizon=original.horizon)
    # Timestamps carry fractional seconds and prices repr precision, so
    # the round-trip preserves every change point.
    assert len(loaded) == len(original)
    assert roundtrip_equal(original, loaded)


def test_roundtrip_fractional_second_change_points(tmp_path):
    from repro.traces.trace import PriceTrace

    original = PriceTrace(
        [0.0, 90.25, 3600.5, 7200.123456789],
        [0.0071, 0.0082, 0.0065, 0.0090123456789],
        days(1),
        market="m1.small",
        region="us-east-1a",
    )
    path = tmp_path / "frac.csv"
    save_aws_csv(original, path)
    loaded = load_aws_csv(path, horizon=original.horizon)
    assert roundtrip_equal(original, loaded)


def test_format_timestamp_fractional():
    assert format_aws_timestamp(17.25) == "1970-01-01T00:00:17.25Z"
    assert format_aws_timestamp(17.0) == "1970-01-01T00:00:17Z"  # AWS shape kept
    # Sub-nanosecond noise rounds away rather than emitting 1e-12 tails.
    assert format_aws_timestamp(17.9999999999) == "1970-01-01T00:00:18Z"


def test_parse_timestamp_fractional_any_precision():
    # One digit and nine digits both parse (fromisoformat alone accepts
    # only 3 or 6 before Python 3.11).
    assert parse_aws_timestamp("1970-01-01T00:00:17.5Z") == pytest.approx(17.5)
    assert parse_aws_timestamp("1970-01-01T00:00:17.123456789Z") == pytest.approx(
        17.123456789, abs=1e-12
    )


def test_prices_roundtrip_at_repr_precision(tmp_path):
    from repro.traces.trace import PriceTrace

    original = PriceTrace([0.0], [0.00712345678912345], days(1))
    path = tmp_path / "price.csv"
    save_aws_csv(original, path)
    loaded = load_aws_csv(path, horizon=original.horizon)
    assert float(loaded.prices[0]) == float(original.prices[0])  # exact


def test_horizon_before_last_change_point_raises():
    with pytest.raises(TraceFormatError, match="rebased"):
        load_aws_csv(io.StringIO(SAMPLE), horizon=2 * 3600.0)


def test_horizon_at_last_change_point_raises():
    with pytest.raises(TraceFormatError):
        load_aws_csv(io.StringIO(SAMPLE), horizon=3 * 3600.0)


def test_horizon_epoch_frame_mixup_rejected():
    # A user passing an *epoch* horizon against rebased times used to
    # build whatever trace fell out; rebased last point is 3 h, so any
    # epoch-scale value is actually fine — the dangerous case is the
    # reverse: rebase disabled, horizon given in the rebased frame.
    with pytest.raises(TraceFormatError, match="epoch"):
        load_aws_csv(io.StringIO(SAMPLE), rebase_to_zero=False, horizon=4 * 3600.0)


def test_roundtrip_equal_helper():
    t = load_aws_csv(io.StringIO(SAMPLE))
    assert roundtrip_equal(t, t)


def test_roundtrip_equal_rejects_epoch_scale_drift():
    # Regression: np.allclose's default rtol=1e-5 scales with magnitude, so
    # two *epoch-frame* traces (~1.4e9 s) with hours of drift between their
    # change points used to compare "equal". rtol must be pinned to 0.
    from repro.traces.trace import PriceTrace

    epoch = parse_aws_timestamp("2015-02-01T00:00:00Z")
    a = PriceTrace([epoch, epoch + 3600.0], [0.01, 0.02], epoch + 86400.0)
    drift = 2 * 3600.0  # two hours — well inside rtol=1e-5 at epoch scale
    b = PriceTrace([epoch, epoch + 3600.0 + drift], [0.01, 0.02], epoch + 86400.0)
    assert not roundtrip_equal(a, b)


def test_roundtrip_equal_non_rebased_roundtrip(tmp_path):
    # Non-rebased (epoch-offset) traces must round-trip exactly, and a
    # deliberately shifted copy must NOT pass for equal.
    t = load_aws_csv(io.StringIO(SAMPLE), rebase_to_zero=False)
    path = tmp_path / "epoch.csv"
    save_aws_csv(t, path)
    again = load_aws_csv(path, rebase_to_zero=False, horizon=t.horizon)
    assert roundtrip_equal(t, again)
    assert not roundtrip_equal(t, again.shift(1800.0))


def test_load_bom_prefixed_header(tmp_path):
    # Real archive dumps often carry a UTF-8 BOM; both the path and the
    # stream entry points must strip it instead of rejecting the header.
    path = tmp_path / "bom.csv"
    path.write_bytes(b"\xef\xbb\xbf" + SAMPLE.encode())
    t = load_aws_csv(path)
    assert len(t) == 3
    assert t.price_at(0) == pytest.approx(0.0071)
    t2 = load_aws_csv(io.StringIO("\ufeff" + SAMPLE))
    assert roundtrip_equal(t, t2)


def test_load_gzip_archive(tmp_path):
    import gzip

    path = tmp_path / "trace.csv.gz"
    with gzip.open(path, "wt", newline="") as fh:
        fh.write(SAMPLE)
    t = load_aws_csv(path)
    assert len(t) == 3
    assert t.market == "m1.small"


def test_save_to_stream():
    t = load_aws_csv(io.StringIO(SAMPLE))
    buf = io.StringIO()
    save_aws_csv(t, buf)
    buf.seek(0)
    again = load_aws_csv(buf, horizon=t.horizon)
    assert roundtrip_equal(t, again, tol=1.0)
