"""Unit tests for the compiled trace query plan itself.

The exact-equivalence contract lives in
``tests/props/test_compiled_equivalence.py``; this file covers the
plan's mechanics — lazy construction and sharing, per-threshold
memoization, immutability of cached tables, and window-bounds edge
cases.
"""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces import CompiledTrace, PriceTrace


@pytest.fixture
def trace() -> PriceTrace:
    return PriceTrace(
        np.array([0.0, 100.0, 250.0, 400.0]),
        np.array([1.0, 3.0, 0.5, 2.0]),
        600.0,
        market="m4.large",
        region="us-east-1",
    )


def test_compiled_is_lazy_and_shared(trace):
    assert trace._compiled is None
    comp = trace.compiled
    assert isinstance(comp, CompiledTrace)
    assert trace.compiled is comp  # built once, reused


def test_bounds_extend_times_with_horizon(trace):
    comp = trace.compiled
    np.testing.assert_array_equal(comp.bounds, [0.0, 100.0, 250.0, 400.0, 600.0])
    assert not comp.bounds.flags.writeable


def test_window_bounds_edges(trace):
    comp = trace.compiled
    assert comp.window_bounds(0.0, 600.0) == (0, 4)  # full trace
    assert comp.window_bounds(-50.0, 50.0) == (0, 1)  # clamps before start
    assert comp.window_bounds(100.0, 250.0) == (1, 2)  # exactly one segment
    assert comp.window_bounds(500.0, 400.0) == (3, 3)  # inverted: empty
    # Degenerate windows may keep the containing segment; clipping masks it out.
    dur, prices = comp.window(150.0, 150.0)
    assert dur.size == 0 and prices.size == 0
    assert comp.window_bounds(650.0, 700.0) == (3, 4)  # past horizon clamps


def test_window_clips_to_requested_range(trace):
    dur, prices = trace.compiled.window(50.0, 300.0)
    np.testing.assert_array_equal(dur, [50.0, 150.0, 50.0])
    np.testing.assert_array_equal(prices, [1.0, 3.0, 0.5])


def test_empty_window_raises_with_window_in_message(trace):
    with pytest.raises(TraceFormatError, match=r"empty window \[150.0, 150.0\)"):
        trace.compiled.mean_price(150.0, 150.0)


def test_crossing_tables_are_memoized_per_threshold(trace):
    comp = trace.compiled
    assert comp.cached_thresholds() == (0, 0)
    first = comp.crossings_above(1.5)
    assert comp.crossings_above(1.5) is first  # identical object, not a rebuild
    comp.crossings_below(1.5)
    comp.crossings_above(0.75)
    assert comp.cached_thresholds() == (2, 1)


def test_cached_crossings_are_read_only(trace):
    cross = trace.compiled.crossings_above(1.5)
    with pytest.raises(ValueError):
        cross[0] = -1.0


def test_first_time_above_reuses_table_not_a_scan(trace):
    comp = trace.compiled
    assert comp.first_time_above(2.5, 0.0) == 100.0
    assert comp.first_time_above(2.5, 150.0) == 150.0  # already above
    assert comp.first_time_above(2.5, 300.0) is None
    assert comp.cached_thresholds() == (1, 0)  # one table served all three


def test_last_crossing_lookups(trace):
    comp = trace.compiled
    assert comp.last_crossing_above_at_or_before(1.5, 50.0) is None
    assert comp.last_crossing_above_at_or_before(1.5, 100.0) == 100.0
    assert comp.last_crossing_above_at_or_before(1.5, 599.0) == 400.0
    assert comp.last_crossing_below_at_or_before(1.5, 599.0) == 250.0


def test_scalar_lookup_clamps_like_trace(trace):
    comp = trace.compiled
    assert comp.price_at(-10.0) == 1.0
    assert comp.price_at(9999.0) == 2.0
    assert comp.index_at(250.0) == 2
    assert comp.next_change_after(400.0) is None


def test_public_queries_route_through_compiled(trace):
    # Querying via the trace populates the shared plan's memo tables.
    trace.first_time_above(1.5, 0.0)
    trace.first_time_at_or_below(1.5, 120.0)
    assert trace.compiled.cached_thresholds() == (1, 1)
