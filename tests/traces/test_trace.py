"""Unit tests for the PriceTrace step function."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.trace import PriceTrace


def make(times, prices, horizon):
    return PriceTrace(np.array(times, float), np.array(prices, float), horizon)


class TestConstruction:
    def test_basic(self):
        t = make([0, 10, 20], [1.0, 2.0, 3.0], 30)
        assert len(t) == 3
        assert t.start == 0
        assert t.duration == 30

    def test_rejects_empty(self):
        with pytest.raises(TraceFormatError):
            make([], [], 10)

    def test_rejects_length_mismatch(self):
        with pytest.raises(TraceFormatError):
            make([0, 1], [1.0], 10)

    def test_rejects_non_increasing_times(self):
        with pytest.raises(TraceFormatError):
            make([0, 5, 5], [1, 2, 3], 10)
        with pytest.raises(TraceFormatError):
            make([0, 5, 4], [1, 2, 3], 10)

    def test_rejects_non_positive_prices(self):
        with pytest.raises(TraceFormatError):
            make([0, 1], [1.0, 0.0], 10)
        with pytest.raises(TraceFormatError):
            make([0], [-2.0], 10)

    def test_rejects_horizon_before_last_change(self):
        with pytest.raises(TraceFormatError):
            make([0, 10], [1, 2], 10)

    def test_rejects_nan(self):
        with pytest.raises(TraceFormatError):
            make([0, float("nan")], [1, 2], 10)
        with pytest.raises(TraceFormatError):
            make([0, 1], [1, float("inf")], 10)

    def test_arrays_readonly(self):
        t = make([0, 10], [1, 2], 20)
        with pytest.raises(ValueError):
            t.times[0] = 5.0


class TestLookup:
    def test_price_at_scalar(self):
        t = make([0, 10, 20], [1.0, 2.0, 3.0], 30)
        assert t.price_at(0) == 1.0
        assert t.price_at(9.999) == 1.0
        assert t.price_at(10) == 2.0  # right-open: new price holds from change
        assert t.price_at(25) == 3.0

    def test_price_at_clamps(self):
        t = make([5, 10], [1.0, 2.0], 20)
        assert t.price_at(0) == 1.0
        assert t.price_at(999) == 2.0

    def test_price_at_vector(self):
        t = make([0, 10], [1.0, 2.0], 20)
        out = t.price_at(np.array([0.0, 9.0, 10.0, 15.0]))
        assert np.allclose(out, [1, 1, 2, 2])

    def test_next_change_after(self):
        t = make([0, 10, 20], [1, 2, 3], 30)
        assert t.next_change_after(0) == 10
        assert t.next_change_after(10) == 20
        assert t.next_change_after(20) is None


class TestAggregates:
    def test_mean_price_time_weighted(self):
        t = make([0, 10], [1.0, 3.0], 20)
        assert t.mean_price() == pytest.approx(2.0)
        assert t.mean_price(0, 10) == pytest.approx(1.0)
        assert t.mean_price(5, 15) == pytest.approx(2.0)

    def test_price_std(self):
        t = make([0, 10], [1.0, 3.0], 20)
        assert t.price_std() == pytest.approx(1.0)
        assert make([0], [5.0], 10).price_std() == 0.0

    def test_time_above(self):
        t = make([0, 10, 20], [1.0, 5.0, 1.0], 30)
        assert t.time_above(2.0) == 10.0
        assert t.time_above(0.5) == 30.0
        assert t.time_above(10.0) == 0.0

    def test_time_above_window(self):
        t = make([0, 10, 20], [1.0, 5.0, 1.0], 30)
        assert t.time_above(2.0, 15, 30) == 5.0

    def test_min_max(self):
        t = make([0, 10, 20], [2.0, 5.0, 1.0], 30)
        assert t.max_price() == 5.0
        assert t.min_price() == 1.0
        assert t.max_price(0, 10) == 2.0

    def test_empty_window_raises(self):
        t = make([0], [1.0], 10)
        with pytest.raises(TraceFormatError):
            t.mean_price(5, 5)


class TestCrossings:
    def test_crossings_above(self):
        t = make([0, 10, 20, 30], [1.0, 5.0, 1.0, 5.0], 40)
        assert list(t.crossings_above(2.0)) == [10, 30]

    def test_start_above_counts_as_crossing(self):
        t = make([0, 10], [5.0, 1.0], 20)
        assert list(t.crossings_above(2.0)) == [0]

    def test_crossings_below(self):
        t = make([0, 10, 20, 30], [1.0, 5.0, 1.0, 5.0], 40)
        assert list(t.crossings_below(2.0)) == [20]

    def test_first_time_above_when_already_above(self):
        t = make([0, 10], [5.0, 1.0], 20)
        assert t.first_time_above(2.0, 3.0) == 3.0

    def test_first_time_above_future(self):
        t = make([0, 10], [1.0, 5.0], 20)
        assert t.first_time_above(2.0, 0.0) == 10.0
        assert t.first_time_above(2.0, 10.5) == 10.5

    def test_first_time_above_none(self):
        t = make([0], [1.0], 20)
        assert t.first_time_above(2.0, 0.0) is None
        assert t.first_time_above(2.0, 30.0) is None  # past horizon

    def test_first_time_at_or_below(self):
        t = make([0, 10], [5.0, 1.0], 20)
        assert t.first_time_at_or_below(2.0, 0.0) == 10.0
        assert t.first_time_at_or_below(2.0, 12.0) == 12.0
        assert make([0], [5.0], 10).first_time_at_or_below(2.0, 0.0) is None


class TestSegments:
    def test_segments_cover_window(self):
        t = make([0, 10, 20], [1, 2, 3], 30)
        segs = list(t.segments())
        assert segs == [(0, 10, 1.0), (10, 20, 2.0), (20, 30, 3.0)]

    def test_segments_clipped(self):
        t = make([0, 10, 20], [1, 2, 3], 30)
        segs = list(t.segments(5, 15))
        assert segs == [(5, 10, 1.0), (10, 15, 2.0)]

    def test_segment_durations_sum_to_window(self):
        t = make([0, 7, 13, 21], [1, 2, 3, 4], 30)
        total = sum(e - s for s, e, _ in t.segments(3, 25))
        assert total == pytest.approx(22)


class TestTransforms:
    def test_resample_matches_price_at(self):
        t = make([0, 10, 20], [1, 2, 3], 30)
        grid = np.linspace(0, 29, 50)
        assert np.allclose(t.resample(grid), t.price_at(grid))

    def test_regular_grid(self):
        t = make([0, 10], [1, 2], 20)
        grid, prices = t.regular_grid(5.0)
        assert np.allclose(grid, [0, 5, 10, 15])
        assert np.allclose(prices, [1, 1, 2, 2])

    def test_slice_preserves_prices(self):
        t = make([0, 10, 20], [1, 2, 3], 30)
        s = t.slice(5, 25)
        assert s.price_at(6) == 1.0
        assert s.price_at(12) == 2.0
        assert s.price_at(24) == 3.0
        assert s.horizon == 25

    def test_slice_out_of_range_raises(self):
        t = make([0], [1.0], 10)
        with pytest.raises(TraceFormatError):
            t.slice(-1, 5)

    def test_shift(self):
        t = make([0, 10], [1, 2], 20)
        s = t.shift(100)
        assert s.price_at(105) == 1.0
        assert s.horizon == 120

    def test_scale_prices(self):
        t = make([0], [2.0], 10)
        assert t.scale_prices(3.0).price_at(5) == 6.0
        with pytest.raises(TraceFormatError):
            t.scale_prices(0.0)

    def test_constant(self):
        t = PriceTrace.constant(0.5, 0.0, 100.0)
        assert t.mean_price() == 0.5
        assert len(t) == 1
