"""Streaming ingestion and mmap-compiled segments (repro.traces.ingest).

The contracts pinned here are the module's whole point:

* segment files round-trip traces exactly (bit-identical times/prices);
* an mmap-loaded trace answers every query identically to the in-memory
  build (same CompiledTrace results, adopted bounds and all);
* corrupt/truncated/foreign files raise clean TraceFormatError;
* the demux pass's peak memory is bounded by ``chunk_records`` and is
  independent of archive size and market count;
* a simulation run off an mmap catalog produces a byte-identical report
  to the CSV -> in-memory path, on every engine.
"""

import gzip
import json
import struct

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.catalog import MarketKey, build_catalog
from repro.traces.ingest import (
    DEFAULT_HORIZON_PAD_S,
    MANIFEST_NAME,
    SEGMENT_MAGIC,
    SEGMENT_VERSION,
    ingest_archive,
    load_segment_catalog,
    read_segment,
    write_segment,
)
from repro.traces.loader import load_aws_csv, save_aws_csv
from repro.traces.trace import PriceTrace
from repro.units import days, hours


def _trace(seed: int = 0, n: int = 40, horizon: float = days(2)) -> PriceTrace:
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, horizon - 3600.0, size=n))
    times[0] = 0.0
    prices = rng.uniform(0.01, 0.3, size=n)
    return PriceTrace(times, prices, horizon, market="small", region="us-east-1a")


def _write_archive(path, traces_by_market, epoch_offset=0.0):
    """One CSV with every market's records interleaved by timestamp."""
    rows = []
    for (az, itype), trace in traces_by_market.items():
        for t, p in zip(trace.times, trace.prices):
            rows.append((float(t), itype, az, float(p)))
    rows.sort()
    with open(path, "w", newline="") as fh:
        from repro.traces.loader import _HEADER, format_aws_timestamp
        import csv

        w = csv.writer(fh)
        w.writerow(_HEADER)
        for t, itype, az, p in rows:
            w.writerow(
                [format_aws_timestamp(t + epoch_offset), itype, "Linux/UNIX", az, repr(p)]
            )


# ------------------------------------------------------------ segment files
def test_segment_roundtrip_bit_identical(tmp_path):
    trace = _trace(1)
    path = tmp_path / "m.seg"
    nbytes = write_segment(path, trace, 0.06)
    assert path.stat().st_size == nbytes
    loaded, od = read_segment(path)
    assert od == 0.06
    assert loaded.horizon == trace.horizon
    assert loaded.region == "us-east-1a"
    assert np.array_equal(np.asarray(loaded.times), np.asarray(trace.times))
    assert np.array_equal(np.asarray(loaded.prices), np.asarray(trace.prices))


def test_mmap_queries_match_in_memory(tmp_path):
    """Every query over the mmap-loaded trace is bit-identical to the
    in-memory compiled plan — the format's core contract."""
    trace = _trace(2, n=120, horizon=days(3))
    path = tmp_path / "m.seg"
    write_segment(path, trace, 0.06)
    mapped, _ = read_segment(path)

    mem = trace.compiled
    mm = mapped.compiled
    probes = np.linspace(0.0, trace.horizon - 1.0, 257)
    for t in probes:
        assert mm.price_at(float(t)) == mem.price_at(float(t))
    for a, b in zip(probes[:-1], probes[1:]):
        assert mm.max_price(float(a), float(b)) == mem.max_price(float(a), float(b))
        assert mm.mean_price(float(a), float(b)) == mem.mean_price(float(a), float(b))
    for bid in (0.02, 0.06, 0.11, 0.24):
        assert np.array_equal(mm.crossings_above(bid), mem.crossings_above(bid))


def test_read_segment_rejects_bad_magic(tmp_path):
    path = tmp_path / "m.seg"
    write_segment(path, _trace(3), 0.06)
    raw = bytearray(path.read_bytes())
    raw[:8] = b"NOTASEGM"
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="bad magic"):
        read_segment(path)


def test_read_segment_rejects_unknown_version(tmp_path):
    path = tmp_path / "m.seg"
    write_segment(path, _trace(4), 0.06)
    raw = bytearray(path.read_bytes())
    raw[8:12] = struct.pack("<I", SEGMENT_VERSION + 9)
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="unsupported segment version"):
        read_segment(path)


@pytest.mark.parametrize("keep", [0, 4, 20, 39, 80])
def test_read_segment_rejects_truncation(tmp_path, keep):
    path = tmp_path / "m.seg"
    write_segment(path, _trace(5), 0.06)
    path.write_bytes(path.read_bytes()[:keep])
    with pytest.raises(TraceFormatError):
        read_segment(path)


def test_read_segment_rejects_trailing_garbage(tmp_path):
    path = tmp_path / "m.seg"
    write_segment(path, _trace(6), 0.06)
    path.write_bytes(path.read_bytes() + b"\x00" * 16)
    with pytest.raises(TraceFormatError, match="expected"):
        read_segment(path)


def test_read_segment_rejects_corrupt_metadata(tmp_path):
    path = tmp_path / "m.seg"
    write_segment(path, _trace(7), 0.06)
    raw = bytearray(path.read_bytes())
    # Stomp the JSON metadata region (starts after the fixed header + u32).
    start = struct.calcsize("<8sIIQdd") + 4
    raw[start : start + 4] = b"\xff\xfe\x00\x01"
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="corrupt segment metadata"):
        read_segment(path)


def test_write_segment_rejects_nonpositive_od(tmp_path):
    with pytest.raises(TraceFormatError, match="on-demand"):
        write_segment(tmp_path / "m.seg", _trace(8), 0.0)


# ----------------------------------------------------------------- ingestion
def test_ingest_matches_in_memory_loader(tmp_path):
    """CSV -> ingest -> mmap equals CSV -> load_aws_csv, bit for bit."""
    trace = _trace(9, n=60)
    csv_path = tmp_path / "one.csv"
    save_aws_csv(trace, csv_path, instance_type="m1.small",
                 availability_zone="us-east-1a")
    report = ingest_archive(csv_path, tmp_path / "seg", horizon=trace.horizon)
    assert report.n_markets == 1
    assert report.markets == (("us-east-1a", "small"),)

    catalog = load_segment_catalog(tmp_path / "seg")
    key = MarketKey("us-east-1a", "small")
    mem = load_aws_csv(csv_path, horizon=trace.horizon)
    mm = catalog.trace(key)
    assert np.array_equal(np.asarray(mm.times), np.asarray(mem.times))
    assert np.array_equal(np.asarray(mm.prices), np.asarray(mem.prices))
    assert mm.horizon == mem.horizon


def test_ingest_demuxes_markets_and_rebases(tmp_path):
    offset = 1.4e9
    tr_a = _trace(10, n=30)
    tr_b = _trace(11, n=25)
    archive = tmp_path / "multi.csv"
    _write_archive(
        archive,
        {("us-east-1a", "m1.small"): tr_a, ("us-west-1a", "m1.large"): tr_b},
        epoch_offset=offset,
    )
    report = ingest_archive(archive, tmp_path / "seg")
    assert report.n_markets == 2
    assert report.epoch_offset == pytest.approx(offset, abs=1.0)
    catalog = load_segment_catalog(tmp_path / "seg")
    keys = {(k.region, k.size) for k in catalog.markets()}
    assert keys == {("us-east-1a", "small"), ("us-west-1a", "large")}
    # All markets share one clock: the archive's earliest record is t=0.
    first = min(float(catalog.trace(k).times[0]) for k in catalog.markets())
    assert first == 0.0
    assert catalog.horizon == pytest.approx(report.horizon)


def test_ingest_gzip_archive(tmp_path):
    trace = _trace(12, n=20)
    plain = tmp_path / "a.csv"
    save_aws_csv(trace, plain, instance_type="m1.small",
                 availability_zone="us-east-1a")
    gz = tmp_path / "a.csv.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    report = ingest_archive(gz, tmp_path / "seg", horizon=trace.horizon)
    assert report.n_records == len(trace)


def test_ingest_multiple_sources_merge(tmp_path):
    """Two archive files covering different spans of one market merge into
    a single sorted segment."""
    rng = np.random.default_rng(13)
    times = np.sort(rng.uniform(0.0, hours(40), size=50))
    times[0] = 0.0
    prices = rng.uniform(0.01, 0.2, size=50)
    full = PriceTrace(times, prices, hours(48), market="small", region="us-east-1a")
    t1 = PriceTrace(times[:30], prices[:30], hours(48), market="small", region="us-east-1a")
    t2 = PriceTrace(times[30:] - times[30], prices[30:],
                    float(times[-1] - times[30]) + 3600.0, market="small",
                    region="us-east-1a")
    p1, p2 = tmp_path / "part1.csv", tmp_path / "part2.csv"
    save_aws_csv(t1, p1, instance_type="m1.small", availability_zone="us-east-1a")
    save_aws_csv(t2, p2, instance_type="m1.small", availability_zone="us-east-1a",
                 epoch_offset=float(times[30]))
    ingest_archive([p1, p2], tmp_path / "seg", horizon=hours(48))
    got = load_segment_catalog(tmp_path / "seg").trace(MarketKey("us-east-1a", "small"))
    # Timestamps survive the CSV round trip at nanosecond precision
    # (prices use repr and survive exactly).
    assert np.allclose(np.asarray(got.times), times, rtol=0.0, atol=1e-6)
    assert np.array_equal(np.asarray(got.prices), prices)


def test_ingest_drops_duplicate_timestamps_keep_last(tmp_path):
    archive = tmp_path / "dups.csv"
    from repro.traces.loader import _HEADER, format_aws_timestamp
    import csv

    with open(archive, "w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(_HEADER)
        for t, p in [(0.0, 0.05), (100.0, 0.07), (100.0, 0.09), (200.0, 0.06)]:
            w.writerow([format_aws_timestamp(t), "m1.small", "Linux/UNIX",
                        "us-east-1a", repr(p)])
    report = ingest_archive(archive, tmp_path / "seg")
    assert report.duplicates_dropped == 1
    got = load_segment_catalog(tmp_path / "seg").trace(MarketKey("us-east-1a", "small"))
    assert np.array_equal(np.asarray(got.times), [0.0, 100.0, 200.0])
    assert np.array_equal(np.asarray(got.prices), [0.05, 0.09, 0.06])


def test_ingest_default_horizon_pads_past_last_record(tmp_path):
    trace = _trace(14, n=10)
    csv_path = tmp_path / "a.csv"
    save_aws_csv(trace, csv_path, instance_type="m1.small",
                 availability_zone="us-east-1a")
    report = ingest_archive(csv_path, tmp_path / "seg")
    assert report.horizon == pytest.approx(float(trace.times[-1]) + DEFAULT_HORIZON_PAD_S)


def test_ingest_rejects_horizon_before_last_record(tmp_path):
    trace = _trace(15, n=10)
    csv_path = tmp_path / "a.csv"
    save_aws_csv(trace, csv_path, instance_type="m1.small",
                 availability_zone="us-east-1a")
    with pytest.raises(TraceFormatError, match="horizon"):
        ingest_archive(csv_path, tmp_path / "seg", horizon=1.0)


def test_ingest_rejects_empty_archive(tmp_path):
    archive = tmp_path / "empty.csv"
    from repro.traces.loader import _HEADER
    archive.write_text(",".join(_HEADER) + "\n")
    with pytest.raises(TraceFormatError, match="no records"):
        ingest_archive(archive, tmp_path / "seg")


def test_ingest_od_override_chain(tmp_path):
    """Explicit od_prices win over the calibration tables; unknown markets
    fall back to the median heuristic."""
    tr = _trace(16, n=12)
    archive = tmp_path / "odd.csv"
    _write_archive(
        archive,
        {("us-east-1a", "m1.small"): tr, ("ap-south-1z", "c9.exotic"): tr},
    )
    ingest_archive(archive, tmp_path / "seg", od_prices={("us-east-1a", "m1.small"): 0.5})
    catalog = load_segment_catalog(tmp_path / "seg")
    assert catalog.on_demand_price(MarketKey("us-east-1a", "small")) == 0.5
    # "exotic" is not a known size suffix, so the full type name is the key.
    exotic = MarketKey("ap-south-1z", "c9.exotic")
    # 4x the median observed price, the documented heuristic.
    assert catalog.on_demand_price(exotic) == pytest.approx(
        4.0 * float(np.median(np.asarray(tr.prices)))
    )


def test_load_segment_catalog_rejects_non_segment_dir(tmp_path):
    with pytest.raises(TraceFormatError, match=MANIFEST_NAME):
        load_segment_catalog(tmp_path)


def test_load_segment_catalog_rejects_bad_manifest_version(tmp_path):
    trace = _trace(17, n=8)
    csv_path = tmp_path / "a.csv"
    save_aws_csv(trace, csv_path, instance_type="m1.small",
                 availability_zone="us-east-1a")
    ingest_archive(csv_path, tmp_path / "seg")
    manifest = json.loads((tmp_path / "seg" / MANIFEST_NAME).read_text())
    manifest["version"] = 99
    (tmp_path / "seg" / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(TraceFormatError, match="unsupported manifest version"):
        load_segment_catalog(tmp_path / "seg")


def test_ingest_spill_dir_cleaned_up(tmp_path):
    trace = _trace(18, n=30)
    csv_path = tmp_path / "a.csv"
    save_aws_csv(trace, csv_path, instance_type="m1.small",
                 availability_zone="us-east-1a")
    ingest_archive(csv_path, tmp_path / "seg", chunk_records=7)
    assert not (tmp_path / "seg" / ".spill").exists()


# ----------------------------------------------------- bounded-memory demux
def test_ingest_peak_memory_independent_of_archive_size(tmp_path):
    """The acceptance bound: a >=100-market archive demuxes with peak
    buffering capped by chunk_records, not by archive size. Doubling the
    archive must not grow the reported peak, and tracemalloc confirms the
    Python-heap peak stays in the chunk regime rather than the
    whole-archive regime."""
    import tracemalloc

    rng = np.random.default_rng(19)

    def _archive(path, n_markets, rows_per_market):
        from repro.traces.loader import _HEADER, format_aws_timestamp
        import csv

        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(_HEADER)
            for m in range(n_markets):
                az = f"zz-test-{m % 7}z"
                itype = f"t{m}.synthetic"
                t = np.sort(rng.uniform(0.0, hours(24), size=rows_per_market))
                p = rng.uniform(0.01, 0.2, size=rows_per_market)
                for ti, pi in zip(t, p):
                    w.writerow([format_aws_timestamp(float(ti)), itype,
                                "Linux/UNIX", az, repr(float(pi))])

    small, big = tmp_path / "small.csv", tmp_path / "big.csv"
    _archive(small, 100, 20)   # 2 000 records over 100 markets
    _archive(big, 100, 40)     # 4 000 records over the same markets
    chunk = 500

    r_small = ingest_archive(small, tmp_path / "seg_small", chunk_records=chunk)
    assert r_small.n_markets == 100

    tracemalloc.start()
    r_big = ingest_archive(big, tmp_path / "seg_big", chunk_records=chunk)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert r_big.n_records == 2 * r_small.n_records
    # The demux buffer bound: flushes trigger at the chunk size, so the
    # peak buffered count never exceeds chunk_records regardless of size.
    assert r_small.peak_buffered_records <= chunk
    assert r_big.peak_buffered_records <= chunk
    # Heap peak is in the one-chunk-plus-one-market regime (generous 8x
    # slack for interpreter noise), far below the ~4000-record archive.
    per_record = 2 * 8 * 8  # two floats per record, ~8x object overhead
    assert peak_bytes < 8 * chunk * per_record

    catalog = load_segment_catalog(tmp_path / "seg_big")
    assert len(catalog.markets()) == 100


# ----------------------------------------- simulation-report identity (mmap)
@pytest.mark.parametrize("engine", ["event", "vector", "fused"])
def test_mmap_catalog_report_identical_to_in_memory(tmp_path, engine):
    """A simulation off the mmap catalog produces a byte-identical report
    to the CSV -> in-memory path, on every engine."""
    import dataclasses as dc

    from repro.core.simulation import SimulationConfig, run_simulation_observed
    from repro.runtime.spec import StrategySpec
    from repro.traces.catalog import TraceCatalog

    horizon = days(2)
    source = build_catalog(23, horizon, regions=("us-east-1a",), sizes=("small",))
    key = MarketKey("us-east-1a", "small")
    csv_path = tmp_path / "a.csv"
    save_aws_csv(source.trace(key), csv_path, instance_type="m1.small",
                 availability_zone="us-east-1a")
    ingest_archive(csv_path, tmp_path / "seg", horizon=horizon)

    mem_trace = load_aws_csv(csv_path, horizon=horizon)
    mem_catalog = TraceCatalog({key: mem_trace}, {key: 0.06}, horizon)
    mm_catalog = load_segment_catalog(tmp_path / "seg").restricted([key])

    one_engine = "vector" if engine in ("vector", "fused") else "event"

    def _run(catalog):
        cfg = SimulationConfig(
            strategy=StrategySpec.single(key),
            seed=5,
            horizon_s=horizon,
            regions=("us-east-1a",),
            sizes=("small",),
            catalog=catalog,
            label="ingest-identity",
        )
        return dc.asdict(run_simulation_observed(cfg, engine=one_engine).result)

    assert _run(mm_catalog) == _run(mem_catalog)
