"""Unit tests for the migration-mechanism combinations (Fig 7 building blocks)."""

import numpy as np
import pytest

from repro.cloud.regions import link_between
from repro.errors import MigrationError
from repro.vm.disk_copy import disk_copy_seconds, disk_copy_seconds_between
from repro.vm.mechanisms import (
    Mechanism,
    MechanismParams,
    MigrationModel,
    MigrationTiming,
    PESSIMISTIC_PARAMS,
    TYPICAL_PARAMS,
)
from repro.vm.memory import MemoryProfile

MEM = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0, working_set_frac=0.10)
LAN = link_between("us-east-1a", "us-east-1a")
WAN = link_between("us-east-1a", "eu-west-1a")


class TestMechanismEnum:
    def test_live_flags(self):
        assert Mechanism.CKPT_LIVE.uses_live
        assert Mechanism.CKPT_LR_LIVE.uses_live
        assert not Mechanism.CKPT.uses_live
        assert not Mechanism.CKPT_LR.uses_live

    def test_lazy_flags(self):
        assert Mechanism.CKPT_LR.uses_lazy_restore
        assert Mechanism.CKPT_LR_LIVE.uses_lazy_restore
        assert not Mechanism.CKPT.uses_lazy_restore

    def test_labels(self):
        assert Mechanism.CKPT_LR_LIVE.label == "CKPT LR + Live"


class TestPlanned:
    def test_live_mechanisms_have_tiny_planned_downtime(self):
        for mech in (Mechanism.CKPT_LIVE, Mechanism.CKPT_LR_LIVE):
            t = MigrationModel(mech).planned(MEM, LAN)
            assert t.downtime_s < 2.0
            assert t.prep_s > 30.0  # pre-copy takes real time

    def test_ckpt_planned_downtime_moderate(self):
        t = MigrationModel(Mechanism.CKPT).planned(MEM, LAN)
        # pre-staged: final increment + unstaged fraction of eager restore
        assert 2.0 < t.downtime_s < 30.0

    def test_ckpt_lr_planned_cheaper_than_ckpt(self):
        a = MigrationModel(Mechanism.CKPT).planned(MEM, LAN)
        b = MigrationModel(Mechanism.CKPT_LR).planned(MEM, LAN)
        assert b.downtime_s < a.downtime_s

    def test_extra_prep_folds_in(self):
        base = MigrationModel(Mechanism.CKPT_LR).planned(MEM, LAN)
        more = MigrationModel(Mechanism.CKPT_LR).planned(MEM, LAN, extra_prep_s=100.0)
        assert more.prep_s == pytest.approx(base.prep_s + 100.0)
        assert more.downtime_s == base.downtime_s

    def test_reverse_equals_planned(self):
        m = MigrationModel(Mechanism.CKPT_LR)
        assert m.reverse(MEM, LAN).downtime_s == m.planned(MEM, LAN).downtime_s

    def test_rng_jitters_but_bounded(self):
        m = MigrationModel(Mechanism.CKPT)
        rng = np.random.default_rng(0)
        worst = m.planned(MEM, LAN).downtime_s
        vals = {round(m.planned(MEM, LAN, rng).downtime_s, 6) for _ in range(10)}
        assert len(vals) > 1
        assert all(v <= worst * 1.6 for v in vals)


class TestForced:
    def test_forced_uses_checkpoint_even_with_live(self):
        """Live can't be trusted inside the grace window, so forced downtimes
        match the checkpoint path of the same restore flavour."""
        a = MigrationModel(Mechanism.CKPT).forced(MEM, LAN, 120.0, 95.0)
        b = MigrationModel(Mechanism.CKPT_LIVE).forced(MEM, LAN, 120.0, 95.0)
        assert a.downtime_s == pytest.approx(b.downtime_s)

    def test_lazy_forced_much_cheaper_than_eager(self):
        eager = MigrationModel(Mechanism.CKPT).forced(MEM, LAN, 120.0, 95.0)
        lazy = MigrationModel(Mechanism.CKPT_LR).forced(MEM, LAN, 120.0, 95.0)
        assert lazy.downtime_s < 0.5 * eager.downtime_s
        assert lazy.degraded_s > 0  # page-fault window after lazy resume

    def test_startup_overlap_hides_server_wait(self):
        """On-demand startup (~95 s) fits inside the 120 s grace window, so
        it adds nothing to the blackout."""
        m = MigrationModel(Mechanism.CKPT_LR)
        fast = m.forced(MEM, LAN, 120.0, 10.0)
        typical = m.forced(MEM, LAN, 120.0, 95.0)
        assert typical.downtime_s == pytest.approx(fast.downtime_s)

    def test_slow_startup_extends_blackout(self):
        m = MigrationModel(Mechanism.CKPT_LR)
        typical = m.forced(MEM, LAN, 120.0, 95.0)
        slow = m.forced(MEM, LAN, 120.0, 300.0)
        assert slow.downtime_s > typical.downtime_s + 100.0

    def test_pessimistic_no_overlap(self):
        m = MigrationModel(Mechanism.CKPT_LR, PESSIMISTIC_PARAMS)
        a = m.forced(MEM, LAN, 120.0, 0.0)
        b = m.forced(MEM, LAN, 120.0, 95.0)
        assert b.downtime_s == pytest.approx(a.downtime_s + 95.0)

    def test_suspend_as_late_as_possible(self):
        t = MigrationModel(Mechanism.CKPT_LR).forced(MEM, LAN, 120.0, 95.0)
        # prep_s is the run-until-suspend window; most of the grace is usable
        assert 100.0 < t.prep_s < 120.0

    def test_invalid_args(self):
        m = MigrationModel(Mechanism.CKPT)
        with pytest.raises(MigrationError):
            m.forced(MEM, LAN, -1.0, 95.0)
        with pytest.raises(MigrationError):
            m.forced(MEM, LAN, 120.0, -5.0)


class TestParamSets:
    def test_pessimistic_worse_everywhere(self):
        for mech in Mechanism:
            t = MigrationModel(mech, TYPICAL_PARAMS)
            p = MigrationModel(mech, PESSIMISTIC_PARAMS)
            assert p.planned(MEM, LAN).downtime_s >= t.planned(MEM, LAN).downtime_s
            assert (
                p.forced(MEM, LAN, 120.0, 95.0).downtime_s
                > t.forced(MEM, LAN, 120.0, 95.0).downtime_s
            )

    def test_fig7_downtime_orderings(self):
        """The single-event downtimes that generate Fig 7's ordering."""
        d = {
            mech: MigrationModel(mech).forced(MEM, LAN, 120.0, 95.0).downtime_s
            for mech in Mechanism
        }
        p = {mech: MigrationModel(mech).planned(MEM, LAN).downtime_s for mech in Mechanism}
        # eager forced > 2x lazy forced (needed for CKPT+Live > CKPT LR)
        assert d[Mechanism.CKPT] > 2 * d[Mechanism.CKPT_LR]
        # live planned below every checkpoint planned
        assert p[Mechanism.CKPT_LR_LIVE] < p[Mechanism.CKPT_LR] < p[Mechanism.CKPT]

    def test_with_overrides(self):
        p = TYPICAL_PARAMS.with_overrides(tau_s=5.0)
        assert p.tau_s == 5.0
        assert TYPICAL_PARAMS.tau_s != 5.0

    def test_checkpointer_factory(self):
        ck = TYPICAL_PARAMS.checkpointer(MEM)
        assert ck.tau_s == TYPICAL_PARAMS.tau_s

    def test_timing_invariants(self):
        with pytest.raises(MigrationError):
            MigrationTiming(prep_s=-1.0, downtime_s=0.0, degraded_s=0.0, description="x")
        t = MigrationTiming(prep_s=10.0, downtime_s=2.0, degraded_s=0.0, description="x")
        assert t.total_s == 12.0

    def test_wan_restore_bandwidth_capped(self):
        """Cross-region restore cannot exceed the WAN link."""
        lan = MigrationModel(Mechanism.CKPT).forced(MEM, LAN, 120.0, 95.0)
        wan = MigrationModel(Mechanism.CKPT).forced(MEM, WAN, 120.0, 95.0)
        assert wan.downtime_s >= lan.downtime_s


class TestDiskCopy:
    def test_intra_region_free(self):
        assert disk_copy_seconds_between(10.0, "us-east-1a", "us-east-1b") == 0.0

    def test_cross_region_scales_with_size(self):
        one = disk_copy_seconds_between(1.0, "us-east-1a", "us-west-1a")
        two = disk_copy_seconds_between(2.0, "us-east-1a", "us-west-1a")
        assert two == pytest.approx(2 * one)
        assert one == pytest.approx(122.4, rel=0.02)  # Table 2

    def test_negative_size_raises(self):
        with pytest.raises(MigrationError):
            disk_copy_seconds(-1.0, WAN)
