"""Unit tests for the Remus replication model."""

import pytest

from repro.cloud.regions import RegionLink, link_between
from repro.errors import MigrationError
from repro.vm.memory import MemoryProfile
from repro.vm.replication import RemusReplication

LAN = link_between("us-east-1a", "us-east-1b")
MEM = MemoryProfile(size_gib=1.36, dirty_rate_mbps=100.0)


def test_failover_downtime_is_seconds_not_restore():
    r = RemusReplication()
    fo = r.failover()
    assert 1.0 < fo.downtime_s < 5.0
    assert fo.degraded_s == 0.0


def test_failover_independent_of_memory_size():
    """The standby is warm: downtime does not scale with RAM."""
    r = RemusReplication()
    assert r.failover().downtime_s == r.failover().downtime_s  # constant model


def test_planned_failover_skips_detection():
    r = RemusReplication(detection_s=1.0)
    assert r.planned_failover().downtime_s == pytest.approx(
        r.failover().downtime_s - 1.0
    )


def test_replication_bandwidth_is_dirty_rate():
    r = RemusReplication()
    assert r.replication_bandwidth_mbps(MEM) == 100.0


def test_initial_sync_uses_spare_bandwidth():
    r = RemusReplication()
    sync = r.initial_sync_s(MEM, LAN)
    # 1.36 GiB over (300 - 100) Mbit/s spare
    assert sync == pytest.approx(1.36 * 8 * 1024**3 / 1e6 / 200.0, rel=0.01)


def test_link_must_have_headroom():
    r = RemusReplication()
    tight = RegionLink(intra=True, memory_bandwidth_mbps=120.0,
                       disk_bandwidth_mbps=120.0, rtt_ms=0.5)
    assert not r.supports(MEM, tight)
    with pytest.raises(MigrationError):
        r.initial_sync_s(MEM, tight)


def test_wan_replication_of_hot_vm_unsupported():
    """A busy VM cannot be Remus-protected across the slow west-eu link."""
    hot = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0)
    wan = link_between("us-west-1a", "eu-west-1a")  # 127 Mbit/s
    assert not RemusReplication().supports(hot, wan)


def test_validation():
    with pytest.raises(MigrationError):
        RemusReplication(epoch_ms=0.0)
    with pytest.raises(MigrationError):
        RemusReplication(detection_s=-1.0)
