"""Unit tests for memory profiles and the nested-overhead model."""

import pytest

from repro.errors import ConfigurationError, MigrationError
from repro.units import gib_to_megabits
from repro.vm.memory import MemoryProfile
from repro.vm.nested import NestedOverheadModel, NestedVm


class TestMemoryProfile:
    def test_size_megabits(self):
        m = MemoryProfile(size_gib=2.0)
        assert m.size_megabits == pytest.approx(gib_to_megabits(2.0))

    def test_working_set_cap(self):
        m = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0, working_set_frac=0.1)
        assert m.working_set_megabits == pytest.approx(0.1 * m.size_megabits)
        # dirtying saturates at the working set
        assert m.dirtied_during(1e9) == m.working_set_megabits

    def test_dirtied_linear_below_cap(self):
        m = MemoryProfile(size_gib=8.0, dirty_rate_mbps=100.0)
        assert m.dirtied_during(3.0) == pytest.approx(300.0)

    def test_dirtied_zero_rate(self):
        m = MemoryProfile(size_gib=2.0, dirty_rate_mbps=0.0)
        assert m.dirtied_during(100.0) == 0.0

    def test_negative_duration_raises(self):
        with pytest.raises(MigrationError):
            MemoryProfile(size_gib=2.0).dirtied_during(-1.0)

    def test_invalid_params(self):
        with pytest.raises(MigrationError):
            MemoryProfile(size_gib=0.0)
        with pytest.raises(MigrationError):
            MemoryProfile(size_gib=1.0, dirty_rate_mbps=-5)
        with pytest.raises(MigrationError):
            MemoryProfile(size_gib=1.0, working_set_frac=0.0)

    def test_scaled_keeps_behaviour(self):
        m = MemoryProfile(size_gib=2.0, dirty_rate_mbps=42.0, working_set_frac=0.2)
        s = m.scaled(8.0)
        assert s.size_gib == 8.0
        assert s.dirty_rate_mbps == 42.0
        assert s.working_set_frac == 0.2


class TestNestedOverheads:
    def test_cpu_overhead_interpolates(self):
        m = NestedOverheadModel(cpu_overhead_idle=1.1, cpu_overhead_peak=1.5)
        assert m.cpu_overhead(0.0) == pytest.approx(1.1)
        assert m.cpu_overhead(1.0) == pytest.approx(1.5)
        assert m.cpu_overhead(0.5) == pytest.approx(1.3)

    def test_cpu_overhead_clamps_utilisation(self):
        m = NestedOverheadModel()
        assert m.cpu_overhead(-1.0) == m.cpu_overhead(0.0)
        assert m.cpu_overhead(2.0) == m.cpu_overhead(1.0)

    def test_io_factors_near_native(self):
        m = NestedOverheadModel()
        assert m.network_factor == pytest.approx(1.0)
        assert 0.95 <= m.disk_factor < 1.0

    def test_invalid_overheads(self):
        with pytest.raises(ConfigurationError):
            NestedOverheadModel(network_factor=0.0)
        with pytest.raises(ConfigurationError):
            NestedOverheadModel(disk_factor=1.2)
        with pytest.raises(ConfigurationError):
            NestedOverheadModel(cpu_overhead_idle=0.9)
        with pytest.raises(ConfigurationError):
            NestedOverheadModel(cpu_overhead_idle=1.4, cpu_overhead_peak=1.2)


class TestNestedVm:
    def test_for_instance_memory(self):
        vm = NestedVm.for_instance_memory("svc", 3.0)
        assert vm.memory.size_gib == 3.0

    def test_invalid_disk(self):
        with pytest.raises(ConfigurationError):
            NestedVm("x", MemoryProfile(1.0), disk_gib=0.0)
