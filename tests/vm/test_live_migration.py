"""Unit tests for the pre-copy live-migration model."""

import pytest

from repro.cloud.regions import RegionLink, link_between
from repro.errors import MigrationError
from repro.units import transfer_seconds
from repro.vm.live_migration import LiveMigrationModel
from repro.vm.memory import MemoryProfile

LAN = link_between("us-east-1a", "us-east-1b")


def test_idle_vm_single_round():
    """No dirtying: one bulk round then an (empty) stop-and-copy."""
    mem = MemoryProfile(size_gib=2.0, dirty_rate_mbps=0.0)
    r = LiveMigrationModel().migrate(mem, LAN)
    assert r.rounds == 1
    assert r.converged
    assert r.total_time_s == pytest.approx(
        transfer_seconds(2.0, LAN.memory_bandwidth_mbps), rel=0.05
    )


def test_total_time_close_to_table2_intra():
    mem = MemoryProfile(size_gib=2.0, dirty_rate_mbps=40.0)
    r = LiveMigrationModel().migrate(mem, LAN)
    # Paper Table 2: 57-59 s intra-region for a 2 GB VM.
    assert 55.0 < r.total_time_s < 75.0


def test_downtime_sub_second_on_lan():
    mem = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0)
    r = LiveMigrationModel().migrate(mem, LAN)
    assert r.downtime_s < 1.5
    assert r.converged


def test_rounds_shrink_geometrically():
    mem = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0)
    r = LiveMigrationModel().migrate(mem, LAN)
    assert 2 <= r.rounds <= 12
    assert r.data_sent_megabits > mem.size_megabits  # extra dirty rounds


def test_non_convergent_workload_hits_round_cap():
    """Dirty rate ~ bandwidth: pre-copy cannot drain; forced stop-and-copy."""
    slow = RegionLink(intra=True, memory_bandwidth_mbps=100.0,
                      disk_bandwidth_mbps=100.0, rtt_ms=1.0)
    mem = MemoryProfile(size_gib=2.0, dirty_rate_mbps=99.0, working_set_frac=0.5)
    r = LiveMigrationModel(max_rounds=10).migrate(mem, slow)
    assert not r.converged
    assert r.rounds == 10
    assert r.downtime_s > 10.0  # big final working-set copy


def test_faster_link_less_downtime():
    mem = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0)
    fast = RegionLink(True, 1000.0, 1000.0, 0.5)
    slow = RegionLink(True, 200.0, 200.0, 0.5)
    assert (
        LiveMigrationModel().migrate(mem, fast).downtime_s
        < LiveMigrationModel().migrate(mem, slow).downtime_s
    )


def test_wan_migration_slower():
    mem = MemoryProfile(size_gib=2.0, dirty_rate_mbps=40.0)
    lan = LiveMigrationModel().migrate(mem, LAN)
    wan = LiveMigrationModel().migrate(mem, link_between("us-east-1a", "eu-west-1a"))
    assert wan.total_time_s > lan.total_time_s


def test_zero_bandwidth_raises():
    bad = RegionLink(True, 0.0, 100.0, 1.0)
    with pytest.raises(MigrationError):
        LiveMigrationModel().migrate(MemoryProfile(1.0), bad)


def test_activation_floor_on_downtime():
    mem = MemoryProfile(size_gib=0.1, dirty_rate_mbps=0.0)
    model = LiveMigrationModel(activation_s=0.35)
    r = model.migrate(mem, LAN)
    assert r.downtime_s >= 0.35


def test_larger_memory_longer_migration():
    small = MemoryProfile(size_gib=1.0, dirty_rate_mbps=50.0)
    big = MemoryProfile(size_gib=12.0, dirty_rate_mbps=50.0)
    m = LiveMigrationModel()
    assert m.migrate(big, LAN).total_time_s > m.migrate(small, LAN).total_time_s
