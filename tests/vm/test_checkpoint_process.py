"""Tests for the live background-checkpointing process."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointBoundError, MigrationError
from repro.simulator.engine import Engine
from repro.units import hours
from repro.vm.checkpoint import BoundedCheckpointer
from repro.vm.checkpoint_process import (
    BackgroundCheckpointProcess,
    DirtyRateProfile,
    FlushRecord,
)
from repro.vm.memory import MemoryProfile

MEM = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0, working_set_frac=0.5)


def run_process(profile, sim_s=hours(2), tau=10.0, safety=0.9, mem=MEM):
    eng = Engine()
    proc = BackgroundCheckpointProcess(
        eng, mem, write_bandwidth_mbps=300.0, tau_s=tau, safety=safety,
        profile=profile,
    )
    proc.start()
    eng.run(until=sim_s)
    return eng, proc


class TestProfiles:
    def test_constant(self):
        p = DirtyRateProfile.constant(50.0)
        assert p.rate_at(0) == 50.0
        assert p.rate_at(1e9) == 50.0
        assert p.next_change_after(0) is None

    def test_piecewise(self):
        p = DirtyRateProfile([0.0, 100.0], [10.0, 200.0])
        assert p.rate_at(50.0) == 10.0
        assert p.rate_at(100.0) == 200.0
        assert p.next_change_after(0.0) == 100.0
        assert p.max_rate == 200.0

    def test_validation(self):
        with pytest.raises(MigrationError):
            DirtyRateProfile([], [])
        with pytest.raises(MigrationError):
            DirtyRateProfile([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(MigrationError):
            DirtyRateProfile([0.0], [-1.0])


class TestConstantRate:
    def test_flush_period_matches_analytic_model(self):
        eng, proc = run_process(DirtyRateProfile.constant(100.0))
        analytic = BoundedCheckpointer(
            MEM, write_bandwidth_mbps=300.0, tau_s=10.0
        ).steady_state_period_s()
        # trigger at 0.9 * tau * B, so the loop runs slightly faster than
        # the analytic (full-budget) period, plus the flush time itself
        assert proc.mean_period_s() == pytest.approx(0.9 * analytic, rel=0.2)

    def test_bound_holds_on_dense_grid(self):
        eng, proc = run_process(DirtyRateProfile.constant(100.0))
        for t in np.linspace(0, hours(2) * 0.999, 500):
            assert proc.bound_holds_at(float(t)), f"bound violated at t={t}"

    def test_flush_sizes_at_trigger(self):
        eng, proc = run_process(DirtyRateProfile.constant(100.0))
        for f in proc.flushes:
            assert f.megabits <= proc.trigger_megabits + 1e-6

    def test_idle_vm_never_flushes(self):
        eng, proc = run_process(DirtyRateProfile.constant(0.0))
        assert proc.flush_count() == 0
        assert proc.final_flush_s_if_suspended(hours(1)) == 0.0

    def test_bandwidth_fraction_near_dirty_ratio(self):
        eng, proc = run_process(DirtyRateProfile.constant(100.0))
        frac = proc.bandwidth_fraction_used(0.0, hours(2))
        assert frac == pytest.approx(100.0 / 300.0, rel=0.15)


class TestVaryingRate:
    def test_adapts_to_bursts(self):
        """Quiet then busy: flushes cluster in the busy half."""
        p = DirtyRateProfile([0.0, hours(1)], [5.0, 150.0])
        eng, proc = run_process(p)
        first_half = [f for f in proc.flushes if f.start < hours(1)]
        second_half = [f for f in proc.flushes if f.start >= hours(1)]
        assert len(second_half) > 3 * max(len(first_half), 1)

    def test_bound_holds_through_burst(self):
        p = DirtyRateProfile([0.0, hours(1), hours(1.5)], [5.0, 250.0, 20.0])
        eng, proc = run_process(p)
        for t in np.linspace(0, hours(2) * 0.999, 400):
            assert proc.bound_holds_at(float(t))

    def test_rejects_rate_above_bandwidth(self):
        with pytest.raises(CheckpointBoundError):
            run_process(DirtyRateProfile.constant(400.0))


class TestApi:
    def test_double_start_rejected(self):
        eng = Engine()
        proc = BackgroundCheckpointProcess(eng, MEM)
        proc.start()
        with pytest.raises(MigrationError):
            proc.start()

    def test_query_past_rejected(self):
        eng, proc = run_process(DirtyRateProfile.constant(100.0), sim_s=100.0)
        with pytest.raises(MigrationError):
            proc.backlog_at(-1.0)

    def test_invalid_params(self):
        eng = Engine()
        with pytest.raises(MigrationError):
            BackgroundCheckpointProcess(eng, MEM, tau_s=0.0)
        with pytest.raises(MigrationError):
            BackgroundCheckpointProcess(eng, MEM, safety=0.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=280.0), min_size=1, max_size=8),
    st.floats(min_value=2.0, max_value=30.0),
)
@settings(max_examples=30, deadline=None)
def test_property_bound_holds_for_any_subcritical_profile(rates, tau):
    """Whatever the (sub-bandwidth) dirty-rate schedule, Yank's bound holds
    at every sampled instant."""
    times = [i * 600.0 for i in range(len(rates))]
    profile = DirtyRateProfile(times, rates)
    eng = Engine()
    proc = BackgroundCheckpointProcess(
        eng, MEM, write_bandwidth_mbps=300.0, tau_s=tau, profile=profile
    )
    proc.start()
    sim_s = times[-1] + 1200.0
    eng.run(until=sim_s)
    for t in np.linspace(0, sim_s * 0.999, 120):
        assert proc.final_flush_s_if_suspended(float(t)) <= tau + 1e-9
