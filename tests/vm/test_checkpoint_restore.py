"""Unit tests for bounded checkpointing and restore models."""

import numpy as np
import pytest

from repro.errors import CheckpointBoundError, MigrationError
from repro.units import transfer_seconds
from repro.vm.checkpoint import BoundedCheckpointer
from repro.vm.memory import MemoryProfile
from repro.vm.restore import EagerRestore, LazyRestore

MEM = MemoryProfile(size_gib=2.0, dirty_rate_mbps=100.0, working_set_frac=0.10)


class TestBoundedCheckpointer:
    def test_final_increment_within_bound(self):
        """Yank's contract: the worst-case final flush fits tau (plus the
        constant suspend overhead)."""
        ck = BoundedCheckpointer(MEM, tau_s=10.0)
        worst = ck.final_increment(None)
        assert worst.within_bound
        assert worst.suspend_write_s <= 10.0 + ck.suspend_overhead_s + 1e-9

    def test_final_increment_sampled_below_worst(self):
        ck = BoundedCheckpointer(MEM, tau_s=10.0)
        rng = np.random.default_rng(0)
        worst = ck.final_increment(None).suspend_write_s
        for _ in range(20):
            s = ck.final_increment(rng).suspend_write_s
            assert s <= worst + 1e-9

    def test_steady_state_period(self):
        ck = BoundedCheckpointer(MEM, tau_s=5.0)
        period = ck.steady_state_period_s()
        # backlog cap = tau * B; period = cap / dirty_rate
        assert period == pytest.approx(5.0 * 300.0 / 100.0)

    def test_small_working_set_gives_infinite_period(self):
        quiet = MemoryProfile(size_gib=2.0, dirty_rate_mbps=10.0, working_set_frac=0.01)
        ck = BoundedCheckpointer(quiet, tau_s=60.0)
        assert ck.steady_state_period_s() == float("inf")

    def test_background_bandwidth_fraction(self):
        ck = BoundedCheckpointer(MEM)
        assert ck.background_bandwidth_fraction() == pytest.approx(100.0 / 300.0)

    def test_full_image_write_matches_table2(self):
        ck = BoundedCheckpointer(MEM)
        per_gib = ck.full_image_write_s() / MEM.size_gib
        assert per_gib == pytest.approx(28.6, rel=0.05)  # paper: ~28 s/GB

    def test_dirty_faster_than_write_rejected(self):
        hot = MemoryProfile(size_gib=2.0, dirty_rate_mbps=400.0)
        with pytest.raises(CheckpointBoundError):
            BoundedCheckpointer(hot, write_bandwidth_mbps=300.0)

    def test_fits_grace_window(self):
        ck = BoundedCheckpointer(MEM, tau_s=10.0)
        assert ck.fits_grace_window(120.0)
        assert not ck.fits_grace_window(1.0)

    def test_invalid_params(self):
        with pytest.raises(MigrationError):
            BoundedCheckpointer(MEM, write_bandwidth_mbps=0.0)
        with pytest.raises(MigrationError):
            BoundedCheckpointer(MEM, tau_s=0.0)


class TestRestore:
    def test_eager_time_scales_with_memory(self):
        e = EagerRestore(read_bandwidth_mbps=150.0)
        small = e.restore(MemoryProfile(size_gib=1.0))
        big = e.restore(MemoryProfile(size_gib=12.0))
        assert big.downtime_s == pytest.approx(12 * small.downtime_s)
        assert small.degraded_s == 0.0

    def test_eager_matches_bandwidth(self):
        e = EagerRestore(read_bandwidth_mbps=150.0)
        r = e.restore(MemoryProfile(size_gib=2.0))
        assert r.downtime_s == pytest.approx(transfer_seconds(2.0, 150.0))

    def test_lazy_downtime_independent_of_memory(self):
        l = LazyRestore(resume_latency_s=20.0)
        a = l.restore(MemoryProfile(size_gib=1.0))
        b = l.restore(MemoryProfile(size_gib=15.0))
        assert a.downtime_s == b.downtime_s == 20.0

    def test_lazy_degraded_window_scales(self):
        l = LazyRestore()
        a = l.restore(MemoryProfile(size_gib=1.0))
        b = l.restore(MemoryProfile(size_gib=15.0))
        assert b.degraded_s > a.degraded_s > 0

    def test_lazy_reads_only_critical_set(self):
        l = LazyRestore(critical_set_frac=0.05)
        r = l.restore(MemoryProfile(size_gib=10.0))
        assert r.data_read_gib == pytest.approx(0.5)

    def test_lazy_beats_eager_for_large_vms(self):
        """The Fig 7 rationale: restore blackout of CKPT grows with memory,
        CKPT+LR does not."""
        mem = MemoryProfile(size_gib=12.0)
        assert LazyRestore().restore(mem).downtime_s < EagerRestore().restore(mem).downtime_s

    def test_invalid_params(self):
        with pytest.raises(MigrationError):
            EagerRestore(read_bandwidth_mbps=0.0).restore(MEM)
        with pytest.raises(MigrationError):
            LazyRestore(resume_latency_s=-1.0).restore(MEM)
        with pytest.raises(MigrationError):
            LazyRestore(critical_set_frac=1.5).restore(MEM)
        with pytest.raises(MigrationError):
            LazyRestore(prefetch_bandwidth_mbps=0.0).restore(MEM)
