"""Analysis helpers over plain event records (repro.analysis.decisions)."""

from repro.analysis.decisions import (
    AVOIDANCE_WINDOW_S,
    decision_timeline,
    event_counts,
    group_runs,
    migration_narrative,
    revocations_avoided,
    total_downtime_s,
)


def vol(t, started_at, crossing):
    return {
        "type": "voluntary-migration", "t": t, "kind": "planned",
        "source": "us-east-1a/small", "target": "us-east-1a/od",
        "started_at": started_at, "downtime_s": 2.0,
        "next_bid_crossing": crossing,
    }


RUN_A = [
    {"type": "bid-placed", "t": 0.0, "market": "us-east-1a/small", "bid": 0.188,
     "price": 0.05, "policy": "proactive", "n_servers": 1, "rationale": "cap",
     "run": "proactive/small", "seed": 11},
    vol(3700.0, 3600.0, 3600.0 + AVOIDANCE_WINDOW_S - 1.0) | {"run": "proactive/small", "seed": 11},
    vol(7300.0, 7200.0, 7200.0 + AVOIDANCE_WINDOW_S + 1.0) | {"run": "proactive/small", "seed": 11},
    vol(9000.0, 8900.0, None) | {"run": "proactive/small", "seed": 11},
    {"type": "service-blackout", "t": 3600.0, "cause": "planned-migration",
     "start": 3600.0, "end": 3602.5, "degraded_s": 0.0,
     "run": "proactive/small", "seed": 11},
]

RUN_B = [
    {"type": "revocation-warning", "t": 100.0, "market": "us-east-1a/small",
     "bid": 0.047, "price": 0.2, "grace_s": 120.0, "run": "reactive/small", "seed": 23},
    {"type": "forced-migration", "t": 220.0, "source": "us-east-1a/small",
     "target": "us-east-1a/od", "started_at": 100.0, "downtime_s": 20.0,
     "run": "reactive/small", "seed": 23},
]


class TestGrouping:
    def test_group_runs_in_first_appearance_order(self):
        groups = group_runs(RUN_A + RUN_B)
        assert [key for key, _ in groups] == [
            ("", "proactive/small", 11),
            ("", "reactive/small", 23),
        ]
        assert [len(events) for _, events in groups] == [5, 2]

    def test_untagged_stream_is_one_group(self):
        records = [{"type": "bid-placed", "t": 0.0}]
        assert len(group_runs(records)) == 1

    def test_event_counts_sorted_by_type(self):
        counts = event_counts(RUN_A)
        assert counts == {
            "bid-placed": 1, "service-blackout": 1, "voluntary-migration": 3,
        }
        assert list(counts) == sorted(counts)


class TestFig6Helpers:
    def test_revocations_avoided_uses_the_window(self):
        avoided = revocations_avoided(RUN_A)
        # Only the crossing inside the window counts; the late crossing and
        # the never-crossing (None) voluntary moves don't.
        assert len(avoided) == 1
        assert avoided[0]["t"] == 3700.0

    def test_total_downtime_sums_blackouts(self):
        assert total_downtime_s(RUN_A) == 2.5
        assert total_downtime_s(RUN_B) == 0.0

    def test_narrative_states_the_fig6_numbers(self):
        text = migration_narrative(RUN_A)
        assert "3 voluntary migration(s)" in text
        assert "1 of them ahead of a bid crossing" in text
        assert "0 forced migration(s)" in text
        assert "2.5 s total blackout" in text
        reactive = migration_narrative(RUN_B)
        assert "1 forced migration(s) from 1 revocation warning(s)" in reactive


class TestTimeline:
    def test_chronological_and_described(self):
        text = decision_timeline(RUN_B)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "warned" in lines[0] and "forced move" in lines[1]

    def test_types_filter_and_limit(self):
        text = decision_timeline(RUN_A, limit=1, types=["voluntary-migration"])
        lines = text.splitlines()
        assert "planned move" in lines[0]
        assert "2 more event(s)" in lines[-1]
