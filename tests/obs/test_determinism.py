"""Trace capture determinism across the process-pool boundary.

The acceptance bar: the same seed produces the identical event stream
whether the batch runs serially or fanned out, and observing a batch does
not perturb its results.
"""

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.obs import observe
from repro.runtime import RunSpec, StrategySpec, TraceCatalogCache, run_batch
from repro.traces.catalog import MarketKey
from repro.units import days

REGION = "us-east-1a"


def fig6_style_runs(seeds=(11, 23), horizon=days(3)):
    key = MarketKey(REGION, "small")
    return [
        RunSpec(
            strategy=StrategySpec.single(key),
            bidding=bidding,
            seed=seed,
            horizon_s=horizon,
            regions=(REGION,),
            sizes=("small",),
            label=f"{bidding.name}/small",
        )
        for bidding in (ReactiveBidding(), ProactiveBidding())
        for seed in seeds
    ]


def captured_stream(jobs):
    with observe(trace=True, metrics=True) as scope:
        batch = run_batch(fig6_style_runs(), jobs=jobs, cache=TraceCatalogCache())
    return batch, scope


class TestAcrossJobs:
    def test_event_streams_identical_serial_vs_parallel(self):
        batch1, scope1 = captured_stream(jobs=1)
        batch4, scope4 = captured_stream(jobs=4)

        assert [(r.label, r.seed) for r in scope1.runs] == [
            (r.label, r.seed) for r in scope4.runs
        ]
        for serial, parallel in zip(scope1.runs, scope4.runs):
            assert serial.events == parallel.events
            assert serial.metrics == parallel.metrics
        assert batch1.results == batch4.results

    def test_written_jsonl_is_byte_identical(self, tmp_path):
        _, scope1 = captured_stream(jobs=1)
        _, scope2 = captured_stream(jobs=2)
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        n1 = scope1.write_jsonl(str(a))
        n2 = scope2.write_jsonl(str(b))
        assert n1 == n2 > 0
        assert a.read_bytes() == b.read_bytes()


class TestObservationIsPassive:
    def test_observing_does_not_change_batch_results(self):
        plain = run_batch(fig6_style_runs(), cache=TraceCatalogCache())
        with observe(trace=True, metrics=True) as scope:
            watched = run_batch(fig6_style_runs(), cache=TraceCatalogCache())
        assert plain.results == watched.results
        assert scope.event_count > 0

    def test_no_scope_means_no_capture(self):
        batch = run_batch(fig6_style_runs(seeds=(11,)), cache=TraceCatalogCache())
        assert all(t.trace_events is None for t in batch.run_telemetry)
        # Metrics stay always-on: they ride telemetry even without a scope.
        assert all(t.metrics is not None for t in batch.run_telemetry)

    def test_every_run_reports_events_and_metrics_under_a_scope(self):
        _, scope = captured_stream(jobs=1)
        assert len(scope.runs) == 4
        assert all(r.events for r in scope.runs)
        assert scope.metrics.counters  # merged across runs
