"""Instrumented runs: events emitted, metrics tallied, results unchanged."""

import pytest

from repro.core.bidding import ReactiveBidding
from repro.core.simulation import (
    SimulationConfig,
    run_simulation,
    run_simulation_observed,
)
from repro.core.strategies import SingleMarketStrategy
from repro.obs import MemorySink, event_from_dict
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def cfg(**kw):
    base = dict(
        strategy=lambda: SingleMarketStrategy(KEY),
        regions=("us-east-1a",),
        sizes=("small",),
        horizon_s=days(5),
        seed=23,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestEmission:
    def test_traced_run_emits_the_core_event_families(self):
        sink = MemorySink()
        observed = run_simulation_observed(cfg(), sink=sink)
        types = {type(e).etype for e in sink.events}
        assert {"bid-placed", "lease-acquired", "billing-tick",
                "engine-run-completed"} <= types
        assert observed.fired_events > 0
        # Every event survives the wire round trip.
        for event in sink.events:
            assert event_from_dict(event.to_dict()) == event

    def test_reactive_run_traces_its_revocations(self):
        sink = MemorySink()
        observed = run_simulation_observed(
            cfg(bidding=ReactiveBidding(), horizon_s=days(10)), sink=sink
        )
        counts = {}
        for e in sink.events:
            counts[type(e).etype] = counts.get(type(e).etype, 0) + 1
        if observed.result.forced_migrations:
            assert counts.get("revocation-warning", 0) >= observed.result.forced_migrations
            assert counts.get("forced-migration") == observed.result.forced_migrations

    def test_bid_placed_carries_the_policy_rationale(self):
        sink = MemorySink()
        run_simulation_observed(cfg(), sink=sink)
        bids = [e for e in sink.events if type(e).etype == "bid-placed"]
        assert bids and all(b.rationale for b in bids)


class TestMetrics:
    def test_metrics_agree_with_the_result(self):
        observed = run_simulation_observed(cfg(horizon_s=days(10)))
        result, metrics = observed.result, observed.metrics

        def counter(name):
            c = metrics.counters.get(name)
            return int(c.value) if c else 0

        assert counter("migrations.planned") == result.planned_migrations
        assert counter("migrations.reverse") == result.reverse_migrations
        assert counter("migrations.forced") == result.forced_migrations
        assert metrics.gauges["total_cost_usd"].value == pytest.approx(result.total_cost)
        assert metrics.gauges["unavailability_percent"].value == pytest.approx(
            result.unavailability_percent
        )
        assert metrics.histograms["downtime_s"].total == pytest.approx(
            result.downtime_s, abs=1e-6
        )


class TestNullSinkIdentity:
    def test_observed_run_matches_plain_run_exactly(self):
        assert run_simulation_observed(cfg()).result == run_simulation(cfg())

    def test_tracing_does_not_change_the_result(self):
        sink = MemorySink()
        traced = run_simulation_observed(cfg(), sink=sink)
        assert sink.events
        assert traced.result == run_simulation(cfg())
