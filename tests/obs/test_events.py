"""Event model: registry completeness and lossless wire round-trips."""

import dataclasses

import pytest

from repro.obs import (
    EVENT_TYPES,
    BidPlaced,
    BillingTick,
    CheckpointRestore,
    CheckpointWrite,
    EngineRunCompleted,
    ForcedMigration,
    LeaseAcquired,
    LeaseTerminated,
    MigrationAborted,
    PriceCrossing,
    Revocation,
    RevocationWarning,
    ServiceBlackout,
    TraceEvent,
    VoluntaryMigration,
    event_from_dict,
)

SAMPLES = [
    BidPlaced(t=0.0, market="us-east-1a/small", bid=0.188, price=0.05,
              policy="proactive", n_servers=2, rationale="4 x on-demand"),
    LeaseAcquired(t=1.0, market="us-east-1a/small", kind="spot",
                  lease_id="sir-1", ready_at=96.0, bid=0.188),
    LeaseAcquired(t=1.0, market="us-east-1a/small", kind="on_demand",
                  lease_id="i-1", ready_at=96.0),
    LeaseTerminated(t=3600.0, market="us-east-1a/small", kind="spot",
                    lease_id="sir-1", reason="revoked", revoked=True, billed=0.0),
    PriceCrossing(t=120.0, market="us-east-1a/small", price=0.2,
                  threshold=0.188, direction="above-bid"),
    BillingTick(t=3000.0, market="us-east-1a/small", price=0.05,
                on_demand_price=0.047, boundary=3600.0),
    RevocationWarning(t=120.0, market="us-east-1a/small", bid=0.188,
                      price=0.2, grace_s=120.0),
    Revocation(t=240.0, market="us-east-1a/small", bid=0.188, warned_at=120.0),
    VoluntaryMigration(t=3610.0, kind="planned", source="us-east-1a/small",
                       target="us-east-1a/od", started_at=3000.0,
                       downtime_s=2.5, next_bid_crossing=4000.0),
    VoluntaryMigration(t=3610.0, kind="reverse", source="us-east-1a/od",
                       target="us-east-1a/small", started_at=3000.0,
                       downtime_s=2.5),
    ForcedMigration(t=240.0, source="us-east-1a/small", target="us-east-1a/od",
                    started_at=120.0, downtime_s=20.0),
    MigrationAborted(t=3000.0, kind="planned", source="us-east-1a/small",
                     target="us-east-1b/small", reason="target-revoked"),
    CheckpointWrite(t=3600.0, market="us-east-1a/small", size_gib=2.0),
    CheckpointRestore(t=3620.0, market="us-east-1a/od", downtime_s=20.0),
    ServiceBlackout(t=3600.0, cause="forced-migration", start=3600.0,
                    end=3620.0, degraded_s=5.0),
    EngineRunCompleted(t=86400.0, fired_events=1234),
]


class TestRegistry:
    def test_every_event_class_is_registered(self):
        assert len(EVENT_TYPES) == 14
        for wire, cls in EVENT_TYPES.items():
            assert cls.etype == wire
            assert issubclass(cls, TraceEvent)

    def test_wire_names_are_kebab_case(self):
        for wire in EVENT_TYPES:
            assert wire == wire.lower()
            assert " " not in wire and "_" not in wire

    def test_samples_cover_every_type(self):
        assert {type(e).etype for e in SAMPLES} == set(EVENT_TYPES)


class TestRoundTrip:
    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).__name__)
    def test_to_dict_from_dict_is_lossless(self, event):
        record = event.to_dict()
        assert record["type"] == type(event).etype
        assert next(iter(record)) == "type"
        assert event_from_dict(record) == event

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).__name__)
    def test_events_are_frozen(self, event):
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.t = -1.0

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event type"):
            event_from_dict({"type": "no-such-event", "t": 0.0})

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"t": 0.0})
