"""Metrics registry: semantics, transport round-trip, merge determinism."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter_only_increases(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0

    def test_histogram_stats(self):
        h = Histogram()
        for v in (10.0, 30.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 60.0
        assert h.mean == pytest.approx(20.0)
        assert h.min == 10.0 and h.max == 30.0
        assert h.quantile(0.0) == 10.0
        assert h.quantile(0.5) == 20.0
        assert h.quantile(1.0) == 30.0

    def test_empty_histogram_is_all_zero(self):
        h = Histogram()
        assert h.count == 0 and h.mean == 0.0 and h.quantile(0.95) == 0.0

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).quantile(1.5)


class TestRegistry:
    def test_created_on_first_touch(self):
        reg = MetricsRegistry()
        assert not reg
        reg.counter("migrations.planned").inc()
        assert reg.counter("migrations.planned") is reg.counters["migrations.planned"]
        assert bool(reg)

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("revocations").inc(3)
        reg.gauge("total_cost_usd").set(12.5)
        reg.histogram("downtime_s").observe(20.0)
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("revocations").inc(2)
        b.counter("revocations").inc(3)
        a.gauge("total_cost_usd").set(1.0)
        b.gauge("total_cost_usd").set(9.0)
        a.histogram("downtime_s").observe(1.0)
        b.histogram("downtime_s").observe(2.0)
        merged = a.merge(b)
        assert merged is a
        assert a.counter("revocations").value == 5        # counters add
        assert a.gauge("total_cost_usd").value == 9.0     # last write wins
        assert a.histogram("downtime_s").samples == [1.0, 2.0]  # concatenated

    def test_summary_renders_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("revocations").inc(4)
        reg.gauge("spot_time_fraction").set(0.9)
        reg.histogram("downtime_s").observe(15.0)
        text = reg.summary()
        assert "revocations = 4" in text
        assert "spot_time_fraction = 0.9000" in text
        assert "downtime_s: n=1" in text
        assert MetricsRegistry().summary() == "  (no metrics recorded)"
