"""TRACING.md must describe the real event model (satellite of CI check)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_tracing_docs_checker_passes():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_tracing_docs.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "TRACING.md OK" in proc.stdout


def test_every_event_class_named_in_tracing_md():
    from repro.obs import EVENT_TYPES

    doc = (REPO / "docs" / "TRACING.md").read_text(encoding="utf-8")
    for wire, cls in EVENT_TYPES.items():
        assert f"`{cls.__name__}`" in doc
        assert f"`{wire}`" in doc
