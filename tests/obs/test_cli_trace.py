"""The --trace/--metrics flags and the repro-trace summarize command."""

import json

import pytest

from repro.cli import main as simulate_main
from repro.obs.cli import main as trace_main

CHEAP = ["--days", "2", "--seeds", "11", "23"]


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """One cheap traced repro-simulate run shared by the CLI tests."""
    path = tmp_path_factory.mktemp("trace") / "t.jsonl"
    rc = simulate_main(CHEAP + ["--trace", str(path), "--metrics"])
    assert rc == 0
    return path


class TestSimulateFlags:
    def test_trace_file_holds_tagged_event_records(self, traced):
        records = [json.loads(line) for line in traced.read_text().splitlines()]
        assert records
        assert {"bid-placed", "lease-acquired", "billing-tick",
                "engine-run-completed"} <= {r["type"] for r in records}
        assert all("run" in r and "seed" in r for r in records)
        assert {r["seed"] for r in records} == {11, 23}

    def test_default_output_is_a_prefix_of_traced_output(self, tmp_path, capsys):
        assert simulate_main(CHEAP) == 0
        plain = capsys.readouterr().out
        rc = simulate_main(
            CHEAP + ["--trace", str(tmp_path / "t.jsonl"), "--metrics"]
        )
        traced_out = capsys.readouterr().out
        assert rc == 0
        # The observability footer only appends: the report itself is
        # byte-identical with tracing on or off.
        assert traced_out.startswith(plain)
        assert "trace:" in traced_out and "run metrics" in traced_out


class TestTraceSummarize:
    def test_summarize_renders_each_run(self, traced, capsys):
        assert trace_main(["summarize", str(traced)]) == 0
        out = capsys.readouterr().out
        assert "event(s) across 2 run(s)" in out
        assert out.count("== ") == 2
        # Headings carry the seed plus the engine that executed the run
        # (traced runs always route to the event engine).
        assert "(seed 11, event engine)" in out and "(seed 23, event engine)" in out
        assert "voluntary migration(s)" in out
        assert "bid-placed" in out

    def test_timeline_filters_by_type(self, traced, capsys):
        rc = trace_main(
            ["summarize", str(traced), "--timeline", "--types", "bid-placed"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        timeline = [l for l in out.splitlines() if "bid $" in l]
        assert timeline
        assert "billing-tick  " not in out.split("== ", 1)[1].split("\n\n")[-1]

    def test_timeline_limit_truncates(self, traced, capsys):
        assert trace_main(["summarize", str(traced), "--timeline", "--limit", "1"]) == 0
        assert "more event(s)" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert trace_main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_file_is_not_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trace_main(["summarize", str(empty)]) == 0
        assert "empty trace" in capsys.readouterr().out
