"""Sinks: the null default, memory/ring collection, JSONL round-trips."""

import json

import pytest

from repro.obs import (
    NULL_SINK,
    EngineRunCompleted,
    JsonlSink,
    MemorySink,
    NullSink,
    RingBufferSink,
    TraceSink,
    event_from_dict,
    read_jsonl,
)


def ticks(n):
    return [EngineRunCompleted(t=float(i), fired_events=i) for i in range(n)]


class TestNullSink:
    def test_disabled_and_shared(self):
        assert NULL_SINK.enabled is False
        assert isinstance(NULL_SINK, NullSink)

    def test_emit_is_a_noop(self):
        NULL_SINK.emit(ticks(1)[0])  # must not raise or record anything


class TestMemorySink:
    def test_collects_in_order(self):
        sink = MemorySink()
        assert sink.enabled is True
        events = ticks(3)
        for e in events:
            sink.emit(e)
        assert sink.events == events
        assert len(sink) == 3
        sink.clear()
        assert len(sink) == 0


class TestRingBufferSink:
    def test_keeps_only_the_most_recent(self):
        sink = RingBufferSink(capacity=2)
        for e in ticks(5):
            sink.emit(e)
        assert [e.fired_events for e in sink.events] == [3, 4]
        assert len(sink) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonl:
    def test_round_trip_with_tags(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = ticks(3)
        with JsonlSink(path, tags={"run": "proactive/small", "seed": 11}) as sink:
            for e in events:
                sink.emit(e)
            assert sink.lines_written == 3

        records = list(read_jsonl(path))
        assert len(records) == 3
        for record, event in zip(records, events):
            assert record["run"] == "proactive/small"
            assert record["seed"] == 11
            payload = {k: v for k, v in record.items() if k not in ("run", "seed")}
            assert event_from_dict(payload) == event

    def test_lines_are_compact_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(ticks(1)[0])
        line = path.read_text().splitlines()[0]
        assert ": " not in line and ", " not in line
        assert json.loads(line)["type"] == "engine-run-completed"

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"engine-run-completed","t":0.0,"fired_events":1}\n\n\n')
        assert len(list(read_jsonl(path))) == 1


class TestProtocol:
    def test_provided_sinks_satisfy_the_protocol(self):
        for sink in (NULL_SINK, MemorySink(), RingBufferSink(4)):
            assert isinstance(sink, TraceSink)
