"""Unit tests for regions, links and instance types."""

import pytest

from repro.cloud.instance_types import INSTANCE_TYPES, SIZE_ORDER, instance_type
from repro.cloud.regions import GEO_REGIONS, REGION_TABLE, link_between, region_of
from repro.errors import ConfigurationError


class TestInstanceTypes:
    def test_four_sizes(self):
        assert set(INSTANCE_TYPES) == set(SIZE_ORDER)

    def test_capacity_doubles_up_the_ladder(self):
        caps = [instance_type(s).capacity_units for s in SIZE_ORDER]
        assert caps == [1, 2, 4, 8]

    def test_memory_increases(self):
        mems = [instance_type(s).memory_gib for s in SIZE_ORDER]
        assert mems == sorted(mems)

    def test_nested_memory_reserves_dom0(self):
        for s in SIZE_ORDER:
            it = instance_type(s)
            assert 0 < it.nested_memory_gib < it.memory_gib

    def test_unknown_size_raises(self):
        with pytest.raises(ConfigurationError):
            instance_type("2xlarge")

    def test_ec2_names(self):
        assert instance_type("small").ec2_name == "m1.small"


class TestRegions:
    def test_all_calibrated_azs_present(self):
        assert len(REGION_TABLE) == 5
        assert REGION_TABLE["us-west-1b"].geo == "us-west"

    def test_geo_grouping(self):
        assert region_of("us-east-1a").geo == region_of("us-east-1b").geo
        assert region_of("us-east-1a").geo != region_of("eu-west-1a").geo
        assert set(GEO_REGIONS) == {r.geo for r in REGION_TABLE.values()}

    def test_unknown_region_raises(self):
        with pytest.raises(ConfigurationError):
            region_of("ap-south-1a")


class TestLinks:
    def test_same_az_is_intra(self):
        assert link_between("us-east-1a", "us-east-1a").intra

    def test_same_geo_is_intra(self):
        assert link_between("us-east-1a", "us-east-1b").intra

    def test_cross_geo_is_wan(self):
        link = link_between("us-east-1a", "eu-west-1a")
        assert not link.intra
        assert link.rtt_ms > 10

    def test_link_symmetric(self):
        a = link_between("us-east-1a", "us-west-1a")
        b = link_between("us-west-1a", "us-east-1a")
        assert a == b

    def test_wan_slower_than_lan(self):
        lan = link_between("us-east-1a", "us-east-1b")
        for other in ("us-west-1a", "eu-west-1a"):
            wan = link_between("us-east-1a", other)
            assert wan.memory_bandwidth_mbps <= lan.memory_bandwidth_mbps

    def test_west_eu_is_slowest_pair(self):
        we = link_between("us-west-1a", "eu-west-1a")
        ee = link_between("us-east-1a", "eu-west-1a")
        assert we.memory_bandwidth_mbps < ee.memory_bandwidth_mbps
