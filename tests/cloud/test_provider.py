"""Unit tests for the CloudProvider facade."""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider, LeaseKind
from repro.errors import BidRejectedError, InstanceNotHeldError, MarketError
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace
from repro.units import days, hours

KEY = MarketKey("us-east-1a", "small")


def make_provider(times, prices, horizon=days(2), od=0.06, cv=0.0):
    t = PriceTrace(np.array(times, float), np.array(prices, float), horizon)
    cat = TraceCatalog({KEY: t}, {KEY: od}, horizon)
    return CloudProvider(cat, rng=np.random.default_rng(0), startup_cv=cv)


def test_spot_request_granted_when_cheap():
    p = make_provider([0.0], [0.02])
    lease = p.request_spot(KEY, bid=0.06, t=0.0)
    assert lease.kind is LeaseKind.SPOT
    assert lease.ready_at > lease.requested_at
    assert lease.active


def test_spot_request_rejected_when_price_above_bid():
    p = make_provider([0.0], [0.10])
    with pytest.raises(BidRejectedError):
        p.request_spot(KEY, bid=0.06, t=0.0)


def test_spot_startup_slower_than_on_demand():
    p = make_provider([0.0], [0.02])
    s = p.request_spot(KEY, 0.06, 0.0)
    o = p.request_on_demand(KEY, 0.0)
    assert (s.ready_at - s.requested_at) > (o.ready_at - o.requested_at)


def test_terminate_spot_voluntary_bills_full_hours():
    p = make_provider([0.0], [0.02])
    lease = p.request_spot(KEY, 0.06, 0.0)
    done = p.terminate(lease, lease.ready_at + hours(1.5), revoked=False)
    assert done.total_cost == pytest.approx(0.04)
    assert not done.active
    assert done.duration() == pytest.approx(hours(1.5))


def test_terminate_spot_revoked_partial_free():
    p = make_provider([0.0], [0.02])
    lease = p.request_spot(KEY, 0.06, 0.0)
    done = p.terminate(lease, lease.ready_at + hours(1.5), revoked=True)
    assert done.total_cost == pytest.approx(0.02)


def test_terminate_on_demand_rounds_up():
    p = make_provider([0.0], [0.02])
    lease = p.request_on_demand(KEY, 0.0)
    done = p.terminate(lease, lease.ready_at + hours(0.2))
    assert done.total_cost == pytest.approx(0.06)


def test_on_demand_cannot_be_revoked():
    p = make_provider([0.0], [0.02])
    lease = p.request_on_demand(KEY, 0.0)
    with pytest.raises(MarketError):
        p.terminate(lease, lease.ready_at + 10, revoked=True)


def test_cancel_before_ready_bills_nothing():
    p = make_provider([0.0], [0.02])
    lease = p.request_spot(KEY, 0.06, 0.0)
    done = p.terminate(lease, lease.requested_at + 1.0, revoked=False)
    assert done.records == []
    assert done.total_cost == 0.0


def test_double_terminate_raises():
    p = make_provider([0.0], [0.02])
    lease = p.request_spot(KEY, 0.06, 0.0)
    p.terminate(lease, lease.ready_at + hours(1))
    with pytest.raises(InstanceNotHeldError):
        p.terminate(lease, lease.ready_at + hours(2))


def test_revocation_warning_only_for_spot():
    p = make_provider([0.0, hours(5)], [0.02, 0.30])
    spot = p.request_spot(KEY, 0.24, 0.0)
    od = p.request_on_demand(KEY, 0.0)
    assert p.revocation_warning_time(spot, 0.0) == hours(5)
    assert p.revocation_warning_time(od, 0.0) is None


def test_active_leases_tracking():
    p = make_provider([0.0], [0.02])
    a = p.request_spot(KEY, 0.06, 0.0)
    b = p.request_on_demand(KEY, 0.0)
    assert len(p.active_leases()) == 2
    p.terminate(a, a.ready_at + hours(1))
    assert [l.lease_id for l in p.active_leases()] == [b.lease_id]


def test_market_caching():
    p = make_provider([0.0], [0.02])
    assert p.market(KEY) is p.market(KEY)


def test_lease_ids_unique():
    p = make_provider([0.0], [0.02])
    ids = {p.request_on_demand(KEY, 0.0).lease_id for _ in range(10)}
    assert len(ids) == 10


def test_lease_duration_requires_termination():
    p = make_provider([0.0], [0.02])
    lease = p.request_spot(KEY, 0.06, 0.0)
    with pytest.raises(MarketError):
        lease.duration()
