"""Unit tests for spot-market semantics."""

import numpy as np
import pytest

from repro.cloud.spot_market import BID_CAP_MULTIPLIER, REVOCATION_GRACE_S, SpotMarket
from repro.errors import BidRejectedError, BidTooHighError
from repro.traces.trace import PriceTrace
from repro.units import hours


def market(times, prices, horizon=hours(100), od=0.06):
    t = PriceTrace(np.array(times, float), np.array(prices, float), horizon)
    return SpotMarket(name="test/small", trace=t, on_demand_price=od)


def test_bid_cap_is_four_x():
    m = market([0.0], [0.02])
    assert m.bid_cap == pytest.approx(BID_CAP_MULTIPLIER * 0.06)


def test_bid_above_cap_rejected():
    m = market([0.0], [0.02])
    with pytest.raises(BidTooHighError):
        m.validate_bid(0.25)
    m.validate_bid(0.24)  # exactly at cap ok


def test_grantable_iff_price_at_or_below_bid():
    m = market([0.0, hours(1)], [0.05, 0.07])
    assert m.grantable(0.06, 0.0)
    assert not m.grantable(0.06, hours(1.5))
    assert m.grantable(0.07, hours(1.5))


def test_require_grantable_raises_with_context():
    m = market([0.0], [0.10])
    with pytest.raises(BidRejectedError) as exc:
        m.require_grantable(0.06, 0.0)
    assert exc.value.bid == 0.06
    assert exc.value.current_price == 0.10


def test_next_grant_time():
    m = market([0.0, hours(2)], [0.10, 0.05])
    assert m.next_grant_time(0.06, 0.0) == hours(2)
    assert m.next_grant_time(0.06, hours(3)) == hours(3)
    assert market([0.0], [0.10]).next_grant_time(0.06, 0.0) is None


def test_revocation_warning_time():
    m = market([0.0, hours(2)], [0.05, 0.07])
    assert m.revocation_warning_time(0.06, 0.0) == hours(2)
    assert m.revocation_warning_time(0.08, 0.0) is None


def test_termination_follows_grace():
    m = market([0.0, hours(2)], [0.05, 0.07])
    assert m.termination_time(0.06, 0.0) == hours(2) + REVOCATION_GRACE_S
    assert m.termination_time(0.30 / 4, 0.0) is None or True  # bid below cap


def test_grace_default_two_minutes():
    m = market([0.0], [0.02])
    assert m.grace_s == 120.0


def test_price_at_passthrough():
    m = market([0.0, hours(1)], [0.02, 0.03])
    assert m.price_at(hours(0.5)) == 0.02
    assert m.price_at(hours(1.0)) == 0.03
