"""Unit tests for networked volumes and VPC addressing."""

import pytest

from repro.cloud.ebs import VolumeStore
from repro.cloud.vpc import WAN_REBIND_DELAY_S, VirtualPrivateCloud
from repro.errors import MarketError


class TestVolumes:
    def test_create_and_attach(self):
        store = VolumeStore()
        vol = store.create("us-east-1a", 8.0)
        store.attach(vol.volume_id, "i-1", "us-east-1a")
        assert vol.attached_to == "i-1"

    def test_double_attach_rejected(self):
        store = VolumeStore()
        vol = store.create("us-east-1a", 8.0)
        store.attach(vol.volume_id, "i-1", "us-east-1a")
        with pytest.raises(MarketError):
            store.attach(vol.volume_id, "i-2", "us-east-1a")

    def test_cross_zone_attach_rejected(self):
        store = VolumeStore()
        vol = store.create("us-east-1a", 8.0)
        with pytest.raises(MarketError):
            store.attach(vol.volume_id, "i-1", "eu-west-1a")

    def test_contents_survive_detach_reattach(self):
        """The paper's core persistence assumption: disk state survives a
        revocation and re-attaches to the replacement server."""
        store = VolumeStore()
        vol = store.create("us-east-1a", 8.0)
        store.attach(vol.volume_id, "spot-1", "us-east-1a")
        store.write(vol.volume_id, "checkpoint", 2.0, at=100.0)
        store.detach(vol.volume_id)  # spot server revoked
        written_at, size = store.read(vol.volume_id, "checkpoint")
        assert (written_at, size) == (100.0, 2.0)
        store.attach(vol.volume_id, "od-1", "us-east-1a")
        assert vol.attached_to == "od-1"

    def test_write_requires_attachment(self):
        store = VolumeStore()
        vol = store.create("us-east-1a", 8.0)
        with pytest.raises(MarketError):
            store.write(vol.volume_id, "x", 1.0, at=0.0)

    def test_capacity_enforced(self):
        store = VolumeStore()
        vol = store.create("us-east-1a", 2.0)
        store.attach(vol.volume_id, "i-1", "us-east-1a")
        store.write(vol.volume_id, "a", 1.5, at=0.0)
        with pytest.raises(MarketError):
            store.write(vol.volume_id, "b", 1.0, at=1.0)
        # overwriting the same object at a new size is fine
        store.write(vol.volume_id, "a", 1.9, at=2.0)

    def test_read_missing_object_raises(self):
        store = VolumeStore()
        vol = store.create("us-east-1a", 2.0)
        with pytest.raises(MarketError):
            store.read(vol.volume_id, "ghost")

    def test_clone_to_zone_copies_contents(self):
        store = VolumeStore()
        vol = store.create("us-east-1a", 4.0)
        store.attach(vol.volume_id, "i-1", "us-east-1a")
        store.write(vol.volume_id, "root", 3.0, at=5.0)
        clone = store.clone_to_zone(vol.volume_id, "eu-west-1a")
        assert clone.zone == "eu-west-1a"
        assert clone.contents == vol.contents
        assert not clone.attached

    def test_unknown_volume_raises(self):
        with pytest.raises(MarketError):
            VolumeStore().get("vol-999999")

    def test_invalid_size_raises(self):
        with pytest.raises(MarketError):
            VolumeStore().create("us-east-1a", 0.0)


class TestVpc:
    def test_allocate_and_bind(self):
        vpc = VirtualPrivateCloud()
        ip = vpc.allocate("us-east-1a")
        delay = vpc.bind(ip.address, "i-1", "us-east-1a")
        assert delay == 0.0
        assert ip.bound_to == "i-1"

    def test_rebind_within_geo_transparent(self):
        """Spot -> on-demand in the same region keeps the address with no
        reconfiguration (the paper's LAN-migration property)."""
        vpc = VirtualPrivateCloud()
        ip = vpc.allocate("us-east-1a")
        vpc.bind(ip.address, "spot-1", "us-east-1a")
        delay = vpc.bind(ip.address, "od-1", "us-east-1b")
        assert delay == 0.0
        assert ip.bound_to == "od-1"

    def test_cross_geo_rebind_costs_reconfiguration(self):
        vpc = VirtualPrivateCloud()
        ip = vpc.allocate("us-east-1a")
        vpc.bind(ip.address, "i-1", "us-east-1a")
        delay = vpc.bind(ip.address, "i-2", "eu-west-1a")
        assert delay == WAN_REBIND_DELAY_S
        # subsequent binds within the new geo are free again
        assert vpc.bind(ip.address, "i-3", "eu-west-1a") == 0.0

    def test_unbind(self):
        vpc = VirtualPrivateCloud()
        ip = vpc.allocate("us-east-1a")
        vpc.bind(ip.address, "i-1", "us-east-1a")
        vpc.unbind(ip.address)
        assert not ip.bound

    def test_addresses_unique(self):
        vpc = VirtualPrivateCloud()
        addrs = {vpc.allocate("us-east-1a").address for _ in range(50)}
        assert len(addrs) == 50

    def test_unknown_address_raises(self):
        with pytest.raises(MarketError):
            VirtualPrivateCloud().bind("10.9.9.9", "i-1", "us-east-1a")
