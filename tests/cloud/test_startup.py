"""Unit tests for startup-latency models (Table 1)."""

import numpy as np
import pytest

from repro.cloud.startup import STARTUP_MEANS_S, StartupModel, StartupSampler
from repro.errors import ConfigurationError


def test_means_match_paper_table1():
    assert STARTUP_MEANS_S["on_demand"]["us-east"] == pytest.approx(94.85)
    assert STARTUP_MEANS_S["spot"]["us-east"] == pytest.approx(281.47)
    assert STARTUP_MEANS_S["spot"]["eu-west"] == pytest.approx(233.37)


def test_sample_mean_converges():
    rng = np.random.default_rng(0)
    model = StartupModel(mean_s=100.0, cv=0.25)
    xs = model.sample(rng, 20000)
    assert float(np.mean(xs)) == pytest.approx(100.0, rel=0.02)


def test_sample_std_matches_cv():
    rng = np.random.default_rng(0)
    model = StartupModel(mean_s=100.0, cv=0.25, min_s=0.0)
    xs = model.sample(rng, 50000)
    assert float(np.std(xs)) == pytest.approx(25.0, rel=0.05)


def test_zero_cv_deterministic():
    rng = np.random.default_rng(0)
    model = StartupModel(mean_s=100.0, cv=0.0)
    assert model.sample(rng) == 100.0


def test_minimum_clip():
    rng = np.random.default_rng(0)
    model = StartupModel(mean_s=25.0, cv=1.0, min_s=20.0)
    xs = model.sample(rng, 5000)
    assert float(np.min(xs)) >= 20.0


def test_scalar_sample_returns_float():
    rng = np.random.default_rng(0)
    v = StartupModel(mean_s=100.0).sample(rng)
    assert isinstance(v, float)


def test_invalid_params_raise():
    with pytest.raises(ConfigurationError):
        StartupModel(mean_s=0.0)
    with pytest.raises(ConfigurationError):
        StartupModel(mean_s=10.0, cv=-1.0)


def test_sampler_per_zone_means():
    rng = np.random.default_rng(1)
    sampler = StartupSampler(rng)
    for mode in ("on_demand", "spot"):
        for zone, geo in (("us-east-1a", "us-east"), ("us-west-1a", "us-west"),
                          ("eu-west-1a", "eu-west")):
            xs = sampler.sample_many(mode, zone, 5000)
            assert float(np.mean(xs)) == pytest.approx(
                STARTUP_MEANS_S[mode][geo], rel=0.05
            )


def test_sampler_unknown_mode_raises():
    rng = np.random.default_rng(1)
    with pytest.raises(ConfigurationError):
        StartupSampler(rng).sample("reserved", "us-east-1a")


def test_sampler_both_east_azs_share_model():
    rng = np.random.default_rng(1)
    s = StartupSampler(rng)
    assert s.model("spot", "us-east-1a") is s.model("spot", "us-east-1b")


def test_std_s_property():
    assert StartupModel(mean_s=100.0, cv=0.3).std_s == pytest.approx(30.0)
