"""Unit tests for hourly billing semantics."""

import numpy as np
import pytest

from repro.cloud.billing import bill_on_demand_lease, bill_spot_lease, billing_boundaries
from repro.errors import MarketError
from repro.traces.trace import PriceTrace
from repro.units import hours


def mk_trace(times, prices, horizon):
    return PriceTrace(np.array(times, float), np.array(prices, float), horizon)


FLAT = mk_trace([0.0], [0.10], hours(100))


class TestSpotBilling:
    def test_full_hours_charged_at_start_price(self):
        recs = bill_spot_lease(FLAT, 0.0, hours(3), revoked=False)
        assert len(recs) == 3
        assert all(r.amount == pytest.approx(0.10) for r in recs)

    def test_price_at_hour_start_governs(self):
        # Price rises mid-hour: the hour still bills at its start price.
        t = mk_trace([0.0, hours(1.5)], [0.10, 0.50], hours(10))
        recs = bill_spot_lease(t, 0.0, hours(3), revoked=False)
        assert [r.amount for r in recs] == pytest.approx([0.10, 0.10, 0.50])

    def test_revoked_partial_hour_free(self):
        recs = bill_spot_lease(FLAT, 0.0, hours(2.5), revoked=True)
        assert len(recs) == 3
        assert recs[-1].amount == 0.0
        assert recs[-1].note == "revoked-free"
        assert sum(r.amount for r in recs) == pytest.approx(0.20)

    def test_voluntary_partial_hour_charged_full(self):
        recs = bill_spot_lease(FLAT, 0.0, hours(2.5), revoked=False)
        assert recs[-1].amount == pytest.approx(0.10)
        assert recs[-1].note == "voluntary-full"
        assert sum(r.amount for r in recs) == pytest.approx(0.30)

    def test_boundaries_anchored_at_lease_start(self):
        start = 1234.5
        recs = bill_spot_lease(FLAT, start, start + hours(2), revoked=False)
        assert [r.hour_start for r in recs] == [start, start + hours(1)]

    def test_exact_hour_no_partial(self):
        recs = bill_spot_lease(FLAT, 0.0, hours(2), revoked=True)
        assert len(recs) == 2
        assert all(r.amount > 0 for r in recs)

    def test_zero_duration(self):
        assert bill_spot_lease(FLAT, 5.0, 5.0, revoked=False) == []

    def test_sub_hour_revoked_is_free(self):
        recs = bill_spot_lease(FLAT, 0.0, 600.0, revoked=True)
        assert sum(r.amount for r in recs) == 0.0

    def test_negative_duration_raises(self):
        with pytest.raises(MarketError):
            bill_spot_lease(FLAT, 10.0, 5.0, revoked=False)

    def test_rate_recorded_even_when_free(self):
        recs = bill_spot_lease(FLAT, 0.0, 600.0, revoked=True)
        assert recs[0].rate == pytest.approx(0.10)


class TestOnDemandBilling:
    def test_partial_hours_round_up(self):
        recs = bill_on_demand_lease(0.06, 0.0, hours(2.01))
        assert len(recs) == 3
        assert sum(r.amount for r in recs) == pytest.approx(0.18)

    def test_exact_hours(self):
        recs = bill_on_demand_lease(0.06, 0.0, hours(4))
        assert len(recs) == 4

    def test_zero_duration(self):
        assert bill_on_demand_lease(0.06, 7.0, 7.0) == []

    def test_negative_rate_raises(self):
        with pytest.raises(MarketError):
            bill_on_demand_lease(-0.01, 0.0, hours(1))

    def test_negative_duration_raises(self):
        with pytest.raises(MarketError):
            bill_on_demand_lease(0.06, hours(1), 0.0)

    def test_kind_recorded(self):
        recs = bill_on_demand_lease(0.06, 0.0, hours(1))
        assert recs[0].kind == "on_demand"


class TestExactBoundaryDrift:
    """Float noise at exact N-hour boundaries must not mint extra hours.

    Lease endpoints come from float sums (``start + k * 3600.0``), so a
    lease that is N hours long up to one-ulp noise bills exactly N full
    hours — no spurious "voluntary-full" partial, no rounded-up N+1.
    """

    JITTERS = (0.0, 1e-9, 1e-6, -1e-9, -1e-6)

    @pytest.mark.parametrize("jitter", JITTERS)
    def test_spot_exact_hours_with_jitter(self, jitter):
        recs = bill_spot_lease(FLAT, 0.0, hours(3) + jitter, revoked=False)
        assert len(recs) == 3
        assert all(r.note == "" for r in recs)
        assert sum(r.amount for r in recs) == pytest.approx(0.30)

    @pytest.mark.parametrize("jitter", JITTERS)
    def test_spot_exact_hours_with_jitter_nonzero_start(self, jitter):
        start = hours(41)  # float-noisy absolute times, as mid-sim leases have
        recs = bill_spot_lease(FLAT, start, start + hours(2) + jitter, revoked=False)
        assert len(recs) == 2
        assert all(r.note == "" for r in recs)

    @pytest.mark.parametrize("jitter", JITTERS)
    def test_on_demand_exact_hours_with_jitter(self, jitter):
        recs = bill_on_demand_lease(0.06, 0.0, hours(4) + jitter)
        assert len(recs) == 4

    @pytest.mark.parametrize("jitter", JITTERS)
    def test_boundaries_exact_hours_with_jitter(self, jitter):
        bs = billing_boundaries(0.0, hours(3) + jitter)
        assert bs == [hours(1), hours(2)]

    def test_genuine_partial_hour_still_billed(self):
        # The epsilon absorbs float noise only — a real partial hour of a
        # second is still a voluntary-full charge.
        recs = bill_spot_lease(FLAT, 0.0, hours(2) + 1.0, revoked=False)
        assert len(recs) == 3
        assert recs[-1].note == "voluntary-full"

    def test_revoked_near_boundary_not_given_free_full_hour(self):
        # Revoked 1e-9 s before the 3-hour mark: three hours were consumed
        # up to noise, so all three bill (none is a free partial).
        recs = bill_spot_lease(FLAT, 0.0, hours(3) - 1e-9, revoked=True)
        assert len(recs) == 3
        assert sum(r.amount for r in recs) == pytest.approx(0.30)


class TestBoundaries:
    def test_boundaries_strictly_inside(self):
        bs = billing_boundaries(0.0, hours(3))
        assert bs == [hours(1), hours(2)]

    def test_boundaries_empty_for_short_lease(self):
        assert billing_boundaries(0.0, hours(0.5)) == []

    def test_boundaries_invalid_raises(self):
        with pytest.raises(MarketError):
            billing_boundaries(10.0, 5.0)
