"""Shared-memory catalog fan-out: round-trips, caching, gating, leaks."""

import numpy as np
import pytest

from repro.core.bidding import ProactiveBidding
from repro.runtime import (
    TraceCatalogCache,
    RunSpec,
    StrategySpec,
    attach_catalog,
    publish_catalog,
    release_segment,
    run_batch,
    shm_available,
)
from repro.runtime import shm as shm_mod
from repro.runtime.cache import CatalogKey
from repro.traces.catalog import MarketKey
from repro.units import days

REGION = "us-east-1a"

pytestmark = pytest.mark.skipif(not shm_available(), reason="no usable shared memory")


@pytest.fixture
def catalog():
    return CatalogKey(
        seed=7, horizon_s=days(2), regions=(REGION,), sizes=("small", "medium")
    ).build()


@pytest.fixture(autouse=True)
def _clean_attachments():
    """Each test starts and ends with an empty per-process attach cache."""
    yield
    while shm_mod._ATTACHED:
        _, (cat, segment) = shm_mod._ATTACHED.popitem(last=False)
        del cat
        if segment is None:  # directory-plan attachments hold no segment
            continue
        try:
            segment.close()
        except BufferError:
            pass


class TestRoundTrip:
    def test_attached_catalog_equals_source(self, catalog):
        plan, segment = publish_catalog(catalog)
        try:
            clone = attach_catalog(plan)
            assert clone.markets() == catalog.markets()
            assert clone.horizon == catalog.horizon
            for key in catalog.markets():
                np.testing.assert_array_equal(clone.trace(key).times, catalog.trace(key).times)
                np.testing.assert_array_equal(clone.trace(key).prices, catalog.trace(key).prices)
                assert clone.on_demand_price(key) == catalog.on_demand_price(key)
        finally:
            release_segment(segment)

    def test_attached_traces_are_views_not_copies(self, catalog):
        plan, segment = publish_catalog(catalog)
        try:
            clone = attach_catalog(plan)
            trace = clone.trace(catalog.markets()[0])
            # A zero-copy rehydration shares the segment's buffer.
            assert trace.times.base is not None
            assert not trace.times.flags.owndata
            assert not trace.times.flags.writeable
        finally:
            release_segment(segment)

    def test_plan_layout_covers_all_markets(self, catalog):
        plan, segment = publish_catalog(catalog)
        try:
            assert len(plan.markets) == len(catalog.markets()) == len(plan.layout)
            assert plan.total_floats == 2 * sum(len(catalog.trace(k)) for k in catalog.markets())
        finally:
            release_segment(segment)


class TestAttachCache:
    def test_repeat_attach_hits_cache(self, catalog):
        plan, segment = publish_catalog(catalog)
        try:
            first = attach_catalog(plan)
            assert attach_catalog(plan) is first
            assert shm_mod.attached_count() == 1
        finally:
            release_segment(segment)

    def test_lru_evicts_oldest_attachment(self, catalog):
        published = [publish_catalog(catalog) for _ in range(shm_mod.ATTACH_CACHE_MAX + 1)]
        try:
            for plan, _ in published:
                attach_catalog(plan)
            assert shm_mod.attached_count() == shm_mod.ATTACH_CACHE_MAX
            assert published[0][0].shm_name not in shm_mod._ATTACHED
        finally:
            for _, segment in published:
                release_segment(segment)


class TestGating:
    def test_env_var_disables_shm(self, monkeypatch):
        monkeypatch.setenv(shm_mod.SHM_ENV_VAR, "0")
        assert not shm_available()
        monkeypatch.delenv(shm_mod.SHM_ENV_VAR)
        assert shm_available()

    def test_release_segment_is_idempotent(self, catalog):
        plan, segment = publish_catalog(catalog)
        release_segment(segment)
        release_segment(segment)  # second close/unlink must not raise


class TestSegmentDirPlan:
    """Catalogs loaded from mmap segment directories ship their *path*
    through the plan, not their bytes (Issue 10)."""

    @pytest.fixture
    def segment_catalog(self, tmp_path, catalog):
        from repro.traces.ingest import ingest_archive, load_segment_catalog
        from repro.traces.loader import save_aws_csv

        for key in catalog.markets():
            save_aws_csv(
                catalog.trace(key),
                tmp_path / f"{key.size}.csv",
                instance_type=f"m1.{key.size}",
                availability_zone=key.region,
            )
        ingest_archive(
            [tmp_path / f"{k.size}.csv" for k in catalog.markets()],
            tmp_path / "seg",
            horizon=catalog.horizon,
        )
        return load_segment_catalog(tmp_path / "seg")

    def test_publish_returns_dir_plan_without_segment(self, segment_catalog):
        plan, segment = publish_catalog(segment_catalog)
        assert segment is None
        assert plan.segment_dir == segment_catalog.source
        assert plan.total_floats == 0  # no bytes were copied anywhere

    def test_attach_loads_and_caches_by_directory(self, segment_catalog):
        plan, _ = publish_catalog(segment_catalog)
        clone = attach_catalog(plan)
        assert attach_catalog(plan) is clone
        assert clone.markets() == segment_catalog.markets()
        for key in segment_catalog.markets():
            np.testing.assert_array_equal(
                clone.trace(key).times, segment_catalog.trace(key).times
            )
            assert clone.on_demand_price(key) == segment_catalog.on_demand_price(key)

    def test_release_none_segment_is_noop(self):
        release_segment(None)  # dir plans have no shm segment to unlink


class TestExecutorIntegration:
    @staticmethod
    def _runs(seeds=(11, 23)):
        runs = []
        for size in ("small", "medium"):
            for seed in seeds:
                runs.append(
                    RunSpec(
                        strategy=StrategySpec.single(MarketKey(REGION, size)),
                        bidding=ProactiveBidding(),
                        seed=seed,
                        horizon_s=days(2),
                        regions=(REGION,),
                        sizes=(size,),
                        label=f"shm/{size}",
                    )
                )
        return runs

    def test_shm_batch_matches_serial(self):
        runs = self._runs()
        serial = run_batch(runs, jobs=1, cache=TraceCatalogCache())
        parallel = run_batch(runs, jobs=2)
        assert list(parallel.results) == list(serial.results)
        assert parallel.telemetry.shm_catalogs == 4  # one plan per (size, seed) key
        assert parallel.telemetry.parallel_runs == len(runs)
        assert "shm catalogs" in parallel.telemetry.summary()

    def test_disabled_shm_falls_back_to_grouping(self, monkeypatch):
        monkeypatch.setenv(shm_mod.SHM_ENV_VAR, "0")
        runs = self._runs(seeds=(5,))
        batch = run_batch(runs, jobs=2)
        assert batch.telemetry.shm_catalogs == 0
        assert all(t.catalog_source != "shm" for t in batch.run_telemetry)
        monkeypatch.delenv(shm_mod.SHM_ENV_VAR)
        again = run_batch(runs, jobs=2)
        assert list(again.results) == list(batch.results)  # identical either way

    def test_no_segment_leaks_after_batch(self, tmp_path):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        run_batch(self._runs(seeds=(3,)), jobs=2)
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after <= before  # every published segment was unlinked
