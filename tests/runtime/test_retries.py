"""Executor retry/backoff and injected worker-crash behaviour."""

import pytest

from repro.errors import WorkerCrashError
from repro.runtime import RunSpec, run_batch
from repro.runtime.spec import StrategySpec
from repro.testkit.faults import FaultPlan
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def _spec(seed=1, **kw):
    return RunSpec(
        strategy=StrategySpec.single(KEY),
        seed=seed,
        horizon_s=days(2),
        regions=("us-east-1a",),
        sizes=("small",),
        **kw,
    )


def test_crash_free_run_reports_single_attempt():
    batch = run_batch([_spec()], retry_backoff_s=0.0)
    assert batch.run_telemetry[0].attempts == 1


def test_injected_crash_is_retried_and_absorbed():
    plan = FaultPlan(crash_seeds=(1,), crash_attempts=2)
    clean = run_batch([_spec()], retry_backoff_s=0.0)
    crashed = run_batch([_spec(faults=plan)], retries=2, retry_backoff_s=0.0)
    assert crashed.run_telemetry[0].attempts == 3
    # a plan with only crash faults never changes simulation results
    assert crashed.results[0] == clean.results[0]


def test_crashes_beyond_retry_budget_propagate():
    plan = FaultPlan(crash_seeds=(1,), crash_attempts=5)
    with pytest.raises(WorkerCrashError):
        run_batch([_spec(faults=plan)], retries=2, retry_backoff_s=0.0)


def test_zero_retries_fail_on_first_crash():
    plan = FaultPlan(crash_seeds=(1,), crash_attempts=1)
    with pytest.raises(WorkerCrashError):
        run_batch([_spec(faults=plan)], retries=0, retry_backoff_s=0.0)


def test_negative_retries_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_batch([_spec()], retries=-1)


def test_only_crash_seeds_crash():
    plan = FaultPlan(crash_seeds=(99,), crash_attempts=3)
    batch = run_batch([_spec(seed=1, faults=plan)], retries=0, retry_backoff_s=0.0)
    assert batch.run_telemetry[0].attempts == 1


@pytest.mark.slow
def test_crash_injection_across_process_pool():
    """Crashing seeds are retried inside pool workers; results stay
    byte-identical to the serial, crash-free batch."""
    plan = FaultPlan(crash_seeds=(2, 4), crash_attempts=1)
    clean_specs = [_spec(seed=s) for s in (1, 2, 3, 4)]
    crash_specs = [_spec(seed=s, faults=plan) for s in (1, 2, 3, 4)]
    serial = run_batch(clean_specs, jobs=1, retry_backoff_s=0.0)
    pooled = run_batch(crash_specs, jobs=2, retries=2, retry_backoff_s=0.0)
    assert list(pooled.results) == list(serial.results)
    by_seed = {t.seed: t for t in pooled.run_telemetry}
    assert by_seed[2].attempts == 2
    assert by_seed[4].attempts == 2
    assert by_seed[1].attempts == 1


def test_backoff_sleeps_between_attempts(monkeypatch):
    import repro.runtime.executor as ex

    naps = []
    monkeypatch.setattr(ex.time, "sleep", lambda s: naps.append(s))
    plan = FaultPlan(crash_seeds=(1,), crash_attempts=2)
    run_batch([_spec(faults=plan)], retries=2, retry_backoff_s=0.1)
    assert naps == [pytest.approx(0.1), pytest.approx(0.2)]  # exponential
