"""Cross-run fusion equivalence and accounting tests.

The contract under test: ``engine="fused"`` (and the fusion tier inside
``engine="auto"``) produces results byte-identical to per-run ``vector``
and ``event`` execution on every batch it accepts — fusion and its two
dedupe tiers (capability-projected static keys, observed reverse-band
cloning) are pure execution optimizations — and the batch telemetry
never double-counts a run as both deduped and fused.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.simulation import run_simulation_observed
from repro.runtime import RunSpec, StrategySpec, run_batch
from repro.runtime.cache import TraceCatalogCache
from repro.runtime.telemetry import collect_telemetry
from repro.testkit.golden import FLEET_SCENARIOS, SCENARIOS
from repro.traces.catalog import MarketKey
from repro.units import days

EAST = "us-east-1a"
EAST_SMALL = MarketKey(EAST, "small")

#: Shared across tests and hypothesis examples: fused equivalence must not
#: depend on catalog-cache temperature.
_CACHE = TraceCatalogCache()


def _spec(**kw) -> RunSpec:
    base = dict(
        strategy=StrategySpec.single(EAST_SMALL),
        seed=11,
        horizon_s=days(2),
        regions=(EAST,),
        sizes=("small",),
    )
    base.update(kw)
    return RunSpec(**base)


def _results(specs, engine):
    return run_batch(specs, engine=engine, cache=_CACHE).results


# ------------------------------------------------------------ golden parity
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_fused_matches_event_on_golden_corpus(scenario):
    """``--engine fused`` is byte-identical to ``event`` on every golden
    scenario — including the ones whose policies degrade to per-event
    execution under the fused selector."""
    config = scenario.config()
    event = run_simulation_observed(config)
    fused = run_batch([RunSpec.from_config(scenario.config())], engine="fused")
    assert fused.results[0] == event.result


def test_fused_matches_event_on_fleet_golden():
    """The ``fleet-small`` golden renders the identical report bytes under
    cross-run fusion."""
    from repro.fleet.runner import run_fleet

    scenario = FLEET_SCENARIOS[0]
    event = run_fleet(scenario.spec(), engine="event")
    fused = run_fleet(scenario.spec(), engine="fused")
    assert fused.to_json() == event.to_json()


# ----------------------------------------------------- hypothesis property
_STRATEGIES = (
    lambda: StrategySpec.single(EAST_SMALL),
    lambda: StrategySpec.pure_spot(EAST_SMALL),
    lambda: StrategySpec.multi_market(EAST, service_units=4),
    lambda: StrategySpec.stability((EAST,), service_units=4),
    lambda: StrategySpec.index_tracking((EAST,), service_units=4, n_markets=2),
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=5),
    ks=st.lists(
        st.floats(min_value=1.2, max_value=9.0, allow_nan=False),
        min_size=1,
        max_size=3,
    ),
    fracs=st.lists(
        st.floats(min_value=0.3, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=3,
    ),
    strategy_ids=st.lists(
        st.integers(min_value=0, max_value=len(_STRATEGIES) - 1),
        min_size=1,
        max_size=3,
        unique=True,
    ),
)
def test_fused_vector_event_equivalence(seed, ks, fracs, strategy_ids):
    """``fused == vector == event`` over random mixed-strategy cohorts,
    including the newly-vectorizable stability and index-tracking
    families; fusion's dedupe tiers must be invisible in the results."""
    specs = []
    for sid in strategy_ids:
        for k in ks:
            for frac in fracs:
                specs.append(
                    _spec(
                        strategy=_STRATEGIES[sid](),
                        bidding=ProactiveBidding(k=k, reverse_threshold_frac=frac),
                        seed=seed,
                        label=f"s{sid}/k{k:.3f}/f{frac:.3f}",
                    )
                )
        specs.append(
            _spec(
                strategy=_STRATEGIES[sid](),
                bidding=ReactiveBidding(),
                seed=seed,
                label=f"s{sid}/reactive",
            )
        )
    fused = _results(specs, "fused")
    vector = _results(specs, "vector")
    event = _results(specs, "event")
    assert fused == vector
    assert fused == event


# ----------------------------------------------- dedupe/fusion accounting
def _frontier(seed=3, ks=(1.5, 2.5, 4.0), fracs=(0.5, 0.7, 0.9)):
    """A sweep dense enough that both dedupe tiers and fusion all engage."""
    return [
        _spec(
            bidding=ProactiveBidding(k=k, reverse_threshold_frac=f),
            seed=seed,
            label=f"k{k}/f{f}",
        )
        for k in ks
        for f in fracs
    ]


def test_deduped_and_fused_never_double_count():
    """A run is cloned or fused, never both — per run and in the batch
    totals (the dedupe-before-fusion ordering guard)."""
    specs = _frontier() + _frontier(seed=4)
    with collect_telemetry() as tel:
        run_batch(specs, engine="fused", cache=_CACHE)
    (batch,) = tel.batches
    per_run = batch  # BatchTelemetry totals
    assert per_run.deduped_runs + per_run.fused_runs <= per_run.runs
    assert per_run.deduped_runs > 0  # the sweep must actually dedupe
    assert per_run.fused_runs > 0  # and actually fuse


def test_no_run_reports_both_deduped_and_fused():
    specs = _frontier()
    telemetry = []
    run_batch(specs, engine="fused", cache=_CACHE, progress=telemetry.append)
    assert len(telemetry) == len(specs)
    for t in telemetry:
        assert not (t.deduped and t.fused), t.label
    assert any(t.deduped for t in telemetry)


def test_static_twins_expand_after_fused_evaluation():
    """Identical-dynamics twins clone their representative's result (label
    aside) and report honest provenance."""
    specs = [
        _spec(bidding=ProactiveBidding(k=5.0), label="a"),
        _spec(bidding=ProactiveBidding(k=5.0), label="b"),
    ]
    telemetry = []
    batch = run_batch(specs, engine="fused", cache=_CACHE, progress=telemetry.append)
    a, b = batch.results
    assert dataclasses.replace(a, label="") == dataclasses.replace(b, label="")
    assert a.label == "a" and b.label == "b"
    assert not telemetry[0].deduped
    assert telemetry[1].deduped and not telemetry[1].fused


def test_reverse_band_tier_clones_undiscriminated_fracs():
    """Reverse fractions the representative's trajectory never compared
    apart collapse onto one executed run — and stay byte-identical to
    per-spec event execution."""
    fracs = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    specs = [
        _spec(
            bidding=ProactiveBidding(k=4.0, reverse_threshold_frac=f),
            seed=7,
            horizon_s=days(7),
            label=f"f{f}",
        )
        for f in fracs
    ]
    with collect_telemetry() as tel:
        fused = _results(specs, "fused")
    assert tel.deduped_runs > 0, "band tier found no undiscriminated fracs"
    event = _results(specs, "event")
    assert fused == event


def test_forced_vector_stays_unfused():
    """``engine="vector"`` remains the unfused per-run reference path: no
    fusion groups, no fused runs."""
    with collect_telemetry() as tel:
        run_batch(_frontier(), engine="vector", cache=_CACHE)
    (batch,) = tel.batches
    assert batch.fused_runs == 0
    assert batch.fused_groups == 0
    assert batch.vector_runs == len(_frontier())


def test_batch_rejects_unknown_engine_with_choices():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="auto, event, vector, fused"):
        run_batch([_spec()], engine="bogus", cache=_CACHE)
