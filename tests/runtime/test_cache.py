"""Trace-catalog cache: build-once semantics and same-sample guarantees."""

import pytest

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.errors import ConfigurationError
from repro.runtime import RunSpec, StrategySpec, TraceCatalogCache, run_batch
from repro.runtime.cache import CatalogKey
from repro.traces.catalog import MarketKey
from repro.traces.calibration import calibration_for
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def spec(**kw) -> RunSpec:
    base = dict(
        strategy=StrategySpec.single(KEY),
        horizon_s=days(2),
        regions=("us-east-1a",),
        sizes=("small",),
    )
    base.update(kw)
    return RunSpec(**base)


def catalog_key(seed: int) -> CatalogKey:
    return spec(seed=seed).catalog_key()


class TestCatalogKey:
    def test_same_spec_same_key(self):
        assert catalog_key(1) == catalog_key(1)
        assert hash(catalog_key(1)) == hash(catalog_key(1))

    def test_key_distinguishes_seed_horizon_markets(self):
        assert catalog_key(1) != catalog_key(2)
        assert spec(seed=1).catalog_key() != spec(seed=1, horizon_s=days(3)).catalog_key()
        assert (
            spec(seed=1).catalog_key()
            != spec(seed=1, sizes=("small", "medium")).catalog_key()
        )

    def test_policy_variants_share_a_key(self):
        """The cache key ignores everything that does not shape the trace."""
        a = spec(seed=1, bidding=ProactiveBidding()).catalog_key()
        b = spec(seed=1, bidding=ReactiveBidding()).catalog_key()
        assert a == b

    def test_calibration_overrides_key(self):
        cal = calibration_for("us-east-1a", "small")
        with_cal = spec(seed=1, calibrations={("us-east-1a", "small"): cal})
        assert with_cal.catalog_key() is not None
        assert with_cal.catalog_key() != catalog_key(1)

    def test_build_matches_key(self):
        catalog = catalog_key(4).build()
        assert KEY in catalog
        assert catalog.horizon == days(2)


class TestTraceCatalogCache:
    def test_build_once_then_hit(self):
        cache = TraceCatalogCache()
        key = catalog_key(1)
        first, hit1, wall1 = cache.get_or_build(key)
        second, hit2, wall2 = cache.get_or_build(key)
        assert second is first  # identical price sample, not an equal copy
        assert (hit1, hit2) == (False, True)
        assert wall1 > 0 and wall2 == 0
        assert cache.stats()["builds"] == 1 and cache.stats()["hits"] == 1

    def test_lru_eviction(self):
        cache = TraceCatalogCache(maxsize=2)
        k1, k2, k3 = catalog_key(1), catalog_key(2), catalog_key(3)
        cache.get_or_build(k1)
        cache.get_or_build(k2)
        cache.get_or_build(k1)  # refresh k1: k2 becomes LRU
        cache.get_or_build(k3)
        assert k1 in cache and k3 in cache and k2 not in cache

    def test_clear_resets(self):
        cache = TraceCatalogCache()
        cache.get_or_build(catalog_key(1))
        cache.clear()
        assert len(cache) == 0 and cache.builds == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ConfigurationError):
            TraceCatalogCache(maxsize=0)


class TestBatchCaching:
    def test_catalog_built_at_most_once_per_seed_within_batch(self):
        """Acceptance: N policies on S seeds pay exactly S catalog builds."""
        cache = TraceCatalogCache()
        seeds = (11, 23)
        policies = (ProactiveBidding(), ReactiveBidding(), ProactiveBidding(k=2.0))
        runs = [spec(seed=s, bidding=b) for b in policies for s in seeds]
        batch = run_batch(runs, cache=cache)
        assert batch.telemetry.runs == 6
        assert cache.builds == len(seeds)
        assert cache.hits == len(runs) - len(seeds)
        assert batch.telemetry.catalog_builds == len(seeds)
        assert batch.telemetry.catalog_cache_hits == len(runs) - len(seeds)

    def test_same_sample_policy_comparison_catalog_identity(self):
        """Satellite regression: two policies compared on one seed must see
        the *identical* catalog object — the paper's same-sample
        methodology — even across separate batches."""
        cache = TraceCatalogCache()
        proactive = run_batch([spec(seed=11, bidding=ProactiveBidding())], cache=cache)
        reactive = run_batch([spec(seed=11, bidding=ReactiveBidding())], cache=cache)
        assert proactive.run_telemetry[0].catalog_cache_hit is False
        assert reactive.run_telemetry[0].catalog_cache_hit is True
        assert cache.builds == 1
        # The cached object is the one both batches consumed.
        assert cache.peek(catalog_key(11)) is not None

    def test_unhashable_calibrations_are_uncacheable(self):
        """Unhashable calibration overrides yield no cache key (the
        executor then builds the catalog inside the run instead)."""

        class Unhashable(dict):
            __hash__ = None

        cal = calibration_for("us-east-1a", "small")
        odd = spec(
            seed=1,
            calibrations={("us-east-1a", "small"): Unhashable({"x": cal})},
        )
        assert odd.catalog_key() is None
