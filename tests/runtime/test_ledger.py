"""The journaled run ledger: crash-safe batches, resumable byte-identically.

Covers the full recovery contract: atomic journaling, torn-tail
tolerance, fingerprint hard-failures, resuming across ``--jobs`` values,
and the end-to-end orchestrator-SIGKILL drill via
:func:`repro.testkit.faults.kill_orchestrator_after_n_runs`.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, LedgerError
from repro.runtime import (
    RunLedger,
    RunSpec,
    StrategySpec,
    batch_fingerprint,
    resolve_ledger_path,
    run_batch,
    spec_fingerprint,
)
from repro.testkit.faults import kill_orchestrator_after_n_runs
from repro.traces.catalog import MarketKey
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


def _spec(seed=1, **kw):
    return RunSpec(
        strategy=StrategySpec.single(KEY),
        seed=seed,
        horizon_s=days(2),
        regions=("us-east-1a",),
        sizes=("small",),
        **kw,
    )


def _specs(*seeds):
    return [_spec(seed=s) for s in seeds]


def _ledger_lines(path):
    return path.read_text().splitlines()


# --------------------------------------------------------------- fingerprints
class TestFingerprints:
    def test_fingerprint_is_stable(self):
        assert spec_fingerprint(_spec()) == spec_fingerprint(_spec())

    def test_fingerprint_sees_every_result_field(self):
        base = spec_fingerprint(_spec())
        assert spec_fingerprint(_spec(seed=2)) != base
        assert spec_fingerprint(_spec().with_(horizon_s=days(3))) != base
        assert spec_fingerprint(_spec().with_(label="x")) != base

    def test_capture_trace_excluded(self):
        # Trace capture changes telemetry payloads, never results, so a
        # batch resumed inside an observe(trace=True) scope still matches.
        assert spec_fingerprint(_spec()) == spec_fingerprint(
            _spec().with_(capture_trace=True)
        )

    def test_batch_fingerprint_sees_order(self):
        assert batch_fingerprint(_specs(1, 2)) != batch_fingerprint(_specs(2, 1))

    def test_legacy_callable_strategies_fingerprintable(self):
        from repro.core.strategies import SingleMarketStrategy

        def factory():
            return SingleMarketStrategy(KEY)

        fp = spec_fingerprint(_spec().with_(strategy=factory))
        assert fp == spec_fingerprint(_spec().with_(strategy=factory))

    def test_same_named_dataclasses_from_different_modules_differ(self):
        from repro.runtime.spec import _canonical

        def make(module):
            @dataclasses.dataclass(frozen=True)
            class Overrides:
                x: int = 1

            Overrides.__module__ = module
            Overrides.__qualname__ = "Overrides"
            return Overrides

        assert _canonical(make("ext_a")()) != _canonical(make("ext_b")())

    def test_same_named_enums_from_different_modules_differ(self):
        import enum

        from repro.runtime.spec import _canonical

        def make(module):
            Mode = enum.Enum("Mode", ["FAST"])
            Mode.__module__ = module
            Mode.__qualname__ = "Mode"
            return Mode

        assert _canonical(make("ext_a").FAST) != _canonical(make("ext_b").FAST)


# ------------------------------------------------------------------ journaling
class TestJournaling:
    def test_ledger_written_one_record_per_run(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        batch = run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        assert len(lines) == 4  # header + 3 runs
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["runs"] == 3
        assert header["fingerprint"] == batch_fingerprint(_specs(1, 2, 3))
        indices = sorted(json.loads(l)["index"] for l in lines[1:])
        assert indices == [0, 1, 2]
        assert batch.telemetry.replayed_runs == 0
        assert not batch.telemetry.resumed

    def test_ledger_results_roundtrip_exactly(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        base = run_batch(_specs(1, 2))
        run_batch(_specs(1, 2), ledger=led)
        full_replay = run_batch(_specs(1, 2), ledger=led, resume=True)
        assert full_replay.results == base.results
        assert full_replay.telemetry.replayed_runs == 2
        assert all(t.replayed for t in full_replay.run_telemetry)

    def test_directory_ledger_gets_per_batch_file(self, tmp_path):
        run_batch(_specs(1, 2), ledger=tmp_path)
        run_batch(_specs(5, 6), ledger=tmp_path)
        files = sorted(tmp_path.glob("batch-*.jsonl"))
        assert len(files) == 2  # distinct batches, distinct fingerprints
        expected = resolve_ledger_path(tmp_path, batch_fingerprint(_specs(1, 2)))
        assert expected in files

    def test_trailing_slash_spells_directory_intent(self, tmp_path):
        # "/" is directory intent on every platform, not just where it
        # happens to equal os.sep; the directory is created on demand.
        fp = batch_fingerprint(_specs(1))
        resolved = resolve_ledger_path(str(tmp_path / "ledgers") + "/", fp)
        assert resolved.parent == tmp_path / "ledgers"
        assert resolved.parent.is_dir()
        assert resolved.name == f"batch-{fp[:16]}.jsonl"

    def test_plain_file_path_used_verbatim(self, tmp_path):
        fp = batch_fingerprint(_specs(1))
        target = tmp_path / "one.jsonl"
        assert resolve_ledger_path(target, fp) == target

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        led = tmp_path / "new.jsonl"
        batch = run_batch(_specs(1, 2), ledger=led, resume=True)
        assert not batch.telemetry.resumed
        assert batch.telemetry.replayed_runs == 0
        assert led.exists()

    def test_resume_without_ledger_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_specs(1), resume=True)

    def test_without_resume_same_batch_ledger_refused(self, tmp_path):
        # Forgetting --resume must not silently destroy a resumable
        # journal for the very batch being rerun.
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2), ledger=led)
        before = _ledger_lines(led)
        with pytest.raises(LedgerError, match="resume"):
            run_batch(_specs(1, 2), ledger=led)
        assert _ledger_lines(led) == before  # journal untouched

    def test_without_resume_different_batch_ledger_overwritten(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2), ledger=led)
        run_batch(_specs(5, 6), ledger=led)  # different batch: fresh journal
        lines = _ledger_lines(led)
        assert len(lines) == 3
        assert json.loads(lines[0])["fingerprint"] == batch_fingerprint(_specs(5, 6))


# --------------------------------------------------------------------- resume
class TestResume:
    def test_partial_ledger_replays_and_completes(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        base = run_batch(_specs(1, 2, 3))
        run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        led.write_text("\n".join(lines[:3]) + "\n")  # header + 2 runs survive

        resumed = run_batch(_specs(1, 2, 3), ledger=led, resume=True)
        assert resumed.results == base.results
        assert resumed.telemetry.resumed
        assert resumed.telemetry.replayed_runs == 2
        assert sum(1 for t in resumed.run_telemetry if t.replayed) == 2
        # The re-executed run was appended: the ledger is now complete.
        assert len(_ledger_lines(led)) == 4

    def test_torn_trailing_record_tolerated_and_rerun(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        base = run_batch(_specs(1, 2, 3))
        run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        # Simulate a crash mid-append: the last record is torn.
        led.write_text("\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2])

        resumed = run_batch(_specs(1, 2, 3), ledger=led, resume=True)
        assert resumed.results == base.results
        assert resumed.telemetry.replayed_runs == 2  # torn run re-executed

    def test_torn_tail_truncated_on_load(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        intact = "\n".join(lines[:3]) + "\n"
        led.write_text(intact + lines[3][: len(lines[3]) // 2])

        _, state = RunLedger.load(led)
        assert state.dropped_torn_tail
        # The fragment is physically gone: only intact records remain,
        # newline-terminated, so post-resume appends start a fresh line.
        assert led.read_text() == intact

    def test_torn_tail_resume_survives_repeated_crash_resume_cycles(self, tmp_path):
        # Regression: appending after an un-truncated torn fragment used
        # to weld the next record onto it, so the *second* resume saw a
        # corrupt interior line and bricked the journal for good.
        led = tmp_path / "batch.jsonl"
        base = run_batch(_specs(1, 2, 3))
        run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        led.write_text("\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2])

        first = run_batch(_specs(1, 2, 3), ledger=led, resume=True)
        assert first.results == base.results

        # The healed ledger must load cleanly and hold the full batch.
        _, state = RunLedger.load(led)
        assert not state.dropped_torn_tail
        assert sorted(state.records) == [0, 1, 2]

        # A second resume replays everything, still byte-identical.
        second = run_batch(_specs(1, 2, 3), ledger=led, resume=True)
        assert second.results == base.results
        assert second.telemetry.replayed_runs == 3

        # Tear it again and resume again: still recoverable.
        lines = _ledger_lines(led)
        led.write_text("\n".join(lines[:3]) + "\n" + lines[3][:10])
        third = run_batch(_specs(1, 2, 3), ledger=led, resume=True)
        assert third.results == base.results
        assert third.telemetry.replayed_runs == 2
        assert sorted(RunLedger.load(led)[1].records) == [0, 1, 2]

    def test_unterminated_final_line_treated_as_torn(self, tmp_path):
        # A record whose newline never hit the disk is not durable even
        # if its JSON happens to parse — drop it and re-execute the run.
        led = tmp_path / "batch.jsonl"
        base = run_batch(_specs(1, 2, 3))
        run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        led.write_text("\n".join(lines))  # strip only the final newline

        _, state = RunLedger.load(led)
        assert state.dropped_torn_tail
        assert len(state.records) == 2

        resumed = run_batch(_specs(1, 2, 3), ledger=led, resume=True)
        assert resumed.results == base.results
        assert resumed.telemetry.replayed_runs == 2
        assert sorted(RunLedger.load(led)[1].records) == [0, 1, 2]

    def test_corrupt_interior_record_is_hard_error(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        lines[2] = lines[2][:20]  # corrupt a record that is NOT the tail
        led.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match="not a torn tail"):
            run_batch(_specs(1, 2, 3), ledger=led, resume=True)

    def test_changed_spec_fingerprint_mismatch_hard_error(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2), ledger=led)
        with pytest.raises(LedgerError, match="different batch"):
            run_batch(
                [_spec(seed=1), _spec(seed=2).with_(horizon_s=days(3))],
                ledger=led,
                resume=True,
            )

    def test_changed_batch_size_hard_error(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2), ledger=led)
        with pytest.raises(LedgerError):
            run_batch(_specs(1, 2, 3), ledger=led, resume=True)

    def test_empty_ledger_hard_error(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        led.write_text("")
        with pytest.raises(LedgerError, match="empty"):
            run_batch(_specs(1), ledger=led, resume=True)

    def test_progress_not_called_for_replayed_runs(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2, 3), ledger=led)
        lines = _ledger_lines(led)
        led.write_text("\n".join(lines[:3]) + "\n")
        seen = []
        run_batch(
            _specs(1, 2, 3), ledger=led, resume=True,
            progress=lambda t: seen.append(t.seed),
        )
        assert seen == [3]

    @pytest.mark.slow
    def test_resume_with_different_jobs_byte_identical(self, tmp_path):
        seeds = (1, 2, 3, 4)
        base = run_batch(_specs(*seeds), jobs=1)
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(*seeds), ledger=led, jobs=1)
        lines = _ledger_lines(led)
        led.write_text("\n".join(lines[:3]) + "\n")  # 2 of 4 journaled

        # Journaled at jobs=1, resumed at jobs=4 — and the other way round.
        resumed4 = run_batch(_specs(*seeds), ledger=led, resume=True, jobs=4)
        assert resumed4.results == base.results
        assert resumed4.telemetry.replayed_runs == 2

        led2 = tmp_path / "batch2.jsonl"
        run_batch(_specs(*seeds), ledger=led2, jobs=4)
        lines2 = _ledger_lines(led2)
        led2.write_text("\n".join(lines2[:3]) + "\n")
        resumed1 = run_batch(_specs(*seeds), ledger=led2, resume=True, jobs=1)
        assert resumed1.results == base.results
        assert resumed1.telemetry.replayed_runs == 2


# ----------------------------------------------------- orchestrator SIGKILL
_KILL_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.runtime import RunSpec, StrategySpec, run_batch
    from repro.testkit.faults import kill_orchestrator_after_n_runs
    from repro.traces.catalog import MarketKey
    from repro.units import days

    ledger, jobs, kill_after = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    specs = [
        RunSpec(
            strategy=StrategySpec.single(MarketKey("us-east-1a", "small")),
            seed=s,
            horizon_s=days(2),
            regions=("us-east-1a",),
            sizes=("small",),
        )
        for s in (1, 2, 3, 4)
    ]
    run_batch(
        specs,
        jobs=jobs,
        ledger=ledger,
        progress=kill_orchestrator_after_n_runs(kill_after),
    )
    raise SystemExit(99)  # unreachable: the hook SIGKILLs us first
    """
)


def _result_bytes(results):
    """Canonical byte serialization of a result tuple (identity check)."""
    return json.dumps(
        [dataclasses.asdict(r) for r in results], sort_keys=True
    ).encode()


@pytest.mark.slow
@pytest.mark.parametrize("jobs", [1, 4])
def test_kill_orchestrator_then_resume_byte_identical(tmp_path, jobs):
    """The acceptance drill: SIGKILL the orchestrator mid-batch, resume,
    and demand a byte-identical report plus replayed-run telemetry."""
    led = tmp_path / "batch.jsonl"
    err_path = tmp_path / "stderr.txt"
    with open(err_path, "wb") as err:
        # No pipes: orphaned pool workers (jobs=4) inherit them and would
        # keep a captured stderr open long after the SIGKILL.
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_SCRIPT, str(led), str(jobs), "2"],
            env={**os.environ, "PYTHONPATH": str(Path(__file__).parents[2] / "src")},
            stdout=subprocess.DEVNULL,
            stderr=err,
            timeout=300,
        )
    assert proc.returncode == -signal.SIGKILL, err_path.read_text()
    journaled = len(_ledger_lines(led)) - 1
    assert journaled >= 2  # the kill threshold, plus racing pool workers

    baseline = run_batch(_specs(1, 2, 3, 4), jobs=jobs)
    resumed = run_batch(_specs(1, 2, 3, 4), ledger=led, resume=True, jobs=jobs)
    assert _result_bytes(resumed.results) == _result_bytes(baseline.results)
    assert resumed.telemetry.resumed
    assert resumed.telemetry.replayed_runs == journaled
    assert sum(1 for t in resumed.run_telemetry if t.replayed) == journaled


def test_kill_hook_validates_threshold():
    with pytest.raises(ConfigurationError):
        kill_orchestrator_after_n_runs(0)


def test_kill_hook_counts_completions():
    # With a benign signal number 0, os.kill is a no-op probe: the hook
    # must fire it only once the threshold is reached.
    hook = kill_orchestrator_after_n_runs(3, sig=0)
    for _ in range(5):
        hook(None)  # would raise on a dead pid; sig 0 just checks


# -------------------------------------------------------------- ledger object
class TestRunLedgerObject:
    def test_load_reports_header_fields(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2), ledger=led)
        _, state = RunLedger.load(led)
        assert state.runs == 2
        assert state.version == 1
        assert state.package_version
        assert sorted(state.records) == [0, 1]
        assert not state.dropped_torn_tail

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            RunLedger.load(tmp_path / "absent.jsonl")

    def test_header_only_ledger_resumes_everything(self, tmp_path):
        led = tmp_path / "batch.jsonl"
        run_batch(_specs(1, 2), ledger=led)
        led.write_text(_ledger_lines(led)[0] + "\n")
        batch = run_batch(_specs(1, 2), ledger=led, resume=True)
        assert batch.telemetry.replayed_runs == 0
        assert batch.telemetry.resumed
