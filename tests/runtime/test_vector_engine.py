"""Vector-engine equivalence and routing tests.

The contract under test: the vector engine produces results byte-identical
to the event engine on every configuration it accepts, and the executor's
``engine="auto"`` routing keeps ineligible runs (faulted, trace-capturing,
ledgered, non-vectorizable policies) on the event engine.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.simulation import run_simulation_observed
from repro.errors import ConfigurationError
from repro.obs import observe
from repro.runtime import RunSpec, StrategySpec, run_batch
from repro.runtime.cache import TraceCatalogCache
from repro.testkit.faults import FaultPlan
from repro.testkit.golden import SCENARIOS
from repro.traces.catalog import MarketKey
from repro.units import days

EAST_SMALL = MarketKey("us-east-1a", "small")

#: Shared cache so hypothesis examples reusing a seed skip catalog builds.
_CACHE = TraceCatalogCache()


def _spec(**kw) -> RunSpec:
    base = dict(
        strategy=StrategySpec.single(EAST_SMALL),
        seed=11,
        horizon_s=days(2),
        regions=("us-east-1a",),
        sizes=("small",),
        label="vector-test",
    )
    base.update(kw)
    return RunSpec(**base)


# ------------------------------------------------------------------ equivalence
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_vector_matches_event_on_golden_corpus(scenario):
    """Forced-vector runs reproduce every golden scenario bit-for-bit.

    Scenarios whose policy cannot batch (index-tracking, no-ft,
    portfolio-bid) exercise the degrade contract instead: a forced
    vector run falls back to per-event execution and reports it.
    """
    config = scenario.config()
    event = run_simulation_observed(config)
    vector = run_simulation_observed(scenario.config(), engine="vector")
    assert event.engine_kind == "event"
    if config.strategy().vectorizable:
        assert vector.engine_kind == "vector"
        assert vector.vector_checks > 0
    else:
        assert vector.engine_kind == "event"
        assert vector.vector_checks == 0
    assert vector.result == event.result


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=400),
    horizon_days=st.floats(min_value=1.0, max_value=3.0),
    kind=st.sampled_from(("single", "pure-spot", "on-demand", "multi-market")),
    region=st.sampled_from(("us-east-1a", "us-east-1b", "us-west-1a")),
    size=st.sampled_from(("small", "large")),
    bidding=st.one_of(
        st.floats(min_value=1.2, max_value=9.0).map(lambda k: ProactiveBidding(k=k)),
        st.just(ReactiveBidding()),
    ),
)
def test_vector_matches_event_property(seed, horizon_days, kind, region, size, bidding):
    """Random catalog samples × strategies × bidding: engines agree."""
    key = MarketKey(region, size)
    if kind == "single":
        strategy = StrategySpec.single(key)
    elif kind == "pure-spot":
        strategy = StrategySpec.pure_spot(key)
    elif kind == "on-demand":
        strategy = StrategySpec.on_demand(key)
    else:
        strategy = StrategySpec.multi_market(region, service_units=4)
    spec = _spec(
        strategy=strategy,
        bidding=bidding,
        seed=seed,
        horizon_s=days(horizon_days),
        regions=(region,),
        sizes=(size,) if kind != "multi-market" else ("small", "large"),
    )
    event = run_batch([spec], engine="event", cache=_CACHE)
    vector = run_batch([spec], engine="vector", cache=_CACHE)
    assert vector.results == event.results
    assert event.run_telemetry[0].engine_kind == "event"
    assert vector.run_telemetry[0].engine_kind == "vector"


# ---------------------------------------------------------------- auto routing
def test_auto_routes_eligible_run_to_vector():
    batch = run_batch([_spec()], engine="auto", cache=_CACHE)
    t = batch.run_telemetry[0]
    assert t.engine_kind == "vector"
    assert t.vector_checks > 0
    assert batch.telemetry.vector_runs == 1
    assert batch.telemetry.vector_checks >= t.vector_checks
    assert batch.telemetry.engine == "auto"


def test_auto_keeps_faulted_run_on_event_engine():
    faulted = _spec(
        faults=FaultPlan.revocation_storm(7, days(2), n_spikes=2, duration_s=900.0)
    )
    batch = run_batch([faulted], engine="auto", cache=_CACHE)
    assert batch.run_telemetry[0].engine_kind == "event"
    assert batch.telemetry.vector_runs == 0


def test_auto_keeps_traced_run_on_event_engine():
    with observe(trace=True):
        batch = run_batch([_spec()], engine="auto", cache=_CACHE)
    t = batch.run_telemetry[0]
    assert t.engine_kind == "event"
    assert t.trace_events  # capture actually happened
    assert batch.telemetry.vector_runs == 0


def test_ledgered_batch_always_runs_per_event(tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    batch = run_batch([_spec()], engine="auto", ledger=ledger, cache=_CACHE)
    assert batch.run_telemetry[0].engine_kind == "event"
    # And the resumed replay reports the original (event) execution.
    resumed = run_batch(
        [_spec()], engine="auto", ledger=ledger, resume=True, cache=_CACHE
    )
    assert resumed.run_telemetry[0].replayed
    assert resumed.run_telemetry[0].engine_kind == "event"
    assert resumed.results == batch.results


def test_forced_vector_degrades_on_nonvectorizable_strategy():
    """NoFaultToleranceStrategy cannot batch (its recompute path only
    exists in the event engine); forced vector still runs — per-event
    inside the scheduler — and reports what actually happened."""
    spec = _spec(strategy=StrategySpec.no_fault_tolerance(EAST_SMALL))
    event = run_batch([spec], engine="event", cache=_CACHE)
    vector = run_batch([spec], engine="vector", cache=_CACHE)
    assert vector.run_telemetry[0].engine_kind == "event"
    assert vector.run_telemetry[0].vector_checks == 0
    assert vector.results == event.results


def test_unknown_engine_rejected():
    with pytest.raises(ConfigurationError):
        run_batch([_spec()], engine="bogus", cache=_CACHE)
    with pytest.raises(ConfigurationError):
        run_simulation_observed(_spec().to_config(), engine="auto")


# --------------------------------------------------------------------- dedupe
def test_dedupe_clones_dynamics_identical_runs():
    """Proactive k values that all clamp at the provider's bid cap
    configure byte-identical dynamics: one representative executes, the
    twins are cloned, and results still match per-spec event runs."""
    specs = [
        _spec(bidding=ProactiveBidding(k=k), label=f"k={k}") for k in (5.0, 7.0, 9.0)
    ]
    auto = run_batch(specs, engine="auto", cache=_CACHE)
    assert auto.telemetry.deduped_runs == 2
    assert sum(1 for t in auto.run_telemetry if t.deduped) == 2
    for spec, got in zip(specs, auto.results):
        ev = run_batch([spec], engine="event", cache=_CACHE)
        assert got == ev.results[0]
    # Labels survive cloning: each result reports its own spec's label.
    assert [r.label for r in auto.results] == ["k=5.0", "k=7.0", "k=9.0"]
