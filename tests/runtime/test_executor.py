"""Executor: parallel fan-out must be indistinguishable from serial."""

import os

import pytest

from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.simulation import SimulationConfig, run_many, run_simulation
from repro.core.strategies import SingleMarketStrategy
from repro.errors import ConfigurationError
from repro.runtime import (
    BatchSpec,
    RunSpec,
    StrategySpec,
    TraceCatalogCache,
    collect_telemetry,
    run_batch,
)
from repro.traces.calibration import SIZES
from repro.traces.catalog import MarketKey
from repro.units import days

REGION = "us-east-1a"


def fig6_style_runs(seeds=(11, 23), sizes=("small", "medium"), horizon=days(3)):
    """The fig6 shape: seeds × sizes × {reactive, proactive} single-market."""
    runs = []
    for size in sizes:
        key = MarketKey(REGION, size)
        for bidding in (ReactiveBidding(), ProactiveBidding()):
            for seed in seeds:
                runs.append(
                    RunSpec(
                        strategy=StrategySpec.single(key),
                        bidding=bidding,
                        seed=seed,
                        horizon_s=horizon,
                        regions=(REGION,),
                        sizes=(size,),
                        label=f"{bidding.name}/{size}",
                    )
                )
    return runs


class TestSerial:
    def test_results_in_submission_order(self):
        runs = fig6_style_runs(seeds=(3, 1, 2), sizes=("small",))
        batch = run_batch(runs, cache=TraceCatalogCache())
        assert [r.seed for r in batch.results] == [r.seed for r in runs]
        assert [r.label for r in batch.results] == [r.label for r in runs]

    def test_matches_run_simulation(self):
        run = fig6_style_runs(seeds=(7,), sizes=("small",))[0]
        batch = run_batch([run], cache=TraceCatalogCache())
        assert batch.results[0] == run_simulation(run.to_config())

    def test_progress_called_per_run(self):
        runs = fig6_style_runs(seeds=(1, 2), sizes=("small",))
        seen = []
        run_batch(runs, cache=TraceCatalogCache(), progress=seen.append)
        assert len(seen) == len(runs)
        assert all(t.events_processed > 0 and t.wall_s > 0 for t in seen)

    def test_rejects_empty_and_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            run_batch([])
        with pytest.raises(ConfigurationError):
            run_batch(fig6_style_runs(seeds=(1,), sizes=("small",)), jobs=0)

    def test_accepts_batch_spec(self):
        base = RunSpec(
            strategy=StrategySpec.single(MarketKey(REGION, "small")),
            horizon_s=days(2),
            regions=(REGION,),
            sizes=("small",),
        )
        batch = run_batch(BatchSpec.product(base, [1, 2]), cache=TraceCatalogCache())
        assert [r.seed for r in batch.results] == [1, 2]


class TestParallelDeterminism:
    def test_jobs4_identical_to_serial_fig6_style(self):
        """Satellite: a jobs=4 batch equals the serial batch field for
        field, in the same order."""
        runs = fig6_style_runs()
        serial = run_batch(runs, jobs=1, cache=TraceCatalogCache())
        parallel = run_batch(runs, jobs=4)
        assert list(parallel.results) == list(serial.results)  # dataclass eq
        for s, p in zip(serial.results, parallel.results):
            assert s.downtime_by_cause == p.downtime_by_cause
            assert s.spot_time_fraction == p.spot_time_fraction

    def test_parallel_runs_use_worker_processes(self):
        runs = fig6_style_runs(seeds=(1, 2), sizes=("small",))
        batch = run_batch(runs, jobs=2)
        pids = {t.worker_pid for t in batch.run_telemetry}
        assert batch.telemetry.parallel_runs == len(runs)
        assert os.getpid() not in pids

    def test_unportable_runs_fall_back_in_process(self):
        key = MarketKey(REGION, "small")
        portable = RunSpec(
            strategy=StrategySpec.single(key),
            seed=1,
            horizon_s=days(2),
            regions=(REGION,),
            sizes=("small",),
        )
        legacy = portable.with_(strategy=lambda: SingleMarketStrategy(key))
        batch = run_batch([portable, legacy], jobs=2)
        assert batch.results[0] == batch.results[1]
        assert batch.run_telemetry[1].worker_pid == os.getpid()

    def test_run_many_jobs_matches_serial(self):
        cfg = SimulationConfig(
            strategy=StrategySpec.single(MarketKey(REGION, "small")),
            horizon_s=days(3),
            regions=(REGION,),
            sizes=("small",),
        )
        assert run_many(cfg, [1, 2, 3], jobs=4) == run_many(cfg, [1, 2, 3])


class TestTelemetry:
    def test_batch_telemetry_counts(self):
        runs = fig6_style_runs(seeds=(1, 2), sizes=("small",))
        batch = run_batch(runs, cache=TraceCatalogCache())
        t = batch.telemetry
        assert t.runs == 4 and t.jobs == 1 and t.parallel_runs == 0
        assert t.catalog_builds == 2 and t.catalog_cache_hits == 2
        assert t.events_processed == sum(r.events_processed for r in batch.run_telemetry)
        assert "4 runs" in t.summary()

    def test_collect_telemetry_scope(self):
        runs = fig6_style_runs(seeds=(1,), sizes=("small",))
        with collect_telemetry() as outer:
            run_batch(runs, cache=TraceCatalogCache())
            with collect_telemetry() as inner:
                run_batch(runs, cache=TraceCatalogCache())
        assert outer.runs == 4 and inner.runs == 2
        assert len(outer.batches) == 2 and len(inner.batches) == 1
        # Outside the scope nothing is collected.
        run_batch(runs, cache=TraceCatalogCache())
        assert outer.runs == 4
