"""Spec layer: every registered variant must pickle and rebuild."""

import pickle

import pytest

from repro.core.adaptive import AdaptiveBidding
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.simulation import SimulationConfig, run_simulation
from repro.core.policies import (
    IndexTrackingStrategy,
    NoFaultToleranceStrategy,
    PortfolioBidStrategy,
)
from repro.core.registry import unregister_strategy
from repro.core.strategies import (
    HostingStrategy,
    MultiMarketStrategy,
    MultiRegionStrategy,
    OnDemandOnlyStrategy,
    PureSpotStrategy,
    SingleMarketStrategy,
    StabilityAwareStrategy,
)
from repro.errors import ConfigurationError
from repro.runtime import BatchSpec, RunSpec, StrategySpec, register_strategy_kind
from repro.runtime.spec import strategy_kinds
from repro.traces.catalog import MarketKey
from repro.units import days
from repro.vm.mechanisms import Mechanism, PESSIMISTIC_PARAMS, TYPICAL_PARAMS

KEY = MarketKey("us-east-1a", "small")
REGION_PAIR = ("us-east-1a", "eu-west-1a")

#: One representative spec per registered strategy kind, and the class it
#: must build. Keep in sync with the registry — the completeness test below
#: fails if a kind is added without a row here.
SPEC_CASES = {
    "single": (StrategySpec.single(KEY), SingleMarketStrategy),
    "pure-spot": (StrategySpec.pure_spot(KEY), PureSpotStrategy),
    "on-demand": (StrategySpec.on_demand(KEY), OnDemandOnlyStrategy),
    "multi-market": (StrategySpec.multi_market("us-east-1a"), MultiMarketStrategy),
    "multi-region": (StrategySpec.multi_region(REGION_PAIR), MultiRegionStrategy),
    "stability": (
        StrategySpec.stability(REGION_PAIR, stability_weight=2.0),
        StabilityAwareStrategy,
    ),
    "index-tracking": (
        StrategySpec.index_tracking(REGION_PAIR, band=0.2),
        IndexTrackingStrategy,
    ),
    "no-ft": (StrategySpec.no_fault_tolerance(KEY), NoFaultToleranceStrategy),
    "portfolio-bid": (
        StrategySpec.portfolio_bid(REGION_PAIR, risk_cap=0.1),
        PortfolioBidStrategy,
    ),
}

BIDDINGS = (ReactiveBidding(), ProactiveBidding(), AdaptiveBidding())


def test_every_registered_kind_has_a_case():
    assert set(SPEC_CASES) == set(strategy_kinds())


@pytest.mark.parametrize("kind", sorted(SPEC_CASES))
def test_strategy_spec_builds_and_is_callable(kind):
    spec, cls = SPEC_CASES[kind]
    assert isinstance(spec.build(), cls)
    # A spec is a drop-in strategy factory.
    assert isinstance(spec(), cls)
    # Each call builds a fresh instance.
    assert spec() is not spec()


@pytest.mark.parametrize("kind", sorted(SPEC_CASES))
def test_strategy_spec_pickle_round_trip(kind):
    spec, cls = SPEC_CASES[kind]
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert isinstance(clone.build(), cls)


@pytest.mark.parametrize("kind", sorted(SPEC_CASES))
@pytest.mark.parametrize("bidding", BIDDINGS, ids=lambda b: b.name)
@pytest.mark.parametrize("mechanism", list(Mechanism), ids=lambda m: m.value)
def test_run_spec_pickles_for_every_combination(kind, bidding, mechanism):
    """Satellite: every strategy × bidding × mechanism combination must
    round-trip through pickle and yield a runnable spec."""
    spec, cls = SPEC_CASES[kind]
    run = RunSpec(
        strategy=spec,
        bidding=bidding,
        mechanism=mechanism,
        params=PESSIMISTIC_PARAMS if mechanism is Mechanism.CKPT else TYPICAL_PARAMS,
        seed=3,
        horizon_s=days(2),
        regions=REGION_PAIR,
        sizes=("small",),
    )
    assert run.is_portable()
    clone = pickle.loads(pickle.dumps(run))
    assert clone == run
    config = clone.to_config()
    assert isinstance(config, SimulationConfig)
    built = config.strategy()
    assert isinstance(built, cls)
    assert config.bidding.name == bidding.name


def test_run_spec_executes_after_pickling():
    run = RunSpec(
        strategy=StrategySpec.single(KEY),
        seed=5,
        horizon_s=days(2),
        regions=("us-east-1a",),
        sizes=("small",),
    )
    clone = pickle.loads(pickle.dumps(run))
    result = run_simulation(clone.to_config())
    assert result.seed == 5
    assert result.duration_hours > 0


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError):
        StrategySpec.of("warp-drive", KEY)


def test_register_strategy_kind_extends_registry():
    class NullStrategy(SingleMarketStrategy):
        pass

    register_strategy_kind("null-test", NullStrategy)
    try:
        spec = StrategySpec.of("null-test", KEY)
        assert isinstance(spec.build(), NullStrategy)
    finally:
        unregister_strategy("null-test")


def test_duplicate_registration_via_runtime_facade_raises():
    """Regression: a second registration used to clobber the first."""

    class FirstStrategy(SingleMarketStrategy):
        pass

    class SecondStrategy(SingleMarketStrategy):
        pass

    register_strategy_kind("dup-facade-test", FirstStrategy)
    try:
        with pytest.raises(ConfigurationError, match="already registered"):
            register_strategy_kind("dup-facade-test", SecondStrategy)
        register_strategy_kind("dup-facade-test", SecondStrategy, override=True)
        assert isinstance(
            StrategySpec.of("dup-facade-test", KEY).build(), SecondStrategy
        )
    finally:
        unregister_strategy("dup-facade-test")


def test_run_spec_from_config_drops_catalog(month_catalog):
    config = SimulationConfig(
        strategy=StrategySpec.single(KEY),
        seed=1,
        catalog=month_catalog,
    )
    spec = RunSpec.from_config(config, seed=9)
    assert spec.seed == 9
    assert spec.to_config().catalog is None


def test_to_config_deep_copies_bidding():
    bidding = AdaptiveBidding()
    spec = RunSpec(strategy=StrategySpec.single(KEY), bidding=bidding)
    assert spec.to_config().bidding is not bidding


def test_legacy_callable_strategy_is_not_portable():
    run = RunSpec(strategy=lambda: SingleMarketStrategy(KEY))
    assert not run.is_portable()


def test_batch_spec_product():
    base = RunSpec(strategy=StrategySpec.single(KEY))
    batch = BatchSpec.product(base, [1, 2, 3])
    assert [r.seed for r in batch] == [1, 2, 3]
    assert len(batch) == 3
    with pytest.raises(ConfigurationError):
        BatchSpec.product(base, [])
