"""Tests for result/report export."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    report_to_markdown,
    result_to_dict,
    results_to_csv,
    results_to_json,
    trace_to_json,
)
from repro.analysis.report import ExperimentReport
from repro.core.simulation import SimulationConfig, run_many
from repro.core.strategies import SingleMarketStrategy
from repro.errors import ConfigurationError
from repro.traces.catalog import MarketKey
from repro.traces.trace import PriceTrace
from repro.units import days

KEY = MarketKey("us-east-1a", "small")


@pytest.fixture(scope="module")
def results():
    cfg = SimulationConfig(
        strategy=lambda: SingleMarketStrategy(KEY),
        regions=("us-east-1a",), sizes=("small",),
        horizon_s=days(7), label="export-test",
    )
    return run_many(cfg, [1, 2])


def test_result_to_dict_fields(results):
    d = result_to_dict(results[0])
    assert d["label"] == "export-test"
    assert d["seed"] == 1
    assert "savings_percent" in d
    assert isinstance(d["downtime_by_cause"], dict)


def test_json_roundtrip(results, tmp_path):
    path = tmp_path / "out.json"
    results_to_json(results, path)
    loaded = json.loads(path.read_text())
    assert len(loaded) == 2
    assert loaded[0]["total_cost"] == pytest.approx(results[0].total_cost)


def test_json_to_stream(results):
    buf = io.StringIO()
    results_to_json(results, buf)
    assert json.loads(buf.getvalue())[1]["seed"] == 2


def test_csv_roundtrip(results, tmp_path):
    path = tmp_path / "out.csv"
    results_to_csv(results, path)
    rows = list(csv.DictReader(path.open()))
    assert len(rows) == 2
    assert float(rows[0]["normalized_cost_percent"]) == pytest.approx(
        results[0].normalized_cost_percent
    )
    assert "downtime_by_cause" not in rows[0]


def test_csv_empty_rejected():
    with pytest.raises(ConfigurationError):
        results_to_csv([], io.StringIO())


def test_report_to_markdown():
    r = ExperimentReport("figX", "Title here")
    r.add_artifact("a | b\n--+--\n1 | 2")
    r.compare("metric-a", 1.0, paper=1.2, unit="s")
    r.compare("claim-b", 5.0, expectation="should be big", holds=True)
    r.note("caveat text")
    md = report_to_markdown(r)
    assert md.startswith("## figX: Title here")
    assert "```text" in md
    assert "| metric-a | 1 | 1.2 | s |" in md
    assert "| OK |" in md
    assert "> caveat text" in md


def test_trace_to_json(tmp_path):
    t = PriceTrace([0.0, 100.0], [0.02, 0.05], 200.0, market="small", region="r")
    path = tmp_path / "trace.json"
    trace_to_json(t, path)
    loaded = json.loads(path.read_text())
    assert loaded["times"] == [0.0, 100.0]
    assert loaded["prices"] == [0.02, 0.05]
    assert loaded["market"] == "small"
