"""Unit tests for tables, ASCII figures and reports."""

import pytest

from repro.analysis.figures import bar_chart, line_chart, sparkline
from repro.analysis.report import ComparisonRow, ExperimentReport
from repro.analysis.tables import Table, format_value


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(1234.5) == "1,234.5"
        assert format_value(0.0) == "0"

    def test_bools_and_strings(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value("abc") == "abc"

    def test_ints(self):
        assert format_value(42) == "42"


class TestTable:
    def test_render_alignment(self):
        t = Table(headers=("name", "value"))
        t.add_row("a", 1.0)
        t.add_row("longer-name", 123.456)
        out = t.render()
        lines = out.split("\n")
        assert "name" in lines[0] and "value" in lines[0]
        assert len(set(len(l) for l in lines if "|" in l)) == 1  # aligned

    def test_title_included(self):
        t = Table(headers=("x",), title="My Table")
        t.add_row(1)
        assert t.render().startswith("My Table")

    def test_wrong_arity_raises(self):
        t = Table(headers=("a", "b"))
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_extend(self):
        t = Table(headers=("a", "b"))
        t.extend([(1, 2), (3, 4)])
        assert len(t.rows) == 2


class TestCharts:
    def test_bar_chart_contains_labels_and_values(self):
        out = bar_chart({"aa": 1.0, "bb": 2.0}, title="T", unit="%")
        assert "T" in out and "aa" in out and "2%" in out

    def test_bar_chart_log_scale_handles_zero(self):
        out = bar_chart({"z": 0.0, "p": 0.01, "q": 1.0}, log_scale=True)
        assert "z" in out

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_line_chart_renders_series(self):
        out = line_chart(
            {"native": [(1, 10), (2, 20)], "nested": [(1, 15), (2, 30)]},
            title="L", x_label="EBs", y_label="ms",
        )
        assert "L" in out and "o=native" in out and "x=nested" in out
        assert "EBs" in out

    def test_line_chart_degenerate(self):
        out = line_chart({"s": [(1, 5)]})
        assert "|" in out

    def test_sparkline_length(self):
        s = sparkline([1, 2, 3, 4, 5], width=60)
        assert len(s) == 5

    def test_sparkline_downsamples(self):
        s = sparkline(list(range(1000)), width=60)
        assert len(s) == 60

    def test_sparkline_flat(self):
        assert set(sparkline([2.0, 2.0, 2.0])) == {"▄"}

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestReport:
    def test_verdict_ok_within_2x(self):
        assert ComparisonRow("m", 1.5, paper=1.0).verdict() == "OK"
        assert ComparisonRow("m", 0.6, paper=1.0).verdict() == "OK"

    def test_verdict_near_within_5x(self):
        assert ComparisonRow("m", 4.0, paper=1.0).verdict() == "NEAR"

    def test_verdict_deviates_beyond_5x(self):
        assert ComparisonRow("m", 10.0, paper=1.0).verdict() == "DEVIATES"

    def test_verdict_expectation_overrides(self):
        assert ComparisonRow("m", 99.0, holds=True).verdict() == "OK"
        assert ComparisonRow("m", 1.0, paper=1.0, holds=False).verdict() == "DEVIATES"

    def test_verdict_no_reference(self):
        assert ComparisonRow("m", 1.0).verdict() == "-"

    def test_verdict_zero_paper(self):
        assert ComparisonRow("m", 0.0, paper=0.0).verdict() == "OK"
        assert ComparisonRow("m", 0.5, paper=0.0).verdict() == "DEVIATES"

    def test_report_render_includes_everything(self):
        r = ExperimentReport("figX", "A title")
        r.add_artifact("ARTIFACT")
        r.compare("metric", 1.0, paper=1.1, unit="s")
        r.note("a note")
        out = r.render()
        assert "figX" in out and "A title" in out
        assert "ARTIFACT" in out and "metric" in out and "note: a note" in out

    def test_all_hold(self):
        r = ExperimentReport("x", "t")
        r.compare("good", 1.0, paper=1.0)
        assert r.all_hold()
        r.compare("bad", 100.0, paper=1.0)
        assert not r.all_hold()
