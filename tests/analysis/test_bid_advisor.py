"""Unit tests for the bid advisor."""

import numpy as np
import pytest

from repro.analysis.bid_advisor import BidAnalysis
from repro.errors import TraceError
from repro.traces.calibration import calibration_for
from repro.traces.generator import generate_trace
from repro.traces.trace import PriceTrace
from repro.units import days, hours

OD = 0.06


def mk(times, prices, horizon=days(1)):
    return PriceTrace(np.array(times, float), np.array(prices, float), horizon)


@pytest.fixture()
def two_spike_trace():
    """Calm at 0.02 with two 1-hour spikes to 0.10."""
    return mk(
        [0, hours(4), hours(5), hours(12), hours(13)],
        [0.02, 0.10, 0.02, 0.10, 0.02],
    )


class TestPrimitives:
    def test_revocation_rate_counts_crossings(self, two_spike_trace):
        ba = BidAnalysis(two_spike_trace, OD)
        assert ba.revocations_per_hour(0.06) == pytest.approx(2 / 24)
        assert ba.revocations_per_hour(0.15) == 0.0

    def test_start_above_bid_not_a_revocation(self):
        t = mk([0, hours(2)], [0.10, 0.02])
        ba = BidAnalysis(t, OD)
        assert ba.revocations_per_hour(0.06) == 0.0

    def test_held_fraction(self, two_spike_trace):
        ba = BidAnalysis(two_spike_trace, OD)
        assert ba.held_fraction(0.06) == pytest.approx(22 / 24)
        assert ba.held_fraction(0.15) == 1.0
        assert ba.held_fraction(0.01) == 0.0

    def test_mean_price_while_held(self, two_spike_trace):
        ba = BidAnalysis(two_spike_trace, OD)
        assert ba.mean_price_while_held(0.06) == pytest.approx(0.02)
        # raising the bid above the spikes blends them in
        blended = ba.mean_price_while_held(0.15)
        assert 0.02 < blended < 0.04

    def test_mean_outage(self, two_spike_trace):
        ba = BidAnalysis(two_spike_trace, OD)
        assert ba.mean_outage_s(0.06) == pytest.approx(hours(1))
        assert ba.mean_outage_s(0.15) == 0.0

    def test_trailing_outage_counted(self):
        t = mk([0, hours(20)], [0.02, 0.10])
        ba = BidAnalysis(t, OD)
        assert ba.mean_outage_s(0.06) == pytest.approx(hours(4))


class TestCostModel:
    def test_cost_monotone_pieces(self, two_spike_trace):
        """Higher bids trade churn for exposure; with zero penalty the cost
        at a high bid equals the blended mean price."""
        ba = BidAnalysis(two_spike_trace, OD, migration_penalty=0.0)
        high = ba.estimated_cost_per_hour(0.24)
        assert high == pytest.approx(ba.mean_price_while_held(0.24))

    def test_penalty_charged_per_revocation(self, two_spike_trace):
        cheap = BidAnalysis(two_spike_trace, OD, migration_penalty=0.0)
        dear = BidAnalysis(two_spike_trace, OD, migration_penalty=0.6)
        delta = dear.estimated_cost_per_hour(0.06) - cheap.estimated_cost_per_hour(0.06)
        assert delta == pytest.approx(0.6 * 2 / 24)

    def test_cost_below_on_demand_in_cheap_market(self, two_spike_trace):
        ba = BidAnalysis(two_spike_trace, OD)
        for bid in (0.06, 0.12, 0.24):
            assert ba.estimated_cost_per_hour(bid) < OD

    def test_bid_point_fields(self, two_spike_trace):
        p = BidAnalysis(two_spike_trace, OD).point(0.06)
        assert p.mean_time_between_revocations_h == pytest.approx(12.0)
        assert p.availability_pure_spot_percent == pytest.approx(100 * 22 / 24)

    def test_never_revoked_point(self, two_spike_trace):
        p = BidAnalysis(two_spike_trace, OD).point(0.24)
        assert p.mean_time_between_revocations_h == float("inf")


class TestRecommendation:
    def test_recommends_higher_bid_under_tight_budget(self):
        cal = calibration_for("us-east-1a", "small")
        trace = generate_trace(cal, days(30), seed=3)
        ba = BidAnalysis(trace, OD)
        tight = ba.recommend(max_revocations_per_month=7.0)
        loose = ba.recommend(max_revocations_per_month=50.0)
        assert tight.bid >= loose.bid
        assert tight.revocations_per_hour <= 7.0 / (30 * 24) + 1e-12
        # an infeasible budget falls back to bidding the cap
        impossible = ba.recommend(max_revocations_per_month=0.0)
        assert impossible.bid == pytest.approx(4 * OD)

    def test_falls_back_to_cap_when_budget_impossible(self, two_spike_trace):
        ba = BidAnalysis(two_spike_trace, OD)
        p = ba.recommend(max_revocations_per_month=0.0, bids=[0.03, 0.05])
        assert p.bid == 0.05  # highest available

    def test_default_grid_spans_half_to_cap(self, two_spike_trace):
        grid = BidAnalysis(two_spike_trace, OD).default_grid()
        assert grid[0] == pytest.approx(0.03)
        assert grid[-1] == pytest.approx(0.24)

    def test_sweep_on_generated_trace_is_consistent(self):
        """On a realistic trace: rate falls and held-fraction rises with bid."""
        cal = calibration_for("us-east-1a", "small")
        trace = generate_trace(cal, days(30), seed=5)
        ba = BidAnalysis(trace, OD)
        pts = ba.sweep(ba.default_grid())
        rates = [p.revocations_per_hour for p in pts]
        helds = [p.held_fraction for p in pts]
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))
        assert all(b >= a - 1e-12 for a, b in zip(helds, helds[1:]))


class TestValidation:
    def test_bad_inputs(self, two_spike_trace):
        with pytest.raises(TraceError):
            BidAnalysis(two_spike_trace, on_demand_price=0.0)
        with pytest.raises(TraceError):
            BidAnalysis(two_spike_trace, OD).sweep([])
