#!/usr/bin/env python
"""CI smoke drill for crash-safe batch resume.

Runs the acceptance scenario from docs/RESUME.md end to end:

1. Launch a child orchestrator that journals a 4-run batch to a ledger
   and SIGKILLs itself (via ``kill_orchestrator_after_n_runs``) once two
   runs have completed.
2. Resume the batch from the surviving ledger.
3. Run the same batch uninterrupted, with no ledger, and demand a
   byte-identical report.

Exits nonzero (with a diagnostic) on any deviation.  The ledger file is
left at ``--ledger`` so CI can upload it as an artifact on failure.

Usage::

    python tools/resume_smoke.py [--jobs N] [--ledger PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.runtime import RunSpec, StrategySpec, run_batch  # noqa: E402
from repro.traces.catalog import MarketKey  # noqa: E402
from repro.units import days  # noqa: E402

SEEDS = (1, 2, 3, 4)
KILL_AFTER = 2

_CHILD = textwrap.dedent(
    """
    import sys
    from repro.runtime import RunSpec, StrategySpec, run_batch
    from repro.testkit.faults import kill_orchestrator_after_n_runs
    from repro.traces.catalog import MarketKey
    from repro.units import days

    ledger, jobs, kill_after = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    specs = [
        RunSpec(
            strategy=StrategySpec.single(MarketKey("us-east-1a", "small")),
            seed=s,
            horizon_s=days(2),
            regions=("us-east-1a",),
            sizes=("small",),
        )
        for s in (1, 2, 3, 4)
    ]
    run_batch(specs, jobs=jobs, ledger=ledger,
              progress=kill_orchestrator_after_n_runs(kill_after))
    raise SystemExit(99)  # unreachable: the hook SIGKILLs us first
    """
)


def _specs() -> list[RunSpec]:
    return [
        RunSpec(
            strategy=StrategySpec.single(MarketKey("us-east-1a", "small")),
            seed=s,
            horizon_s=days(2),
            regions=("us-east-1a",),
            sizes=("small",),
        )
        for s in SEEDS
    ]


def _report_bytes(results) -> bytes:
    return json.dumps(
        [dataclasses.asdict(r) for r in results], sort_keys=True
    ).encode()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--ledger", type=Path, default=Path("resume-smoke.jsonl"))
    args = parser.parse_args(argv)

    args.ledger.parent.mkdir(parents=True, exist_ok=True)
    if args.ledger.exists():
        args.ledger.unlink()

    print(f"[resume-smoke] killing orchestrator after {KILL_AFTER} of "
          f"{len(SEEDS)} runs (jobs={args.jobs})")
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    # No output pipes: orphaned pool workers would hold them open past the
    # SIGKILL and stall the wait.
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(args.ledger), str(args.jobs),
         str(KILL_AFTER)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        timeout=600,
    )
    if proc.returncode != -signal.SIGKILL:
        print(f"[resume-smoke] FAIL: child exited {proc.returncode}, "
              f"expected SIGKILL ({-signal.SIGKILL})")
        return 1
    if not args.ledger.exists():
        print("[resume-smoke] FAIL: no ledger file survived the kill")
        return 1
    journaled = sum(
        1 for line in args.ledger.read_text().splitlines()[1:] if line.strip()
    )
    print(f"[resume-smoke] child SIGKILLed; ledger holds {journaled} "
          f"completed run(s)")
    if journaled < KILL_AFTER:
        print(f"[resume-smoke] FAIL: expected >= {KILL_AFTER} journaled runs")
        return 1

    print("[resume-smoke] resuming from the ledger")
    resumed = run_batch(_specs(), ledger=args.ledger, resume=True,
                        jobs=args.jobs)
    if not resumed.telemetry.resumed:
        print("[resume-smoke] FAIL: resumed batch not flagged as resumed")
        return 1
    if resumed.telemetry.replayed_runs != journaled:
        print(f"[resume-smoke] FAIL: replayed_runs="
              f"{resumed.telemetry.replayed_runs}, expected {journaled}")
        return 1

    print("[resume-smoke] running uninterrupted baseline")
    baseline = run_batch(_specs(), jobs=args.jobs)
    if _report_bytes(resumed.results) != _report_bytes(baseline.results):
        print("[resume-smoke] FAIL: resumed report differs from the "
              "uninterrupted baseline")
        return 1

    print(f"[resume-smoke] OK: byte-identical report, "
          f"{resumed.telemetry.replayed_runs} replayed + "
          f"{len(SEEDS) - journaled} re-executed run(s)")
    args.ledger.unlink()  # success: nothing to upload
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
