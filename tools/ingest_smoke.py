#!/usr/bin/env python
"""CI smoke drill for the streaming-ingest data path.

Runs the acceptance scenario from docs/DATA.md end to end, in a temp dir:

1. Generate a multi-market archive (two regions x two sizes) and write
   it as one timestamp-interleaved AWS-format CSV plus a gzip copy.
2. Stream-ingest both copies with a deliberately tiny chunk size, so the
   spill/flush machinery actually engages, and check the demux bound
   (``peak_buffered_records <= chunk_records``).
3. Memory-map the segment directory back and demand bit-identical
   times/prices against the source catalog, then a byte-identical
   single-market simulation report between the mmap catalog and the
   CSV -> in-memory loader path.
4. Refit calibrations from the mmap catalog (the repro-calibrate path)
   and check the fitted set survives a JSON save/load round trip.

Exits nonzero with a diagnostic on any deviation.

Usage::

    python tools/ingest_smoke.py
"""

from __future__ import annotations

import dataclasses
import gzip
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.core.simulation import SimulationConfig, run_simulation_observed  # noqa: E402
from repro.runtime.spec import StrategySpec  # noqa: E402
from repro.traces.catalog import MarketKey, TraceCatalog, build_catalog  # noqa: E402
from repro.traces.ingest import ingest_archive, load_segment_catalog  # noqa: E402
from repro.traces.loader import load_aws_csv, save_aws_csv  # noqa: E402
from repro.traces.refit import fit_catalog, load_calibrations, save_calibrations  # noqa: E402
from repro.units import days  # noqa: E402

REGIONS = ("us-east-1a", "us-west-1a")
SIZES = ("small", "medium")
HORIZON = days(3)
CHUNK = 64  # tiny on purpose: every flush path runs


def fail(msg: str) -> None:
    print(f"ingest smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-ingest-smoke-") as tmp:
        root = Path(tmp)
        source = build_catalog(42, HORIZON, regions=REGIONS, sizes=SIZES)

        # One interleaved CSV covering all four markets, plus a gzip copy.
        csv_path = root / "archive.csv"
        rows = []
        for key in source.markets():
            trace = source.trace(key)
            for t, p in zip(trace.times, trace.prices):
                rows.append((float(t), f"m1.{key.size}", key.region, float(p)))
        rows.sort()
        import csv as _csv

        from repro.traces.loader import _HEADER, format_aws_timestamp

        with open(csv_path, "w", newline="") as fh:
            w = _csv.writer(fh)
            w.writerow(_HEADER)
            for t, itype, az, p in rows:
                w.writerow([format_aws_timestamp(t), itype, "Linux/UNIX", az, repr(p)])
        gz_path = root / "archive.csv.gz"
        gz_path.write_bytes(gzip.compress(csv_path.read_bytes()))

        report = ingest_archive(gz_path, root / "seg", horizon=HORIZON, chunk_records=CHUNK)
        if report.n_markets != len(REGIONS) * len(SIZES):
            fail(f"expected {len(REGIONS) * len(SIZES)} markets, ingested {report.n_markets}")
        if report.peak_buffered_records > CHUNK:
            fail(
                f"demux bound violated: peak {report.peak_buffered_records} "
                f"> chunk_records {CHUNK}"
            )

        catalog = load_segment_catalog(root / "seg")
        for key in source.markets():
            src, got = source.trace(key), catalog.trace(key)
            # Timestamps survive the CSV round trip at nanosecond
            # precision; prices (written via repr) survive exactly.
            if not np.allclose(got.times, src.times, rtol=0.0, atol=1e-6):
                fail(f"{key}: times drifted through ingest")
            if not np.array_equal(np.asarray(got.prices), np.asarray(src.prices)):
                fail(f"{key}: prices drifted through ingest")

        # Byte-identical report: mmap catalog vs CSV -> in-memory loader.
        key = MarketKey(REGIONS[0], SIZES[0])
        solo_csv = root / "solo.csv"
        save_aws_csv(
            source.trace(key), solo_csv,
            instance_type=f"m1.{key.size}", availability_zone=key.region,
        )
        ingest_archive(solo_csv, root / "solo-seg", horizon=HORIZON)
        mem_catalog = TraceCatalog(
            {key: load_aws_csv(solo_csv, horizon=HORIZON)},
            {key: catalog.on_demand_price(key)},
            HORIZON,
        )

        def run(cat):
            cfg = SimulationConfig(
                strategy=StrategySpec.single(key),
                seed=9,
                horizon_s=HORIZON,
                regions=(key.region,),
                sizes=(key.size,),
                catalog=cat,
                label="ingest-smoke",
            )
            return dataclasses.asdict(run_simulation_observed(cfg).result)

        mm = run(load_segment_catalog(root / "solo-seg").restricted([key]))
        mem = run(mem_catalog)
        if mm != mem:
            diffs = [k for k in mem if mem[k] != mm.get(k)]
            fail(f"mmap vs in-memory report mismatch in fields: {diffs}")

        # Refit + persistence round trip off the mmap catalog.
        fitted = fit_catalog(catalog, grid_step_s=900.0)
        cal_path = root / "cals.json"
        save_calibrations(cal_path, fitted)
        if load_calibrations(cal_path) != fitted:
            fail("calibration JSON round trip drifted")

        print(
            f"ingest smoke OK: {report.n_records} records -> {report.n_markets} "
            f"segments (peak buffer {report.peak_buffered_records}/{CHUNK}), "
            f"mmap report byte-identical, {len(fitted)} calibrations refit + round-tripped"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
