#!/usr/bin/env python
"""Keep ``docs/TRACING.md`` honest about the ``repro.obs`` event model.

Checks, in both directions:

* every event class documented in TRACING.md exists in ``repro.obs`` with
  the documented wire name;
* every registered event type is documented (a heading per event);
* every documented field of an event exists on the dataclass, and every
  dataclass field appears in the doc's field table.

Exits non-zero with a per-problem report when the doc and the code drift.
Run from the repository root (CI does): ``python tools/check_tracing_docs.py``.
"""

from __future__ import annotations

import dataclasses
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs import EVENT_TYPES  # noqa: E402

DOC = REPO / "docs" / "TRACING.md"

#: ``### `ClassName` — `wire-name```  headings in TRACING.md.
HEADING = re.compile(r"^###\s+`(?P<cls>\w+)`\s+—\s+`(?P<wire>[a-z-]+)`\s*$")
#: ``| `field` | ... |`` rows in the field tables.
FIELD_ROW = re.compile(r"^\|\s*`(?P<field>\w+)`\s*\|")


def parse_doc(text: str) -> dict[str, tuple[str, list[str]]]:
    """Documented class name -> (wire name, documented field names)."""
    documented: dict[str, tuple[str, list[str]]] = {}
    current: str | None = None
    for line in text.splitlines():
        m = HEADING.match(line)
        if m:
            current = m.group("cls")
            documented[current] = (m.group("wire"), [])
            continue
        if line.startswith("## "):
            # A new top-level section ends the event reference entries, so
            # unrelated tables (e.g. the metrics table) are not attributed
            # to the last event.
            current = None
            continue
        if current is not None:
            f = FIELD_ROW.match(line)
            if f and f.group("field") != "field":
                documented[current][1].append(f.group("field"))
    return documented


def main() -> int:
    if not DOC.exists():
        print(f"missing {DOC}")
        return 1
    documented = parse_doc(DOC.read_text(encoding="utf-8"))
    by_class = {cls.__name__: (wire, cls) for wire, cls in EVENT_TYPES.items()}
    problems: list[str] = []

    for name, (wire, doc_fields) in documented.items():
        if name not in by_class:
            problems.append(f"TRACING.md documents unknown event class {name!r}")
            continue
        real_wire, cls = by_class[name]
        if wire != real_wire:
            problems.append(
                f"{name}: documented wire name {wire!r} != actual {real_wire!r}"
            )
        real_fields = [f.name for f in dataclasses.fields(cls)]
        for f in doc_fields:
            if f not in real_fields:
                problems.append(f"{name}: documented field {f!r} does not exist")
        for f in real_fields:
            if f not in doc_fields:
                problems.append(f"{name}: field {f!r} missing from TRACING.md")

    for name in by_class:
        if name not in documented:
            problems.append(f"event class {name} is not documented in TRACING.md")

    if problems:
        print(f"TRACING.md is out of sync with repro.obs ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"TRACING.md OK: {len(documented)} event classes documented, "
        "wire names and fields all match repro.obs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
