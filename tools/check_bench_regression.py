#!/usr/bin/env python
"""Compare fresh benchmark numbers against the committed baseline.

Usage (what CI's perf-smoke step runs after the benchmark tests)::

    python tools/check_bench_regression.py \\
        --baseline BENCH_perf.json \\
        --current benchmarks/output/BENCH_perf.current.json

Both files share the schema written by ``benchmarks/test_bench_decisions.py``::

    {"schema": 1, "benchmarks": {"<name>": {"value": 1.23, "unit": "s"|"x"}}}

``s`` entries are wall-clock (lower is better); ``x`` entries are speedup
ratios (higher is better). Only names present in *both* files are compared
— a partial benchmark run (the PR lane runs just the decision group)
gates what it measured and reports the rest as skipped. The tolerance is
deliberately generous: timings on shared CI runners jitter, and this gate
exists to catch order-of-magnitude regressions (a naive-path fallback, an
accidentally quadratic query), not 5% noise.

Exit status: 0 when every compared entry is within tolerance, 1 otherwise.
To refresh the baseline after an intentional perf change, copy the
current file over ``BENCH_perf.json`` and commit it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 2.0


def load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: {path} not found")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    if data.get("schema") != 1:
        sys.exit(f"error: {path} has unknown schema {data.get('schema')!r}")
    return data.get("benchmarks", {})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_perf.json"))
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("benchmarks/output/BENCH_perf.current.json"),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed slowdown factor per entry (default %(default)s): a time "
        "may grow to baseline*tol, a speedup may shrink to baseline/tol",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 1.0:
        parser.error("tolerance must be >= 1.0")

    baseline = load(args.baseline)
    current = load(args.current)
    failures = []
    compared = 0
    for name in sorted(baseline):
        if name not in current:
            print(f"  skip  {name:35s} (not measured in this run)")
            continue
        base, unit = baseline[name]["value"], baseline[name].get("unit", "s")
        cur = current[name]["value"]
        compared += 1
        if unit == "x":  # speedup ratio: higher is better
            ok = cur >= base / args.tolerance
            verdict = f"{cur:10.3f}x vs baseline {base:8.3f}x (floor {base / args.tolerance:.3f}x)"
        else:  # wall-clock seconds: lower is better
            ok = cur <= base * args.tolerance
            verdict = f"{cur:10.4f}s vs baseline {base:8.4f}s (ceiling {base * args.tolerance:.4f}s)"
        print(f"  {'ok' if ok else 'FAIL':>4s}  {name:35s} {verdict}")
        if not ok:
            failures.append(name)
    for name in sorted(set(current) - set(baseline)):
        print(f"  new   {name:35s} (no baseline yet — add it to {args.baseline})")

    if not compared:
        sys.exit("error: no overlapping benchmark entries to compare")
    if failures:
        print(f"\n{len(failures)} regression(s) beyond {args.tolerance}x tolerance: "
              + ", ".join(failures))
        return 1
    print(f"\nall {compared} compared benchmark(s) within {args.tolerance}x tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
