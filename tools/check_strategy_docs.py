#!/usr/bin/env python
"""Keep ``docs/STRATEGIES.md`` honest about the strategy registry.

Checks, in both directions:

* every family in the overview table is registered, and every
  registered kind appears in the overview with the right display name,
  vectorizable flag, and synthesis weight;
* every ``### `kind` — Display Name`` catalog section names a
  registered kind with its registry display name, and every registered
  kind has a section;
* every spec-argument row in a catalog section matches the registry's
  ``arg_schema`` (name, kind, required, CLI flag), and every schema
  argument is documented.

Exits non-zero with a per-problem report when the doc and the registry
drift. Run from the repository root (CI does):
``python tools/check_strategy_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import registry  # noqa: E402

DOC = REPO / "docs" / "STRATEGIES.md"

#: ``## Section`` headings split the doc.
SECTION = re.compile(r"^##\s+(?P<title>.+?)\s*$")
#: ``### `kind` — Display Name`` headings in the strategy catalog.
KIND_HEADING = re.compile(r"^###\s+`(?P<kind>[\w-]+)`\s+—\s+(?P<display>.+?)\s*$")
#: ``| `kind` | name | yes/no | weight |`` rows in the overview table.
OVERVIEW_ROW = re.compile(
    r"^\|\s*`(?P<kind>[\w-]+)`\s*\|\s*(?P<display>[^|]+?)\s*\|"
    r"\s*(?P<vec>yes|no)\s*\|\s*(?P<weight>[\d.]+)\s*\|"
)
#: ``| `name` | kind | yes/no | default | flag |`` rows in arg tables.
ARG_ROW = re.compile(
    r"^\|\s*`(?P<name>\w+)`\s*\|\s*(?P<kind>\w+)\s*\|\s*(?P<required>yes|no)\s*\|"
    r"\s*[^|]+?\s*\|\s*(?P<cli>`--[\w-]+`|—)\s*\|"
)


def parse_doc(text):
    """(overview rows, catalog kind -> (display, [arg rows]))."""
    overview = {}
    catalog = {}
    section = None
    current = None
    for line in text.splitlines():
        s = SECTION.match(line)
        if s:
            section = s.group("title")
            current = None
            continue
        if section == "Family overview":
            m = OVERVIEW_ROW.match(line)
            if m:
                overview[m.group("kind")] = (
                    m.group("display"),
                    m.group("vec") == "yes",
                    float(m.group("weight")),
                )
        elif section == "Strategy catalog":
            h = KIND_HEADING.match(line)
            if h:
                current = h.group("kind")
                catalog[current] = (h.group("display"), [])
                continue
            if current is not None:
                a = ARG_ROW.match(line)
                if a:
                    catalog[current][1].append(
                        (
                            a.group("name"),
                            a.group("kind"),
                            a.group("required") == "yes",
                            a.group("cli").strip("`"),
                        )
                    )
    return overview, catalog


def main() -> int:
    if not DOC.exists():
        print(f"missing {DOC}")
        return 1
    overview, catalog = parse_doc(DOC.read_text(encoding="utf-8"))
    problems = []

    infos = {info.kind: info for info in registry.strategy_infos()}

    for kind, (display, vec, weight) in overview.items():
        info = infos.get(kind)
        if info is None:
            problems.append(f"overview lists unknown kind `{kind}`")
            continue
        if display != info.display_name:
            problems.append(
                f"{kind}: overview display name {display!r} != {info.display_name!r}"
            )
        if vec != info.vectorizable:
            problems.append(
                f"{kind}: overview says vectorizable={vec}, "
                f"registry says {info.vectorizable}"
            )
        if abs(weight - info.synthesis_weight) > 1e-9:
            problems.append(
                f"{kind}: overview weight {weight} != {info.synthesis_weight}"
            )
    for kind in infos:
        if kind not in overview:
            problems.append(f"kind `{kind}` missing from the overview table")

    for kind, (display, doc_args) in catalog.items():
        info = infos.get(kind)
        if info is None:
            problems.append(f"catalog documents unknown kind `{kind}`")
            continue
        if display != info.display_name:
            problems.append(
                f"{kind}: catalog heading {display!r} != {info.display_name!r}"
            )
        schema = {a.name: a for a in info.arg_schema}
        if [a[0] for a in doc_args] != [a.name for a in info.arg_schema]:
            problems.append(
                f"{kind}: documented args {[a[0] for a in doc_args]} != "
                f"schema order {[a.name for a in info.arg_schema]}"
            )
        for name, doc_kind, required, cli in doc_args:
            spec = schema.get(name)
            if spec is None:
                continue  # already reported by the order check
            if doc_kind != spec.kind:
                problems.append(
                    f"{kind}.{name}: documented kind {doc_kind!r} != {spec.kind!r}"
                )
            if required != spec.required:
                problems.append(
                    f"{kind}.{name}: documented required={required}, "
                    f"schema says {spec.required}"
                )
            real_cli = (
                "--" + spec.cli.replace("_", "-") if spec.cli is not None else "—"
            )
            if cli != real_cli:
                problems.append(
                    f"{kind}.{name}: documented CLI flag {cli!r} != {real_cli!r}"
                )
    for kind in infos:
        if kind not in catalog:
            problems.append(f"kind `{kind}` has no catalog section")

    if problems:
        print(
            "STRATEGIES.md is out of sync with the registry "
            f"({len(problems)} problem(s)):"
        )
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"STRATEGIES.md OK: {len(catalog)} families documented with "
        f"{sum(len(v[1]) for v in catalog.values())} spec arguments, "
        "all match the registry"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
