#!/usr/bin/env python
"""Keep ``docs/DATA.md`` honest about the ingestion/refit CLI surface.

Checks, in both directions:

* every flag in DATA.md's ``repro-calibrate`` CLI-reference table exists
  on ``repro.traces.calibrate_cli.build_parser()``, and every parser
  flag is documented;
* the same for the ``python -m repro.traces.ingest`` reference table
  against the ingest module's parser;
* every flag with a parser ``choices`` list mentions each accepted
  choice (in backticks) in its documented meaning.

Exits non-zero with a per-problem report when the doc and the code
drift. Run from the repository root (CI does):
``python tools/check_calibrate_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.traces.calibrate_cli import build_parser as calibrate_parser  # noqa: E402

DOC = REPO / "docs" / "DATA.md"

#: ``## Section`` headings split the doc.
SECTION = re.compile(r"^##\s+(?P<title>.+?)\s*$")
#: ``| `--flag` | ... |`` rows in a CLI-reference table.
FLAG_ROW = re.compile(r"^\|\s*`(?P<flag>--?[a-z][a-z-]*)`\s*\|(?P<rest>.*)$")

#: Doc section title -> parser factory it must stay in sync with.
def _ingest_parser():
    import argparse

    from repro.traces.ingest import DEFAULT_CHUNK_RECORDS

    # The module-CLI parser is built inline in repro.traces.ingest.main;
    # mirror it here from the same constants so the table is checked
    # against the real defaults.
    p = argparse.ArgumentParser(prog="python -m repro.traces.ingest")
    p.add_argument("archives", nargs="+")
    p.add_argument("-o", "--out", required=True)
    p.add_argument("--chunk-records", type=int, default=DEFAULT_CHUNK_RECORDS)
    return p


SURFACES = {
    "repro-calibrate reference": calibrate_parser,
    "Ingest CLI reference": _ingest_parser,
}


def parse_doc(text: str) -> dict[str, dict[str, str]]:
    """``{section title: {documented flag: row text}}`` for known sections."""
    tables: dict[str, dict[str, str]] = {title: {} for title in SURFACES}
    section: str | None = None
    for line in text.splitlines():
        s = SECTION.match(line)
        if s:
            section = s.group("title")
            continue
        if section in tables:
            f = FLAG_ROW.match(line)
            if f:
                tables[section][f.group("flag")] = f.group("rest")
    return tables


def check_surface(title: str, parser_factory, doc_flags: dict[str, str]) -> list[str]:
    problems: list[str] = []
    if not doc_flags:
        return [f"DATA.md section {title!r} is missing or has no flag table"]
    actions = {
        opt: action
        for action in parser_factory()._actions
        for opt in action.option_strings
        if opt.startswith("--") and opt != "--help"
    }
    for flag in doc_flags:
        if flag not in actions:
            problems.append(f"{title}: DATA.md documents unknown flag {flag}")
    for flag, action in actions.items():
        if flag not in doc_flags:
            problems.append(f"{title}: flag {flag} missing from DATA.md")
        elif action.choices and action.nargs is None:
            documented = set(re.findall(r"`([^`]+)`", doc_flags[flag]))
            missing = [str(c) for c in action.choices if str(c) not in documented]
            if missing:
                problems.append(
                    f"{title}: {flag} choice(s) {', '.join(missing)} not "
                    f"mentioned in the DATA.md meaning column"
                )
    return problems


def main() -> int:
    if not DOC.exists():
        print(f"missing {DOC}")
        return 1
    tables = parse_doc(DOC.read_text(encoding="utf-8"))
    problems: list[str] = []
    for title, factory in SURFACES.items():
        problems.extend(check_surface(title, factory, tables[title]))

    if problems:
        print(f"DATA.md is out of sync with the ingest/refit CLIs ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        return 1
    n = sum(len(t) for t in tables.values())
    print(
        f"DATA.md OK: {n} CLI flags documented across {len(SURFACES)} "
        f"reference tables, all match the parsers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
