#!/usr/bin/env python
"""Keep ``docs/FLEET.md`` honest about the ``repro.fleet`` surface.

Checks, in both directions:

* every flag in FLEET.md's CLI-reference table exists on
  ``repro.fleet.cli.build_parser()``, and every parser flag is
  documented;
* every flag with a parser ``choices`` list (e.g. ``--engine``)
  mentions each accepted choice in its documented meaning — adding an
  engine selector without documenting it fails here;
* every report dataclass in the metrics glossary exists in
  ``repro.fleet.report``, every documented field exists on it, and every
  dataclass field appears in the glossary table;
* every glossary-eligible report dataclass has a glossary section.

Exits non-zero with a per-problem report when the doc and the code
drift. Run from the repository root (CI does):
``python tools/check_fleet_docs.py``.
"""

from __future__ import annotations

import dataclasses
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.fleet import report as fleet_report  # noqa: E402
from repro.fleet.cli import build_parser  # noqa: E402

DOC = REPO / "docs" / "FLEET.md"

#: ``## Section`` headings split the doc.
SECTION = re.compile(r"^##\s+(?P<title>.+?)\s*$")
#: ``### `ClassName```  headings in the metrics glossary.
CLASS_HEADING = re.compile(r"^###\s+`(?P<cls>\w+)`\s*$")
#: ``| `--flag` | ... |`` rows in the CLI-reference table.
FLAG_ROW = re.compile(r"^\|\s*`(?P<flag>--[a-z][a-z-]*)`\s*\|(?P<rest>.*)$")
#: ``| `field` | ... |`` rows in the glossary field tables.
FIELD_ROW = re.compile(r"^\|\s*`(?P<field>\w+)`\s*\|")


def parse_doc(text: str) -> tuple[dict[str, str], dict[str, list[str]]]:
    """(documented CLI flag -> row text, documented class -> field names)."""
    flags: dict[str, str] = {}
    classes: dict[str, list[str]] = {}
    section: str | None = None
    current_cls: str | None = None
    for line in text.splitlines():
        s = SECTION.match(line)
        if s:
            section = s.group("title")
            current_cls = None
            continue
        if section == "CLI reference":
            f = FLAG_ROW.match(line)
            if f:
                flags[f.group("flag")] = f.group("rest")
        elif section == "Metrics glossary":
            c = CLASS_HEADING.match(line)
            if c:
                current_cls = c.group("cls")
                classes[current_cls] = []
                continue
            if current_cls is not None:
                f = FIELD_ROW.match(line)
                if f and f.group("field") != "field":
                    classes[current_cls].append(f.group("field"))
    return flags, classes


def main() -> int:
    if not DOC.exists():
        print(f"missing {DOC}")
        return 1
    doc_flags, doc_classes = parse_doc(DOC.read_text(encoding="utf-8"))
    problems: list[str] = []

    actions = {
        opt: action
        for action in build_parser()._actions
        for opt in action.option_strings
        if opt.startswith("--") and opt != "--help"
    }
    for flag in doc_flags:
        if flag not in actions:
            problems.append(f"FLEET.md documents unknown repro-fleet flag {flag}")
    for flag, action in actions.items():
        if flag not in doc_flags:
            problems.append(f"repro-fleet flag {flag} missing from FLEET.md")
        elif action.choices and action.nargs is None:
            # A scalar choices-flag's documented meaning must name every
            # accepted value (in backticks) — e.g. --engine must list
            # auto/event/vector/fused. Multi-valued cohort filters
            # (--region, --size) describe their domain in prose instead.
            documented = set(re.findall(r"`([^`]+)`", doc_flags[flag]))
            missing = [str(c) for c in action.choices if str(c) not in documented]
            if missing:
                problems.append(
                    f"{flag}: choice(s) {', '.join(missing)} not mentioned "
                    f"in the FLEET.md meaning column"
                )

    real_classes = {
        name: [f.name for f in dataclasses.fields(getattr(fleet_report, name))]
        for name in fleet_report.__all__
    }
    for name, doc_fields in doc_classes.items():
        if name not in real_classes:
            problems.append(f"FLEET.md documents unknown report class {name!r}")
            continue
        for f in doc_fields:
            if f not in real_classes[name]:
                problems.append(f"{name}: documented field {f!r} does not exist")
        for f in real_classes[name]:
            if f not in doc_fields:
                problems.append(f"{name}: field {f!r} missing from FLEET.md")
    for name in real_classes:
        if name not in doc_classes:
            problems.append(f"report class {name} is not documented in FLEET.md")

    if problems:
        print(f"FLEET.md is out of sync with repro.fleet ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"FLEET.md OK: {len(doc_flags)} CLI flags and "
        f"{len(doc_classes)} report classes documented, all match repro.fleet"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
