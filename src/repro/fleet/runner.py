"""Run a fleet: fan N service runs through ``run_batch``, assemble the
fleet report.

The fleet layer adds no execution machinery of its own — every service
run goes through :func:`repro.runtime.run_batch`, so fleets inherit the
process pool (``jobs``), the crash-safe run ledger (``ledger``/
``resume``), and ``engine="auto"`` vector/event routing unchanged. All
fleet-specific work (active-window proration, the shared spare pool, the
correlation summary) is deterministic post-processing of the batch's
results, which is why a :class:`~repro.fleet.report.FleetReport` is
byte-identical at any worker count and on either engine.

Churn is modeled by **steady-state proration**: a mid-horizon service is
simulated over the full horizon (keeping it on the shared catalog) and
its cost/downtime are scaled by the fraction of the horizon it was
active, while its forced migrations are filtered to the active window.
Rates (normalized cost %, unavailability %) are unaffected by proration.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.report import (
    CorrelationReport,
    FleetReport,
    ServiceReport,
    SparePoolReport,
)
from repro.fleet.spares import SharedSparePool
from repro.fleet.spec import FleetSpec
from repro.pool.spares import spare_requirement
from repro.units import SECONDS_PER_HOUR

__all__ = ["run_fleet"]


def run_fleet(
    spec: FleetSpec,
    *,
    jobs: int = 1,
    engine: str = "auto",
    ledger: Optional[object] = None,
    resume: bool = False,
    verify: bool = False,
) -> FleetReport:
    """Simulate every service in ``spec`` and distil the fleet report.

    ``jobs``/``engine``/``ledger``/``resume`` pass straight through to
    :func:`repro.runtime.run_batch`. ``verify=True`` additionally runs
    the fleet invariant oracles (:func:`repro.testkit.oracles.verify_fleet`)
    on the finished report and raises
    :class:`~repro.errors.InvariantViolation` if any fail.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    # Imported lazily: repro.runtime is heavy and fleet specs are cheap.
    from repro.runtime import run_batch

    batch = run_batch(
        list(spec.run_specs()), jobs=jobs, ledger=ledger, resume=resume, engine=engine
    )
    results = list(batch.results)
    report = assemble_report(spec, results)
    if verify:
        # Imported lazily: the testkit builds on this module.
        from repro.testkit.oracles import verify_fleet

        verify_fleet(spec, report, results).raise_on_failure()
    return report


def assemble_report(spec: FleetSpec, results: Sequence) -> FleetReport:
    """Deterministic post-processing: batch results -> :class:`FleetReport`.

    Split out from :func:`run_fleet` so tests and oracles can re-derive a
    report from the same results without re-simulating.
    """
    if len(results) != len(spec.services):
        raise ConfigurationError(
            f"got {len(results)} results for {len(spec.services)} services"
        )
    horizon = spec.horizon_s

    # Forced-migration instants clipped to each service's active window.
    active_forced: List[Tuple[float, str]] = []
    per_service_forced: List[List[float]] = []
    for svc, res in zip(spec.services, results):
        a, d = spec.active_window(svc)
        times = [t for t in res.forced_times if a <= t < d]
        per_service_forced.append(times)
        active_forced.extend((t, svc.name) for t in times)

    pool = SharedSparePool(
        capacity=spec.spare_capacity,
        handover_window_s=spec.handover_window_s,
        quotas={svc.name: svc.spare_quota for svc in spec.services},
    )
    outcome = pool.replay(active_forced)

    total_cost = 0.0
    baseline_cost = 0.0
    downtimes: List[float] = []
    service_reports: List[ServiceReport] = []
    meeting = 0
    for svc, res, times in zip(spec.services, results, per_service_forced):
        a, d = spec.active_window(svc)
        frac = (d - a) / horizon
        scale = frac * svc.weight
        cost = res.total_cost * scale
        base = res.baseline_cost * scale
        down = res.downtime_s * frac
        total_cost += cost
        baseline_cost += base
        downtimes.append(down)
        met = res.unavailability_percent <= 100.0 - svc.availability_target_percent
        meeting += met
        stats = outcome.per_service.get(svc.name)
        service_reports.append(ServiceReport(
            name=svc.name,
            label=res.label,
            strategy_kind=svc.strategy.kind,
            availability_target_percent=svc.availability_target_percent,
            arrival_s=a,
            departure_s=d,
            active_fraction=frac,
            cost=cost,
            baseline_cost=base,
            normalized_cost_percent=res.normalized_cost_percent,
            unavailability_percent=res.unavailability_percent,
            downtime_s=down,
            forced_migrations=len(times),
            target_met=bool(met),
            spare_quota=svc.spare_quota,
            spare_claims=stats.claims if stats else 0,
            spare_hits=stats.hits if stats else 0,
            spare_misses=stats.misses if stats else 0,
        ))

    down_arr = np.asarray(downtimes, dtype=float)
    norm = 100.0 * total_cost / baseline_cost if baseline_cost else 0.0
    return FleetReport(
        seed=spec.seed,
        horizon_hours=horizon / SECONDS_PER_HOUR,
        n_markets=spec.n_markets,
        n_services=len(spec.services),
        n_initial=sum(1 for s in spec.services if s.arrival_s == 0.0),
        n_arrived=sum(1 for s in spec.services if s.arrival_s > 0.0),
        n_departed=sum(
            1 for s in spec.services if spec.active_window(s)[1] < horizon
        ),
        total_cost=total_cost,
        baseline_cost=baseline_cost,
        normalized_cost_percent=norm,
        savings_percent=100.0 - norm,
        downtime_p50_s=float(np.percentile(down_arr, 50)),
        downtime_p99_s=float(np.percentile(down_arr, 99)),
        downtime_max_s=float(down_arr.max()),
        mean_unavailability_percent=float(np.mean(
            [r.unavailability_percent for r in results]
        )),
        services_meeting_target=int(meeting),
        spare_pool=SparePoolReport(
            capacity=outcome.capacity,
            handover_window_s=outcome.handover_window_s,
            claims=outcome.claims,
            hits=outcome.hits,
            misses=outcome.misses,
            quota_misses=outcome.quota_misses,
            exhausted_misses=outcome.exhausted_misses,
            hit_rate=outcome.hit_rate,
            peak_in_use=outcome.peak_in_use,
            unconstrained_requirement=spare_requirement(
                per_service_forced, spec.handover_window_s
            ),
        ),
        correlation=_correlation(active_forced, spec.handover_window_s),
        services=tuple(service_reports),
    )


def _correlation(
    forced: List[Tuple[float, str]], window_s: float
) -> CorrelationReport:
    """Summarise cross-service revocation correlation.

    ``peak_concurrent_forced`` is the sizing sweep over all instants;
    ``co_revocation_fraction`` counts forced migrations with at least one
    *other* service's forced migration within one handover window.
    """
    from repro.pool.spares import concurrent_events

    if not forced:
        return CorrelationReport(
            total_forced=0,
            peak_concurrent_forced=0,
            co_revocation_fraction=0.0,
            services_with_forced=0,
        )
    ordered = sorted(forced)
    times = [t for t, _ in ordered]
    names = [n for _, n in ordered]
    co = 0
    for i, (t, name) in enumerate(ordered):
        lo = bisect_left(times, t - window_s)
        hi = bisect_right(times, t + window_s)
        if any(names[j] != name for j in range(lo, hi) if j != i):
            co += 1
    return CorrelationReport(
        total_forced=len(ordered),
        peak_concurrent_forced=concurrent_events(times, window_s),
        co_revocation_fraction=co / len(ordered),
        services_with_forced=len(set(names)),
    )
