"""Fleet-scale multi-tenant simulation: N services, one shared spot market.

The paper's SpotCheck design is only economically interesting at
derivative-cloud scale: a provider hosting *many* tenants on shared spot
capacity, absorbing correlated revocations with pooled warm spares. This
package layers that fleet view on the reproduction:

* :class:`~repro.fleet.spec.ServiceSpec` / :class:`~repro.fleet.spec.FleetSpec`
  describe N heterogeneous services (distinct strategies, bidding policies,
  availability targets, spare quotas, arrival/departure times) that all
  price against **one shared market**: every service's run resolves the
  same seeded trace catalog, so a price spike that revokes one tenant
  revokes every tenant bidding in that market at the same instant —
  correlated revocation storms emerge from the shared traces, exactly as
  in :class:`repro.pool.SpotPool`, but at ``run_batch`` scale;
* :class:`~repro.fleet.spares.SharedSparePool` generalizes
  :mod:`repro.pool.spares` to concurrent multi-service claim/return with
  per-service quotas and hit/miss accounting;
* :func:`~repro.fleet.runner.run_fleet` routes the fleet through
  :func:`repro.runtime.run_batch`, so fleets inherit the process pool,
  crash-safe ledger resume, and ``--engine auto`` vector/event routing;
* :class:`~repro.fleet.report.FleetReport` distils the fleet-level story:
  aggregate cost vs the all-on-demand baseline, per-service P99 downtime,
  spare-pool hit rate, and a revocation-correlation summary.

See ``docs/FLEET.md`` for the model, CLI walkthrough, and metrics glossary.
"""

from repro.fleet.report import (
    CorrelationReport,
    FleetReport,
    ServiceReport,
    SparePoolReport,
)
from repro.fleet.runner import run_fleet
from repro.fleet.spares import SharedSparePool, SpareEvent, SparePoolOutcome
from repro.fleet.spec import FleetSpec, ServiceSpec, synthesize_fleet

__all__ = [
    "CorrelationReport",
    "FleetReport",
    "FleetSpec",
    "ServiceReport",
    "ServiceSpec",
    "SharedSparePool",
    "SpareEvent",
    "SparePoolOutcome",
    "SparePoolReport",
    "run_fleet",
    "synthesize_fleet",
]
