"""Fleet descriptions: many heterogeneous services over one shared market.

A :class:`ServiceSpec` is one tenant: its hosting strategy, bidding
policy, migration mechanism, availability target, spare quota, and active
window within the fleet horizon. A :class:`FleetSpec` bundles N of them
with the *shared* market identity (seed, horizon, regions, sizes) and the
shared warm-spare pool's parameters.

Shared-market semantics
-----------------------
Spot prices are exogenous to tenants in this model, so "one shared
market" means: every service's run resolves the **identical** seeded
trace catalog. :meth:`FleetSpec.run_specs` therefore pins every
per-service :class:`~repro.runtime.RunSpec` to the fleet's seed, horizon,
regions, and sizes — the runtime's catalog cache then serves one catalog
to all N runs (one generation, shared-memory fan-out), and a price spike
revokes every tenant bidding in that market at the same simulated
instant. Heterogeneity lives entirely in the fields *outside* the
catalog key: strategy, bidding, mechanism, startup jitter, disk
footprint, label. Two services with identical configurations are exact
twins by construction — the serial executor's dynamics-signature dedupe
collapses them into one simulation, which is a feature, not a bug.

Churn
-----
:func:`synthesize_fleet` draws a seeded arrival process: an initial
cohort active for the whole horizon plus Poisson arrivals that join at a
uniform instant and leave after an exponential lifetime. Mid-horizon
services are simulated full-horizon and prorated to their active window
by the runner (steady-state proration — see ``docs/FLEET.md``), keeping
every run on the shared catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from repro.core.bidding import BiddingPolicy, ProactiveBidding, ReactiveBidding
from repro.errors import ConfigurationError
from repro.pool.spares import DEFAULT_HANDOVER_WINDOW_S
from repro.runtime.spec import RunSpec, StrategySpec
from repro.traces.calibration import ALL_REGIONS, SIZES
from repro.traces.catalog import MarketKey
from repro.units import days
from repro.vm.mechanisms import Mechanism, MechanismParams, TYPICAL_PARAMS

__all__ = ["ServiceSpec", "FleetSpec", "synthesize_fleet"]


@dataclass(frozen=True)
class ServiceSpec:
    """One tenant service in a fleet.

    ``arrival_s``/``departure_s`` bound the service's active window inside
    the fleet horizon (``departure_s=None`` means it runs to the end).
    ``spare_quota`` caps how many shared warm spares the service may hold
    at once; ``weight`` scales its contribution to fleet-aggregate cost
    (a stand-in for footprint size).
    """

    name: str
    strategy: StrategySpec
    bidding: BiddingPolicy = field(default_factory=ProactiveBidding)
    mechanism: Mechanism = Mechanism.CKPT_LR_LIVE
    params: MechanismParams = TYPICAL_PARAMS
    availability_target_percent: float = 99.99
    spare_quota: int = 1
    weight: float = 1.0
    arrival_s: float = 0.0
    departure_s: Optional[float] = None
    startup_cv: float = 0.25
    service_disk_gib: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("service needs a name")
        if self.spare_quota < 0:
            raise ConfigurationError(f"{self.name}: spare quota must be >= 0")
        if self.weight <= 0:
            raise ConfigurationError(f"{self.name}: weight must be positive")
        if self.arrival_s < 0:
            raise ConfigurationError(f"{self.name}: arrival must be >= 0")
        if not 0 < self.availability_target_percent <= 100:
            raise ConfigurationError(
                f"{self.name}: availability target must be in (0, 100]"
            )

    def with_(self, **kw) -> "ServiceSpec":
        """A copy with fields replaced."""
        return replace(self, **kw)


@dataclass(frozen=True)
class FleetSpec:
    """N services plus the shared market and spare pool they live on."""

    services: Tuple[ServiceSpec, ...]
    seed: int = 0
    horizon_s: float = days(30)
    regions: tuple = ALL_REGIONS
    sizes: tuple = SIZES
    #: Warm on-demand spares shared by the whole fleet.
    spare_capacity: int = 4
    #: How long one forced migration occupies a spare (grace + startup +
    #: restore).
    handover_window_s: float = DEFAULT_HANDOVER_WINDOW_S

    def __post_init__(self) -> None:
        if not self.services:
            raise ConfigurationError("fleet needs at least one service")
        names = [s.name for s in self.services]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate service names: {dupes}")
        if self.spare_capacity < 0:
            raise ConfigurationError("spare capacity must be >= 0")
        if self.handover_window_s <= 0:
            raise ConfigurationError("handover window must be positive")
        for svc in self.services:
            a, d = self.active_window(svc)
            if not a < d:
                raise ConfigurationError(
                    f"{svc.name}: active window [{a}, {d}) is empty"
                )
            if d > self.horizon_s:
                raise ConfigurationError(
                    f"{svc.name}: departs at {d} beyond horizon {self.horizon_s}"
                )

    def __len__(self) -> int:
        return len(self.services)

    @property
    def n_markets(self) -> int:
        return len(self.regions) * len(self.sizes)

    def active_window(self, svc: ServiceSpec) -> Tuple[float, float]:
        """``[arrival, departure)`` of one service, departure defaulted to
        the horizon."""
        dep = self.horizon_s if svc.departure_s is None else svc.departure_s
        return (svc.arrival_s, dep)

    def service_by_name(self, name: str) -> ServiceSpec:
        for svc in self.services:
            if svc.name == name:
                return svc
        raise ConfigurationError(f"no service named {name!r} in fleet")

    def run_specs(self) -> Tuple[RunSpec, ...]:
        """One :class:`~repro.runtime.RunSpec` per service, all pinned to
        the shared catalog identity (seed/horizon/regions/sizes)."""
        return tuple(
            RunSpec(
                strategy=svc.strategy,
                bidding=svc.bidding,
                mechanism=svc.mechanism,
                params=svc.params,
                seed=self.seed,
                horizon_s=self.horizon_s,
                regions=tuple(self.regions),
                sizes=tuple(self.sizes),
                startup_cv=svc.startup_cv,
                service_disk_gib=svc.service_disk_gib,
                label=f"fleet/{svc.name}",
            )
            for svc in self.services
        )

    def with_(self, **kw) -> "FleetSpec":
        """A copy with fields replaced."""
        return replace(self, **kw)


# ----------------------------------------------------------------- synthesis
#: Availability-target tiers tenants are drawn from (three/three-and-a-
#: half/four nines).
_TARGET_TIERS = (99.9, 99.95, 99.99)

#: Proactive bid multipliers below the paper's 4x cap that synthesis
#: cycles through.
_BID_KS = (2.5, 3.0, 3.5, 4.0)


def synthesize_fleet(
    n_services: int,
    seed: int = 0,
    horizon_s: float = days(30),
    regions: tuple = ALL_REGIONS,
    sizes: tuple = SIZES,
    churn_per_week: float = 0.0,
    spare_capacity: Optional[int] = None,
    default_spare_quota: int = 1,
    handover_window_s: float = DEFAULT_HANDOVER_WINDOW_S,
) -> FleetSpec:
    """Draw a heterogeneous fleet from one seed, deterministically.

    The initial cohort of ``n_services`` tenants is active for the whole
    horizon; ``churn_per_week`` adds a Poisson stream of mid-horizon
    arrivals (uniform arrival instant, exponential lifetime with mean a
    quarter of the horizon) so the fleet grows and shrinks over time.
    Heterogeneity is drawn per tenant: the strategy family comes from the
    :func:`repro.core.registry.synthesis_cohort` — every registered family
    with a positive ``synthesis_weight``, normalized into a cumulative
    distribution in sorted-kind order — then proactive bid multipliers
    from ``2.5-4.0`` or reactive bidding, mechanism, availability-target
    tier, and spare quota. Registering a new strategy family with a
    weight (see :func:`repro.core.registry.register_strategy`) makes it
    appear in synthesized fleets with no change here.

    ``spare_capacity=None`` sizes the shared pool at 10 % of the initial
    cohort (at least 2) — the derivative-cloud rule of thumb the ext-pool
    experiment motivates.
    """
    if n_services < 1:
        raise ConfigurationError("need at least one service")
    if churn_per_week < 0:
        raise ConfigurationError("churn rate must be >= 0")
    regions = tuple(regions)
    sizes = tuple(sizes)
    markets = tuple(MarketKey(r, s) for r in regions for s in sizes)
    rng = np.random.default_rng(seed)
    if spare_capacity is None:
        spare_capacity = max(2, int(np.ceil(0.10 * n_services)))

    weeks = horizon_s / days(7)
    n_arrivals = int(rng.poisson(churn_per_week * weeks)) if churn_per_week else 0

    services = []
    for i in range(n_services + n_arrivals):
        churned = i >= n_services
        services.append(
            _draw_service(
                rng,
                name=f"svc-{i:04d}",
                markets=markets,
                regions=regions,
                horizon_s=horizon_s,
                churned=churned,
                default_spare_quota=default_spare_quota,
            )
        )
    return FleetSpec(
        services=tuple(services),
        seed=seed,
        horizon_s=horizon_s,
        regions=regions,
        sizes=sizes,
        spare_capacity=int(spare_capacity),
        handover_window_s=handover_window_s,
    )


def _draw_strategy(
    rng: np.random.Generator, market: MarketKey, regions: tuple
) -> StrategySpec:
    """Draw one strategy family from the registry's synthesis cohort.

    The cohort is every registered family with a positive
    ``synthesis_weight``, walked in sorted-kind order so the cumulative
    distribution — and therefore the whole fleet — is a pure function of
    the seed and the registered weight table. Exactly one uniform draw
    selects the family; any further draws belong to the family's own
    ``synthesize`` callable.
    """
    from repro.core.registry import synthesis_cohort

    cohort = synthesis_cohort()
    if not cohort:
        raise ConfigurationError(
            "no registered strategy has a positive synthesis weight"
        )
    total = sum(info.synthesis_weight for info in cohort)
    roll = float(rng.random()) * total
    acc = 0.0
    chosen = cohort[-1]
    for info in cohort:
        acc += info.synthesis_weight
        if roll < acc:
            chosen = info
            break
    spec = chosen.synthesize(rng, market, tuple(regions))
    if not isinstance(spec, StrategySpec):
        raise ConfigurationError(
            f"{chosen.kind}: synthesize must return a StrategySpec, "
            f"got {type(spec).__name__}"
        )
    return spec


def _draw_service(
    rng: np.random.Generator,
    name: str,
    markets: Tuple[MarketKey, ...],
    regions: tuple,
    horizon_s: float,
    churned: bool,
    default_spare_quota: int,
) -> ServiceSpec:
    """One tenant's heterogeneity draws, in a fixed order (determinism)."""
    market = markets[int(rng.integers(len(markets)))]
    strategy = _draw_strategy(rng, market, regions)
    if float(rng.random()) < 0.8:
        bidding: BiddingPolicy = ProactiveBidding(
            k=_BID_KS[int(rng.integers(len(_BID_KS)))]
        )
    else:
        bidding = ReactiveBidding()
    mechanism = (
        Mechanism.CKPT_LR_LIVE if float(rng.random()) < 0.7 else Mechanism.CKPT_LR
    )
    target = _TARGET_TIERS[int(rng.integers(len(_TARGET_TIERS)))]
    quota = default_spare_quota + (1 if float(rng.random()) < 0.2 else 0)
    arrival, departure = 0.0, None
    if churned:
        arrival = float(rng.uniform(0.0, 0.8 * horizon_s))
        lifetime = float(rng.exponential(horizon_s / 4.0))
        lifetime = max(lifetime, horizon_s / 50.0)
        departure = min(horizon_s, arrival + lifetime)
    return ServiceSpec(
        name=name,
        strategy=strategy,
        bidding=bidding,
        mechanism=mechanism,
        availability_target_percent=target,
        spare_quota=quota,
        arrival_s=arrival,
        departure_s=departure,
    )
