"""``repro-fleet`` — simulate a multi-tenant fleet on the shared spot market.

Examples::

    repro-fleet                                   # 100 services, 20 markets
    repro-fleet --services 500 --jobs 4
    repro-fleet --churn-per-week 8 --days 60
    repro-fleet --spare-capacity 6 --spare-quota 2
    repro-fleet --region us-east-1a us-east-1b --size small medium
    repro-fleet --report /tmp/fleet.json --verify
    repro-fleet --fast                            # CI smoke: small and quick

The fleet is synthesized deterministically from ``--seed`` (see
:func:`repro.fleet.spec.synthesize_fleet`); the report is byte-identical
at any ``--jobs`` value and across ``--engine event``/``vector``/
``fused``. See
``docs/FLEET.md`` for the model and the metrics glossary.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.tables import Table
from repro.fleet.runner import run_fleet
from repro.fleet.spec import synthesize_fleet
from repro.runtime import collect_telemetry
from repro.traces.calibration import ALL_REGIONS, SIZES
from repro.units import days

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Host a fleet of services on one shared simulated spot market.",
    )
    p.add_argument("--services", type=int, default=100, metavar="N",
                   help="initial cohort size (active for the whole horizon)")
    p.add_argument("--seed", type=int, default=0,
                   help="fleet synthesis + market seed (one seed, one world)")
    p.add_argument("--days", type=float, default=30.0, help="fleet horizon")
    p.add_argument("--region", nargs="+", default=list(ALL_REGIONS),
                   choices=ALL_REGIONS, metavar="AZ",
                   help="availability zone(s) the fleet bids in")
    p.add_argument("--size", nargs="+", default=list(SIZES), choices=SIZES,
                   help="instance size(s) the fleet bids on")
    p.add_argument("--churn-per-week", type=float, default=0.0, metavar="R",
                   help="expected mid-horizon service arrivals per week "
                   "(each later departs; 0 = static fleet)")
    p.add_argument("--spare-capacity", type=int, default=None, metavar="N",
                   help="shared warm-spare pool size "
                   "(default: 10%% of the initial cohort, at least 2)")
    p.add_argument("--spare-quota", type=int, default=1, metavar="N",
                   help="base per-service cap on concurrently held spares")
    p.add_argument("--handover-s", type=float, default=360.0, metavar="S",
                   help="seconds one forced migration occupies a spare")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the per-service fan-out "
                   "(default 1 = serial; the report is byte-identical)")
    p.add_argument("--engine", choices=("auto", "event", "vector", "fused"),
                   default="auto",
                   help="execution engine: 'auto' (default) vectorizes and "
                   "fuses eligible runs, 'event'/'vector' force one "
                   "per-run engine, 'fused' forces cross-run fusion — "
                   "the report is bit-identical either way")
    p.add_argument("--ledger", metavar="PATH", default=None,
                   help="journal each completed service run to a crash-safe "
                   "run ledger at PATH (a directory gets one file per batch)")
    p.add_argument("--resume", action="store_true",
                   help="with --ledger: replay services already journaled "
                   "and run only the remainder (byte-identical report)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="also write the full FleetReport as sorted-key JSON "
                   "to PATH (the byte-identity artifact)")
    p.add_argument("--verify", action="store_true",
                   help="run the fleet invariant oracles on the finished "
                   "report (spare-pool conservation, proration accounting)")
    p.add_argument("--top", type=int, default=5, metavar="N",
                   help="list the N services with the most downtime (0 = none)")
    p.add_argument("--fast", action="store_true",
                   help="smoke run: at most 16 services over 7 days")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.services < 1:
        print("--services must be >= 1", file=sys.stderr)
        return 2
    if args.resume and args.ledger is None:
        print("--resume needs --ledger PATH", file=sys.stderr)
        return 2
    if args.fast:
        args.services = min(args.services, 16)
        args.days = min(args.days, 7.0)
    spec = synthesize_fleet(
        n_services=args.services,
        seed=args.seed,
        horizon_s=days(args.days),
        regions=tuple(args.region),
        sizes=tuple(args.size),
        churn_per_week=args.churn_per_week,
        spare_capacity=args.spare_capacity,
        default_spare_quota=args.spare_quota,
        handover_window_s=args.handover_s,
    )
    with collect_telemetry() as tel:
        report = run_fleet(
            spec,
            jobs=args.jobs,
            engine=args.engine,
            ledger=args.ledger,
            resume=args.resume,
            verify=args.verify,
        )
    print(report.summary())
    # Execution telemetry is a footer, not part of the report: the report
    # itself stays byte-identical across engines and worker counts.
    if tel.batches:
        print(f"[runtime: {tel.summary()}]")
    if args.top > 0:
        worst = sorted(
            report.services, key=lambda s: (-s.downtime_s, s.name)
        )[: args.top]
        t = Table(
            headers=("service", "strategy", "norm cost %", "unavail %",
                     "downtime (s)", "forced", "spare hits/claims", "target"),
            title=f"top {len(worst)} services by downtime",
        )
        for s in worst:
            t.add_row(
                s.name, s.strategy_kind, s.normalized_cost_percent,
                s.unavailability_percent, s.downtime_s, s.forced_migrations,
                f"{s.spare_hits}/{s.spare_claims}",
                "met" if s.target_met else "MISSED",
            )
        print()
        print(t.render())
    if args.report is not None:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json(indent=2) + "\n")
        print(f"\nreport: written to {path}")
    if args.verify:
        print("fleet invariant oracles green")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
