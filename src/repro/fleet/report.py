"""Fleet-level result records: the report ``repro-fleet`` prints and tests
pin.

A :class:`FleetReport` is a pure value assembled by
:func:`repro.fleet.runner.run_fleet` from deterministic inputs, so its
:meth:`FleetReport.to_json` rendering is byte-identical at any ``--jobs``
value and across the event/vector engines — the fleet-level extension of
the runtime layer's determinism contract.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "ServiceReport",
    "SparePoolReport",
    "CorrelationReport",
    "FleetReport",
]


@dataclass(frozen=True)
class ServiceReport:
    """One tenant's outcome, prorated to its active window."""

    name: str
    label: str
    strategy_kind: str
    availability_target_percent: float
    arrival_s: float
    departure_s: float
    #: Share of the fleet horizon the service was active.
    active_fraction: float
    cost: float
    baseline_cost: float
    normalized_cost_percent: float
    unavailability_percent: float
    downtime_s: float
    forced_migrations: int
    target_met: bool
    spare_quota: int
    spare_claims: int
    spare_hits: int
    spare_misses: int


@dataclass(frozen=True)
class SparePoolReport:
    """Shared warm-spare pool accounting over the whole fleet run."""

    capacity: int
    handover_window_s: float
    claims: int
    hits: int
    misses: int
    quota_misses: int
    exhausted_misses: int
    hit_rate: float
    peak_in_use: int
    #: Spares the fleet's worst burst would have needed with *no* capacity
    #: limit and no quotas — the :func:`repro.pool.spares.spare_requirement`
    #: sizing answer, for comparison against ``capacity``.
    unconstrained_requirement: int


@dataclass(frozen=True)
class CorrelationReport:
    """How correlated the fleet's forced revocations were.

    Services bidding in the same market are revoked by the same price
    spike; this summary quantifies the resulting storms, which are what
    the shared spare pool has to absorb.
    """

    total_forced: int
    #: Most forced migrations in flight at once (within one handover
    #: window of each other).
    peak_concurrent_forced: int
    #: Fraction of forced migrations that overlapped at least one other
    #: *service's* forced migration.
    co_revocation_fraction: float
    #: Distinct services that experienced at least one forced migration.
    services_with_forced: int


@dataclass(frozen=True)
class FleetReport:
    """The fleet-level story of one :func:`~repro.fleet.runner.run_fleet`."""

    seed: int
    horizon_hours: float
    n_markets: int
    n_services: int
    n_initial: int
    n_arrived: int
    n_departed: int
    #: Active-window weighted fleet spend and its all-on-demand baseline.
    total_cost: float
    baseline_cost: float
    normalized_cost_percent: float
    savings_percent: float
    #: Distribution of per-service downtime (prorated seconds).
    downtime_p50_s: float
    downtime_p99_s: float
    downtime_max_s: float
    mean_unavailability_percent: float
    services_meeting_target: int
    spare_pool: SparePoolReport
    correlation: CorrelationReport
    services: Tuple[ServiceReport, ...]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready nested dict (dataclasses expanded recursively)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int | None = None) -> str:
        """Canonical JSON rendering — sorted keys, deterministic bytes."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Multi-line human rendering of the fleet-level metrics."""
        sp = self.spare_pool
        co = self.correlation
        lines = [
            f"fleet: {self.n_services} services ({self.n_initial} initial, "
            f"{self.n_arrived} arrived, {self.n_departed} departed) over "
            f"{self.n_markets} markets, {self.horizon_hours:.0f} h",
            f"cost: ${self.total_cost:.2f} = {self.normalized_cost_percent:.1f}% "
            f"of the ${self.baseline_cost:.2f} all-on-demand baseline "
            f"({self.savings_percent:.1f}% saved)",
            f"downtime per service: p50 {self.downtime_p50_s:.1f} s, "
            f"p99 {self.downtime_p99_s:.1f} s, max {self.downtime_max_s:.1f} s; "
            f"mean unavailability {self.mean_unavailability_percent:.4f}%",
            f"availability targets met: {self.services_meeting_target}"
            f"/{self.n_services}",
            f"spare pool: {sp.capacity} spares, {sp.claims} claims, "
            f"{sp.hits} hits ({100.0 * sp.hit_rate:.1f}%), "
            f"{sp.quota_misses} quota / {sp.exhausted_misses} exhausted misses, "
            f"peak {sp.peak_in_use} in use "
            f"(unconstrained sizing: {sp.unconstrained_requirement})",
            f"correlation: {co.total_forced} forced migrations across "
            f"{co.services_with_forced} services, peak {co.peak_concurrent_forced} "
            f"concurrent, {100.0 * co.co_revocation_fraction:.1f}% co-revoked",
        ]
        return "\n".join(lines)
