"""Cross-service shared warm-spare pool with claim/return semantics.

:mod:`repro.pool.spares` answers the *sizing* question — how many spares
would have been enough. This module answers the *operational* one: given
a pool of fixed capacity shared by many tenants, which forced migrations
actually get a warm spare?

Semantics (documented in ``docs/FLEET.md``):

* a forced migration **claims** one spare at its start instant and
  **returns** it one handover window later;
* returns are processed before claims at the same instant (half-open
  occupancy, matching the sizing sweep in :mod:`repro.pool.spares`);
* a claim is **granted** (a hit) only if the pool has a free spare *and*
  the service is below its per-service quota; otherwise it is a miss,
  recorded as ``quota`` or ``pool-exhausted``;
* simultaneous claims are ordered by service name — deterministic, and
  independent of how the runs were scheduled across worker processes.

A miss is not an outage: the simulation already models the tenant
falling back to a cold on-demand acquisition inside the grace window.
The pool quantifies how often the fleet *would have* handed over to a
warm spare instead — the hit rate is the derivative-cloud operator's
quality metric, and the miss count bounds the extra cold-start latency
tenants absorbed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.pool.spares import DEFAULT_HANDOVER_WINDOW_S

__all__ = ["SpareEvent", "SparePoolOutcome", "SharedSparePool"]

#: Miss reasons.
MISS_QUOTA = "quota"
MISS_EXHAUSTED = "pool-exhausted"


@dataclass(frozen=True)
class SpareEvent:
    """One claim's outcome in the shared pool's event log."""

    t: float
    service: str
    granted: bool
    #: ``""`` for a hit, else :data:`MISS_QUOTA` or :data:`MISS_EXHAUSTED`.
    miss_reason: str
    #: Spares held by the whole fleet immediately after this claim.
    in_use_after: int


@dataclass(frozen=True)
class ServiceSpareStats:
    """Per-service claim accounting."""

    claims: int
    hits: int
    misses: int


@dataclass(frozen=True)
class SparePoolOutcome:
    """The pool's full accounting over one fleet run."""

    capacity: int
    handover_window_s: float
    events: Tuple[SpareEvent, ...]
    claims: int
    hits: int
    misses: int
    quota_misses: int
    exhausted_misses: int
    peak_in_use: int
    per_service: Dict[str, ServiceSpareStats] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.claims if self.claims else 1.0


class SharedSparePool:
    """A fixed pool of warm on-demand spares shared by many services.

    ``quotas`` maps service name to its maximum concurrently held spares;
    services absent from the map get ``default_quota``. The pool is a
    pure replay over a claim sequence — no hidden state between calls —
    so outcomes are deterministic functions of their inputs.
    """

    def __init__(
        self,
        capacity: int,
        handover_window_s: float = DEFAULT_HANDOVER_WINDOW_S,
        quotas: Dict[str, int] | None = None,
        default_quota: int = 1,
    ) -> None:
        if capacity < 0:
            raise ConfigurationError("spare capacity must be >= 0")
        if handover_window_s <= 0:
            raise ConfigurationError("handover window must be positive")
        if default_quota < 0:
            raise ConfigurationError("default quota must be >= 0")
        for name, q in (quotas or {}).items():
            if q < 0:
                raise ConfigurationError(f"{name}: quota must be >= 0")
        self.capacity = int(capacity)
        self.handover_window_s = float(handover_window_s)
        self.quotas = dict(quotas or {})
        self.default_quota = int(default_quota)

    def quota_for(self, service: str) -> int:
        return self.quotas.get(service, self.default_quota)

    def replay(self, claims: Sequence[Tuple[float, str]]) -> SparePoolOutcome:
        """Run a ``(instant, service)`` claim sequence through the pool."""
        ordered = sorted(
            ((float(t), str(name)) for t, name in claims),
            key=lambda c: (c[0], c[1]),
        )
        releases: List[Tuple[float, str]] = []  # min-heap of (release_t, service)
        held: Dict[str, int] = {}
        in_use = 0
        peak = 0
        events: List[SpareEvent] = []
        hits = misses = quota_misses = exhausted_misses = 0
        per_claims: Dict[str, int] = {}
        per_hits: Dict[str, int] = {}
        for t, name in ordered:
            # Returns due at exactly t free their spare before this claim.
            while releases and releases[0][0] <= t:
                _, done = heapq.heappop(releases)
                held[done] -= 1
                in_use -= 1
            per_claims[name] = per_claims.get(name, 0) + 1
            if held.get(name, 0) >= self.quota_for(name):
                misses += 1
                quota_misses += 1
                events.append(SpareEvent(t, name, False, MISS_QUOTA, in_use))
                continue
            if in_use >= self.capacity:
                misses += 1
                exhausted_misses += 1
                events.append(SpareEvent(t, name, False, MISS_EXHAUSTED, in_use))
                continue
            hits += 1
            per_hits[name] = per_hits.get(name, 0) + 1
            held[name] = held.get(name, 0) + 1
            in_use += 1
            peak = max(peak, in_use)
            heapq.heappush(releases, (t + self.handover_window_s, name))
            events.append(SpareEvent(t, name, True, "", in_use))
        per_service = {
            name: ServiceSpareStats(
                claims=n,
                hits=per_hits.get(name, 0),
                misses=n - per_hits.get(name, 0),
            )
            for name, n in sorted(per_claims.items())
        }
        return SparePoolOutcome(
            capacity=self.capacity,
            handover_window_s=self.handover_window_s,
            events=tuple(events),
            claims=len(ordered),
            hits=hits,
            misses=misses,
            quota_misses=quota_misses,
            exhausted_misses=exhausted_misses,
            peak_in_use=peak,
            per_service=per_service,
        )
