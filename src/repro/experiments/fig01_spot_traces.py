"""Figure 1: spot prices of a small and a large server over a month.

The paper's Figure 1 shows month-long us-east price traces: long stretches
of a few cents punctuated by spikes — up to ~$0.5 on the small market and
$3+/hr on the large one — and notes the markets are "not strongly
correlated". We regenerate the same view from the calibrated process and
check those three properties.
"""

from __future__ import annotations

from repro.analysis.figures import sparkline
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig
from repro.traces.calibration import on_demand_price
from repro.traces.catalog import MarketKey, build_catalog
from repro.traces.statistics import summarize_trace, trace_correlation

EXPERIMENT_ID = "fig1"
TITLE = "Spot prices over a month (us-east-1a small & large)"


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    seed = cfg.effective_seeds()[0]
    cat = build_catalog(seed=seed, horizon=cfg.effective_horizon(), regions=("us-east-1a",))
    small = cat.trace(MarketKey("us-east-1a", "small"))
    large = cat.trace(MarketKey("us-east-1a", "large"))

    grid_s, ps = small.regular_grid(1800.0)
    _, pl = large.regular_grid(1800.0)
    report.add_artifact(
        "small  " + sparkline(list(ps)) + f"  (max ${small.max_price():.3f}/hr)"
    )
    report.add_artifact(
        "large  " + sparkline(list(pl)) + f"  (max ${large.max_price():.3f}/hr)"
    )

    t = Table(headers=("market", "mean $/hr", "max $/hr", "on-demand $/hr", "% time > od"))
    for trace, size in ((small, "small"), (large, "large")):
        od = on_demand_price("us-east-1a", size)
        s = summarize_trace(trace, od)
        t.add_row(size, s.mean_price, s.max_price, od, s.frac_above_od * 100)
    report.add_artifact(t.render())

    od_small = on_demand_price("us-east-1a", "small")
    od_large = on_demand_price("us-east-1a", "large")
    corr = trace_correlation(small, large)

    report.compare(
        "large-market peak price", large.max_price(), paper=3.0, unit="$/hr",
        expectation="spikes to ~$3/hr on a $0.24 market", holds=large.max_price() >= 1.0,
    )
    report.compare(
        "small mean price / on-demand", small.mean_price() / od_small * 100, unit="%",
        expectation="usually cheap: calm price well below on-demand",
        holds=small.mean_price() < 0.5 * od_small,
    )
    report.compare(
        "small-large correlation", corr, unit="",
        expectation="markets within a region not strongly correlated",
        holds=corr < 0.6,
    )
    report.compare(
        "large mean price / on-demand", large.mean_price() / od_large * 100, unit="%",
        expectation="calm price well below on-demand",
        holds=large.mean_price() < 0.5 * od_large,
    )
    return report
