"""Ablation: the revocation grace window.

The paper leans on EC2's (then-undocumented, later official) two-minute
warning: the final checkpoint increment flushes and the on-demand
replacement boots *inside* the window, so a forced migration's blackout is
just the restore. This sweep shrinks the window to zero and shows
unavailability climbing as first the startup overlap and then the
checkpoint flush fall out of it — quantifying how much the two-minute
warning is worth.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.cloud.provider import CloudProvider
from repro.core.bidding import ReactiveBidding
from repro.core.scheduler import CloudScheduler
from repro.core.strategies import SingleMarketStrategy
from repro.experiments.common import ExperimentConfig
from repro.simulator.engine import Engine
from repro.simulator.rng import RngStreams
from repro.traces.catalog import MarketKey, build_catalog
from repro.vm.mechanisms import Mechanism, MigrationModel, TYPICAL_PARAMS

EXPERIMENT_ID = "abl-grace"
TITLE = "Ablation: value of the two-minute revocation warning"

KEY = MarketKey("us-east-1a", "small")
GRACES = (0.0, 30.0, 60.0, 120.0, 240.0)


def _run(cfg: ExperimentConfig, grace_s: float) -> tuple[float, float]:
    """(unavailability %, forced/hr) under one grace window, seed-averaged.

    Uses the reactive policy so forced migrations are frequent enough for
    the grace window to matter statistically.
    """
    unav, forced = [], []
    for seed in cfg.effective_seeds():
        cat = build_catalog(seed=seed, horizon=cfg.effective_horizon(),
                            regions=("us-east-1a",), sizes=("small",))
        streams = RngStreams(seed)
        provider = CloudProvider(cat, rng=streams.get("provider/startup"),
                                 grace_s=grace_s)
        sch = CloudScheduler(
            engine=Engine(), provider=provider, bidding=ReactiveBidding(),
            strategy=SingleMarketStrategy(KEY),
            migration_model=MigrationModel(Mechanism.CKPT_LR, TYPICAL_PARAMS),
            rng=streams.get("scheduler/jitter"),
            horizon=cfg.effective_horizon(),
        )
        sch.run()
        unav.append(sch.availability.unavailability_percent())
        forced.append(sch.migrations_per_hour("forced"))
    return float(np.mean(unav)), float(np.mean(forced))


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rows = {g: _run(cfg, g) for g in GRACES}

    t = Table(
        headers=("grace window (s)", "unavail %", "forced/hr"),
        title="reactive bidding, CKPT+LR, small us-east-1a",
    )
    for g, (u, f) in rows.items():
        t.add_row(g, u, f)
    report.add_artifact(t.render())

    report.compare(
        "no warning is much worse than the two-minute warning",
        rows[0.0][0] / max(rows[120.0][0], 1e-9),
        expectation="without a window, the on-demand startup (~95 s) is "
        "fully exposed in every forced blackout",
        holds=rows[0.0][0] > 1.5 * rows[120.0][0],
    )
    report.compare(
        "unavailability non-increasing in the window (violations)",
        float(sum(
            1 for a, b in zip(GRACES, GRACES[1:])
            if rows[b][0] > rows[a][0] * 1.15 + 1e-6
        )),
        expectation="longer warnings never hurt",
        holds=all(
            rows[b][0] <= rows[a][0] * 1.15 + 1e-6
            for a, b in zip(GRACES, GRACES[1:])
        ),
    )
    report.compare(
        "two minutes is already enough (240 s barely helps)",
        rows[120.0][0] / max(rows[240.0][0], 1e-9),
        expectation="startup (~95 s) and flush (<= tau) both fit in 120 s",
        holds=rows[120.0][0] < 1.4 * rows[240.0][0] + 1e-6,
    )
    report.compare(
        "forced-migration rate independent of the window",
        max(f for _, f in rows.values()) - min(f for _, f in rows.values()),
        unit="/hr",
        expectation="the window changes blackout length, not revocations",
        holds=(max(f for _, f in rows.values())
               - min(f for _, f in rows.values())) < 0.01,
    )
    return report
