"""Extension: sensitivity of the headline results to trace calibration.

A reproduction on synthetic traces must show its conclusions are not
artifacts of the chosen calibration. This experiment re-runs the core
proactive-vs-reactive comparison with the excursion intensity halved and
doubled, and with the calm price level shifted down and up, and checks the
paper's *qualitative* claims survive every variant:

* proactive unavailability stays well below reactive's;
* proactive stays at or below reactive's cost;
* the absolute cost level tracks the calm price (as it must), while the
  proactive/reactive *ordering* does not move.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.results import aggregate
from repro.core.simulation import SimulationConfig, run_many
from repro.experiments.common import ExperimentConfig
from repro.runtime import StrategySpec
from repro.traces.calibration import calibration_for
from repro.traces.catalog import MarketKey
from repro.vm.mechanisms import Mechanism

EXPERIMENT_ID = "ext-sensitivity"
TITLE = "Extension: sensitivity of headline results to trace calibration"

KEY = MarketKey("us-east-1a", "small")


def _variant(name: str, rate_mult: float, calm_mult: float):
    cal = calibration_for("us-east-1a", "small")
    cal = replace(
        cal,
        calm_base_frac=min(0.45, cal.calm_base_frac * calm_mult),
        blips=replace(cal.blips, rate_per_hour=cal.blips.rate_per_hour * rate_mult),
        spikes=replace(cal.spikes, rate_per_hour=cal.spikes.rate_per_hour * rate_mult),
        sharp_spikes=replace(
            cal.sharp_spikes, rate_per_hour=cal.sharp_spikes.rate_per_hour * rate_mult
        ),
    )
    return name, cal


VARIANTS = (
    _variant("baseline", 1.0, 1.0),
    _variant("half spikes", 0.5, 1.0),
    _variant("double spikes", 2.0, 1.0),
    _variant("cheaper calm (-40%)", 1.0, 0.6),
    _variant("pricier calm (+40%)", 1.0, 1.4),
)


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rows = {}
    for name, cal in VARIANTS:
        for bidding in (ReactiveBidding(), ProactiveBidding()):
            sim = SimulationConfig(
                strategy=StrategySpec.single(KEY),
                bidding=bidding,
                mechanism=Mechanism.CKPT_LR,
                horizon_s=cfg.effective_horizon(),
                regions=("us-east-1a",),
                sizes=("small",),
                calibrations={("us-east-1a", "small"): cal},
                label=f"{name}/{bidding.name}",
            )
            rows[(name, bidding.name)] = aggregate(
                run_many(
                    sim,
                    cfg.effective_seeds(),
                    jobs=cfg.jobs,
                    ledger=cfg.effective_ledger(),
                    resume=cfg.resume,
                ),
                label=f"{name}/{bidding.name}",
            )

    t = Table(
        headers=("variant", "policy", "norm cost %", "unavail %", "forced/hr"),
        title="calibration sensitivity (small, us-east-1a, CKPT+LR)",
    )
    for name, _cal in VARIANTS:
        for pol in ("reactive", "proactive"):
            a = rows[(name, pol)]
            t.add_row(name, pol, a.normalized_cost_percent,
                      a.unavailability_percent, a.forced_per_hour)
    report.add_artifact(t.render())

    ratios = {
        name: rows[(name, "reactive")].unavailability_percent
        / max(rows[(name, "proactive")].unavailability_percent, 1e-9)
        for name, _ in VARIANTS
    }
    report.compare(
        "proactive beats reactive availability in every variant (min ratio)",
        min(ratios.values()),
        expectation="the headline ordering is not a calibration artifact",
        holds=min(ratios.values()) > 1.5,
    )
    report.compare(
        "proactive never costlier than reactive (max delta)",
        max(
            rows[(name, "proactive")].normalized_cost_percent
            - rows[(name, "reactive")].normalized_cost_percent
            for name, _ in VARIANTS
        ),
        unit="% pts",
        expectation="cost ordering stable across variants",
        holds=all(
            rows[(name, "proactive")].normalized_cost_percent
            <= rows[(name, "reactive")].normalized_cost_percent + 1.0
            for name, _ in VARIANTS
        ),
    )
    report.compare(
        "cost tracks the calm level (pricier/cheaper ratio)",
        rows[("pricier calm (+40%)", "proactive")].normalized_cost_percent
        / max(rows[("cheaper calm (-40%)", "proactive")].normalized_cost_percent, 1e-9),
        expectation="absolute cost responds to the calm price as expected",
        holds=rows[("pricier calm (+40%)", "proactive")].normalized_cost_percent
        > rows[("cheaper calm (-40%)", "proactive")].normalized_cost_percent,
    )
    report.compare(
        "unavailability tracks the spike rate (double/half ratio, reactive)",
        rows[("double spikes", "reactive")].unavailability_percent
        / max(rows[("half spikes", "reactive")].unavailability_percent, 1e-9),
        expectation="more excursions, more forced migrations",
        holds=rows[("double spikes", "reactive")].unavailability_percent
        > rows[("half spikes", "reactive")].unavailability_percent,
    )
    return report
