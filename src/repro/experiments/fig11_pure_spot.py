"""Figure 11 (and Section 5): proactive method versus pure spot instances.

Pure spot (no on-demand fallback, no migration target) is slightly cheaper
— revoked partial hours are free and no on-demand hours are ever bought —
but whenever the price exceeds the bid the service is simply *down*, for
hours at a stretch, yielding > 1 % unavailability in the small/medium/large
markets. This is the paper's argument that migration, not spot usage alone,
is what makes always-on hosting feasible (Table 3).
"""

from __future__ import annotations

from repro.analysis.figures import bar_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.runtime import StrategySpec
from repro.experiments.common import ExperimentConfig, simulate
from repro.traces.calibration import SIZES
from repro.traces.catalog import MarketKey

EXPERIMENT_ID = "fig11"
TITLE = "Proactive method versus pure spot instances (us-east-1a)"

REGION = "us-east-1a"


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rows: dict[tuple[str, str], object] = {}
    for size in SIZES:
        key = MarketKey(REGION, size)
        rows[("proactive", size)] = simulate(
            cfg,
            StrategySpec.single(key),
            bidding=ProactiveBidding(),
            regions=(REGION,),
            sizes=(size,),
            label=f"proactive/{size}",
        )
        rows[("pure-spot", size)] = simulate(
            cfg,
            StrategySpec.pure_spot(key),
            bidding=ReactiveBidding(),
            regions=(REGION,),
            sizes=(size,),
            label=f"pure-spot/{size}",
        )

    t = Table(
        headers=("market", "policy", "norm cost %", "unavail %"),
        title="Fig 11(a-b) series",
    )
    for size in SIZES:
        for pol in ("proactive", "pure-spot"):
            a = rows[(pol, size)]
            t.add_row(size, pol, a.normalized_cost_percent, a.unavailability_percent)
    report.add_artifact(t.render())
    report.add_artifact(
        bar_chart(
            {f"{s}/{p}": rows[(p, s)].unavailability_percent
             for s in SIZES for p in ("proactive", "pure-spot")},
            title="Fig 11(b): unavailability (%, log scale)",
            log_scale=True,
            unit="%",
        )
    )

    report.compare(
        "pure spot cheaper than proactive (mean delta)",
        float(sum(
            rows[("proactive", s)].normalized_cost_percent
            - rows[("pure-spot", s)].normalized_cost_percent
            for s in SIZES
        ) / len(SIZES)),
        unit="% pts",
        expectation="pure spot slightly reduces cost",
        holds=sum(
            rows[("pure-spot", s)].normalized_cost_percent
            <= rows[("proactive", s)].normalized_cost_percent + 0.5
            for s in SIZES
        ) >= 3,
    )
    for size in ("small", "medium", "large"):
        report.compare(
            f"pure-spot unavailability {size}",
            rows[("pure-spot", size)].unavailability_percent,
            unit="%",
            expectation="> 1 % (unacceptable for always-on)",
            holds=rows[("pure-spot", size)].unavailability_percent > 1.0,
        )
    report.compare(
        "proactive unavailability stays small (max over sizes)",
        max(rows[("proactive", s)].unavailability_percent for s in SIZES),
        unit="%",
        expectation="orders of magnitude below pure spot",
        holds=max(rows[("proactive", s)].unavailability_percent for s in SIZES) < 0.05,
    )
    return report
