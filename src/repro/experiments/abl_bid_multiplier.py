"""Ablation: the proactive bid multiplier k (p_b = k * p_on).

The paper fixes k = 4 (EC2's bid cap) with the argument that a higher bid
gives more planned-migration headroom. This ablation sweeps k: as k falls
toward 1 the proactive policy degenerates into the reactive one — more
revocations beat the scheduler to the punch — raising forced-migration
rates and unavailability, while the cost barely moves (the scheduler never
*pays* above on-demand for long either way, thanks to start-of-hour
billing and boundary-timed planned migrations).
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.catalog import MarketKey

EXPERIMENT_ID = "abl-bid"
TITLE = "Ablation: proactive bid multiplier k"

K_VALUES = (1.2, 1.5, 2.0, 3.0, 4.0)
KEY = MarketKey("us-east-1a", "small")


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rows = {}
    rows["reactive"] = simulate(
        cfg, StrategySpec.single(KEY), bidding=ReactiveBidding(),
        regions=("us-east-1a",), sizes=("small",), label="reactive",
    )
    for k in K_VALUES:
        rows[f"k={k}"] = simulate(
            cfg, StrategySpec.single(KEY), bidding=ProactiveBidding(k=k),
            regions=("us-east-1a",), sizes=("small",), label=f"k={k}",
        )

    t = Table(
        headers=("policy", "norm cost %", "unavail %", "forced/hr"),
        title="bid-multiplier sweep (small, us-east-1a)",
    )
    for label, a in rows.items():
        t.add_row(label, a.normalized_cost_percent, a.unavailability_percent,
                  a.forced_per_hour)
    report.add_artifact(t.render())

    k4 = rows["k=4.0"]
    k12 = rows["k=1.2"]
    report.compare(
        "forced rate shrinks with k (k=1.2 vs k=4)",
        k12.forced_per_hour / max(k4.forced_per_hour, 1e-9),
        expectation="low bids get revoked far more often",
        holds=k12.forced_per_hour > k4.forced_per_hour,
    )
    report.compare(
        "unavailability shrinks with k",
        k12.unavailability_percent / max(k4.unavailability_percent, 1e-9),
        expectation="k=4 (the paper's choice) minimizes unavailability",
        holds=k4.unavailability_percent
        == min(r.unavailability_percent for r in rows.values()),
    )
    report.compare(
        "cost roughly flat across k (max spread)",
        max(r.normalized_cost_percent for r in rows.values())
        - min(r.normalized_cost_percent for r in rows.values()),
        unit="% pts",
        expectation="bid level mostly moves availability, not cost",
        holds=(
            max(r.normalized_cost_percent for r in rows.values())
            - min(r.normalized_cost_percent for r in rows.values())
        ) < 8.0,
    )
    return report
