"""Ablation: the Yank checkpoint bound tau.

tau caps the final incremental checkpoint write during a forced migration.
A small tau means a nearly-empty increment at suspend time (shorter
blackout) but more aggressive background checkpointing; tau must also fit,
together with the restore, inside what the revocation grace window allows.
This sweep shows unavailability growing with tau, and the background
storage-bandwidth fraction it costs.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.catalog import MarketKey
from repro.vm.checkpoint import BoundedCheckpointer
from repro.vm.mechanisms import Mechanism, TYPICAL_PARAMS
from repro.vm.memory import MemoryProfile

EXPERIMENT_ID = "abl-tau"
TITLE = "Ablation: Yank checkpoint bound tau"

TAUS = (2.0, 5.0, 10.0, 30.0, 60.0)
KEY = MarketKey("us-east-1a", "small")


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    mem = MemoryProfile(size_gib=1.36)
    rows = {}
    for tau in TAUS:
        params = TYPICAL_PARAMS.with_overrides(tau_s=tau)
        agg = simulate(
            cfg, StrategySpec.single(KEY),
            mechanism=Mechanism.CKPT_LR, params=params,
            regions=("us-east-1a",), sizes=("small",), label=f"tau={tau}",
        )
        ck = BoundedCheckpointer(mem, tau_s=tau)
        rows[tau] = (agg, ck)

    t = Table(
        headers=("tau (s)", "unavail %", "worst final flush (s)",
                 "ckpt period (s)", "bg bandwidth frac"),
        title="tau sweep (CKPT+LR, small, us-east-1a)",
    )
    for tau, (agg, ck) in rows.items():
        period = ck.steady_state_period_s()
        t.add_row(
            tau, agg.unavailability_percent,
            ck.final_increment(None).suspend_write_s,
            period if period != float("inf") else -1.0,
            ck.background_bandwidth_fraction(),
        )
    report.add_artifact(t.render())

    u_small = rows[TAUS[0]][0].unavailability_percent
    u_large = rows[TAUS[-1]][0].unavailability_percent
    report.compare(
        "unavailability grows with tau",
        u_large / max(u_small, 1e-9),
        expectation="larger final increments lengthen forced blackouts",
        holds=u_large >= u_small,
    )
    worst = rows[TAUS[-1]][1].final_increment(None).suspend_write_s
    report.compare(
        "largest tau still fits the 120 s grace window",
        worst, unit="s",
        expectation="Yank's bound must fit the revocation warning window",
        holds=worst < 120.0,
    )
    report.compare(
        "background bandwidth cost independent of tau",
        rows[TAUS[0]][1].background_bandwidth_fraction()
        - rows[TAUS[-1]][1].background_bandwidth_fraction(),
        expectation="steady-state write stream is dirty-rate bound",
        holds=abs(
            rows[TAUS[0]][1].background_bandwidth_fraction()
            - rows[TAUS[-1]][1].background_bandwidth_fraction()
        ) < 1e-9,
    )
    return report
