"""Section 6.2: impact of nested-VM performance overheads on cost savings.

I/O-bound services keep essentially all of the spot savings (nested I/O is
native-speed); CPU-bound services need extra capacity to compensate for the
nested hypervisor, shrinking savings. In the paper's worst case performance
is halved (capacity factor 2), and the savings of a 17-33 % deployment drop
accordingly ("actual savings of 12 %-34 % of the baseline cost").
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.calibration import SIZES
from repro.traces.catalog import MarketKey
from repro.vm.nested import NestedOverheadModel
from repro.workload.capacity import (
    WORST_CASE_CAPACITY_FACTOR,
    CapacityModel,
    savings_with_overhead,
)

EXPERIMENT_ID = "sec62"
TITLE = "Impact of nested-VM performance overheads on cost savings"


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    norms = {}
    for size in SIZES:
        key = MarketKey("us-east-1a", size)
        agg = simulate(
            cfg, StrategySpec.single(key),
            regions=("us-east-1a",), sizes=(size,), label=f"proactive/{size}",
        )
        norms[size] = agg.normalized_cost_percent

    io_factor = CapacityModel(cpu_fraction=0.0).capacity_factor()
    cpu_typ_factor = CapacityModel(
        overheads=NestedOverheadModel(cpu_overhead_idle=1.05, cpu_overhead_peak=1.25),
        cpu_fraction=1.0,
    ).capacity_factor()

    t = Table(
        headers=(
            "market", "norm cost %", "savings (I/O-bound) %",
            "savings (CPU typ) %", "savings (worst case) %",
        ),
        title="savings after capacity inflation",
    )
    worst_savings = {}
    for size in SIZES:
        s_io = savings_with_overhead(norms[size], io_factor)
        s_cpu = savings_with_overhead(norms[size], cpu_typ_factor)
        s_worst = savings_with_overhead(norms[size], WORST_CASE_CAPACITY_FACTOR)
        worst_savings[size] = s_worst
        t.add_row(size, norms[size], s_io, s_cpu, s_worst)
    report.add_artifact(t.render())

    report.compare(
        "I/O-bound capacity factor", io_factor, paper=1.02,
        expectation="disk/network services keep ~all savings",
        holds=io_factor <= 1.05,
    )
    report.compare(
        "worst-case savings low end", min(worst_savings.values()), unit="%",
        expectation="savings shrink but remain positive at capacity factor 2",
        holds=min(worst_savings.values()) > 0,
    )
    report.compare(
        "worst-case savings high end", max(worst_savings.values()), unit="%",
        expectation="paper quotes 12-34 % (interpretation-dependent); "
        "we report 100 - 2 * normalized cost",
        holds=max(worst_savings.values()) <= 100.0,
    )
    report.note(
        "The paper's '12 %-34 %' worst-case savings figure is not derivable "
        "unambiguously from its own 17-33 % normalized costs; we report the "
        "direct arithmetic savings = 100 - capacity_factor * normalized_cost."
    )
    return report
