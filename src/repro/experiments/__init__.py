"""Experiment drivers: one module per paper table/figure.

Each driver exposes ``run(config: ExperimentConfig) -> ExperimentReport``
and registers itself in :mod:`repro.experiments.registry`. The CLI
(``python -m repro.experiments <id>`` or ``repro-experiments <id>``)
renders the report — the same rows/series the paper reports, plus a
paper-vs-measured comparison table.
"""

from repro.experiments.common import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["ExperimentConfig", "EXPERIMENTS", "get_experiment", "run_experiment"]
