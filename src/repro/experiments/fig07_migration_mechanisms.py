"""Figure 7: comparing migration mechanisms under proactive bidding.

Small servers in us-east-1a; four mechanism combinations, each under the
typical and the pessimistic parameter set. Paper values (unavailability %):

================  ========  ===========
Mechanism         Typical   Pessimistic
================  ========  ===========
CKPT               0.0177      0.266
CKPT LR            0.0042      0.0264
CKPT + Live        0.0095      0.142
CKPT LR + Live     0.0022      0.0137
================  ========  ===========

Claims to reproduce: the ordering CKPT > CKPT+Live > CKPT LR > CKPT LR +
Live; lazy restore is the step that brings unavailability into the
always-on range; live migration roughly halves it again; the pessimistic
column is uniformly worse.
"""

from __future__ import annotations

from repro.analysis.figures import bar_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.catalog import MarketKey
from repro.vm.mechanisms import Mechanism, PESSIMISTIC_PARAMS, TYPICAL_PARAMS

EXPERIMENT_ID = "fig7"
TITLE = "Migration mechanisms under proactive bidding (small, us-east-1a)"

PAPER_VALUES = {
    ("typical", Mechanism.CKPT): 0.0177,
    ("typical", Mechanism.CKPT_LR): 0.0042,
    ("typical", Mechanism.CKPT_LIVE): 0.0095,
    ("typical", Mechanism.CKPT_LR_LIVE): 0.0022,
    ("pessimistic", Mechanism.CKPT): 0.266,
    ("pessimistic", Mechanism.CKPT_LR): 0.0264,
    ("pessimistic", Mechanism.CKPT_LIVE): 0.142,
    ("pessimistic", Mechanism.CKPT_LR_LIVE): 0.0137,
}

#: The ordering the paper reports, worst to best.
PAPER_ORDER = (Mechanism.CKPT, Mechanism.CKPT_LIVE, Mechanism.CKPT_LR, Mechanism.CKPT_LR_LIVE)


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    key = MarketKey("us-east-1a", "small")
    measured: dict[tuple[str, Mechanism], float] = {}
    for tag, params in (("typical", TYPICAL_PARAMS), ("pessimistic", PESSIMISTIC_PARAMS)):
        for mech in Mechanism:
            agg = simulate(
                cfg,
                StrategySpec.single(key),
                mechanism=mech,
                params=params,
                regions=("us-east-1a",),
                sizes=("small",),
                label=f"{tag}/{mech.value}",
            )
            measured[(tag, mech)] = agg.unavailability_percent

    t = Table(
        headers=("mechanism", "typical unavail %", "pessimistic unavail %"),
        title="Fig 7 series (log-scale bars below)",
    )
    for mech in PAPER_ORDER:
        t.add_row(mech.label, measured[("typical", mech)], measured[("pessimistic", mech)])
    report.add_artifact(t.render())
    report.add_artifact(
        bar_chart(
            {mech.label: measured[("typical", mech)] for mech in PAPER_ORDER},
            title="typical unavailability (%, log scale)",
            log_scale=True,
            unit="%",
        )
    )

    for (tag, mech), value in measured.items():
        report.compare(
            f"{tag} {mech.label}", value, paper=PAPER_VALUES[(tag, mech)], unit="%"
        )
    for tag in ("typical", "pessimistic"):
        vals = [measured[(tag, m)] for m in PAPER_ORDER]
        report.compare(
            f"{tag} ordering CKPT > CKPT+Live > CKPT LR > CKPT LR+Live",
            1.0 if vals == sorted(vals, reverse=True) else 0.0,
            expectation="paper ordering holds",
            holds=vals == sorted(vals, reverse=True),
        )
    report.compare(
        "typical best mechanism meets four nines",
        measured[("typical", Mechanism.CKPT_LR_LIVE)],
        unit="%",
        expectation="<= 0.01 % unavailability",
        holds=measured[("typical", Mechanism.CKPT_LR_LIVE)] <= 0.01,
    )
    report.compare(
        "pessimistic uniformly worse",
        min(
            measured[("pessimistic", m)] / max(measured[("typical", m)], 1e-9)
            for m in Mechanism
        ),
        expectation="every pessimistic value exceeds its typical value",
        holds=all(
            measured[("pessimistic", m)] > measured[("typical", m)] for m in Mechanism
        ),
    )
    report.compare(
        "live migration roughly halves unavailability (typical)",
        measured[("typical", Mechanism.CKPT_LR)]
        / max(measured[("typical", Mechanism.CKPT_LR_LIVE)], 1e-9),
        paper=1.9,
        expectation="CKPT LR ~2x of CKPT LR + Live",
        holds=measured[("typical", Mechanism.CKPT_LR)]
        > 1.3 * measured[("typical", Mechanism.CKPT_LR_LIVE)],
    )
    return report
