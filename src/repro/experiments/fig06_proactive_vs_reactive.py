"""Figure 6: proactive versus reactive bidding (single market, us-east).

Four panels over the small/medium/large/xlarge markets:

(a) normalized cost — both policies land at 17-33 % of the on-demand
    baseline, proactive slightly cheaper;
(b) unavailability — proactive lower by a factor of 2.5-18;
(c) forced migrations per hour — proactive far fewer;
(d) planned+reverse migrations per hour — similar for both.

Both policies run bounded checkpointing with lazy restore (the paper's
Section 4.2 setup).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import bar_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.runtime import StrategySpec
from repro.experiments.common import ExperimentConfig, simulate
from repro.traces.calibration import SIZES
from repro.traces.catalog import MarketKey
from repro.vm.mechanisms import Mechanism

EXPERIMENT_ID = "fig6"
TITLE = "Proactive versus reactive bidding (single market, us-east-1a)"

REGION = "us-east-1a"


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rows = {}
    for size in SIZES:
        key = MarketKey(REGION, size)
        for bidding in (ReactiveBidding(), ProactiveBidding()):
            agg = simulate(
                cfg,
                StrategySpec.single(key),
                bidding=bidding,
                mechanism=Mechanism.CKPT_LR,
                regions=(REGION,),
                sizes=(size,),
                label=f"{bidding.name}/{size}",
            )
            rows[(bidding.name, size)] = agg

    t = Table(
        headers=(
            "market", "policy", "norm cost %", "unavail %", "forced/hr", "planned+rev/hr",
        ),
        title="Fig 6(a-d) series",
    )
    for size in SIZES:
        for pol in ("reactive", "proactive"):
            a = rows[(pol, size)]
            t.add_row(
                size, pol, a.normalized_cost_percent, a.unavailability_percent,
                a.forced_per_hour, a.planned_reverse_per_hour,
            )
    report.add_artifact(t.render())
    report.add_artifact(
        bar_chart(
            {f"{s}/{p}": rows[(p, s)].unavailability_percent for s in SIZES
             for p in ("reactive", "proactive")},
            title="Fig 6(b): unavailability (%)",
        )
    )

    costs = [rows[(p, s)].normalized_cost_percent for s in SIZES for p in ("reactive", "proactive")]
    report.compare(
        "normalized cost range low", min(costs), paper=17.0, unit="%",
        expectation="17-33 % of baseline",
        holds=min(costs) >= 10.0,
    )
    report.compare(
        "normalized cost range high", max(costs), paper=33.0, unit="%",
        expectation="17-33 % of baseline",
        holds=max(costs) <= 45.0,
    )
    ratios = [
        rows[("reactive", s)].unavailability_percent
        / max(rows[("proactive", s)].unavailability_percent, 1e-9)
        for s in SIZES
    ]
    report.compare(
        "reactive/proactive unavailability ratio (min over sizes)", min(ratios),
        paper=2.5, expectation="proactive 2.5-18x better", holds=min(ratios) >= 1.5,
    )
    report.compare(
        "reactive/proactive unavailability ratio (max over sizes)", max(ratios),
        paper=18.0, expectation="proactive 2.5-18x better", holds=max(ratios) >= 2.5,
    )
    report.compare(
        "proactive cheaper than reactive (mean cost delta)",
        float(np.mean([
            rows[("reactive", s)].normalized_cost_percent
            - rows[("proactive", s)].normalized_cost_percent
            for s in SIZES
        ])),
        unit="% pts",
        expectation="proactive slightly cheaper in every market",
        holds=all(
            rows[("proactive", s)].normalized_cost_percent
            <= rows[("reactive", s)].normalized_cost_percent + 0.5
            for s in SIZES
        ),
    )
    report.compare(
        "forced migrations: proactive/reactive (mean)",
        float(np.mean([
            rows[("proactive", s)].forced_per_hour
            / max(rows[("reactive", s)].forced_per_hour, 1e-9)
            for s in SIZES
        ])),
        expectation="proactive has far fewer forced migrations",
        holds=all(
            rows[("proactive", s)].forced_per_hour
            < 0.6 * rows[("reactive", s)].forced_per_hour + 1e-9
            for s in SIZES
        ),
    )
    report.compare(
        "planned+reverse rates same order of magnitude",
        float(np.mean([
            rows[("proactive", s)].planned_reverse_per_hour
            / max(rows[("reactive", s)].planned_reverse_per_hour, 1e-9)
            for s in SIZES
        ])),
        expectation="similar planned/reverse migration counts (Fig 6d)",
        holds=all(
            0.2 <= rows[("proactive", s)].planned_reverse_per_hour
            / max(rows[("reactive", s)].planned_reverse_per_hour, 1e-9) <= 5.0
            for s in SIZES
        ),
    )
    return report
