"""Extension: the fleet cost/availability frontier on one shared market.

A derivative-cloud operator choosing how to host a fleet trades cost
against availability fleet-wide, not per service. This experiment runs
the same tenant population under three hosting profiles on the *same*
shared market sample:

* **aggressive** — every tenant single-market on spot at the 4x bid cap:
  cheapest, but every price spike turns into a correlated revocation
  storm the spare pool must absorb;
* **balanced** — the default :func:`~repro.fleet.spec.synthesize_fleet`
  mix of strategies, bid multipliers and targets;
* **conservative** — half the tenants all-on-demand, the rest
  multi-region with cautious bids: most expensive, best availability.

A second artifact sweeps the shared warm-spare pool's capacity under the
balanced profile, tracing hit rate against pool size — the operator's
sizing curve (claims are identical across capacities; only grants move).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.core.bidding import ProactiveBidding
from repro.experiments.common import ExperimentConfig
from repro.fleet.runner import run_fleet
from repro.fleet.spec import FleetSpec, ServiceSpec, synthesize_fleet
from repro.runtime.spec import StrategySpec
from repro.traces.calibration import ALL_REGIONS
from repro.traces.catalog import MarketKey

EXPERIMENT_ID = "ext-fleet"
TITLE = "Extension: fleet cost/availability frontier on a shared spot market"

SIZES = ("small", "medium", "large", "xlarge")
PROFILES = ("aggressive", "balanced", "conservative")
CAPACITY_SWEEP = (0, 1, 2, 4, 8)


def _build_fleet(profile: str, n: int, seed: int, horizon_s: float) -> FleetSpec:
    if profile == "balanced":
        return synthesize_fleet(
            n, seed=seed, horizon_s=horizon_s, regions=ALL_REGIONS, sizes=SIZES
        )
    markets = tuple(MarketKey(r, s) for r in ALL_REGIONS for s in SIZES)
    services = []
    for i in range(n):
        market = markets[i % len(markets)]
        if profile == "aggressive":
            svc = ServiceSpec(
                name=f"svc-{i:04d}",
                strategy=StrategySpec.single(market),
                bidding=ProactiveBidding(k=4.0),
                availability_target_percent=99.9,
            )
        else:  # conservative
            if i % 2 == 0:
                strategy = StrategySpec.on_demand(market)
            else:
                strategy = StrategySpec.multi_region(
                    (market.region, ALL_REGIONS[(i + 1) % len(ALL_REGIONS)])
                )
            svc = ServiceSpec(
                name=f"svc-{i:04d}",
                strategy=strategy,
                bidding=ProactiveBidding(k=2.5),
                availability_target_percent=99.99,
            )
        services.append(svc)
    return FleetSpec(
        services=tuple(services),
        seed=seed,
        horizon_s=horizon_s,
        regions=ALL_REGIONS,
        sizes=SIZES,
        spare_capacity=max(2, n // 10),
    )


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    n = 12 if cfg.fast else 36
    horizon = cfg.effective_horizon()
    seeds = cfg.effective_seeds()

    stats: dict[str, dict[str, float]] = {}
    t = Table(
        headers=("profile", "norm cost %", "mean unavail %", "p99 downtime (s)",
                 "spare hit %", "targets met"),
        title=f"{n}-service fleet over {len(ALL_REGIONS) * len(SIZES)} markets, "
        f"seed-averaged ({len(seeds)} seeds)",
    )
    for profile in PROFILES:
        runs = [
            run_fleet(
                _build_fleet(profile, n, seed, horizon),
                jobs=cfg.jobs,
                engine=cfg.engine,
                ledger=cfg.effective_ledger(),
                resume=cfg.resume,
            )
            for seed in seeds
        ]
        stats[profile] = dict(
            cost=float(np.mean([r.normalized_cost_percent for r in runs])),
            unav=float(np.mean([r.mean_unavailability_percent for r in runs])),
            p99=float(np.mean([r.downtime_p99_s for r in runs])),
            hit=float(np.mean([r.spare_pool.hit_rate for r in runs])),
            met=float(np.mean([r.services_meeting_target / r.n_services for r in runs])),
        )
        s = stats[profile]
        t.add_row(profile, s["cost"], s["unav"], s["p99"],
                  100.0 * s["hit"], f"{100.0 * s['met']:.0f}%")
    report.add_artifact(t.render())

    # Spare-pool sizing curve: same balanced fleet, growing capacity.
    seed0 = seeds[0]
    base = _build_fleet("balanced", n, seed0, horizon)
    ct = Table(
        headers=("spare capacity", "claims", "hits", "hit %", "peak in use"),
        title=f"balanced fleet, seed {seed0}: spare-pool sizing curve",
    )
    hit_rates = []
    for capacity in CAPACITY_SWEEP:
        r = run_fleet(
            base.with_(spare_capacity=capacity),
            jobs=cfg.jobs,
            engine=cfg.engine,
        )
        sp = r.spare_pool
        hit_rates.append(sp.hit_rate)
        ct.add_row(capacity, sp.claims, sp.hits, 100.0 * sp.hit_rate, sp.peak_in_use)
    report.add_artifact(ct.render())

    agg, bal, con = stats["aggressive"], stats["balanced"], stats["conservative"]
    report.compare(
        "aggressive hosting is the cheapest profile",
        agg["cost"],
        unit="%",
        expectation="all-spot at the bid cap undercuts mixed profiles",
        holds=agg["cost"] < bal["cost"] < con["cost"],
    )
    report.compare(
        "conservative hosting is the most available profile",
        con["unav"],
        unit="%",
        expectation="on-demand anchoring buys availability with cost",
        holds=con["unav"] <= bal["unav"] + 1e-9 and con["unav"] <= agg["unav"] + 1e-9,
    )
    report.compare(
        "every profile stays far below the on-demand baseline",
        max(agg["cost"], bal["cost"]),
        unit="%",
        expectation="fleet-level savings persist across profiles",
        holds=agg["cost"] < 60.0 and bal["cost"] < 70.0,
    )
    report.compare(
        "spare-pool hit rate grows with capacity",
        hit_rates[-1],
        expectation="a bigger pool absorbs more of the worst burst",
        holds=all(a <= b + 1e-12 for a, b in zip(hit_rates, hit_rates[1:]))
        and (hit_rates[-1] >= hit_rates[0]),
    )
    return report
