"""Table 4: network and disk I/O of nested VMs versus native VMs.

Paper values (Mbit/s):

============  ==========  =========
Metric        Amazon VM   Nested VM
============  ==========  =========
Network TX          304        304
Network RX          316        314
Disk read         304.6      297.6
Disk write        280.4      274.2
============  ==========  =========

Claim: nested I/O is within ~2 % of native.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig
from repro.simulator.rng import spawn_rng
from repro.workload.diskbench import DiskBenchSimulator
from repro.workload.iperf import IperfSimulator

EXPERIMENT_ID = "tab4"
TITLE = "Network and disk I/O of nested versus native VMs"

PAPER = {
    ("tx", False): 304.0, ("tx", True): 304.0,
    ("rx", False): 316.0, ("rx", True): 314.0,
    ("read", False): 304.6, ("read", True): 297.6,
    ("write", False): 280.4, ("write", True): 274.2,
}


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rng = spawn_rng(cfg.effective_seeds()[0], "experiments/tab4")
    runs = 5 if cfg.fast else 25
    iperf = IperfSimulator(rng)
    disk = DiskBenchSimulator(rng)

    native_net = iperf.mean_of(nested=False, runs=runs)
    nested_net = iperf.mean_of(nested=True, runs=runs)
    native_disk = disk.mean_of(nested=False, runs=runs)
    nested_disk = disk.mean_of(nested=True, runs=runs)

    t = Table(headers=("metric", "Amazon VM (Mbps)", "Nested VM (Mbps)"))
    t.add_row("Network TX", native_net.tx_mbps, nested_net.tx_mbps)
    t.add_row("Network RX", native_net.rx_mbps, nested_net.rx_mbps)
    t.add_row("Disk Read", native_disk.read_mbps, nested_disk.read_mbps)
    t.add_row("Disk Write", native_disk.write_mbps, nested_disk.write_mbps)
    report.add_artifact(t.render())

    measured = {
        ("tx", False): native_net.tx_mbps, ("tx", True): nested_net.tx_mbps,
        ("rx", False): native_net.rx_mbps, ("rx", True): nested_net.rx_mbps,
        ("read", False): native_disk.read_mbps, ("read", True): nested_disk.read_mbps,
        ("write", False): native_disk.write_mbps, ("write", True): nested_disk.write_mbps,
    }
    for (metric, nested), value in measured.items():
        label = f"{'nested' if nested else 'native'} {metric}"
        report.compare(label, value, paper=PAPER[(metric, nested)], unit="Mbps")

    degradation = max(
        1 - measured[(m, True)] / measured[(m, False)] for m in ("tx", "rx", "read", "write")
    )
    report.compare(
        "worst nested I/O degradation", degradation * 100, paper=2.0, unit="%",
        expectation="nested I/O within ~2 % of native",
        holds=degradation <= 0.05,
    )
    return report
