"""Table 2: overhead of the migration mechanisms.

Paper values for a 2 GB nested VM (seconds):

=====================  ============  ==================  ============
Path                   Live migrate  Memory ckpt (s/GB)  Disk copy (s/GB)
=====================  ============  ==================  ============
Inside US East                 58.5                28.9             —
Inside US West                 57.1                28.8             —
Inside EU West                 58.2                28.05            —
US East to US West             73.7                   —          122.4
US East to EU West             74.6                   —          140.5
US West to EU West            140.2                   —          171.6
=====================  ============  ==================  ============

We regenerate each cell from the pre-copy / checkpoint / disk-copy models.
The benchmark VM dirties memory slowly (an idle-ish measurement VM), as in
the paper's microbenchmark setup.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.cloud.regions import link_between
from repro.experiments.common import ExperimentConfig
from repro.vm.checkpoint import BoundedCheckpointer
from repro.vm.disk_copy import disk_copy_seconds_between
from repro.vm.live_migration import LiveMigrationModel
from repro.vm.memory import MemoryProfile

EXPERIMENT_ID = "tab2"
TITLE = "Overhead of migration mechanisms (2 GB nested VM)"

#: The microbenchmark VM: 2 GB of RAM, dirtied gently during measurement.
BENCH_MEMORY = MemoryProfile(size_gib=2.0, dirty_rate_mbps=40.0, working_set_frac=0.10)

_INTRA = [
    ("Inside US East", "us-east-1a", "us-east-1b", 58.5, 28.9),
    ("Inside US West", "us-west-1a", "us-west-1a", 57.1, 28.8),
    ("Inside EU West", "eu-west-1a", "eu-west-1a", 58.2, 28.05),
]
_CROSS = [
    ("US East to US West", "us-east-1a", "us-west-1a", 73.7, 122.4),
    ("US East to EU West", "us-east-1a", "eu-west-1a", 74.6, 140.5),
    ("US West to EU West", "us-west-1a", "eu-west-1a", 140.2, 171.6),
]


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    live = LiveMigrationModel()

    t = Table(headers=("path", "live migrate (s)", "memory ckpt (s/GB)", "disk copy (s/GB)"))
    for label, a, b, paper_live, paper_ckpt in _INTRA:
        lm = live.migrate(BENCH_MEMORY, link_between(a, b))
        ck = BoundedCheckpointer(BENCH_MEMORY).full_image_write_s() / BENCH_MEMORY.size_gib
        t.add_row(label, lm.total_time_s, ck, "-")
        report.compare(f"live migrate {label}", lm.total_time_s, paper=paper_live, unit="s")
        report.compare(f"ckpt write {label}", ck, paper=paper_ckpt, unit="s/GB")
    for label, a, b, paper_live, paper_disk in _CROSS:
        lm = live.migrate(BENCH_MEMORY, link_between(a, b))
        disk = disk_copy_seconds_between(1.0, a, b)
        t.add_row(label, lm.total_time_s, "-", disk)
        report.compare(f"live migrate {label}", lm.total_time_s, paper=paper_live, unit="s")
        report.compare(f"disk copy {label}", disk, paper=paper_disk, unit="s/GB")
    report.add_artifact(t.render())

    east_west = live.migrate(BENCH_MEMORY, link_between("us-east-1a", "us-west-1a"))
    intra = live.migrate(BENCH_MEMORY, link_between("us-east-1a", "us-east-1b"))
    report.compare(
        "cross-region live slower than intra",
        east_west.total_time_s / intra.total_time_s,
        expectation="WAN pre-copy takes longer than LAN",
        holds=east_west.total_time_s > intra.total_time_s,
    )
    report.compare(
        "live-migration downtime (intra)",
        intra.downtime_s,
        unit="s",
        expectation="sub-second stop-and-copy blackout",
        holds=intra.downtime_s < 2.0,
    )
    return report
