"""Ablation: stability-aware multi-region bidding (the paper's future work).

Figure 9(c) shows greedy multi-region bidding can *increase* unavailability
by chasing cheap-but-volatile us-east markets. The paper's conclusion
proposes "bidding strategies that take spot price stability into account".
This experiment implements that proposal: the stability-aware strategy
penalizes each market's rate by a multiple of its trailing price standard
deviation, and the sweep shows the cost/availability trade-off it buys on
the most volatility-exposed pair.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec

EXPERIMENT_ID = "abl-stability"
TITLE = "Ablation: stability-aware multi-region bidding"

PAIR = ("us-east-1b", "eu-west-1a")
WEIGHTS = (0.5, 2.0, 8.0)


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rows = {}
    rows["greedy"] = simulate(
        cfg, StrategySpec.multi_region(PAIR), regions=PAIR, label="greedy",
    )
    for w in WEIGHTS:
        rows[f"w={w}"] = simulate(
            cfg,
            StrategySpec.stability(PAIR, stability_weight=w),
            regions=PAIR,
            label=f"w={w}",
        )

    t = Table(
        headers=("strategy", "norm cost %", "unavail %", "forced/hr"),
        title=f"stability-weight sweep on {PAIR[0]}+{PAIR[1]}",
    )
    for label, a in rows.items():
        t.add_row(label, a.normalized_cost_percent, a.unavailability_percent,
                  a.forced_per_hour)
    report.add_artifact(t.render())

    greedy = rows["greedy"]
    strongest = rows[f"w={WEIGHTS[-1]}"]
    report.compare(
        "strong stability weight reduces forced migrations",
        strongest.forced_per_hour / max(greedy.forced_per_hour, 1e-9),
        expectation="avoiding volatile markets avoids sharp spikes",
        holds=strongest.forced_per_hour <= greedy.forced_per_hour + 1e-9,
    )
    report.compare(
        "stability costs money (strongest vs greedy)",
        strongest.normalized_cost_percent - greedy.normalized_cost_percent,
        unit="% pts",
        expectation="the stable region is the pricier one",
        holds=strongest.normalized_cost_percent >= greedy.normalized_cost_percent - 1.0,
    )
    report.compare(
        "moderate weight keeps cost within a few points of greedy",
        rows[f"w={WEIGHTS[0]}"].normalized_cost_percent
        - greedy.normalized_cost_percent,
        unit="% pts",
        expectation="a mild stability preference is nearly free",
        holds=abs(
            rows[f"w={WEIGHTS[0]}"].normalized_cost_percent
            - greedy.normalized_cost_percent
        ) < 6.0,
    )
    return report
