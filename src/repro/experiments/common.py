"""Shared configuration and helpers for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, List, Sequence, Union

from repro.core.bidding import BiddingPolicy, ProactiveBidding
from repro.core.results import AggregateResult, aggregate
from repro.core.strategies import HostingStrategy
from repro.errors import ConfigurationError
from repro.runtime import ENGINE_KINDS, RunSpec, StrategySpec, run_batch
from repro.traces.calibration import REGIONS, SIZES
from repro.units import days
from repro.vm.mechanisms import Mechanism, MechanismParams, TYPICAL_PARAMS

__all__ = ["ExperimentConfig", "simulate", "DEFAULT_SEEDS"]

#: Seeds used by default — "a different sample for each simulation run".
DEFAULT_SEEDS: tuple = (11, 23, 37, 41, 53)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``fast`` shrinks seeds/horizon for quick smoke runs (used by the unit
    tests); benchmarks run the full configuration. ``jobs`` fans each
    driver's seed×variant batches across worker processes — results are
    identical to the serial default, only faster. ``ledger_dir`` journals
    every batch a driver emits into per-batch ledger files under that
    directory (named by batch fingerprint); with ``resume`` set, batches
    already journaled there replay instead of re-executing, so an
    interrupted ``repro-experiments`` invocation picks up where it died.
    ``engine`` selects the execution engine per batch: ``"auto"`` (the
    default) routes eligible runs through the vectorized boundary-scan
    engine and the rest per-event; results are bit-identical either way.
    """

    seeds: Sequence[int] = DEFAULT_SEEDS
    horizon_s: float = days(30)
    fast: bool = False
    jobs: int = 1
    ledger_dir: str | None = None
    resume: bool = False
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if self.resume and self.ledger_dir is None:
            raise ConfigurationError("resume needs a ledger directory")
        if self.engine not in ENGINE_KINDS:
            raise ConfigurationError(
                f"unknown engine {self.engine!r} "
                f"(choices: {', '.join(ENGINE_KINDS)})"
            )

    def effective_seeds(self) -> List[int]:
        return list(self.seeds[:2] if self.fast else self.seeds)

    def effective_horizon(self) -> float:
        return days(10) if self.fast else self.horizon_s

    def effective_ledger(self) -> Path | None:
        """The batch-ledger directory, created on first use (or ``None``)."""
        if self.ledger_dir is None:
            return None
        path = Path(self.ledger_dir)
        path.mkdir(parents=True, exist_ok=True)
        return path

    def with_(self, **kw) -> "ExperimentConfig":
        return replace(self, **kw)


def simulate(
    cfg: ExperimentConfig,
    strategy: Union[StrategySpec, Callable[[], HostingStrategy]],
    *,
    bidding: BiddingPolicy | None = None,
    mechanism: Mechanism = Mechanism.CKPT_LR_LIVE,
    params: MechanismParams = TYPICAL_PARAMS,
    regions: Sequence[str] = REGIONS,
    sizes: Sequence[str] = SIZES,
    label: str = "",
) -> AggregateResult:
    """Run one policy over the experiment's seeds and aggregate.

    Submits the seeds as one :func:`repro.runtime.run_batch` batch: trace
    catalogs are served from the runtime cache (so several policies
    evaluated on one seed compare on the *same* price sample), and
    ``cfg.jobs`` workers run seeds concurrently. Pass a
    :class:`~repro.runtime.StrategySpec` so runs can cross process
    boundaries; a plain factory callable still works but executes
    in-process.
    """
    base = RunSpec(
        strategy=strategy,
        bidding=bidding or ProactiveBidding(),
        mechanism=mechanism,
        params=params,
        horizon_s=cfg.effective_horizon(),
        regions=tuple(regions),
        sizes=tuple(sizes),
        label=label,
    )
    specs = [base.with_(seed=s) for s in cfg.effective_seeds()]
    batch = run_batch(
        specs, jobs=cfg.jobs, ledger=cfg.effective_ledger(), resume=cfg.resume,
        engine=cfg.engine,
    )
    return aggregate(list(batch.results), label=label or None)
