"""Shared configuration and helpers for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

from repro.core.bidding import BiddingPolicy, ProactiveBidding
from repro.core.results import AggregateResult, aggregate
from repro.core.simulation import SimulationConfig, run_many
from repro.core.strategies import HostingStrategy
from repro.traces.calibration import REGIONS, SIZES
from repro.units import days
from repro.vm.mechanisms import Mechanism, MechanismParams, TYPICAL_PARAMS

__all__ = ["ExperimentConfig", "simulate", "DEFAULT_SEEDS"]

#: Seeds used by default — "a different sample for each simulation run".
DEFAULT_SEEDS: tuple = (11, 23, 37, 41, 53)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    ``fast`` shrinks seeds/horizon for quick smoke runs (used by the unit
    tests); benchmarks run the full configuration.
    """

    seeds: Sequence[int] = DEFAULT_SEEDS
    horizon_s: float = days(30)
    fast: bool = False

    def effective_seeds(self) -> List[int]:
        return list(self.seeds[:2] if self.fast else self.seeds)

    def effective_horizon(self) -> float:
        return days(10) if self.fast else self.horizon_s

    def with_(self, **kw) -> "ExperimentConfig":
        return replace(self, **kw)


def simulate(
    cfg: ExperimentConfig,
    strategy: Callable[[], HostingStrategy],
    *,
    bidding: BiddingPolicy | None = None,
    mechanism: Mechanism = Mechanism.CKPT_LR_LIVE,
    params: MechanismParams = TYPICAL_PARAMS,
    regions: Sequence[str] = REGIONS,
    sizes: Sequence[str] = SIZES,
    label: str = "",
) -> AggregateResult:
    """Run one policy over the experiment's seeds and aggregate."""
    sim = SimulationConfig(
        strategy=strategy,
        bidding=bidding or ProactiveBidding(),
        mechanism=mechanism,
        params=params,
        horizon_s=cfg.effective_horizon(),
        regions=tuple(regions),
        sizes=tuple(sizes),
        label=label,
    )
    results = run_many(sim, cfg.effective_seeds())
    return aggregate(results, label=label or None)
