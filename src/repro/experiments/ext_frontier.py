"""Extension: the cost-availability frontier of hosting policies.

Places every hosting policy in this library on one cost/unavailability
chart — the two baselines the paper compares (on-demand-only, pure spot),
its reactive and proactive schedulers, the Remus hot-standby extension
(:mod:`repro.core.replication`), and the three related-work families from
:mod:`repro.core.policies`: index tracking (Shastri & Irwin), no fault
tolerance (Alourani & Kshemkalyani), and the LP portfolio bid. The
frontier makes the paper's argument visually: migration turns spot
servers from cheap-but-down into cheap-and-up, and a standing replica
buys another order of magnitude of availability for roughly one more
spot price.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import line_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.cloud.provider import CloudProvider
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.replication import ReplicatedScheduler
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.simulator.engine import Engine
from repro.simulator.rng import RngStreams
from repro.traces.catalog import MarketKey, build_catalog
from repro.units import SECONDS_PER_HOUR
from repro.vm.mechanisms import Mechanism
from repro.vm.replication import RemusReplication

EXPERIMENT_ID = "ext-frontier"
TITLE = "Extension: cost-availability frontier of hosting policies"

KEY = MarketKey("us-east-1a", "small")
PAIR_REGIONS = ("us-east-1a", "us-east-1b")


def _run_replicated(cfg: ExperimentConfig) -> tuple[float, float]:
    """(normalized cost %, unavailability %) of the Remus pair, seed-averaged."""
    costs, unavail = [], []
    for seed in cfg.effective_seeds():
        cat = build_catalog(seed=seed, horizon=cfg.effective_horizon(),
                            regions=PAIR_REGIONS)
        streams = RngStreams(seed)
        provider = CloudProvider(cat, rng=streams.get("provider/startup"))
        sch = ReplicatedScheduler(
            engine=Engine(), provider=provider, bidding=ProactiveBidding(),
            service_size="small", candidate_keys=cat.markets(),
            remus=RemusReplication(), rng=streams.get("sched"),
            horizon=cfg.effective_horizon(),
        )
        sch.run()
        dur_h = sch.availability.window_duration / SECONDS_PER_HOUR
        baseline = 0.06 * dur_h
        costs.append(sch.ledger.total / baseline * 100.0)
        unavail.append(sch.availability.unavailability_percent())
    return float(np.mean(costs)), float(np.mean(unavail))


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    points: dict[str, tuple[float, float]] = {}

    od = simulate(cfg, StrategySpec.on_demand(KEY),
                  regions=("us-east-1a",), sizes=("small",), label="on-demand")
    points["on-demand only"] = (od.normalized_cost_percent, od.unavailability_percent)

    pure = simulate(cfg, StrategySpec.pure_spot(KEY), bidding=ReactiveBidding(),
                    regions=("us-east-1a",), sizes=("small",), label="pure-spot")
    points["pure spot"] = (pure.normalized_cost_percent, pure.unavailability_percent)

    rea = simulate(cfg, StrategySpec.single(KEY), bidding=ReactiveBidding(),
                   mechanism=Mechanism.CKPT_LR,
                   regions=("us-east-1a",), sizes=("small",), label="reactive")
    points["reactive + CKPT LR"] = (rea.normalized_cost_percent, rea.unavailability_percent)

    pro = simulate(cfg, StrategySpec.single(KEY),
                   mechanism=Mechanism.CKPT_LR_LIVE,
                   regions=("us-east-1a",), sizes=("small",), label="proactive")
    points["proactive + CKPT LR + Live"] = (
        pro.normalized_cost_percent, pro.unavailability_percent
    )

    idx = simulate(cfg, StrategySpec.index_tracking(PAIR_REGIONS),
                   regions=PAIR_REGIONS, sizes=("small", "medium"),
                   label="index-tracking")
    points["index tracking"] = (idx.normalized_cost_percent, idx.unavailability_percent)

    noft = simulate(cfg, StrategySpec.no_fault_tolerance(KEY),
                    bidding=ReactiveBidding(),
                    regions=("us-east-1a",), sizes=("small",), label="no-ft")
    points["no fault tolerance"] = (
        noft.normalized_cost_percent, noft.unavailability_percent
    )

    lp = simulate(cfg, StrategySpec.portfolio_bid(PAIR_REGIONS),
                  regions=PAIR_REGIONS, sizes=("small", "medium"),
                  label="portfolio-bid")
    points["LP portfolio bid"] = (lp.normalized_cost_percent, lp.unavailability_percent)

    points["Remus dual-spot pair"] = _run_replicated(cfg)

    t = Table(headers=("policy", "norm cost %", "unavail %"),
              title="cost-availability frontier (small service, us-east)")
    for label, (c, u) in points.items():
        t.add_row(label, c, u)
    report.add_artifact(t.render())
    report.add_artifact(
        line_chart(
            {label: [(c, np.log10(max(u, 1e-6)))] for label, (c, u) in points.items()},
            title="frontier: x = normalized cost %, y = log10(unavailability %)",
            x_label="cost %", y_label="log10 unavail",
        )
    )

    remus_cost, remus_unav = points["Remus dual-spot pair"]
    pro_cost, pro_unav = points["proactive + CKPT LR + Live"]
    report.compare(
        "Remus pair still well below on-demand cost", remus_cost, unit="%",
        expectation="two spot prices < one on-demand price",
        holds=remus_cost < 90.0,
    )
    report.compare(
        "Remus pair beats proactive availability", remus_unav, unit="%",
        expectation="hot standby cuts downtime below the migration path "
        "(small-sample tolerance applied)",
        holds=remus_unav < pro_unav + 0.002,
    )
    report.compare(
        "Remus standing cost roughly doubles the spot bill",
        remus_cost / max(pro_cost, 1e-9),
        expectation="the price of the second replica",
        holds=1.3 < remus_cost / max(pro_cost, 1e-9) < 3.5,
    )
    # No fault tolerance shares pure spot's dark periods (no on-demand
    # fallback) plus a recompute penalty, so both sit outside the
    # availability bar every fallback-capable policy must clear.
    spot_only = ("pure spot", "no fault tolerance")
    fallback_unav = max(
        u for label, (c, u) in points.items() if label not in spot_only
    )
    report.compare(
        "every fallback-capable policy meets 0.1 %",
        fallback_unav,
        unit="%",
        expectation="only the spot-only points (pure spot, no-FT) miss the bar",
        holds=fallback_unav < 0.1 and points["pure spot"][1] > 0.5,
    )
    new_costs = {
        label: points[label][0]
        for label in ("index tracking", "no fault tolerance", "LP portfolio bid")
    }
    report.compare(
        "related-work policies stay below on-demand cost",
        max(new_costs.values()),
        unit="%",
        expectation="index tracking, no-FT, and the LP bid all ride the "
        "spot discount",
        holds=max(new_costs.values()) < 100.0,
    )
    return report
