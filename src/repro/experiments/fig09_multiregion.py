"""Figure 9: multi-region versus single-region bidding, over region pairs.

For all six AZ pairs, comparing the multi-region strategy (all markets of
both AZs) against the average of the two single-region (multi-market)
strategies. Paper claims:

(a) multi-region reaches 12-17 % of the baseline (lowest on-demand cost of
    the pair), 5-28 % below the single-region average;
(b) cross-region price correlation is low;
(c) unavailability can *increase* for pairs involving the cheap-but-
    volatile us-east AZs.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.calibration import REGIONS, SIZES
from repro.traces.catalog import MarketKey, build_catalog
from repro.traces.statistics import trace_correlation

EXPERIMENT_ID = "fig9"
TITLE = "Multi-region versus single-region bidding (all AZ pairs)"

PAIRS = tuple(itertools.combinations(REGIONS, 2))


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    single: dict[str, object] = {}
    for region in REGIONS:
        single[region] = simulate(
            cfg,
            StrategySpec.multi_market(region),
            regions=(region,),
            label=f"single-region/{region}",
        )

    rows = []
    for ra, rb in PAIRS:
        multi = simulate(
            cfg,
            StrategySpec.multi_region((ra, rb)),
            regions=(ra, rb),
            label=f"multi-region/{ra}+{rb}",
        )
        corrs = []
        for seed in cfg.effective_seeds():
            cat = build_catalog(seed=seed, horizon=cfg.effective_horizon(), regions=(ra, rb))
            corrs.append(
                float(np.mean([
                    trace_correlation(
                        cat.trace(MarketKey(ra, s)), cat.trace(MarketKey(rb, s))
                    )
                    for s in SIZES
                ]))
            )
        sa, sb = single[ra], single[rb]
        avg_cost = 0.5 * (sa.normalized_cost_percent + sb.normalized_cost_percent)
        avg_unav = 0.5 * (sa.unavailability_percent + sb.unavailability_percent)
        rows.append(
            dict(
                pair=f"{ra}+{rb}",
                single_cost=avg_cost,
                multi_cost=multi.normalized_cost_percent,
                corr=float(np.mean(corrs)),
                single_unav=avg_unav,
                multi_unav=multi.unavailability_percent,
                volatile="us-east" in ra or "us-east" in rb,
            )
        )

    t = Table(
        headers=(
            "pair", "avg single-region cost %", "multi-region cost %",
            "cross-corr", "avg single unavail %", "multi unavail %",
        ),
        title="Fig 9(a-c) series",
    )
    for r in rows:
        t.add_row(
            r["pair"], r["single_cost"], r["multi_cost"], r["corr"],
            r["single_unav"], r["multi_unav"],
        )
    report.add_artifact(t.render())

    costs = [r["multi_cost"] for r in rows]
    report.compare(
        "multi-region cost low end", min(costs), paper=12.0, unit="%",
        expectation="12-17 % of baseline (we allow a wider band)",
        holds=min(costs) <= 22.0,
    )
    report.compare(
        "multi-region cost high end", max(costs), paper=17.0, unit="%",
        expectation="well below the on-demand baseline",
        holds=max(costs) <= 33.0,
    )
    reductions = [
        (r["single_cost"] - r["multi_cost"]) / r["single_cost"] * 100 for r in rows
    ]
    report.compare(
        "cost reduction vs single-region (mean over pairs)",
        float(np.mean(reductions)),
        paper=16.5,
        unit="%",
        expectation="multi-region cheaper on average (paper: 5-28 %)",
        holds=float(np.mean(reductions)) > 0,
    )
    report.compare(
        "cross-region correlation (max over pairs)",
        max(r["corr"] for r in rows),
        expectation="low cross-region correlation",
        holds=max(r["corr"] for r in rows) < 0.5,
    )
    # Only count meaningful increases (>10 % relative) — sub-noise wiggles
    # should not flip the Fig 9c narrative either way.
    increases = [r for r in rows if r["multi_unav"] > 1.1 * r["single_unav"]]
    report.compare(
        "pairs where unavailability meaningfully increases",
        float(len(increases)),
        expectation="unavailability can increase in some (volatile) pairs, "
        "but not across the board",
        holds=len(increases) < len(rows),
    )
    report.note(
        "pairs with increased unavailability: "
        + (", ".join(r["pair"] for r in increases) or "none")
    )
    return report
