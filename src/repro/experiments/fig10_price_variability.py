"""Figure 10: price standard deviation per region and size.

The paper uses this figure to explain Fig 9(c): us-east markets are cheaper
*and* more variable than us-west or eu-west, so a greedy multi-region
bidder migrating toward cheap markets also migrates toward volatile ones.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import bar_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig
from repro.traces.calibration import REGIONS, SIZES
from repro.traces.catalog import MarketKey, build_catalog
from repro.traces.statistics import price_std

EXPERIMENT_ID = "fig10"
TITLE = "Spot-price standard deviation per region and size"


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    stds: dict[tuple[str, str], float] = {}
    for seed in cfg.effective_seeds():
        cat = build_catalog(seed=seed, horizon=cfg.effective_horizon())
        for region in REGIONS:
            for size in SIZES:
                key = (region, size)
                stds.setdefault(key, 0.0)
                stds[key] += price_std(cat.trace(MarketKey(region, size)))
    n = len(cfg.effective_seeds())
    stds = {k: v / n for k, v in stds.items()}

    t = Table(headers=("region",) + SIZES, title="std dev of spot price ($/hr)")
    for region in REGIONS:
        t.add_row(region, *[stds[(region, s)] for s in SIZES])
    report.add_artifact(t.render())
    report.add_artifact(
        bar_chart(
            {f"{r}/xlarge": stds[(r, "xlarge")] for r in REGIONS},
            title="xlarge std dev by region",
            unit=" $/hr",
        )
    )

    east_mean = float(np.mean([stds[(r, s)] for r in REGIONS if "us-east" in r for s in SIZES]))
    west_mean = float(np.mean([stds[("us-west-1a", s)] for s in SIZES]))
    eu_mean = float(np.mean([stds[("eu-west-1a", s)] for s in SIZES]))
    report.compare(
        "us-east std / us-west std", east_mean / max(west_mean, 1e-9),
        expectation="us-east more variable than us-west",
        holds=east_mean > west_mean,
    )
    report.compare(
        "us-west std / eu-west std", west_mean / max(eu_mean, 1e-9),
        expectation="us-west more variable than eu-west",
        holds=west_mean > eu_mean,
    )
    report.compare(
        "std grows with instance size (us-east-1a)",
        stds[("us-east-1a", "xlarge")] / max(stds[("us-east-1a", "small")], 1e-9),
        expectation="absolute variability scales with price level",
        holds=stds[("us-east-1a", "xlarge")] > stds[("us-east-1a", "small")],
    )
    return report
