"""Extension: elastic spot capacity under diurnal demand.

The paper's introduction argues the cloud wins over dedicated
infrastructure through "just-in-time allocation of capacity to handle peak
workloads". This experiment puts numbers on that for the stateless
scale-out tier: a diurnal demand curve (base 4 / peak 12 units, weekend
dip) tracked by an elastic spot fleet, against the two classical
provisioning baselines — dedicated capacity sized for the peak, and
elastic on-demand capacity. It also contrasts reactive with predictive
(lead-time) scaling, which trades a couple of cost points for a ~50x lower
capacity shortfall.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.cloud.provider import CloudProvider
from repro.core.elastic import DemandCurve, ElasticSpotFleet
from repro.experiments.common import ExperimentConfig
from repro.simulator.engine import Engine
from repro.simulator.rng import RngStreams
from repro.traces.catalog import build_catalog
from repro.units import SECONDS_PER_HOUR

EXPERIMENT_ID = "ext-elastic"
TITLE = "Extension: elastic spot capacity under diurnal demand"

REGIONS = ("us-east-1a", "us-east-1b")


def _run(cfg: ExperimentConfig, lead_s: float):
    out = []
    for seed in cfg.effective_seeds():
        cat = build_catalog(seed=seed, horizon=cfg.effective_horizon(),
                            regions=REGIONS, sizes=("small",))
        provider = CloudProvider(cat, rng=RngStreams(seed).get("elastic/provider"))
        fleet = ElasticSpotFleet(
            Engine(), provider, DemandCurve.diurnal(base=4, peak=12),
            cat.markets(), horizon=cfg.effective_horizon(),
            provision_lead_s=lead_s,
        )
        out.append(fleet.run())
    return out


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    reactive = _run(cfg, lead_s=0.0)
    predictive = _run(cfg, lead_s=2 * SECONDS_PER_HOUR)

    t = Table(
        headers=("scaling", "cost vs peak-provisioned %", "cost vs elastic on-demand %",
                 "capacity shortfall %", "replacements"),
        title="diurnal fleet (base 4 / peak 12 small units), seed-averaged",
    )
    stats = {}
    for label, runs in (("reactive", reactive), ("predictive (+2h lead)", predictive)):
        stats[label] = dict(
            vs_peak=float(np.mean([r.vs_peak_percent for r in runs])),
            vs_od=float(np.mean([r.vs_elastic_od_percent for r in runs])),
            short=float(np.mean([r.shortfall_fraction for r in runs])) * 100,
            repl=float(np.mean([r.replacements for r in runs])),
        )
        s = stats[label]
        t.add_row(label, s["vs_peak"], s["vs_od"], s["short"], s["repl"])
    report.add_artifact(t.render())

    pred = stats["predictive (+2h lead)"]
    rea = stats["reactive"]
    report.compare(
        "spot fleet vs dedicated peak capacity", pred["vs_peak"], unit="%",
        expectation="the intro's economics: just-in-time + spot beats "
        "peak-provisioned dedicated hardware by >4x",
        holds=pred["vs_peak"] < 30.0,
    )
    report.compare(
        "spot fleet vs elastic on-demand", pred["vs_od"], unit="%",
        expectation="spot keeps its discount even against right-sized "
        "on-demand capacity",
        holds=pred["vs_od"] < 60.0,
    )
    report.compare(
        "predictive scaling slashes shortfall",
        rea["short"] / max(pred["short"], 1e-9),
        expectation="lead-time provisioning hides boot latency and ramps",
        holds=pred["short"] < 0.3 * rea["short"],
    )
    report.compare(
        "predictive premium stays small",
        pred["vs_peak"] - rea["vs_peak"], unit="% pts",
        expectation="a couple of points buys the shortfall reduction",
        holds=pred["vs_peak"] - rea["vs_peak"] < 6.0,
    )
    return report
