"""Table 3: the qualitative cost/availability matrix.

==============================  ======  ============
Hosting mode                    Cost    Availability
==============================  ======  ============
Only on-demand                  High    High
Only spot                       Low     Low
Using migration mechanisms      Low     High
==============================  ======  ============

This experiment derives the matrix from actual runs: "low cost" means under
half the baseline, "high availability" means at least three nines.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.catalog import MarketKey

EXPERIMENT_ID = "tab3"
TITLE = "Cost/availability matrix of the three hosting modes"

COST_LOW_THRESHOLD = 50.0  #: % of baseline
AVAIL_HIGH_THRESHOLD = 0.1  #: % unavailability (three nines)


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    key = MarketKey("us-east-1a", "small")

    od = simulate(
        cfg, StrategySpec.on_demand(key),
        regions=("us-east-1a",), sizes=("small",), label="only-on-demand",
    )
    spot = simulate(
        cfg, StrategySpec.pure_spot(key), bidding=ReactiveBidding(),
        regions=("us-east-1a",), sizes=("small",), label="only-spot",
    )
    ours = simulate(
        cfg, StrategySpec.single(key), bidding=ProactiveBidding(),
        regions=("us-east-1a",), sizes=("small",), label="with-migration",
    )

    def cost_label(norm: float) -> str:
        return "Low" if norm < COST_LOW_THRESHOLD else "High"

    def avail_label(unav: float) -> str:
        return "High" if unav < AVAIL_HIGH_THRESHOLD else "Low"

    t = Table(headers=("hosting mode", "cost", "availability", "norm cost %", "unavail %"))
    t.add_row("Only on-demand", cost_label(od.normalized_cost_percent),
              avail_label(od.unavailability_percent),
              od.normalized_cost_percent, od.unavailability_percent)
    t.add_row("Only spot", cost_label(spot.normalized_cost_percent),
              avail_label(spot.unavailability_percent),
              spot.normalized_cost_percent, spot.unavailability_percent)
    t.add_row("Using migration mechanisms", cost_label(ours.normalized_cost_percent),
              avail_label(ours.unavailability_percent),
              ours.normalized_cost_percent, ours.unavailability_percent)
    report.add_artifact(t.render())

    report.compare(
        "on-demand: high cost, high availability",
        od.normalized_cost_percent, paper=100.0, unit="%",
        holds=cost_label(od.normalized_cost_percent) == "High"
        and avail_label(od.unavailability_percent) == "High",
    )
    report.compare(
        "pure spot: low cost, low availability",
        spot.unavailability_percent, unit="%",
        expectation="cheap but unavailable",
        holds=cost_label(spot.normalized_cost_percent) == "Low"
        and avail_label(spot.unavailability_percent) == "Low",
    )
    report.compare(
        "migration mechanisms: low cost, high availability",
        ours.unavailability_percent, unit="%",
        expectation="the paper's combination wins both axes",
        holds=cost_label(ours.normalized_cost_percent) == "Low"
        and avail_label(ours.unavailability_percent) == "High",
    )
    return report
