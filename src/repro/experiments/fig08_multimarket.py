"""Figure 8: multi-market bidding within one region.

Three panels, for each of the four AZs:

(a) normalized cost: multi-market below the average of the four
    single-market schemes (paper: 8-52 % lower);
(b) the average pairwise price correlation between markets of the region
    is low (which is why (a) works);
(c) unavailability: multi-market at or below the single-market average.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import bar_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.calibration import REGIONS, SIZES
from repro.traces.catalog import MarketKey, build_catalog
from repro.traces.statistics import mean_pairwise_correlation

EXPERIMENT_ID = "fig8"
TITLE = "Multi-market versus single-market bidding within a region"


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    per_region: dict[str, dict[str, float]] = {}
    for region in REGIONS:
        singles = [
            simulate(
                cfg,
                StrategySpec.single(MarketKey(region, size)),
                regions=(region,),
                label=f"single/{region}/{size}",
            )
            for size in SIZES
        ]
        multi = simulate(
            cfg,
            StrategySpec.multi_market(region),
            regions=(region,),
            label=f"multi/{region}",
        )
        corrs = []
        for seed in cfg.effective_seeds():
            cat = build_catalog(seed=seed, horizon=cfg.effective_horizon(), regions=(region,))
            corrs.append(
                mean_pairwise_correlation([cat.trace(k) for k in cat.markets_in_region(region)])
            )
        per_region[region] = {
            "single_cost": float(np.mean([a.normalized_cost_percent for a in singles])),
            "multi_cost": multi.normalized_cost_percent,
            "single_unav": float(np.mean([a.unavailability_percent for a in singles])),
            "multi_unav": multi.unavailability_percent,
            "corr": float(np.mean(corrs)),
        }

    t = Table(
        headers=(
            "region", "avg single cost %", "multi cost %", "cost reduction %",
            "avg corr", "avg single unavail %", "multi unavail %",
        ),
        title="Fig 8(a-c) series",
    )
    for region, d in per_region.items():
        red = (d["single_cost"] - d["multi_cost"]) / d["single_cost"] * 100
        t.add_row(
            region, d["single_cost"], d["multi_cost"], red,
            d["corr"], d["single_unav"], d["multi_unav"],
        )
    report.add_artifact(t.render())
    report.add_artifact(
        bar_chart(
            {r: d["corr"] for r, d in per_region.items()},
            title="Fig 8(b): mean intra-region price correlation",
        )
    )

    reductions = {
        r: (d["single_cost"] - d["multi_cost"]) / d["single_cost"] * 100
        for r, d in per_region.items()
    }
    report.compare(
        "cost reduction low end", min(reductions.values()), paper=8.0, unit="%",
        expectation="multi-market cheaper in every region",
        holds=min(reductions.values()) > 0,
    )
    report.compare(
        "cost reduction high end", max(reductions.values()), paper=52.0, unit="%",
        expectation="8-52 % below single-market average",
        holds=max(reductions.values()) >= 8.0,
    )
    report.compare(
        "intra-region correlation (max)",
        max(d["corr"] for d in per_region.values()),
        expectation="low correlation between markets of a region",
        holds=max(d["corr"] for d in per_region.values()) < 0.7,
    )
    worse = [
        r for r, d in per_region.items() if d["multi_unav"] > 1.5 * d["single_unav"] + 1e-6
    ]
    report.compare(
        "regions where multi-market clearly increases unavailability",
        float(len(worse)),
        expectation="multi-market does not increase unavailability (Fig 8c)",
        holds=len(worse) == 0,
    )
    return report
