"""Figure 12: TPC-W response time, native versus nested VM.

(a) browsers fetch images: I/O-bound, nested matches native;
(b) browsers do not fetch images (CDN case): CPU-bound, nested response
    time up to ~50 % worse under load.
"""

from __future__ import annotations

from repro.analysis.figures import line_chart
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig
from repro.workload.tpcw import TpcwConfig, TpcwModel

EXPERIMENT_ID = "fig12"
TITLE = "TPC-W response time under nested virtualization"

POPULATIONS = (100, 150, 200, 250, 300, 350, 400)


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    results: dict[bool, dict[str, list]] = {}
    for images in (True, False):
        model = TpcwModel(TpcwConfig(fetch_images=images))
        native = model.response_curve(POPULATIONS, nested=False)
        nested = model.response_curve(POPULATIONS, nested=True)
        results[images] = {"native": native, "nested": nested}

        label = "images fetched" if images else "images not fetched"
        t = Table(
            headers=("EBs", "Amazon VM (ms)", "Nested VM (ms)", "ratio", "bottleneck"),
            title=f"Fig 12({'a' if images else 'b'}): {label}",
        )
        for a, b in zip(native, nested):
            t.add_row(
                a.emulated_browsers, a.response_time_ms, b.response_time_ms,
                b.response_time_ms / max(a.response_time_ms, 1e-9), a.bottleneck,
            )
        report.add_artifact(t.render())
        report.add_artifact(
            line_chart(
                {
                    "native": [(p.emulated_browsers, p.response_time_ms) for p in native],
                    "nested": [(p.emulated_browsers, p.response_time_ms) for p in nested],
                },
                title=f"Fig 12({'a' if images else 'b'}) response time vs EBs ({label})",
                x_label="EBs",
                y_label="ms",
            )
        )

    img = results[True]
    noimg = results[False]
    img_ratio_400 = (
        img["nested"][-1].response_time_ms / img["native"][-1].response_time_ms
    )
    noimg_ratio_400 = (
        noimg["nested"][-1].response_time_ms / noimg["native"][-1].response_time_ms
    )
    report.compare(
        "images: native response at 400 EBs",
        img["native"][-1].response_time_ms, paper=20000.0, unit="ms",
    )
    report.compare(
        "images: nested/native ratio at 400 EBs", img_ratio_400, paper=1.0,
        expectation="nested no worse than native when I/O-bound",
        holds=img_ratio_400 <= 1.1,
    )
    report.compare(
        "no images: native response at 400 EBs",
        noimg["native"][-1].response_time_ms, paper=6000.0, unit="ms",
    )
    report.compare(
        "no images: nested/native ratio at 400 EBs", noimg_ratio_400, paper=1.5,
        expectation="up to ~50 % worse when CPU-bound",
        holds=1.2 <= noimg_ratio_400 <= 2.2,
    )
    report.compare(
        "no images: degradation grows with load",
        noimg["nested"][-1].response_time_ms - noimg["nested"][0].response_time_ms,
        unit="ms",
        expectation="CPU overhead is load-dependent",
        holds=(
            noimg["nested"][-1].response_time_ms / noimg["native"][-1].response_time_ms
            > noimg["nested"][0].response_time_ms / noimg["native"][0].response_time_ms
        ),
    )
    return report
