"""Ablation: adaptive (history-driven) bidding versus the fixed 4x cap.

The paper bids the cap because it minimizes revocations; the only reason to
bid *less* is exposure control (a bounded worst-case hourly price if the
provider ever billed at bid, and organizational risk limits). The adaptive
policy (:class:`~repro.core.adaptive.AdaptiveBidding`) derives its bid from
a trailing-window survival analysis: in a calm market it sits just above
on-demand, in a spiky one it climbs to clear the observed spikes. This
experiment checks the derived bids match the fixed policy's availability in
both kinds of market.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.cloud.spot_market import SpotMarket
from repro.core.adaptive import AdaptiveBidding
from repro.core.bidding import ProactiveBidding
from repro.experiments.common import ExperimentConfig, simulate
from repro.runtime import StrategySpec
from repro.traces.calibration import on_demand_price
from repro.traces.catalog import MarketKey, build_catalog

EXPERIMENT_ID = "abl-adaptive"
TITLE = "Ablation: adaptive bidding versus the fixed 4x cap"

VOLATILE = MarketKey("us-east-1b", "small")
CALM = MarketKey("eu-west-1a", "small")


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rows = {}
    for key, tag in ((VOLATILE, "volatile"), (CALM, "calm")):
        for bidding, name in (
            (ProactiveBidding(), "fixed k=4"),
            (AdaptiveBidding(max_revocations_per_month=2.0), "adaptive"),
        ):
            rows[(tag, name)] = simulate(
                cfg, StrategySpec.single(key),
                bidding=bidding, regions=(key.region,), sizes=("small",),
                label=f"{tag}/{name}",
            )

    # What does the adaptive policy actually bid at the end of each sample?
    bids = {}
    for key, tag in ((VOLATILE, "volatile"), (CALM, "calm")):
        vals = []
        for seed in cfg.effective_seeds():
            cat = build_catalog(seed=seed, horizon=cfg.effective_horizon(),
                                regions=(key.region,), sizes=("small",))
            market = SpotMarket(
                name=str(key), trace=cat.trace(key),
                on_demand_price=cat.on_demand_price(key),
            )
            policy = AdaptiveBidding(max_revocations_per_month=2.0)
            vals.append(
                policy.bid_price(market, t=cfg.effective_horizon() * 0.9)
                / cat.on_demand_price(key)
            )
        bids[tag] = float(np.mean(vals))

    t = Table(
        headers=("market", "policy", "norm cost %", "unavail %",
                 "forced/hr", "end-of-run bid (x od)"),
        title="adaptive vs fixed bidding",
    )
    for tag in ("volatile", "calm"):
        for name in ("fixed k=4", "adaptive"):
            a = rows[(tag, name)]
            t.add_row(tag, name, a.normalized_cost_percent,
                      a.unavailability_percent, a.forced_per_hour,
                      4.0 if name == "fixed k=4" else bids[tag])
    report.add_artifact(t.render())

    report.compare(
        "adaptive bids lower in the calm market", bids["calm"], unit="x od",
        expectation="calm history justifies a bid near on-demand",
        holds=bids["calm"] < bids["volatile"] + 1e-9 and bids["calm"] < 3.0,
    )
    report.compare(
        "adaptive availability tracks fixed (volatile market)",
        rows[("volatile", "adaptive")].unavailability_percent
        / max(rows[("volatile", "fixed k=4")].unavailability_percent, 1e-9),
        expectation="derived bids protect as well as the cap",
        holds=rows[("volatile", "adaptive")].unavailability_percent
        < 3.0 * rows[("volatile", "fixed k=4")].unavailability_percent + 1e-4,
    )
    report.compare(
        "costs essentially identical",
        abs(rows[("volatile", "adaptive")].normalized_cost_percent
            - rows[("volatile", "fixed k=4")].normalized_cost_percent),
        unit="% pts",
        expectation="spot bills the price, not the bid",
        holds=abs(rows[("volatile", "adaptive")].normalized_cost_percent
                  - rows[("volatile", "fixed k=4")].normalized_cost_percent) < 3.0,
    )
    return report
