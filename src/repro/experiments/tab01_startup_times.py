"""Table 1: average startup time of on-demand and spot instances.

Paper values (seconds):

==============  ========  ========  ========
                US East   US West   EU West
==============  ========  ========  ========
On-demand          94.85     93.63     98.08
Spot              281.47    219.77    233.37
==============  ========  ========  ========

The startup sampler is calibrated to those means; this experiment re-runs
the measurement (many allocation draws per mode/region) and checks the
sample means land on the paper's numbers.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.cloud.startup import STARTUP_MEANS_S, StartupSampler
from repro.experiments.common import ExperimentConfig
from repro.simulator.rng import spawn_rng

EXPERIMENT_ID = "tab1"
TITLE = "Average startup time of on-demand and spot instances"

_ZONES = {"us-east": "us-east-1a", "us-west": "us-west-1a", "eu-west": "eu-west-1a"}


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    rng = spawn_rng(cfg.effective_seeds()[0], "experiments/tab1")
    sampler = StartupSampler(rng)
    n = 50 if cfg.fast else 400

    t = Table(headers=("instance type", "US east (s)", "US west (s)", "EU west (s)"))
    measured: dict[tuple[str, str], float] = {}
    for mode, label in (("on_demand", "On-demand"), ("spot", "Spot")):
        row = [label]
        for geo, zone in _ZONES.items():
            m = float(np.mean(sampler.sample_many(mode, zone, n)))
            measured[(mode, geo)] = m
            row.append(m)
        t.add_row(*row)
    report.add_artifact(t.render())

    for mode in ("on_demand", "spot"):
        for geo in _ZONES:
            report.compare(
                f"{mode} startup {geo}",
                measured[(mode, geo)],
                paper=STARTUP_MEANS_S[mode][geo],
                unit="s",
            )
    report.compare(
        "spot slower than on-demand (all regions)",
        min(measured[("spot", g)] / measured[("on_demand", g)] for g in _ZONES),
        expectation="spot allocation takes 2-4x longer than on-demand",
        holds=all(measured[("spot", g)] > 1.5 * measured[("on_demand", g)] for g in _ZONES),
    )
    return report
