"""Registry mapping experiment ids to their drivers."""

from __future__ import annotations

from types import ModuleType
from typing import Callable, Dict

from repro.analysis.report import ExperimentReport
from repro.errors import ConfigurationError
from repro.experiments import (
    abl_adaptive,
    abl_bid_multiplier,
    abl_grace,
    abl_stability,
    abl_tau,
    ext_elastic,
    ext_fleet,
    ext_frontier,
    ext_pool,
    ext_sensitivity,
    fig01_spot_traces,
    fig06_proactive_vs_reactive,
    fig07_migration_mechanisms,
    fig08_multimarket,
    fig09_multiregion,
    fig10_price_variability,
    fig11_pure_spot,
    fig12_tpcw,
    sec62_overhead_cost,
    tab01_startup_times,
    tab02_migration_overheads,
    tab03_summary,
    tab04_io_overheads,
)
from repro.experiments.common import ExperimentConfig

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

_MODULES = (
    fig01_spot_traces,
    tab01_startup_times,
    tab02_migration_overheads,
    fig06_proactive_vs_reactive,
    fig07_migration_mechanisms,
    fig08_multimarket,
    fig09_multiregion,
    fig10_price_variability,
    fig11_pure_spot,
    tab03_summary,
    tab04_io_overheads,
    fig12_tpcw,
    sec62_overhead_cost,
    abl_bid_multiplier,
    abl_tau,
    abl_stability,
    abl_adaptive,
    abl_grace,
    ext_sensitivity,
    ext_frontier,
    ext_pool,
    ext_elastic,
    ext_fleet,
)

#: Experiment id -> driver module (each exposes EXPERIMENT_ID, TITLE, run).
EXPERIMENTS: Dict[str, ModuleType] = {m.EXPERIMENT_ID: m for m in _MODULES}


def get_experiment(experiment_id: str) -> Callable[[ExperimentConfig], ExperimentReport]:
    """The ``run`` callable for one experiment id."""
    try:
        return EXPERIMENTS[experiment_id].run
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentReport:
    """Run one experiment under the given (or default) configuration."""
    return get_experiment(experiment_id)(config or ExperimentConfig())
