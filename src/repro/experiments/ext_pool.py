"""Extension: derivative-cloud pool — placement diversity vs spare sizing.

SpotCheck (the paper's ref [16]) multiplexes many tenant VMs over spot
capacity backed by a pool of on-demand spares. This experiment hosts a
12-tenant pool two ways and measures the operator's key quantity — how
many warm spares the worst co-revocation burst requires:

* **concentrated** (all tenants in the cheapest market): lowest cost, but
  one sharp spike revokes everyone, so the spare pool must equal the fleet;
* **diverse** (tenants spread across markets/AZs): a few points more
  expensive, but co-revocations are bounded by the tenants-per-market
  count, so a fraction of the fleet in spares suffices.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig
from repro.pool import PoolConfig, SpotPool

EXPERIMENT_ID = "ext-pool"
TITLE = "Extension: multi-tenant pool placement vs spare-pool sizing"

N_SERVICES = 12
REGIONS = ("us-east-1a", "us-east-1b", "us-west-1a", "eu-west-1a")


def run(cfg: ExperimentConfig) -> ExperimentReport:
    report = ExperimentReport(EXPERIMENT_ID, TITLE)
    results: dict[str, list] = {"diverse": [], "concentrated": []}
    for placement in results:
        for seed in cfg.effective_seeds():
            pool = SpotPool(PoolConfig(
                n_services=N_SERVICES,
                placement=placement,  # type: ignore[arg-type]
                seed=seed,
                horizon_s=cfg.effective_horizon(),
                regions=REGIONS,
            ))
            results[placement].append(pool.run())

    t = Table(
        headers=("placement", "norm cost %", "mean unavail %", "worst unavail %",
                 "forced total", "spares needed (max)", "spare fraction"),
        title=f"{N_SERVICES}-tenant pool over {len(REGIONS)} AZs, seed-averaged",
    )
    stats = {}
    for placement, runs in results.items():
        stats[placement] = dict(
            cost=float(np.mean([r.normalized_cost_percent for r in runs])),
            unav=float(np.mean([r.mean_unavailability_percent for r in runs])),
            worst=float(np.mean([r.worst_unavailability_percent for r in runs])),
            forced=float(np.mean([r.total_forced for r in runs])),
            spares=float(max(r.spare_servers_needed for r in runs)),
        )
        s = stats[placement]
        t.add_row(placement, s["cost"], s["unav"], s["worst"], s["forced"],
                  s["spares"], s["spares"] / N_SERVICES)
    report.add_artifact(t.render())

    d, c = stats["diverse"], stats["concentrated"]
    report.compare(
        "diverse placement needs fewer spares",
        d["spares"] / max(c["spares"], 1e-9),
        expectation="statistical multiplexing across markets",
        holds=d["spares"] < c["spares"],
    )
    report.compare(
        "diverse spare fraction well below 1",
        d["spares"] / N_SERVICES,
        expectation="a derivative cloud's overhead capacity is a fraction "
        "of its fleet",
        holds=d["spares"] / N_SERVICES <= 0.5,
    )
    report.compare(
        "diversity premium stays moderate",
        d["cost"] - c["cost"],
        unit="% pts",
        expectation="spreading across markets costs a few points",
        holds=-2.0 <= d["cost"] - c["cost"] <= 15.0,
    )
    report.compare(
        "both placements stay far below on-demand",
        max(d["cost"], c["cost"]),
        unit="%",
        expectation="the pool inherits the scheduler's savings",
        holds=max(d["cost"], c["cost"]) < 60.0,
    )
    return report
