"""Command-line entry point: ``repro-experiments [ids...]``.

Runs the requested experiments (default: all) and prints each report —
tables, ASCII figures, and the paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import DEFAULT_SEEDS, ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import observe
from repro.runtime import collect_telemetry
from repro.units import days

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Cutting the Cost of "
        "Hosting Online Services Using Cloud Spot Markets' (HPDC'15).",
    )
    p.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all). Available: {', '.join(sorted(EXPERIMENTS))}",
    )
    p.add_argument("--list", action="store_true", help="list experiment ids and exit")
    p.add_argument("--fast", action="store_true", help="small seeds/horizon smoke run")
    p.add_argument(
        "--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS),
        help="trace-sample seeds",
    )
    p.add_argument(
        "--days", type=float, default=30.0, help="trace horizon in days (default 30)"
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the seed×variant fan-out (default 1 = "
        "serial; results are identical at any worker count)",
    )
    p.add_argument(
        "--engine", choices=("auto", "event", "vector", "fused"), default="auto",
        help="execution engine: 'auto' (default) vectorizes and fuses "
        "eligible batches, 'event'/'vector' force one per-run engine, "
        "'fused' forces cross-run fusion — results are bit-identical; "
        "the footer reports which engine ran each batch",
    )
    p.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="journal every batch to crash-safe run ledgers under DIR "
        "(one JSONL file per batch, named by batch fingerprint)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="with --ledger: replay runs already journaled under DIR and "
        "execute only the remainder — reports are byte-identical to an "
        "uninterrupted run",
    )
    p.add_argument(
        "--markdown", metavar="DIR", default=None,
        help="also write each report as Markdown into DIR",
    )
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL decision trace of every run to PATH, tagged "
        "with its experiment id (inspect with 'repro-trace summarize')",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print each experiment's merged run metrics after its report",
    )
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for eid in sorted(EXPERIMENTS):
            print(f"{eid:8s} {EXPERIMENTS[eid].TITLE}")
        return 0
    ids = args.experiments or sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.resume and args.ledger is None:
        print("--resume needs --ledger DIR", file=sys.stderr)
        return 2
    cfg = ExperimentConfig(
        seeds=tuple(args.seeds), horizon_s=days(args.days), fast=args.fast,
        jobs=args.jobs, ledger_dir=args.ledger, resume=args.resume,
        engine=args.engine,
    )
    md_dir = None
    if args.markdown is not None:
        from pathlib import Path

        md_dir = Path(args.markdown)
        md_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    trace_fp = None
    if args.trace is not None:
        trace_fp = open(args.trace, "w", encoding="utf-8")
    try:
        for eid in ids:
            start = time.perf_counter()
            with collect_telemetry() as tel, observe(
                trace=trace_fp is not None, metrics=args.metrics
            ) as scope:
                report = run_experiment(eid, cfg)
            elapsed = time.perf_counter() - start
            if tel.batches:
                report.runtime_telemetry = tel.summary()
            # Telemetry, traces and metrics stay out of the rendered report
            # so report artifacts are byte-identical at any --jobs and with
            # or without --trace/--metrics; the footer carries them instead.
            print(report.render())
            print(f"[{eid} completed in {elapsed:.1f}s | {tel.summary()}]")
            if trace_fp is not None:
                n = scope.write_jsonl(trace_fp, extra_tags={"experiment": eid})
                print(f"[{eid} trace: {n} event(s) -> {args.trace}]")
            if args.metrics:
                print(f"[{eid} run metrics]")
                print(scope.metrics_summary())
            print()
            if md_dir is not None:
                from repro.analysis.export import report_to_markdown

                (md_dir / f"{eid}.md").write_text(report_to_markdown(report))
            if not report.all_hold():
                failures += 1
    finally:
        if trace_fp is not None:
            trace_fp.close()
    if failures:
        print(f"{failures} experiment(s) deviated from the paper's claims", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
