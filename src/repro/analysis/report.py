"""Experiment reports: measured values next to the paper's, with verdicts.

Every experiment driver produces an :class:`ExperimentReport` whose
:class:`ComparisonRow` entries pair a measured value with the paper's value
(when the paper states one) or with a qualitative expectation (orderings,
bands). EXPERIMENTS.md is assembled from these reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.tables import Table

__all__ = ["ComparisonRow", "ExperimentReport"]


@dataclass(frozen=True)
class ComparisonRow:
    """One metric compared against the paper."""

    metric: str
    measured: float
    paper: Optional[float] = None  #: the paper's value when it states one
    unit: str = ""
    expectation: str = ""  #: qualitative expectation when no number exists
    holds: Optional[bool] = None  #: did the expectation hold?

    def verdict(self) -> str:
        if self.holds is not None:
            return "OK" if self.holds else "DEVIATES"
        if self.paper is None:
            return "-"
        if self.paper == 0:
            return "OK" if abs(self.measured) < 1e-12 else "DEVIATES"
        ratio = self.measured / self.paper
        if 0.5 <= ratio <= 2.0:
            return "OK"
        if 0.2 <= ratio <= 5.0:
            return "NEAR"
        return "DEVIATES"


@dataclass
class ExperimentReport:
    """All output of one experiment: id, rendered artifacts, comparisons."""

    experiment_id: str
    title: str
    artifacts: List[str] = field(default_factory=list)  #: rendered tables/charts
    comparisons: List[ComparisonRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Execution telemetry (runs, catalog builds, cache hits, workers) set
    #: by the runner. Excluded from :meth:`render` by default so report
    #: artifacts stay byte-identical across worker counts.
    runtime_telemetry: Optional[str] = None

    def add_artifact(self, text: str) -> None:
        self.artifacts.append(text)

    def compare(
        self,
        metric: str,
        measured: float,
        paper: Optional[float] = None,
        unit: str = "",
        expectation: str = "",
        holds: Optional[bool] = None,
    ) -> None:
        self.comparisons.append(
            ComparisonRow(metric, float(measured), paper, unit, expectation, holds)
        )

    def note(self, text: str) -> None:
        self.notes.append(text)

    def comparison_table(self) -> str:
        t = Table(
            headers=("metric", "measured", "paper", "unit", "expectation", "verdict"),
            title=f"{self.experiment_id}: paper-vs-measured",
        )
        for c in self.comparisons:
            t.add_row(
                c.metric,
                c.measured,
                "-" if c.paper is None else c.paper,
                c.unit,
                c.expectation or "-",
                c.verdict(),
            )
        return t.render()

    def all_hold(self) -> bool:
        """True when no comparison row carries a DEVIATES verdict."""
        return all(c.verdict() != "DEVIATES" for c in self.comparisons)

    def render(self, include_telemetry: bool = False) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.extend(self.artifacts)
        if self.comparisons:
            parts.append(self.comparison_table())
        for n in self.notes:
            parts.append(f"note: {n}")
        if include_telemetry and self.runtime_telemetry:
            parts.append(f"telemetry: {self.runtime_telemetry}")
        return "\n\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover
        return self.render()
