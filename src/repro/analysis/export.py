"""Exporting results: JSON, CSV, and Markdown.

Simulation results and experiment reports are plain dataclasses; these
helpers serialise them for downstream analysis (pandas, spreadsheets,
papers) without adding dependencies:

* :func:`results_to_json` / :func:`results_to_csv` — flat per-run records;
* :func:`report_to_markdown` — an experiment report as a Markdown section
  (tables preserved as code blocks, comparisons as a Markdown table);
* :func:`trace_to_json` — a price trace as ``{times, prices, horizon}``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Sequence, TextIO

from repro.analysis.report import ExperimentReport
from repro.core.results import SimulationResult
from repro.errors import ConfigurationError
from repro.traces.trace import PriceTrace

__all__ = [
    "result_to_dict",
    "results_to_json",
    "results_to_csv",
    "report_to_markdown",
    "trace_to_json",
]

#: Flat columns exported for each simulation result, in order.
_RESULT_FIELDS = (
    "label",
    "seed",
    "duration_hours",
    "total_cost",
    "baseline_cost",
    "normalized_cost_percent",
    "unavailability_percent",
    "downtime_s",
    "degraded_s",
    "forced_migrations",
    "planned_migrations",
    "reverse_migrations",
    "outages",
    "spot_cost",
    "on_demand_cost",
    "spot_time_fraction",
)


def result_to_dict(result: SimulationResult) -> dict:
    """One result as a flat JSON-ready dict (derived metrics included)."""
    out = {f: getattr(result, f) for f in _RESULT_FIELDS}
    out["forced_per_hour"] = result.forced_per_hour
    out["planned_reverse_per_hour"] = result.planned_reverse_per_hour
    out["savings_percent"] = result.savings_percent
    out["downtime_by_cause"] = dict(result.downtime_by_cause)
    return out


def _open_sink(dest: str | Path | TextIO):
    if isinstance(dest, (str, Path)):
        return open(dest, "w", newline=""), True
    return dest, False


def results_to_json(
    results: Sequence[SimulationResult], dest: str | Path | TextIO
) -> None:
    """Write results as a JSON array."""
    fh, close = _open_sink(dest)
    try:
        json.dump([result_to_dict(r) for r in results], fh, indent=2)
        fh.write("\n")
    finally:
        if close:
            fh.close()


def results_to_csv(
    results: Sequence[SimulationResult], dest: str | Path | TextIO
) -> None:
    """Write results as CSV (one row per run; per-cause downtime omitted)."""
    if not results:
        raise ConfigurationError("nothing to export")
    fields = list(_RESULT_FIELDS) + [
        "forced_per_hour", "planned_reverse_per_hour", "savings_percent",
    ]
    fh, close = _open_sink(dest)
    try:
        writer = csv.DictWriter(fh, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        for r in results:
            writer.writerow(result_to_dict(r))
    finally:
        if close:
            fh.close()


def report_to_markdown(report: ExperimentReport) -> str:
    """Render an experiment report as a Markdown section."""
    lines: List[str] = [f"## {report.experiment_id}: {report.title}", ""]
    for artifact in report.artifacts:
        lines += ["```text", artifact, "```", ""]
    if report.comparisons:
        lines += [
            "| metric | measured | paper | unit | expectation | verdict |",
            "|---|---|---|---|---|---|",
        ]
        for c in report.comparisons:
            paper = "-" if c.paper is None else f"{c.paper:g}"
            lines.append(
                f"| {c.metric} | {c.measured:g} | {paper} | {c.unit or '-'} "
                f"| {c.expectation or '-'} | {c.verdict()} |"
            )
        lines.append("")
    for n in report.notes:
        lines.append(f"> {n}")
    return "\n".join(lines).rstrip() + "\n"


def trace_to_json(trace: PriceTrace, dest: str | Path | TextIO) -> None:
    """Write a price trace as ``{market, region, horizon, times, prices}``."""
    payload = {
        "market": trace.market,
        "region": trace.region,
        "horizon": trace.horizon,
        "times": [float(t) for t in trace.times],
        "prices": [float(p) for p in trace.prices],
    }
    fh, close = _open_sink(dest)
    try:
        json.dump(payload, fh)
        fh.write("\n")
    finally:
        if close:
            fh.close()
