"""Result rendering: tables, ASCII charts, experiment reports."""

from repro.analysis.tables import Table, format_value
from repro.analysis.figures import bar_chart, line_chart, sparkline
from repro.analysis.report import ExperimentReport, ComparisonRow

__all__ = [
    "Table",
    "format_value",
    "bar_chart",
    "line_chart",
    "sparkline",
    "ExperimentReport",
    "ComparisonRow",
]
