"""Result rendering: tables, ASCII charts, experiment reports, and
decision-trace analysis (see :mod:`repro.analysis.decisions`)."""

from repro.analysis.tables import Table, format_value
from repro.analysis.figures import bar_chart, line_chart, sparkline
from repro.analysis.report import ExperimentReport, ComparisonRow
from repro.analysis.decisions import (
    decision_timeline,
    event_counts,
    group_runs,
    migration_narrative,
    revocations_avoided,
    total_downtime_s,
)

__all__ = [
    "Table",
    "format_value",
    "bar_chart",
    "line_chart",
    "sparkline",
    "ExperimentReport",
    "ComparisonRow",
    "group_runs",
    "event_counts",
    "decision_timeline",
    "migration_narrative",
    "revocations_avoided",
    "total_downtime_s",
]
