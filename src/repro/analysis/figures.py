"""ASCII chart rendering: bar charts and line charts for terminal output.

The benchmark harness regenerates each paper figure as a labelled series;
these renderers make the shape visible directly in CI logs without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["bar_chart", "line_chart", "sparkline"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 48,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values.

    ``log_scale`` mirrors the paper's log-axis unavailability plots
    (Figs 7, 11b): bars scale with log10 of the value relative to the
    smallest positive value.
    """
    if not values:
        return title
    labels = list(values)
    vals = [float(values[k]) for k in labels]
    if log_scale:
        positive = [v for v in vals if v > 0]
        floor = min(positive) if positive else 1.0
        scaled = [math.log10(max(v, floor) / floor) + 1e-9 if v > 0 else 0.0 for v in vals]
    else:
        scaled = [max(v, 0.0) for v in vals]
    peak = max(scaled) or 1.0
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, raw, s in zip(labels, vals, scaled):
        frac = s / peak
        whole = int(frac * width)
        rem = int((frac * width - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[rem] if rem else "")
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {raw:g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series`` maps a label to ``[(x, y), ...]``; each series plots with its
    own marker.
    """
    markers = "ox+*#@%&"
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return title
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    grid = [[" "] * width for _ in range(height)]
    for mi, (label, data) in enumerate(series.items()):
        mark = markers[mi % len(markers)]
        for x, y in data:
            col = int((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = mark
    lines = [title] if title else []
    lines.append(f"{y_label} [{y0:g} .. {y1:g}]")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label} [{x0:g} .. {x1:g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={label}" for i, label in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line price-trace sketch using block characters."""
    if not values:
        return ""
    n = len(values)
    if n > width:
        step = n / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi == lo:
        return "▄" * len(values)
    ramp = "▁▂▃▄▅▆▇█"
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(ramp) - 1))
        out.append(ramp[idx])
    return "".join(out)
