"""Bid analysis: what does a given bid price buy in a given market?

Section 3.1 frames the bidding trade-off: "a higher bid price reduces the
chances that the spot price will rise above the bid ... However, there is a
risk that the spot price could increase but still stay below the bid price,
resulting in more cost". This module quantifies that trade-off empirically
from a price trace (synthetic or a loaded AWS archive):

* revocation rate and mean time between revocations at a bid;
* the fraction of time the server is held, and the mean sojourn of the
  outages (how long a pure-spot tenant stays dark per revocation);
* the mean price actually paid while held (held-time-weighted);
* a total-cost estimate for a migrating scheduler, charging the on-demand
  price during above-bid periods plus a per-revocation migration penalty —
  which makes the reactive-vs-proactive gap visible directly from the trace.

Everything is vectorised over the trace's segments, so sweeping a whole
bid grid over a month-long trace is instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = ["BidPoint", "BidAnalysis"]


@dataclass(frozen=True)
class BidPoint:
    """What one bid buys in one market."""

    bid: float
    revocations_per_hour: float
    held_fraction: float  #: fraction of time price <= bid
    mean_time_between_revocations_h: float  #: inf when never revoked
    mean_outage_s: float  #: mean sojourn above the bid (0 when never)
    mean_price_while_held: float  #: time-weighted over held periods
    est_cost_per_hour: float  #: migrating-scheduler estimate (see class doc)

    @property
    def availability_pure_spot_percent(self) -> float:
        """Availability of a non-migrating (pure-spot) tenant at this bid."""
        return 100.0 * self.held_fraction


class BidAnalysis:
    """Analyses bids against one market's price history.

    Parameters
    ----------
    trace:
        The market's price history.
    on_demand_price:
        Price of the non-revocable fallback (caps the scheduler's spend
        during above-bid periods).
    migration_penalty:
        USD charged per revocation in the cost estimate (wasted partial
        hours, overlap hours, engineering risk). Defaults to one on-demand
        hour.
    """

    def __init__(
        self,
        trace: PriceTrace,
        on_demand_price: float,
        migration_penalty: float | None = None,
    ) -> None:
        if on_demand_price <= 0:
            raise TraceError("on-demand price must be positive")
        self.trace = trace
        self.on_demand_price = float(on_demand_price)
        self.migration_penalty = (
            float(migration_penalty) if migration_penalty is not None else on_demand_price
        )
        # Pre-extract the segment decomposition once.
        bounds = np.concatenate([trace.times, [trace.horizon]])
        self._durations = np.diff(bounds)
        self._prices = trace.prices
        self._total_s = float(self._durations.sum())

    # ----------------------------------------------------------- primitives
    def revocations_per_hour(self, bid: float) -> float:
        """Rate of upward crossings of the bid (provider revocations)."""
        crossings = self.trace.crossings_above(bid)
        # A trace that *starts* above the bid is not a revocation (the
        # request would simply not be granted yet).
        n = len(crossings)
        if n and crossings[0] == self.trace.start and self._prices[0] > bid:
            n -= 1
        return n / (self._total_s / SECONDS_PER_HOUR)

    def held_fraction(self, bid: float) -> float:
        """Fraction of time the price is at or below the bid."""
        mask = self._prices <= bid
        return float(self._durations[mask].sum() / self._total_s)

    def mean_price_while_held(self, bid: float) -> float:
        """Time-weighted mean price over at-or-below-bid periods."""
        mask = self._prices <= bid
        held = self._durations[mask].sum()
        if held <= 0:
            return float("nan")
        return float(np.dot(self._durations[mask], self._prices[mask]) / held)

    def mean_outage_s(self, bid: float) -> float:
        """Mean contiguous sojourn above the bid."""
        above = self._prices > bid
        if not above.any():
            return 0.0
        # group consecutive above-segments
        total = 0.0
        count = 0
        run = 0.0
        for dur, hot in zip(self._durations, above):
            if hot:
                run += dur
            elif run > 0:
                total += run
                count += 1
                run = 0.0
        if run > 0:
            total += run
            count += 1
        return total / count if count else 0.0

    def estimated_cost_per_hour(self, bid: float) -> float:
        """Cost estimate for a migrating scheduler at this bid.

        Pays the spot price while held, the on-demand price while the
        market is above the bid, plus the migration penalty per revocation.
        """
        held = self.held_fraction(bid)
        spot_part = held * (self.mean_price_while_held(bid) if held > 0 else 0.0)
        od_part = (1.0 - held) * self.on_demand_price
        churn = self.revocations_per_hour(bid) * self.migration_penalty
        return float(spot_part + od_part + churn)

    # ---------------------------------------------------------------- sweeps
    def point(self, bid: float) -> BidPoint:
        """Full analysis of one bid."""
        rate = self.revocations_per_hour(bid)
        return BidPoint(
            bid=float(bid),
            revocations_per_hour=rate,
            held_fraction=self.held_fraction(bid),
            mean_time_between_revocations_h=(1.0 / rate) if rate > 0 else float("inf"),
            mean_outage_s=self.mean_outage_s(bid),
            mean_price_while_held=self.mean_price_while_held(bid),
            est_cost_per_hour=self.estimated_cost_per_hour(bid),
        )

    def sweep(self, bids: Sequence[float]) -> List[BidPoint]:
        """Analyse a grid of bids (e.g. multiples of on-demand)."""
        if len(bids) == 0:
            raise TraceError("empty bid grid")
        return [self.point(b) for b in bids]

    def default_grid(self, n: int = 13) -> np.ndarray:
        """A sensible bid grid: from half to 4x the on-demand price."""
        return np.linspace(0.5 * self.on_demand_price, 4.0 * self.on_demand_price, n)

    # ------------------------------------------------------- recommendations
    def recommend(
        self,
        max_revocations_per_month: float = 3.0,
        bids: Sequence[float] | None = None,
    ) -> BidPoint:
        """Cheapest bid whose revocation rate fits the monthly budget.

        Falls back to the highest-bid point when no candidate satisfies the
        budget (the best one can do is bid the cap).
        """
        grid = self.default_grid() if bids is None else list(bids)
        points = self.sweep(grid)
        budget_per_hour = max_revocations_per_month / (30 * 24.0)
        ok = [p for p in points if p.revocations_per_hour <= budget_per_hour]
        if not ok:
            return max(points, key=lambda p: p.bid)
        return min(ok, key=lambda p: p.est_cost_per_hour)
