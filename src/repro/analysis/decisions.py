"""Decision-trace analysis: turn a ``repro.obs`` event stream into the
paper's narrative.

All helpers operate on plain event records (dicts with a ``type`` key, as
produced by :meth:`repro.obs.TraceEvent.to_dict` or read back from a JSONL
trace with :func:`repro.obs.read_jsonl`), so they work equally on live
:class:`~repro.obs.sinks.MemorySink` contents and on files written weeks
ago. Records from multi-run files carry ``run``/``seed`` (and optionally
``experiment``) tags; :func:`group_runs` splits on them.

The headline helper is :func:`migration_narrative`, which renders the
Fig-6 argument from decisions rather than totals: *N voluntary migrations,
M of them ahead of an imminent bid crossing (revocations avoided), versus
K forced migrations*.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.units import SECONDS_PER_HOUR

__all__ = [
    "group_runs",
    "event_counts",
    "decision_timeline",
    "migration_narrative",
    "revocations_avoided",
    "total_downtime_s",
]

EventRecord = Dict[str, Any]

#: A voluntary migration "avoided a revocation" when the source market's
#: price crossed the abandoned bid within this window after the decision
#: (two billing hours — the excursion the move side-stepped).
AVOIDANCE_WINDOW_S = 2 * SECONDS_PER_HOUR


def group_runs(
    records: Iterable[EventRecord],
) -> List[Tuple[Tuple[str, str, int], List[EventRecord]]]:
    """Split a tagged multi-run stream into per-run event lists.

    Returns ``((experiment, run, seed), events)`` pairs in first-appearance
    order; untagged streams collapse to a single group.
    """
    order: List[Tuple[str, str, int]] = []
    groups: Dict[Tuple[str, str, int], List[EventRecord]] = {}
    for rec in records:
        key = (str(rec.get("experiment", "")), str(rec.get("run", "")), int(rec.get("seed", 0)))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(rec)
    return [(key, groups[key]) for key in order]


def event_counts(events: Iterable[EventRecord]) -> Dict[str, int]:
    """Events per type, sorted by type name."""
    tally = _TallyCounter(e.get("type", "?") for e in events)
    return dict(sorted(tally.items()))


def total_downtime_s(events: Iterable[EventRecord]) -> float:
    """Summed blackout duration recorded in the stream."""
    return sum(
        max(0.0, e.get("end", 0.0) - e.get("start", 0.0))
        for e in events
        if e.get("type") == "service-blackout"
    )


def revocations_avoided(
    events: Iterable[EventRecord], window_s: float = AVOIDANCE_WINDOW_S
) -> List[EventRecord]:
    """Voluntary migrations that pre-empted an imminent bid crossing.

    A ``voluntary-migration`` event carries ``next_bid_crossing`` — the
    instant the abandoned market's price would next have crossed the bid.
    When that lands within ``window_s`` of the decision, staying would have
    meant a revocation; the move avoided it.
    """
    out = []
    for e in events:
        if e.get("type") != "voluntary-migration":
            continue
        crossing = e.get("next_bid_crossing")
        if crossing is not None and crossing - e.get("started_at", e["t"]) <= window_s:
            out.append(e)
    return out


def migration_narrative(events: Sequence[EventRecord]) -> str:
    """One paragraph explaining the run's migrations from its decisions."""
    voluntary = [e for e in events if e.get("type") == "voluntary-migration"]
    forced = [e for e in events if e.get("type") == "forced-migration"]
    warnings = [e for e in events if e.get("type") == "revocation-warning"]
    aborted = [e for e in events if e.get("type") == "migration-aborted"]
    avoided = revocations_avoided(events)
    downtime = total_downtime_s(events)

    parts = [
        f"{len(voluntary)} voluntary migration(s)"
        + (
            f", {len(avoided)} of them ahead of a bid crossing within "
            f"{AVOIDANCE_WINDOW_S / SECONDS_PER_HOUR:.0f} h (revocations avoided)"
            if voluntary
            else ""
        ),
        f"{len(forced)} forced migration(s) from {len(warnings)} revocation warning(s)",
    ]
    if aborted:
        parts.append(f"{len(aborted)} aborted attempt(s)")
    parts.append(f"{downtime:.1f} s total blackout")
    return "; ".join(parts) + "."


def _hours(t: float) -> str:
    return f"{t / SECONDS_PER_HOUR:9.3f}h"


def _describe(e: EventRecord) -> str:
    kind = e.get("type", "?")
    if kind == "bid-placed":
        return (
            f"bid ${e['bid']:.4f} on {e['market']} (price ${e['price']:.4f}, "
            f"{e.get('policy', '?')}{', ' + e['rationale'] if e.get('rationale') else ''})"
        )
    if kind == "lease-acquired":
        return f"{e['kind']} lease {e['lease_id']} on {e['market']}, ready at {_hours(e['ready_at']).strip()}"
    if kind == "lease-terminated":
        return f"{e['kind']} lease {e['lease_id']} ended ({e['reason']}), billed ${e['billed']:.2f}"
    if kind == "price-crossing":
        return f"{e['market']} price ${e['price']:.4f} crossed {e['direction']} ${e['threshold']:.4f}"
    if kind == "billing-tick":
        return (
            f"boundary check on {e['market']}: price ${e['price']:.4f} vs "
            f"on-demand ${e['on_demand_price']:.4f} (boundary {_hours(e['boundary']).strip()})"
        )
    if kind == "revocation-warning":
        return f"{e['market']} warned: price ${e['price']:.4f} > bid ${e['bid']:.4f}, {e['grace_s']:.0f} s grace"
    if kind == "revocation":
        return f"{e['market']} fleet terminated (warned at {_hours(e['warned_at']).strip()})"
    if kind == "voluntary-migration":
        note = ""
        if e.get("next_bid_crossing") is not None:
            note = f", bid crossing was due at {_hours(e['next_bid_crossing']).strip()}"
        return (
            f"{e['kind']} move {e['source']} -> {e['target']}, "
            f"{e['downtime_s']:.1f} s down{note}"
        )
    if kind == "forced-migration":
        return f"forced move {e['source']} -> {e['target']}, {e['downtime_s']:.1f} s down"
    if kind == "migration-aborted":
        return f"{e['kind']} move {e['source']} -> {e['target']} aborted ({e['reason']})"
    if kind == "checkpoint-write":
        return f"checkpoint ({e['size_gib']:.1f} GiB) flushed on {e['market']}"
    if kind == "checkpoint-restore":
        return f"restored on {e['market']} after {e['downtime_s']:.1f} s"
    if kind == "service-blackout":
        return (
            f"service dark {e['start'] / SECONDS_PER_HOUR:.3f}h-"
            f"{e['end'] / SECONDS_PER_HOUR:.3f}h ({e['cause']})"
        )
    if kind == "engine-run-completed":
        return f"engine fired {e['fired_events']} events"
    return ", ".join(f"{k}={v}" for k, v in e.items() if k not in ("type", "t"))


def decision_timeline(
    events: Sequence[EventRecord],
    limit: Optional[int] = None,
    types: Optional[Sequence[str]] = None,
) -> str:
    """Render a chronological, human-readable decision timeline.

    ``types`` filters to the given event types; ``limit`` keeps only the
    first N lines (with an ellipsis note when truncated).
    """
    wanted = [e for e in events if types is None or e.get("type") in types]
    wanted.sort(key=lambda e: (e.get("t", 0.0), e.get("type", "")))
    lines = [
        f"{_hours(e.get('t', 0.0))}  {e.get('type', '?'):20s}  {_describe(e)}"
        for e in (wanted if limit is None else wanted[:limit])
    ]
    if limit is not None and len(wanted) > limit:
        lines.append(f"           ... {len(wanted) - limit} more event(s)")
    return "\n".join(lines)
