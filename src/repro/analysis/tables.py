"""Plain-text table rendering for experiment output.

Every experiment prints the rows the paper's table/figure reports; this
module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence

__all__ = ["format_value", "Table"]


def format_value(v: Any, precision: int = 4) -> str:
    """Format one cell: floats get ``precision`` significant handling."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.1f}"
        if abs(v) >= 1:
            return f"{v:.{precision}g}"
        return f"{v:.{precision}g}"
    return str(v)


@dataclass
class Table:
    """A simple column-aligned text table."""

    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    title: str = ""
    precision: int = 4

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        cells = [[format_value(c, self.precision) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover
        return self.render()
