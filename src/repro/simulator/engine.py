"""The discrete-event simulation engine.

A classic calendar-queue loop: events are pushed onto a binary heap keyed by
``(time, priority, seq)`` and popped in order; the clock jumps from event to
event. The engine is deliberately small — all domain behaviour lives in the
callbacks that the cloud/market/scheduler layers register.

Design notes (following the HPC-Python guides):

* the hot loop avoids per-event object churn beyond the heap tuple itself;
* determinism is absolute: same seed + same schedule order => same run, which
  the property-based tests in ``tests/simulator`` rely on;
* cancellation is O(1) via tombstoning rather than O(n) heap surgery.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.events import EngineRunCompleted
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.simulator.events import Event, EventKind

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation tombstones the event; the engine skips tombstoned entries
    when they surface at the top of the heap.
    """

    __slots__ = ("event", "cancelled")

    def __init__(self, event: Event) -> None:
        self.event = event
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self.cancelled = True

    @property
    def time(self) -> float:
        return self.event.time

    def __repr__(self) -> str:  # pragma: no cover
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle {self.event!r} {state}>"


class Engine:
    """Priority-queue discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0).
    trace:
        When true, every fired event is appended to :attr:`fired_log`
        (useful in tests; costs memory on long runs).
    sink:
        A :class:`repro.obs.TraceSink` receiving one
        :class:`~repro.obs.EngineRunCompleted` per :meth:`run` call. The
        default null sink makes this free.
    """

    def __init__(
        self, start_time: float = 0.0, trace: bool = False, sink: TraceSink = NULL_SINK
    ) -> None:
        self._now = float(start_time)
        self._seq = 0
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._running = False
        self._stopped = False
        self.trace = trace
        self.sink = sink
        self.fired_log: list[Event] = []
        self.fired_count = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -------------------------------------------------------------- scheduling
    def schedule(
        self,
        time: float,
        callback: Callable[["Engine", Event], None],
        *,
        priority: int = 0,
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(engine, event)`` at absolute time ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is in the past (strictly before :attr:`now`).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        ev = Event(
            time=float(time),
            priority=priority,
            seq=self._seq,
            kind=kind,
            callback=callback,
            payload=payload,
            label=label,
        )
        self._seq += 1
        handle = EventHandle(ev)
        heapq.heappush(self._heap, (ev.time, ev.priority, ev.seq, handle))
        return handle

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["Engine", Event], None],
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule relative to the current clock (``delay`` seconds ahead)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, **kwargs)

    # ---------------------------------------------------------------- running
    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        self._drop_tombstones()
        return self._heap[0][0] if self._heap else None

    def _drop_tombstones(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> Optional[Event]:
        """Fire the single next event; return it, or ``None`` if queue empty."""
        self._drop_tombstones()
        if not self._heap:
            return None
        _, _, _, handle = heapq.heappop(self._heap)
        ev = handle.event
        if ev.time < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event time moved backwards")
        self._now = ev.time
        self.fired_count += 1
        if self.trace:
            self.fired_log.append(ev)
        if ev.callback is not None:
            ev.callback(self, ev)
        return ev

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, the clock passes ``until``, or
        ``max_events`` have fired. Returns the number of events fired.

        When ``until`` is given the clock is advanced to exactly ``until`` on
        return (even if the last event was earlier), so repeated bounded runs
        compose: ``run(until=a); run(until=b)``.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        fired = 0
        # Hot loop: heap/pop/trace-log bound to locals and the peek/step pair
        # inlined — cancelled events are skipped in one tombstone sweep and
        # each live event costs exactly one pop, with no re-peek and no
        # per-event method dispatch. ``self._stopped`` must be re-read through
        # self because callbacks call stop().
        heap = self._heap
        pop = heapq.heappop
        trace = self.trace
        fired_log = self.fired_log
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                while heap and heap[0][3].cancelled:
                    pop(heap)
                if not heap:
                    break
                t = heap[0][0]
                if until is not None and t > until:
                    break
                handle = pop(heap)[3]
                ev = handle.event
                self._now = t
                self.fired_count += 1
                if trace:
                    fired_log.append(ev)
                cb = ev.callback
                if cb is not None:
                    cb(self, ev)
                fired += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        if self.sink.enabled:
            self.sink.emit(EngineRunCompleted(t=self._now, fired_events=self.fired_count))
        return fired

    def stop(self) -> None:
        """Stop a run in progress after the current event's callback returns."""
        self._stopped = True

    # -------------------------------------------------------------- utilities
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for *_rest, h in self._heap if not h.cancelled)

    def drain_labels(self) -> Iterable[str]:
        """Labels of pending events (testing/debugging aid)."""
        return [h.event.label for *_r, h in sorted(self._heap) if not h.cancelled]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Engine t={self._now:.3f} pending={self.pending_count()} fired={self.fired_count}>"
