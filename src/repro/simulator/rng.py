"""Seeded random-number streams.

Every stochastic component (trace generator, startup-latency sampler,
migration jitter, workload think times) draws from its **own named stream**
derived from a single root seed via ``numpy``'s ``SeedSequence.spawn``. This
gives two properties the experiments rely on:

* *reproducibility* — a root seed fully determines every run;
* *independence under refactoring* — adding draws to one component does not
  perturb any other component's stream, so calibrated results stay stable.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable

import numpy as np

__all__ = ["spawn_rng", "RngStreams"]


def _stable_stream_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(root_seed: int, name: str) -> np.random.Generator:
    """Create an independent generator for stream ``name`` under ``root_seed``."""
    seq = np.random.SeedSequence([root_seed & 0xFFFFFFFF, _stable_stream_key(name)])
    return np.random.default_rng(seq)


class RngStreams:
    """A lazily-populated registry of named random streams.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("traces/us-east-1a/small")
    >>> b = streams.get("startup/on-demand")
    >>> a is streams.get("traces/us-east-1a/small")
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = spawn_rng(self.seed, name)
            self._streams[name] = gen
        return gen

    def names(self) -> Iterable[str]:
        """Names of streams created so far."""
        return sorted(self._streams)

    def child(self, suffix: str) -> "RngStreams":
        """A registry whose streams are namespaced under ``suffix``.

        Useful for per-run sub-simulations: ``streams.child(f"run{i}")``.
        """
        child = RngStreams(self.seed)
        parent_get = self.get
        child.get = lambda name: parent_get(f"{suffix}/{name}")  # type: ignore[method-assign]
        return child

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngStreams seed={self.seed} streams={len(self._streams)}>"
