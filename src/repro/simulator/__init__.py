"""Deterministic discrete-event simulation kernel.

Every simulation in this library — market dynamics, scheduler decisions,
migrations — is driven by :class:`~repro.simulator.engine.Engine`, a simple
priority-queue event loop with a monotone clock. Generator-based processes
(:mod:`repro.simulator.process`) layer a coroutine style on top for entities
like the cloud scheduler whose control flow is naturally sequential.
"""

from repro.simulator.engine import Engine, EventHandle
from repro.simulator.events import Event, EventKind
from repro.simulator.process import Process, Timeout, WaitEvent, Interrupt
from repro.simulator.rng import RngStreams, spawn_rng

__all__ = [
    "Engine",
    "EventHandle",
    "Event",
    "EventKind",
    "Process",
    "Timeout",
    "WaitEvent",
    "Interrupt",
    "RngStreams",
    "spawn_rng",
]
