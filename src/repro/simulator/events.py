"""Event records for the discrete-event engine.

An :class:`Event` is an immutable record of *when* something happens plus an
arbitrary payload and callback. Ordering is total and deterministic:
``(time, priority, seq)`` where ``seq`` is the engine-assigned insertion
counter, so two events at the same instant fire in the order they were
scheduled (FIFO) unless a priority says otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Coarse classification of events, mostly for tracing and debugging.

    The engine itself is agnostic to the kind; schedulers and tests use it to
    filter event logs.
    """

    GENERIC = 0
    PRICE_CHANGE = 1
    BILLING_BOUNDARY = 2
    REVOCATION_WARNING = 3
    TERMINATION = 4
    SERVER_READY = 5
    MIGRATION_DONE = 6
    PROCESS_RESUME = 7
    TIMER = 8


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled occurrence inside an :class:`~repro.simulator.engine.Engine`.

    Attributes
    ----------
    time:
        Simulation time in seconds at which the event fires.
    priority:
        Tie-breaker at equal times; *lower* fires first. Default 0.
    seq:
        Engine-assigned monotone counter; guarantees deterministic FIFO
        ordering among equal ``(time, priority)`` events.
    kind:
        Coarse category used for tracing.
    callback:
        Invoked as ``callback(engine, event)`` when the event fires.
    payload:
        Arbitrary data carried to the callback.
    """

    time: float
    priority: int = 0
    seq: int = -1
    kind: EventKind = EventKind.GENERIC
    callback: Optional[Callable[..., None]] = None
    payload: Any = None
    label: str = field(default="", compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        """The total-order key used by the engine's priority queue."""
        return (self.time, self.priority, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.3f} {self.kind.name}{lbl} seq={self.seq}>"
