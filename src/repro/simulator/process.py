"""Generator-based processes on top of the event engine.

A :class:`Process` wraps a Python generator that ``yield``s command objects:

* ``Timeout(dt)`` — sleep ``dt`` simulated seconds;
* ``SleepUntil(t)`` — park until the absolute simulation instant ``t``;
* ``WaitEvent(trigger)`` — park until another process calls
  ``trigger.succeed(value)``; the value is sent back into the generator.

Processes can be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator at its current suspension point —
exactly how the cloud scheduler models a revocation warning cutting short a
planned activity.

This is a deliberately small subset of SimPy-style semantics; the cloud
scheduler's state machine only needs sleep, signal, and interrupt.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.simulator.engine import Engine, EventHandle
from repro.simulator.events import EventKind

__all__ = ["Timeout", "SleepUntil", "WaitEvent", "Interrupt", "Process"]


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class SleepUntil:
    """Yielded by a process to park until the absolute instant ``at``.

    Unlike ``Timeout(at - now)``, the wake-up lands at *exactly* ``at``
    (no ``now + delay`` rounding), which the vectorized batch engine
    relies on to land on the same float instants the per-event engine
    reaches by chaining relative timeouts.
    """

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = float(at)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SleepUntil({self.at})"


class WaitEvent:
    """A one-shot signal another process can trigger with a value.

    A process yields the instance to park; any other code calls
    :meth:`succeed` to wake it. Triggering before anyone waits is allowed
    (the value is latched).
    """

    __slots__ = ("_engine", "_value", "_done", "_waiters")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._value: Any = None
        self._done = False
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter at the current sim time."""
        if self._done:
            raise SimulationError("WaitEvent already triggered")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for wake in waiters:
            # Wake via a zero-delay event so ordering stays deterministic and
            # we never re-enter a generator from inside another's frame.
            self._engine.schedule_after(
                0.0,
                lambda _e, _ev, w=wake: w(value),
                kind=EventKind.PROCESS_RESUME,
                label="waitevent-wake",
            )

    def _add_waiter(self, wake: Callable[[Any], None]) -> None:
        if self._done:
            self._engine.schedule_after(
                0.0,
                lambda _e, _ev: wake(self._value),
                kind=EventKind.PROCESS_RESUME,
                label="waitevent-latched",
            )
        else:
            self._waiters.append(wake)


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: Any = None) -> None:
        self.cause = cause
        super().__init__(f"process interrupted (cause={cause!r})")


class Process:
    """Drives a generator as a simulation process.

    Parameters
    ----------
    engine:
        The engine supplying the clock and event queue.
    generator:
        A generator yielding :class:`Timeout` / :class:`WaitEvent` commands.
    label:
        Name used in tracing and error messages.
    """

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Any, Any, Any],
        label: str = "process",
    ) -> None:
        self.engine = engine
        self.generator = generator
        self.label = label
        self.alive = True
        self.result: Any = None
        self._pending_handle: Optional[EventHandle] = None
        self._waiting_on: Optional[WaitEvent] = None
        self.completion = WaitEvent(engine)
        # Start the generator at the current simulation instant (via a
        # zero-delay event so construction order doesn't matter).
        engine.schedule_after(
            0.0,
            lambda _e, _ev: self._advance(None),
            kind=EventKind.PROCESS_RESUME,
            label=f"{label}-start",
        )

    # ------------------------------------------------------------------ drive
    def _advance(self, send_value: Any, exc: Optional[BaseException] = None) -> None:
        if not self.alive:
            return
        self._pending_handle = None
        self._waiting_on = None
        try:
            if exc is not None:
                command = self.generator.throw(exc)
            else:
                command = self.generator.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.completion.succeed(stop.value)
            return
        except Interrupt:
            # Generator chose not to handle the interrupt: terminate quietly.
            self.alive = False
            self.completion.succeed(None)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._pending_handle = self.engine.schedule_after(
                command.delay,
                lambda _e, _ev: self._advance(None),
                kind=EventKind.TIMER,
                label=f"{self.label}-timeout",
            )
        elif isinstance(command, SleepUntil):
            at = command.at
            if at < self.engine.now:
                raise SimulationError(
                    f"process {self.label!r} slept until t={at:.6f}, "
                    f"before now={self.engine.now:.6f}"
                )
            self._pending_handle = self.engine.schedule(
                at,
                lambda _e, _ev: self._advance(None),
                kind=EventKind.TIMER,
                label=f"{self.label}-sleep-until",
            )
        elif isinstance(command, WaitEvent):
            self._waiting_on = command
            command._add_waiter(lambda value: self._advance(value))
        else:
            raise SimulationError(
                f"process {self.label!r} yielded unsupported command {command!r}"
            )

    # -------------------------------------------------------------- interrupt
    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the generator at its next chance.

        A process parked on a Timeout has the timer cancelled; one parked on
        a WaitEvent is detached from it. Interrupting a dead process is a
        no-op.
        """
        if not self.alive:
            return
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        self._waiting_on = None
        self.engine.schedule_after(
            0.0,
            lambda _e, _ev: self._advance(None, exc=Interrupt(cause)),
            kind=EventKind.PROCESS_RESUME,
            priority=-1,  # interrupts beat ordinary wakeups at the same instant
            label=f"{self.label}-interrupt",
        )

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.alive else "done"
        return f"<Process {self.label!r} {state}>"
