"""Exception hierarchy for the spot-hosting reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to discriminate between configuration problems, market-semantics violations,
and simulation-engine faults.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "MarketError",
    "BidRejectedError",
    "BidTooHighError",
    "InstanceNotHeldError",
    "TraceError",
    "TraceFormatError",
    "CalibrationError",
    "MigrationError",
    "CheckpointBoundError",
    "WorkloadError",
    "InvariantViolation",
    "WorkerCrashError",
    "LedgerError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class SimulationError(ReproError):
    """The discrete-event engine was driven incorrectly.

    Examples: scheduling an event in the past, running a finished engine,
    or re-activating a cancelled process.
    """


class SchedulingError(ReproError):
    """The cloud scheduler reached an inconsistent state.

    This indicates a bug in a hosting strategy (e.g. starting a migration
    while one is already in flight) rather than a user error.
    """


class MarketError(ReproError):
    """Base class for cloud-market semantics violations."""


class BidRejectedError(MarketError):
    """A spot request was rejected because the bid is below the current price."""

    def __init__(self, bid: float, current_price: float, market: str = "") -> None:
        self.bid = bid
        self.current_price = current_price
        self.market = market
        super().__init__(
            f"bid ${bid:.4f}/hr below current spot price "
            f"${current_price:.4f}/hr{f' in {market}' if market else ''}"
        )


class BidTooHighError(MarketError):
    """A bid exceeded the provider's bid cap (4x on-demand on EC2 circa 2015)."""

    def __init__(self, bid: float, cap: float, market: str = "") -> None:
        self.bid = bid
        self.cap = cap
        self.market = market
        super().__init__(
            f"bid ${bid:.4f}/hr exceeds provider cap ${cap:.4f}/hr"
            f"{f' in {market}' if market else ''}"
        )


class InstanceNotHeldError(MarketError):
    """An operation referenced an instance the caller does not hold."""


class TraceError(ReproError):
    """Base class for spot-price trace problems."""


class TraceFormatError(TraceError):
    """A trace file or array pair violated the step-function invariants."""


class CalibrationError(TraceError):
    """A market-calibration parameter set is out of its valid range."""


class MigrationError(ReproError):
    """A VM migration could not be modelled (bad sizes, bandwidths, etc.)."""


class CheckpointBoundError(MigrationError):
    """Yank-style bounded checkpointing cannot satisfy the requested bound.

    Raised when the bound tau is too small for even a single dirty page to be
    flushed within it, i.e. the background checkpointer can never keep up.
    """


class WorkloadError(ReproError):
    """A workload/queueing-model parameterisation is infeasible."""


class InvariantViolation(ReproError):
    """A post-run invariant oracle found a conservation-law violation.

    Raised by :mod:`repro.testkit.oracles` when a completed simulation's
    books do not balance — e.g. billed cost differs from the sum of
    start-of-hour charges, or availability plus blackout time does not
    cover the horizon. Carries the individual check failures in
    ``failures`` when raised from a full report.
    """

    def __init__(self, message: str, failures: "list[str] | None" = None) -> None:
        self.failures = list(failures or [])
        super().__init__(message)


class WorkerCrashError(ReproError):
    """A batch-executor worker crashed while executing a run.

    Raised organically on worker failure and injected by
    :class:`repro.testkit.faults.FaultPlan` crash schedules to exercise
    the executor's retry path.
    """


class LedgerError(ReproError):
    """A batch run ledger cannot be used for the requested resume.

    Raised when a ledger's batch-header fingerprint does not match the
    batch being resumed (the specs, catalogs, or package version changed
    since the ledger was written), or when the ledger is structurally
    invalid beyond the tolerated torn trailing record.
    """
