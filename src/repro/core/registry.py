"""The hosting-strategy plugin registry.

``core/strategies.py`` used to be a closed set wired by hand into the
CLIs, :class:`~repro.runtime.spec.StrategySpec`, and the fleet
synthesizer. This module opens it up: every strategy family registers
itself once with :func:`register_strategy` and every consumer —
``repro-simulate --strategy``, spec reconstruction, ``synthesize_fleet``
cohort drawing, the conformance suite, the docs checker — enumerates the
one registry instead of keeping its own list.

Registering a built-in::

    @register_strategy(
        "single",
        display_name="Single market",
        citation="Sharma et al., HPDC 2015 (Section 4)",
        arg_schema=(ArgSpec("key", "market"),),
        example_args=(MarketKey("us-east-1a", "small"),),
    )
    class SingleMarketStrategy(HostingStrategy):
        ...

Out-of-tree packages register without touching this repository by
exposing an entry point in the ``repro.strategies`` group; the target is
imported (a module whose import runs ``@register_strategy`` decorators)
or called (a zero-argument registration hook) on first registry
enumeration::

    [project.entry-points."repro.strategies"]
    my-policy = "my_pkg.policies"

Duplicate registration of a kind raises
:class:`~repro.errors.ConfigurationError` unless ``override=True`` is
passed (re-registering the *identical* builder is tolerated so module
re-imports stay harmless).
"""

from __future__ import annotations

import importlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "ENTRY_POINT_GROUP",
    "ArgSpec",
    "StrategyInfo",
    "register_strategy",
    "register_strategy_kind",
    "unregister_strategy",
    "strategy_kinds",
    "strategy_info",
    "strategy_infos",
    "strategy_builder",
    "info_for_builder",
    "example_spec",
    "synthesis_cohort",
    "discover_plugins",
]

#: Entry-point group out-of-tree packages register strategies under.
ENTRY_POINT_GROUP = "repro.strategies"

#: ``ArgSpec.kind`` vocabulary the generic CLI builder understands.
ARG_KINDS = ("market", "region", "regions", "int", "float")


@dataclass(frozen=True)
class ArgSpec:
    """One constructor argument in a strategy's spec-arg schema.

    ``kind`` tells generic consumers (the ``repro-simulate`` spec
    builder, the docs table) how to materialise the argument:

    * ``"market"`` — a :class:`~repro.traces.catalog.MarketKey` (CLI:
      first ``--region`` plus ``--size``);
    * ``"region"`` — one availability zone (CLI: first ``--region``);
    * ``"regions"`` — a tuple of zones (CLI: every ``--region``);
    * ``"int"`` / ``"float"`` — a plain scalar. ``cli`` names the
      ``argparse`` attribute it is read from (``None`` keeps the
      default).
    """

    name: str
    kind: str
    required: bool = True
    default: Any = None
    cli: Optional[str] = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ARG_KINDS:
            raise ConfigurationError(
                f"arg {self.name!r}: unknown schema kind {self.kind!r}; "
                f"known: {ARG_KINDS}"
            )


@dataclass(frozen=True)
class StrategyInfo:
    """Everything the registry knows about one strategy family."""

    #: Registry key; mirrors ``repro-simulate --strategy`` choices.
    kind: str
    #: Constructor — usually the strategy class itself.
    builder: Callable[..., Any]
    #: Human name for listings and the docs table.
    display_name: str
    #: Paper / related-work citation the family implements.
    citation: str
    #: May the vector engine batch this family's boundary decisions?
    #: Must agree with built instances (the conformance suite checks).
    vectorizable: bool
    #: Constructor-argument schema for generic spec building.
    arg_schema: Tuple[ArgSpec, ...] = ()
    #: Representative constructor args on the standard 2-region/2-size
    #: test grid — the conformance suite and ``example_spec`` build from
    #: these.
    example_args: Tuple[Any, ...] = ()
    example_options: Tuple[Tuple[str, Any], ...] = ()
    #: Relative probability mass :func:`~repro.fleet.spec.synthesize_fleet`
    #: gives this family when drawing tenant cohorts (0 = never drawn).
    synthesis_weight: float = 0.0
    #: ``(rng, markets, regions) -> StrategySpec`` cohort draw, required
    #: when ``synthesis_weight > 0``. Draws must happen in a fixed order.
    synthesize: Optional[Callable[..., Any]] = None
    #: One-line story for ``--list-strategies``.
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("strategy kind must be non-empty")
        if not callable(self.builder):
            raise ConfigurationError(f"{self.kind}: builder must be callable")
        if self.synthesis_weight < 0:
            raise ConfigurationError(f"{self.kind}: synthesis weight must be >= 0")
        if self.synthesis_weight > 0 and self.synthesize is None:
            raise ConfigurationError(
                f"{self.kind}: a synthesis weight needs a synthesize callable"
            )


_REGISTRY: Dict[str, StrategyInfo] = {}

#: Modules whose import registers the built-in families.
_BUILTIN_MODULES = ("repro.core.strategies", "repro.core.policies")
_BUILTINS_LOADED = False
_PLUGINS_LOADED = False


def _ensure_loaded() -> None:
    """Import built-in strategy modules and entry-point plugins once."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        # Set the flag first: the builtin modules import this module for
        # the decorator, so re-entry during their import must no-op.
        _BUILTINS_LOADED = True
        for mod in _BUILTIN_MODULES:
            importlib.import_module(mod)
    discover_plugins()


def _derived_vectorizable(builder: Callable[..., Any]) -> bool:
    """Best-effort vectorizable flag from class attributes (legacy path).

    Mirrors ``HostingStrategy.vectorizable``: opportunistic switching
    only blocks vectorization when the family lacks a closed-form dwell
    model (``_vector_dwell``).
    """
    return bool(
        getattr(builder, "_vector_decisions", False)
        and (
            not getattr(builder, "opportunistic_switching", False)
            or getattr(builder, "_vector_dwell", False)
        )
    )


def _register(info: StrategyInfo, override: bool) -> None:
    existing = _REGISTRY.get(info.kind)
    if existing is not None and not override:
        if existing.builder is info.builder:
            # Idempotent re-registration (module re-import) is harmless.
            _REGISTRY[info.kind] = info
            return
        raise ConfigurationError(
            f"strategy kind {info.kind!r} is already registered to "
            f"{existing.builder!r}; pass override=True to replace it"
        )
    _REGISTRY[info.kind] = info


def register_strategy(
    kind: str,
    *,
    display_name: str = "",
    citation: str = "",
    vectorizable: Optional[bool] = None,
    arg_schema: Tuple[ArgSpec, ...] = (),
    example_args: Tuple[Any, ...] = (),
    example_options: Tuple[Tuple[str, Any], ...] = (),
    synthesis_weight: float = 0.0,
    synthesize: Optional[Callable[..., Any]] = None,
    summary: str = "",
    override: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class decorator registering a strategy family under ``kind``.

    ``vectorizable`` defaults to the decorated class's own
    ``_vector_decisions``/``opportunistic_switching`` flags so metadata
    cannot silently drift from behaviour.
    """

    def decorator(builder: Callable[..., Any]) -> Callable[..., Any]:
        _register(
            StrategyInfo(
                kind=kind,
                builder=builder,
                display_name=display_name or kind,
                citation=citation,
                vectorizable=(
                    _derived_vectorizable(builder)
                    if vectorizable is None
                    else vectorizable
                ),
                arg_schema=tuple(arg_schema),
                example_args=tuple(example_args),
                example_options=tuple(example_options),
                synthesis_weight=synthesis_weight,
                synthesize=synthesize,
                summary=summary,
            ),
            override=override,
        )
        return builder

    return decorator


def register_strategy_kind(
    kind: str,
    builder: Callable[..., Any],
    *,
    override: bool = False,
    **metadata: Any,
) -> None:
    """Functional registration (the historical ``runtime.spec`` surface).

    Re-registering an existing kind raises
    :class:`~repro.errors.ConfigurationError`; pass ``override=True`` to
    replace it deliberately. Extra keyword arguments become
    :class:`StrategyInfo` metadata.
    """
    register_strategy(
        kind,
        display_name=metadata.pop("display_name", ""),
        citation=metadata.pop("citation", ""),
        vectorizable=metadata.pop("vectorizable", None),
        arg_schema=tuple(metadata.pop("arg_schema", ())),
        example_args=tuple(metadata.pop("example_args", ())),
        example_options=tuple(metadata.pop("example_options", ())),
        synthesis_weight=metadata.pop("synthesis_weight", 0.0),
        synthesize=metadata.pop("synthesize", None),
        summary=metadata.pop("summary", ""),
        override=override,
    )(builder)
    if metadata:
        raise ConfigurationError(
            f"unknown registration metadata for {kind!r}: {sorted(metadata)}"
        )


def unregister_strategy(kind: str) -> None:
    """Remove a registered kind (test hygiene for temporary plugins)."""
    if kind not in _REGISTRY:
        raise ConfigurationError(f"strategy kind {kind!r} is not registered")
    del _REGISTRY[kind]


# --------------------------------------------------------------- enumeration
def strategy_kinds() -> List[str]:
    """All registered strategy kinds, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def strategy_infos() -> List[StrategyInfo]:
    """All registered :class:`StrategyInfo` entries, sorted by kind."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def strategy_info(kind: str) -> StrategyInfo:
    """The :class:`StrategyInfo` for ``kind`` (raises when unknown)."""
    info = _REGISTRY.get(kind)
    if info is None:
        _ensure_loaded()
        info = _REGISTRY.get(kind)
    if info is None:
        raise ConfigurationError(
            f"unknown strategy kind {kind!r}; registered: {strategy_kinds()}"
        )
    return info


def strategy_builder(kind: str) -> Callable[..., Any]:
    """The constructor registered under ``kind``."""
    return strategy_info(kind).builder


def info_for_builder(builder: Callable[..., Any]) -> Optional[StrategyInfo]:
    """Reverse lookup: the entry whose builder is ``builder`` (or a parent
    class of it), or ``None``."""
    _ensure_loaded()
    for info in _REGISTRY.values():
        if info.builder is builder:
            return info
    if isinstance(builder, type):
        for info in _REGISTRY.values():
            if isinstance(info.builder, type) and issubclass(builder, info.builder):
                return info
    return None


def example_spec(kind: str):
    """A representative :class:`~repro.runtime.spec.StrategySpec` for
    ``kind`` on the standard test grid, built from registry metadata."""
    info = strategy_info(kind)
    from repro.runtime.spec import StrategySpec  # deferred: spec imports us

    return StrategySpec(
        kind=kind,
        args=tuple(info.example_args),
        options=tuple(info.example_options),
    )


def synthesis_cohort() -> List[StrategyInfo]:
    """Families :func:`~repro.fleet.spec.synthesize_fleet` may draw,
    sorted by kind (deterministic draw order)."""
    return [i for i in strategy_infos() if i.synthesis_weight > 0]


# ------------------------------------------------------------------- plugins
def discover_plugins(force: bool = False) -> List[str]:
    """Load ``repro.strategies`` entry points; returns newly added kinds.

    A broken plugin warns instead of breaking every registry consumer.
    """
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED and not force:
        return []
    _PLUGINS_LOADED = True
    before = set(_REGISTRY)
    try:
        from importlib.metadata import entry_points

        eps = list(entry_points(group=ENTRY_POINT_GROUP))
    except Exception:  # pragma: no cover - metadata backend quirks
        return []
    for ep in eps:
        try:
            target = ep.load()
            if callable(target) and not isinstance(target, type):
                target()  # registration hook
        except Exception as exc:  # pragma: no cover - plugin bugs
            warnings.warn(
                f"failed to load strategy plugin {ep.name!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return sorted(set(_REGISTRY) - before)
