"""One-call simulation facade: config in, results out.

:func:`run_simulation` builds the whole stack for one seed — trace catalog,
provider, scheduler — runs it to the horizon, and distils a
:class:`~repro.core.results.SimulationResult`. :func:`run_many` repeats it
over seeds, mirroring the paper's "different sample for each simulation
run" methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.bidding import BiddingPolicy, ProactiveBidding
from repro.core.results import SimulationResult
from repro.core.scheduler import CloudScheduler
from repro.core.strategies import HostingStrategy
from repro.cloud.provider import CloudProvider
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.simulator.engine import Engine
from repro.simulator.rng import RngStreams
from repro.traces.calibration import MarketCalibration, REGIONS, SIZES
from repro.traces.catalog import TraceCatalog, build_catalog
from repro.units import SECONDS_PER_HOUR, days
from repro.vm.mechanisms import (
    Mechanism,
    MechanismParams,
    MigrationModel,
    TYPICAL_PARAMS,
)

__all__ = [
    "SimulationConfig",
    "SimStack",
    "ObservedRun",
    "build_stack",
    "summarize_stack",
    "run_simulation",
    "run_simulation_instrumented",
    "run_simulation_observed",
    "run_many",
]

#: Strategy factory: builds a fresh strategy per run (strategies are cheap
#: and some hold per-run state in the future).
StrategyFactory = Callable[[], HostingStrategy]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one scheduler run needs.

    ``catalog`` may be supplied to reuse a pre-built trace set (e.g. to run
    several policies on the *same* price sample, as the paper's policy
    comparisons require); otherwise a catalog is generated from ``seed``.
    """

    strategy: StrategyFactory
    bidding: BiddingPolicy = field(default_factory=ProactiveBidding)
    mechanism: Mechanism = Mechanism.CKPT_LR_LIVE
    params: MechanismParams = TYPICAL_PARAMS
    seed: int = 0
    horizon_s: float = days(30)
    regions: tuple = REGIONS
    sizes: tuple = SIZES
    catalog: Optional[TraceCatalog] = None
    calibrations: Optional[Mapping[tuple, MarketCalibration]] = None
    startup_cv: float = 0.25
    service_disk_gib: float = 2.0
    label: str = ""
    #: Optional :class:`repro.testkit.faults.FaultPlan` (duck-typed — any
    #: object with ``apply_to_catalog``/``wrap_provider``). Applied while
    #: building the stack: spikes overlay the catalog *before* the provider
    #: sees it, so billing and bids both face the faulted prices.
    faults: Optional[object] = None

    def __post_init__(self) -> None:
        if self.horizon_s <= SECONDS_PER_HOUR:
            raise ConfigurationError("horizon must exceed one hour")

    def with_(self, **kw) -> "SimulationConfig":
        """A copy with fields replaced."""
        return replace(self, **kw)


def _result_label(config: SimulationConfig, strategy: HostingStrategy) -> str:
    if config.label:
        return config.label
    return f"{config.bidding.name}/{config.mechanism.value}/{strategy!r}"


@dataclass(frozen=True)
class ObservedRun:
    """One simulation's summary plus its observability by-products."""

    result: SimulationResult
    fired_events: int  #: discrete events the engine processed
    metrics: MetricsRegistry  #: the scheduler's per-run metric registry
    #: Which engine actually executed the run: ``"event"`` (per-event
    #: loop) or ``"vector"`` (batched boundary scans). A run *requested*
    #: on the vector engine still reports ``"event"`` when its
    #: configuration was not vectorizable and the scheduler fell back.
    engine_kind: str = "event"
    #: Boundary-check instants the vector engine evaluated as array scans
    #: (0 on the event engine).
    vector_checks: int = 0
    #: Per-market ``(lo, hi)`` envelope of every price the run compared
    #: against its reverse-migration threshold (``None`` off the vector
    #: scheduler). The batch executor's fusion tier uses it to clone runs
    #: whose reverse thresholds this trajectory provably never told apart.
    reverse_band: Optional[Dict[object, Tuple[float, float]]] = None


@dataclass
class SimStack:
    """The fully-assembled machinery of one simulation run.

    Built by :func:`build_stack`, run via ``stack.scheduler.run()``, and
    summarised by :func:`summarize_stack`. Keeping the live objects
    together lets post-run oracles (:mod:`repro.testkit.oracles`) audit
    the ledger, availability tracker, and provider against the distilled
    :class:`~repro.core.results.SimulationResult`.
    """

    config: SimulationConfig
    catalog: TraceCatalog
    provider: CloudProvider
    engine: Engine
    scheduler: CloudScheduler
    strategy: HostingStrategy


def build_stack(
    config: SimulationConfig,
    sink: TraceSink = NULL_SINK,
    engine: str = "event",
    fused: Optional[object] = None,
) -> SimStack:
    """Assemble catalog, provider, engine and scheduler for one run.

    If ``config.faults`` is set, its spikes are overlaid on the catalog
    before the provider is constructed (so billing sees the spiked
    prices) and its provider-level faults are applied before the
    scheduler takes the provider.

    ``engine="vector"`` builds a
    :class:`~repro.runtime.vector.VectorScheduler` — bit-identical
    results with no-action decision epochs batch-scanned as array ops.
    Configurations the vector engine cannot batch (non-vectorizable
    strategy or bidding policy, an enabled trace sink) transparently run
    per-event; the scheduler's ``vectorized`` attribute says which
    happened. ``engine="fused"`` is the same scheduler; the name exists
    so single-run entry points accept every batch engine name. ``fused``
    optionally attaches a shared
    :class:`~repro.runtime.fused.FusedScanContext` so boundary-scan rows
    are reused across the runs of a fusion group (ignored by the event
    engine).
    """
    if engine not in ("event", "vector", "fused"):
        raise ConfigurationError(
            f"unknown engine {engine!r} (want 'event', 'vector' or 'fused')"
        )
    catalog = config.catalog
    if catalog is None:
        catalog = build_catalog(
            seed=config.seed,
            horizon=config.horizon_s,
            regions=config.regions,
            sizes=config.sizes,
            calibrations=config.calibrations,
        )
    faults = config.faults
    if faults is not None:
        catalog = faults.apply_to_catalog(catalog)
    streams = RngStreams(config.seed)
    provider = CloudProvider(
        catalog,
        rng=streams.get("provider/startup"),
        startup_cv=config.startup_cv,
        sink=sink,
    )
    if faults is not None:
        provider = faults.wrap_provider(provider, run_seed=config.seed)
    strategy = config.strategy()
    scheduler_cls = CloudScheduler
    extra = {}
    if engine in ("vector", "fused"):
        # Imported lazily: repro.runtime builds on this module.
        from repro.runtime.vector import VectorScheduler

        scheduler_cls = VectorScheduler
        if fused is not None:
            extra["fused"] = fused
    sim_engine = Engine(sink=sink)
    scheduler = scheduler_cls(
        engine=sim_engine,
        provider=provider,
        bidding=config.bidding,
        strategy=strategy,
        migration_model=MigrationModel(config.mechanism, config.params),
        rng=streams.get("scheduler/jitter"),
        horizon=config.horizon_s,
        service_disk_gib=config.service_disk_gib,
        sink=sink,
        **extra,
    )
    return SimStack(
        config=config,
        catalog=catalog,
        provider=provider,
        engine=sim_engine,
        scheduler=scheduler,
        strategy=strategy,
    )


def summarize_stack(stack: SimStack) -> SimulationResult:
    """Distil a completed stack into a :class:`SimulationResult` and set
    the summary gauges on the scheduler's metric registry."""
    config = stack.config
    scheduler = stack.scheduler
    avail = scheduler.availability
    ledger = scheduler.ledger
    duration_h = avail.window_duration / SECONDS_PER_HOUR
    baseline_rate = stack.strategy.baseline_rate(stack.provider)
    baseline_cost = baseline_rate * duration_h
    norm = (
        ledger.normalized_cost_percent(baseline_rate, avail.window_duration)
        if duration_h > 0
        else 0.0
    )
    by_cause: dict[str, float] = {}
    for iv in avail.downtime:
        by_cause[iv.cause] = by_cause.get(iv.cause, 0.0) + iv.duration
    result = SimulationResult(
        label=_result_label(config, stack.strategy),
        seed=config.seed,
        duration_hours=duration_h,
        total_cost=ledger.total,
        baseline_cost=baseline_cost,
        normalized_cost_percent=norm,
        unavailability_percent=avail.unavailability_percent(),
        downtime_s=avail.total_downtime(),
        degraded_s=avail.total_degraded(),
        forced_migrations=scheduler.migration_count("forced"),
        planned_migrations=scheduler.migration_count("planned", "spot-switch"),
        reverse_migrations=scheduler.migration_count("reverse"),
        outages=scheduler.migration_count("outage"),
        spot_cost=ledger.total_by_kind("spot"),
        on_demand_cost=ledger.total_by_kind("on_demand"),
        spot_time_fraction=scheduler.spot_time_fraction(),
        downtime_by_cause=by_cause,
        forced_times=tuple(
            m.started_at for m in scheduler.migrations if m.kind == "forced"
        ),
    )
    metrics = scheduler.metrics
    metrics.gauge("total_cost_usd").set(result.total_cost)
    metrics.gauge("normalized_cost_percent").set(result.normalized_cost_percent)
    metrics.gauge("unavailability_percent").set(result.unavailability_percent)
    metrics.gauge("spot_time_fraction").set(result.spot_time_fraction)
    return result


def run_simulation(config: SimulationConfig, verify: bool = False) -> SimulationResult:
    """Run one seeded scheduler simulation and summarise it.

    ``verify=True`` runs the :mod:`repro.testkit.oracles` conservation
    checks after the run and raises
    :class:`~repro.errors.InvariantViolation` if any fail.
    """
    return run_simulation_observed(config, verify=verify).result


def run_simulation_instrumented(
    config: SimulationConfig,
) -> tuple[SimulationResult, int]:
    """Like :func:`run_simulation`, also returning the engine's fired-event
    count (the runtime layer's events-processed telemetry)."""
    observed = run_simulation_observed(config)
    return observed.result, observed.fired_events


def run_simulation_observed(
    config: SimulationConfig,
    sink: TraceSink = NULL_SINK,
    verify: bool = False,
    engine: str = "event",
    fused: Optional[object] = None,
) -> ObservedRun:
    """Run one simulation with decision tracing and metrics attached.

    ``sink`` receives every :mod:`repro.obs` trace event the stack emits
    (engine, provider, scheduler); the default null sink costs one branch
    per emission site, so results are identical whether or not anyone is
    listening. The returned :class:`ObservedRun` carries the scheduler's
    metric registry alongside the usual summary. ``verify=True`` audits
    the completed stack with the invariant oracles and raises
    :class:`~repro.errors.InvariantViolation` on any red check.
    ``engine`` selects the execution engine (see :func:`build_stack`);
    the returned run's ``engine_kind`` reports which one actually ran.
    """
    stack = build_stack(config, sink=sink, engine=engine, fused=fused)
    stack.scheduler.run()
    result = summarize_stack(stack)
    if verify:
        # Imported lazily: the testkit builds on this module.
        from repro.testkit.oracles import verify_stack

        verify_stack(stack, result).raise_on_failure()
    kind = "vector" if getattr(stack.scheduler, "vectorized", False) else "event"
    return ObservedRun(
        result=result,
        fired_events=stack.engine.fired_count,
        metrics=stack.scheduler.metrics,
        engine_kind=kind,
        vector_checks=int(getattr(stack.scheduler, "vector_checks", 0)),
        reverse_band=getattr(stack.scheduler, "reverse_band", None),
    )


def run_many(
    config: SimulationConfig,
    seeds: List[int],
    jobs: int = 1,
    ledger: Optional[object] = None,
    resume: bool = False,
    engine: str = "auto",
) -> List[SimulationResult]:
    """Run the same configuration over several trace samples.

    A thin wrapper over :func:`repro.runtime.run_batch`: each seed becomes
    a :class:`~repro.runtime.RunSpec` (any attached catalog is dropped —
    every seed gets its own sample, served through the runtime's catalog
    cache). ``jobs > 1`` fans the seeds across worker processes with
    results in seed order, identical to the serial run. ``ledger`` /
    ``resume`` journal completed seeds to a crash-safe run ledger and
    replay them on restart (see :mod:`repro.runtime.ledger`).
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    # Imported lazily: repro.runtime builds on this module.
    from repro.runtime import RunSpec, run_batch

    specs = [RunSpec.from_config(config, seed=s) for s in seeds]
    return list(
        run_batch(specs, jobs=jobs, ledger=ledger, resume=resume, engine=engine).results
    )
