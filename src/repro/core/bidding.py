"""Bidding policies: reactive versus proactive (Section 3.1).

Both policies hold a spot server while it is cheap and run on-demand while
it is not; they differ in *who initiates* the transition off spot:

* **Reactive** bids exactly the on-demand price (``p_b = p_on``). The cloud
  platform revokes the server the moment the spot price exceeds the
  on-demand price, so every transition off spot is a *forced* migration
  executed inside the revocation grace window.
* **Proactive** bids ``k`` times the on-demand price (``k = 4``, the
  provider's cap). The scheduler watches the price itself and *voluntarily*
  migrates — with all the time it needs — when the spot price exceeds the
  on-demand price at a billing boundary. Only a sharp spike past ``k * p_on``
  (before a planned migration can start or finish) forces a migration.

Because spot hours are billed at the start-of-hour price, a mid-hour price
excursion costs a proactive bidder nothing until the next boundary — which
is also why the policy evaluates planned migrations "near the end of a
billing period" rather than instantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.cloud.spot_market import SpotMarket
from repro.errors import ConfigurationError

__all__ = ["BiddingPolicy", "ReactiveBidding", "ProactiveBidding"]


class BiddingPolicy(Protocol):
    """What the scheduler needs from a bidding policy.

    Policies may additionally opt into the vectorized batch engine by
    setting ``vectorizable = True`` and providing
    ``planned_migration_mask(prices, od)`` / ``reverse_migration_mask``
    array twins of the scalar predicates. The contract is strict: the
    bid must be time-invariant within a run and each mask must perform
    the *same float comparisons* as its scalar twin, elementwise. The
    engine treats a missing flag as False and falls back per-event.
    """

    name: str

    def bid_price(self, market: SpotMarket, t: float = 0.0) -> float:
        """The maximum hourly price to bid in ``market`` at time ``t``.

        Static policies ignore ``t``; adaptive ones inspect the market's
        trailing price history up to that instant.
        """
        ...

    def wants_planned_migration(self, spot_price: float, on_demand_price: float) -> bool:
        """Leave the spot market voluntarily at the next boundary?"""
        ...

    def wants_reverse_migration(self, spot_price: float, on_demand_price: float) -> bool:
        """Return to the spot market at the next boundary?"""
        ...

    def explain_bid(self, market: SpotMarket, t: float = 0.0) -> str:
        """One-line rationale for the bid (attached to trace events)."""
        ...

    def dynamics_signature(self, od_prices) -> object | None:
        """Optional: a hashable token identifying the policy's *dynamics*.

        Two policies with equal signatures place the identical bid in
        every market (given the per-market on-demand prices) and apply
        identical migration predicates — so over the same trace catalog,
        strategy, and seed they drive byte-identical runs. The batch
        executor uses this to run one representative of a
        dynamics-identical group and clone the rest. Return ``None`` (or
        omit the method) for stateful or time-varying policies.
        """
        ...


@dataclass(frozen=True)
class ReactiveBidding:
    """Bid the on-demand price; let the provider's revocation do the work."""

    name: str = "reactive"

    #: The vector engine may batch runs under this policy: the bid is
    #: time-invariant and both ``wants_*`` predicates are pure functions
    #: of their arguments (mirrored below as array masks).
    vectorizable = True

    def bid_price(self, market: SpotMarket, t: float = 0.0) -> float:
        return market.on_demand_price

    def wants_planned_migration(self, spot_price: float, on_demand_price: float) -> bool:
        # The bid equals the on-demand price, so the price can never sit
        # strictly between bid and on-demand: planned migrations never fire.
        return False

    def wants_reverse_migration(self, spot_price: float, on_demand_price: float) -> bool:
        return spot_price <= on_demand_price

    def planned_migration_mask(self, spot_prices, on_demand_price: float):
        """Array form of :meth:`wants_planned_migration` (always False)."""
        import numpy as np

        return np.zeros(np.shape(spot_prices), dtype=bool)

    def reverse_migration_mask(self, spot_prices, on_demand_price: float):
        """Array form of :meth:`wants_reverse_migration` — identical
        comparison, elementwise."""
        return spot_prices <= on_demand_price

    def explain_bid(self, market: SpotMarket, t: float = 0.0) -> str:
        return f"match on-demand ${market.on_demand_price:.4f}; platform revokes on crossing"

    def dynamics_signature(self, od_prices) -> tuple:
        """Reactive dynamics depend only on the on-demand prices (the bid
        *is* the on-demand price); the name rides along so default result
        labels stay distinct across differently-named instances."""
        return (self.name, "reactive")

    def dynamics_components(self, od_prices) -> dict:
        """Structured split of :meth:`dynamics_signature` by which part of
        the scheduler consumes each parameter, so capability-aware dedupe
        (:func:`repro.runtime.fused.fused_dedupe_key`) can project out
        components a strategy never evaluates. ``planned`` is ``None``:
        the reactive planned predicate is constant-False. The
        ``*_thresholds`` entries are the numeric per-market thresholds
        each predicate compares trace prices against (``None`` for a
        constant predicate), computed with the same float expressions
        the scalar predicates use."""
        ods = tuple(float(od) for od in od_prices)
        return {
            "name": self.name,
            "bids": ods,
            "planned": None,
            "planned_thresholds": None,
            "reverse": ("od",),
            "reverse_thresholds": ods,
        }

    @property
    def is_proactive(self) -> bool:
        return False


@dataclass(frozen=True)
class ProactiveBidding:
    """Bid ``k * p_on`` and migrate voluntarily when the price passes p_on.

    ``reverse_threshold_frac`` adds a little hysteresis on the way back to
    spot: a reverse migration is only worthwhile when the spot price is
    comfortably below on-demand, otherwise small oscillations around p_on
    would churn migrations.
    """

    k: float = 4.0
    reverse_threshold_frac: float = 0.9
    name: str = "proactive"

    #: Static bid, pure predicates: safe for the vector engine to batch.
    vectorizable = True

    def __post_init__(self) -> None:
        if self.k <= 1.0:
            raise ConfigurationError(f"proactive bid multiplier must exceed 1, got {self.k}")
        if not 0 < self.reverse_threshold_frac <= 1.0:
            raise ConfigurationError("reverse threshold must be in (0, 1]")

    def bid_price(self, market: SpotMarket, t: float = 0.0) -> float:
        return min(self.k * market.on_demand_price, market.bid_cap)

    def wants_planned_migration(self, spot_price: float, on_demand_price: float) -> bool:
        return spot_price > on_demand_price

    def wants_reverse_migration(self, spot_price: float, on_demand_price: float) -> bool:
        return spot_price <= on_demand_price * self.reverse_threshold_frac

    def planned_migration_mask(self, spot_prices, on_demand_price: float):
        """Array form of :meth:`wants_planned_migration`: same strict
        comparison against the same scalar threshold, elementwise."""
        return spot_prices > on_demand_price

    def reverse_migration_mask(self, spot_prices, on_demand_price: float):
        """Array form of :meth:`wants_reverse_migration`. The threshold
        product is computed once as the identical scalar multiplication
        the scalar predicate performs, so the comparisons are bit-equal."""
        return spot_prices <= on_demand_price * self.reverse_threshold_frac

    def explain_bid(self, market: SpotMarket, t: float = 0.0) -> str:
        capped = self.k * market.on_demand_price > market.bid_cap
        return (
            f"{self.k:g} x on-demand ${market.on_demand_price:.4f}"
            + ("; clipped to provider cap" if capped else "; scheduler exits voluntarily")
        )

    def dynamics_signature(self, od_prices) -> tuple:
        """The *effective* bids plus the reverse threshold.

        Bids are clamped at the provider cap (``BID_CAP_MULTIPLIER *
        p_on``), so every ``k`` at or above the cap multiplier yields the
        same bid — and therefore, with equal thresholds, byte-identical
        dynamics. The signature exposes exactly that equivalence: the
        clamped bid per market, computed with the same float ops as
        :meth:`bid_price`.
        """
        from repro.cloud.spot_market import BID_CAP_MULTIPLIER

        bids = tuple(
            min(self.k * float(od), BID_CAP_MULTIPLIER * float(od))
            for od in od_prices
        )
        return (self.name, "proactive", bids, self.reverse_threshold_frac)

    def dynamics_components(self, od_prices) -> dict:
        """Structured split of :meth:`dynamics_signature` (see
        :meth:`ReactiveBidding.dynamics_components`). The planned
        threshold is the per-market on-demand price — parameter-free —
        while the reverse threshold carries ``reverse_threshold_frac``,
        which strategies that never leave spot never evaluate."""
        from repro.cloud.spot_market import BID_CAP_MULTIPLIER

        bids = tuple(
            min(self.k * float(od), BID_CAP_MULTIPLIER * float(od))
            for od in od_prices
        )
        return {
            "name": self.name,
            "bids": bids,
            "planned": ("od",),
            "planned_thresholds": tuple(float(od) for od in od_prices),
            "reverse": ("od-frac", self.reverse_threshold_frac),
            # The scalar predicate computes `od * frac`; same expression here
            # so equal thresholds are bit-equal.
            "reverse_thresholds": tuple(
                float(od) * self.reverse_threshold_frac for od in od_prices
            ),
        }

    @property
    def is_proactive(self) -> bool:
        return True
