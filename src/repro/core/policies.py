"""Related-work policy families built on the strategy registry.

Three hosting strategies the papers around the source reproduction hand
us, each registered with :mod:`repro.core.registry` so the CLIs, spec
layer, fleet synthesizer, and conformance suite pick them up like the
built-ins:

* :class:`IndexTrackingStrategy` — hold a small portfolio (basket) of
  spot markets and rebalance each epoch to track the *on-demand cost
  index* within a tracking-error band (Shastri & Irwin, "Cloud Index
  Tracking", SoCC 2018). Markets whose current spot rate drifts more
  than ``band`` above the index are excluded from candidacy until they
  return, and opportunistic switching chases the cheapest in-band
  member subject to dwell hysteresis.
* :class:`NoFaultToleranceStrategy` — provision spot capacity with *no*
  checkpointing or migration machinery at all (Alourani & Kshemkalyani,
  "Provisioning Spot Instances Without Employing Fault-Tolerance
  Mechanisms"). A revoked service rides the free partial hour, goes
  dark, and recomputes its state from the durable volume when the
  market is re-granted.
* :class:`PortfolioBidStrategy` — per-epoch market selection by solving
  a small linear program over predicted revocation risk vs cost (the
  cvxpy-backed optimal-placement idiom from the Icarus exemplar). The
  default solver is pure NumPy (exact vertex enumeration of the
  two-constraint LP) so the base install and CI stay hermetic; cvxpy is
  an optional backend behind the ``lp`` extra.
"""

from __future__ import annotations

import importlib.util
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.provider import CloudProvider
from repro.core.bidding import BiddingPolicy
from repro.core.registry import ArgSpec, register_strategy
from repro.core.strategies import (
    HostingStrategy,
    PlacementTarget,
    PureSpotStrategy,
    _EXAMPLE_KEY,
    _EXAMPLE_REGIONS,
    _UNITS_ARG,
)
from repro.errors import ConfigurationError
from repro.traces.catalog import MarketKey
from repro.units import SECONDS_PER_HOUR
from repro.vm.memory import MemoryProfile

__all__ = [
    "IndexTrackingStrategy",
    "NoFaultToleranceStrategy",
    "PortfolioBidStrategy",
    "solve_portfolio_lp",
    "HAS_CVXPY",
]

#: Is the optional ``lp`` extra (cvxpy) importable in this environment?
HAS_CVXPY = importlib.util.find_spec("cvxpy") is not None


# --------------------------------------------------------- cohort synthesis
def _synth_index_tracking(rng, market, regions):
    from repro.runtime.spec import StrategySpec

    band = (0.10, 0.15, 0.20)[int(rng.integers(3))]
    return StrategySpec.index_tracking(tuple(regions), band=band)


def _synth_no_ft(rng, market, regions):
    from repro.runtime.spec import StrategySpec

    return StrategySpec.no_fault_tolerance(market)


def _synth_portfolio_bid(rng, market, regions):
    from repro.runtime.spec import StrategySpec

    cap = (0.02, 0.05, 0.10)[int(rng.integers(3))]
    return StrategySpec.portfolio_bid(tuple(regions), risk_cap=cap)


# ----------------------------------------------------------- index tracking
@register_strategy(
    "index-tracking",
    display_name="Index tracking",
    citation="Shastri & Irwin, 'Cloud Index Tracking: Enabling Predictable "
    "Costs in Cloud Spot Markets' (SoCC 2018)",
    arg_schema=(
        ArgSpec("regions", "regions"),
        _UNITS_ARG,
        ArgSpec("n_markets", "int", required=False, default=3,
                help="basket size (cheapest-on-demand markets)"),
        ArgSpec("band", "float", required=False, default=0.15, cli="band",
                help="tracking-error band above the on-demand index"),
    ),
    example_args=(_EXAMPLE_REGIONS,),
    synthesis_weight=0.05,
    synthesize=_synth_index_tracking,
    summary="spot basket rebalanced each epoch to track the on-demand index",
)
class IndexTrackingStrategy(HostingStrategy):
    """A portfolio of spot markets tracking the on-demand cost index.

    The basket is the ``n_markets`` candidate markets with the cheapest
    fleet-scaled on-demand rate across ``regions`` — a static index, so
    two runs on the same catalog always track the same benchmark. At
    every epoch the strategy only considers basket members whose current
    spot rate is within ``band`` of the index (the tracking-error
    constraint) and opportunistically rebalances onto the cheapest
    in-band member, subject to the usual dwell/hysteresis guards.

    Normalization is against the *index* (the basket's mean on-demand
    rate) rather than the cheapest single market, matching how an index
    tracker reports its cost.
    """

    opportunistic_switching = True
    # The rebalance decision has a closed-form dwell model: within one
    # tenure ``_last_spot_switch`` is constant, the dwell gate is a
    # subtraction-and-compare per boundary, and the in-band ranking is
    # raw ``servers x price`` filtered by the (static) band cap — all
    # exact array ops, so the vector engine reproduces every rebalance
    # decision bit-for-bit rather than over-approximating.
    _vector_decisions = True
    _vector_dwell = True

    def __init__(
        self,
        regions: Sequence[str],
        service_units: int = 8,
        n_markets: int = 3,
        band: float = 0.15,
        rebalance_dwell_s: float = 6 * SECONDS_PER_HOUR,
    ) -> None:
        if not regions:
            raise ConfigurationError("need at least one region")
        if service_units <= 0:
            raise ConfigurationError("service_units must be positive")
        if n_markets < 1:
            raise ConfigurationError("basket needs at least one market")
        if band < 0:
            raise ConfigurationError("tracking band must be >= 0")
        if rebalance_dwell_s <= 0:
            raise ConfigurationError("rebalance dwell must be positive")
        self.regions = tuple(regions)
        self.service_units = service_units
        self.n_markets = n_markets
        self.band = float(band)
        self.min_dwell_s = float(rebalance_dwell_s)

    # ------------------------------------------------------------ the index
    def basket(self, provider: CloudProvider) -> List[MarketKey]:
        """The index basket: the ``n_markets`` cheapest-on-demand markets
        (fleet-scaled) across the allowed regions, in key order."""
        cached = self.__dict__.get("_basket_memo")
        if cached is not None and cached[0] is provider.catalog:
            return cached[1]
        candidates: List[MarketKey] = []
        for region in self.regions:
            candidates.extend(provider.catalog.markets_in_region(region))
        ranked = sorted(
            candidates, key=lambda k: (self.on_demand_rate(provider, k), k)
        )
        basket = sorted(ranked[: self.n_markets])
        self._basket_memo = (provider.catalog, basket)
        return basket

    def index_rate(self, provider: CloudProvider) -> float:
        """The on-demand cost index: mean fleet on-demand rate over the
        basket (USD/hour)."""
        basket = self.basket(provider)
        return float(
            np.mean([self.on_demand_rate(provider, k) for k in basket])
        )

    def in_band(self, provider: CloudProvider, key: MarketKey, t: float) -> bool:
        """Is ``key``'s current spot rate within the tracking band?"""
        price = provider.catalog.trace(key).price_at(t)
        return self.spot_rate(key, float(price)) <= self.band_cap(provider)

    def band_cap(self, provider: CloudProvider) -> float:
        """The highest spot rate the tracking band admits (USD/hour)."""
        return (1.0 + self.band) * self.index_rate(provider)

    def spot_rate_cap(self, provider: CloudProvider) -> float:
        """The vector engine's candidate filter is the tracking band."""
        return self.band_cap(provider)

    # ---------------------------------------------------- strategy contract
    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        return self.basket(provider)

    def baseline_rate(self, provider: CloudProvider) -> float:
        return self.index_rate(provider)

    def best_spot_target(
        self,
        provider: CloudProvider,
        bidding: BiddingPolicy,
        t: float,
        exclude: Optional[MarketKey] = None,
    ) -> Optional[PlacementTarget]:
        """Cheapest grantable basket member *within the tracking band*."""
        if not self.allows_spot:
            return None
        cap = self.band_cap(provider)
        best: Optional[PlacementTarget] = None
        for key in self.candidate_markets(provider):
            if exclude is not None and key == exclude:
                continue
            market = provider.market(key)
            bid = bidding.bid_price(market, t)
            market.validate_bid(bid)
            price = market.price_at(t)
            if price > bid:
                continue
            rate = self.spot_rate(key, price)
            if rate > cap:
                continue  # outside the tracking-error band right now
            if best is None or rate < best.rate:
                best = PlacementTarget(
                    key=key, n_servers=self.servers_needed(key), rate=rate
                )
        return best

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IndexTracking({','.join(self.regions)}, n={self.n_markets}, "
            f"band={self.band})"
        )


# --------------------------------------------------------- no fault tolerance
@register_strategy(
    "no-ft",
    display_name="No fault tolerance",
    citation="Alourani & Kshemkalyani, 'Provisioning Spot Instances Without "
    "Employing Fault-Tolerance Mechanisms' (arXiv:2003.13846)",
    arg_schema=(
        ArgSpec("key", "market"),
        ArgSpec("recompute_s", "float", required=False, default=600.0,
                help="seconds to rebuild in-memory state after a loss"),
    ),
    example_args=(_EXAMPLE_KEY,),
    synthesis_weight=0.03,
    synthesize=_synth_no_ft,
    summary="no checkpoints: ride free revoked partial hours, recompute on loss",
)
class NoFaultToleranceStrategy(PureSpotStrategy):
    """Spot-only hosting with the fault-tolerance machinery switched off.

    Exploits the 2015 billing rule the paper leans on: a *revoked*
    partial hour is free, so losing a spot server costs nothing in
    dollars — only the recompute time. The scheduler consults
    ``fault_tolerant`` and, for this strategy, skips the checkpoint
    write inside the grace window and replaces the restore on re-grant
    with a flat ``recompute_s`` rebuild from the durable volume.

    Compared to :class:`~repro.core.strategies.PureSpotStrategy` it
    trades longer outages (recompute instead of restore) for zero
    checkpoint overhead; there is still nothing to migrate, so it never
    pays for a revoked partial hour.
    """

    fault_tolerant = False
    # The recompute path only exists in the event engine; keep the
    # vector engine honest by never routing this family to it.
    _vector_decisions = False

    def __init__(self, key: MarketKey, recompute_s: float = 600.0) -> None:
        super().__init__(key)
        if recompute_s < 0:
            raise ConfigurationError("recompute time must be >= 0")
        self.recompute_s = float(recompute_s)

    def migration_memory(self, key: MarketKey) -> MemoryProfile:
        """Nothing is ever checkpointed or migrated: a token profile so
        volume sizing stays well-formed."""
        cache = self.__dict__.setdefault("_memory_memo", {})
        mem = cache.get(key)
        if mem is None:
            mem = cache[key] = MemoryProfile(size_gib=0.001, dirty_rate_mbps=0.0)
        return mem

    def __repr__(self) -> str:  # pragma: no cover
        return f"NoFaultTolerance({self.key}, recompute_s={self.recompute_s})"


# ------------------------------------------------------------ LP portfolio bid
def solve_portfolio_lp(
    costs: Sequence[float],
    risks: Sequence[float],
    risk_cap: float,
    solver: str = "numpy",
) -> Optional[np.ndarray]:
    """Solve ``min c·w  s.t.  Σw = 1,  r·w <= cap,  w >= 0`` exactly.

    Returns the optimal weight vector, or ``None`` when the program is
    infeasible (every market's predicted risk exceeds the cap — mixing
    cannot help since risk is linear in ``w``).

    ``solver="numpy"`` (the default) enumerates the LP's vertices
    directly: with one equality and one inequality constraint an optimal
    basic solution has at most two nonzero weights — either a single
    feasible market, or a two-market mix pinned to the risk boundary.
    ``solver="cvxpy"`` delegates to cvxpy (the ``lp`` extra) and exists
    for cross-checking the closed form; it raises
    :class:`~repro.errors.ConfigurationError` when cvxpy is not
    installed.
    """
    c = np.asarray(costs, dtype=float)
    r = np.asarray(risks, dtype=float)
    if c.ndim != 1 or c.shape != r.shape or c.size == 0:
        raise ConfigurationError("costs and risks must be equal-length 1-D arrays")
    if risk_cap < 0:
        raise ConfigurationError("risk cap must be >= 0")
    if solver == "cvxpy":
        return _solve_lp_cvxpy(c, r, float(risk_cap))
    if solver != "numpy":
        raise ConfigurationError(f"unknown LP solver {solver!r}")
    return _solve_lp_vertices(c, r, float(risk_cap))


def _solve_lp_vertices(
    c: np.ndarray, r: np.ndarray, cap: float
) -> Optional[np.ndarray]:
    n = c.size
    best_w: Optional[np.ndarray] = None
    best_obj = np.inf
    best_risk = np.inf

    def consider(w: np.ndarray) -> None:
        nonlocal best_w, best_obj, best_risk
        obj = float(c @ w)
        risk = float(r @ w)
        # Strictly-better objective wins; on ties prefer the lower-risk
        # portfolio so cost-equal-but-riskier supports never surface.
        if obj < best_obj - 1e-12 or (
            abs(obj - best_obj) <= 1e-12 and risk < best_risk - 1e-12
        ):
            best_w, best_obj, best_risk = w, obj, risk

    feasible = np.flatnonzero(r <= cap)
    for i in feasible:
        w = np.zeros(n)
        w[i] = 1.0
        consider(w)

    # Two-market vertices sit on the risk boundary: a low-risk anchor
    # mixed with a cheaper-but-riskier market.
    low = np.flatnonzero(r < cap)
    high = np.flatnonzero(r > cap)
    for i in low:
        for j in high:
            a = (r[j] - cap) / (r[j] - r[i])  # weight on the low-risk anchor
            w = np.zeros(n)
            w[i] = a
            w[j] = 1.0 - a
            consider(w)
    return best_w


def _solve_lp_cvxpy(c: np.ndarray, r: np.ndarray, cap: float) -> Optional[np.ndarray]:
    if not HAS_CVXPY:
        raise ConfigurationError(
            "solver='cvxpy' needs the optional 'lp' extra (pip install repro[lp])"
        )
    import cvxpy as cp

    w = cp.Variable(c.size, nonneg=True)
    problem = cp.Problem(cp.Minimize(c @ w), [cp.sum(w) == 1, r @ w <= cap])
    problem.solve()
    if w.value is None or problem.status not in ("optimal", "optimal_inaccurate"):
        return None
    out = np.clip(np.asarray(w.value, dtype=float), 0.0, None)
    return out / out.sum()


@register_strategy(
    "portfolio-bid",
    display_name="LP portfolio bid",
    citation="Optimization-based bid/market selection over predicted "
    "revocation risk vs cost (cvxpy idiom from the Icarus exemplar; cf. "
    "Shastri & Irwin, SoCC 2018)",
    arg_schema=(
        ArgSpec("regions", "regions"),
        _UNITS_ARG,
        ArgSpec("risk_cap", "float", required=False, default=0.05,
                cli="risk_cap", help="max predicted revocation risk per epoch"),
        ArgSpec("lookback_s", "float", required=False,
                default=3 * 24 * SECONDS_PER_HOUR,
                help="trailing window for the risk estimate"),
    ),
    example_args=(_EXAMPLE_REGIONS,),
    synthesis_weight=0.02,
    synthesize=_synth_portfolio_bid,
    summary="per-epoch LP over predicted revocation risk vs spot cost",
)
class PortfolioBidStrategy(HostingStrategy):
    """Per-epoch market selection by a small risk-vs-cost linear program.

    At every decision epoch the strategy estimates each candidate
    market's *revocation risk* — the trailing-window fraction of time
    the price sat above the bidding policy's bid — and solves
    :func:`solve_portfolio_lp` for the cost-minimal portfolio whose
    expected risk stays under ``risk_cap``. The scheduler hosts one
    placement at a time, so the LP's heaviest-weight market is chosen
    (the classic LP-relaxation rounding). When no market is individually
    under the cap the program is infeasible and the strategy falls back
    to the minimum-risk grantable market.
    """

    # The LP re-ranks candidates per epoch, which the vector engine does
    # not model — but it doesn't need to: the epoch grid is scannable
    # with the sound any-candidate over-approximation (stop wherever
    # *some* grantable market beats on-demand), and the scalar LP
    # decides exactly at the boundaries the scan selects.
    _vector_decisions = True
    _vector_exact_od_ranking = False

    def __init__(
        self,
        regions: Sequence[str],
        service_units: int = 8,
        risk_cap: float = 0.05,
        lookback_s: float = 3 * 24 * SECONDS_PER_HOUR,
        solver: str = "numpy",
    ) -> None:
        if not regions:
            raise ConfigurationError("need at least one region")
        if service_units <= 0:
            raise ConfigurationError("service_units must be positive")
        if not 0 <= risk_cap <= 1:
            raise ConfigurationError("risk cap must be in [0, 1]")
        if lookback_s <= 0:
            raise ConfigurationError("lookback must be positive")
        if solver not in ("numpy", "cvxpy"):
            raise ConfigurationError(f"unknown LP solver {solver!r}")
        self.regions = tuple(regions)
        self.service_units = service_units
        self.risk_cap = float(risk_cap)
        self.lookback_s = float(lookback_s)
        self.solver = solver

    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        out: List[MarketKey] = []
        for region in self.regions:
            out.extend(provider.catalog.markets_in_region(region))
        return sorted(out)

    def revocation_risk(
        self, provider: CloudProvider, key: MarketKey, bid: float, t: float
    ) -> float:
        """Trailing-window fraction of time ``key``'s price exceeded
        ``bid`` — the empirical estimate of next-epoch revocation risk."""
        trace = provider.catalog.trace(key)
        t0 = max(trace.start, t - self.lookback_s)
        if t - t0 < SECONDS_PER_HOUR:
            return 0.0
        return float(trace.time_above(bid, t0, t) / (t - t0))

    def best_spot_target(
        self,
        provider: CloudProvider,
        bidding: BiddingPolicy,
        t: float,
        exclude: Optional[MarketKey] = None,
    ) -> Optional[PlacementTarget]:
        """The LP's heaviest-weight grantable market at time ``t``."""
        if not self.allows_spot:
            return None
        keys: List[MarketKey] = []
        rates: List[float] = []
        risks: List[float] = []
        for key in self.candidate_markets(provider):
            if exclude is not None and key == exclude:
                continue
            market = provider.market(key)
            bid = bidding.bid_price(market, t)
            market.validate_bid(bid)
            price = market.price_at(t)
            if price > bid:
                continue  # not grantable at this instant
            keys.append(key)
            rates.append(self.spot_rate(key, price))
            risks.append(self.revocation_risk(provider, key, bid, t))
        if not keys:
            return None
        weights = solve_portfolio_lp(rates, risks, self.risk_cap, solver=self.solver)
        if weights is None:
            # Infeasible: every grantable market is over the cap. Take
            # the least-risky one (then cheapest, then key order).
            i = min(range(len(keys)), key=lambda m: (risks[m], rates[m], keys[m]))
        else:
            i = min(
                range(len(keys)),
                key=lambda m: (-weights[m], rates[m], keys[m]),
            )
        return PlacementTarget(
            key=keys[i], n_servers=self.servers_needed(keys[i]), rate=rates[i]
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PortfolioBid({','.join(self.regions)}, cap={self.risk_cap}, "
            f"solver={self.solver})"
        )
