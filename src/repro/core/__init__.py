"""The cloud scheduler — the paper's primary contribution.

A :class:`~repro.core.scheduler.CloudScheduler` hosts an always-on service
on a mix of spot and on-demand servers, combining a bidding policy
(:mod:`repro.core.bidding`: reactive vs proactive), a hosting strategy
(:mod:`repro.core.strategies`: single-market, multi-market, multi-region,
pure-spot, on-demand-only; :mod:`repro.core.policies`: index-tracking,
no-fault-tolerance, LP portfolio bid) and a migration mechanism
(:mod:`repro.vm.mechanisms`). Strategy families register themselves with
:mod:`repro.core.registry`, which every consumer (CLIs, specs, fleet
synthesis) enumerates. Costs and downtime are tracked by
:mod:`repro.core.accounting`; :func:`repro.core.simulation.run_simulation`
is the one-call facade the experiments use.
"""

from repro.core.accounting import AvailabilityTracker, CostLedger, DowntimeInterval
from repro.core.bidding import BiddingPolicy, ReactiveBidding, ProactiveBidding
from repro.core.adaptive import AdaptiveBidding
from repro.core.strategies import (
    HostingStrategy,
    SingleMarketStrategy,
    MultiMarketStrategy,
    MultiRegionStrategy,
    PureSpotStrategy,
    OnDemandOnlyStrategy,
    StabilityAwareStrategy,
)
from repro.core.policies import (
    IndexTrackingStrategy,
    NoFaultToleranceStrategy,
    PortfolioBidStrategy,
    solve_portfolio_lp,
)
from repro.core.registry import (
    ArgSpec,
    StrategyInfo,
    register_strategy,
    strategy_info,
    strategy_infos,
    strategy_kinds,
)
from repro.core.scheduler import CloudScheduler, MigrationRecord, PlacementRecord, ServiceContext
from repro.core.replication import ReplicatedScheduler
from repro.core.elastic import DemandCurve, ElasticResult, ElasticSpotFleet
from repro.core.results import SimulationResult, AggregateResult, aggregate
from repro.core.simulation import (
    ObservedRun,
    SimulationConfig,
    run_simulation,
    run_simulation_instrumented,
    run_simulation_observed,
    run_many,
)

__all__ = [
    "AvailabilityTracker",
    "CostLedger",
    "DowntimeInterval",
    "BiddingPolicy",
    "ReactiveBidding",
    "ProactiveBidding",
    "AdaptiveBidding",
    "HostingStrategy",
    "SingleMarketStrategy",
    "MultiMarketStrategy",
    "MultiRegionStrategy",
    "PureSpotStrategy",
    "OnDemandOnlyStrategy",
    "StabilityAwareStrategy",
    "IndexTrackingStrategy",
    "NoFaultToleranceStrategy",
    "PortfolioBidStrategy",
    "solve_portfolio_lp",
    "ArgSpec",
    "StrategyInfo",
    "register_strategy",
    "strategy_info",
    "strategy_infos",
    "strategy_kinds",
    "CloudScheduler",
    "MigrationRecord",
    "PlacementRecord",
    "ServiceContext",
    "ReplicatedScheduler",
    "DemandCurve",
    "ElasticResult",
    "ElasticSpotFleet",
    "SimulationResult",
    "AggregateResult",
    "aggregate",
    "SimulationConfig",
    "ObservedRun",
    "run_simulation",
    "run_many",
    "run_simulation_instrumented",
    "run_simulation_observed",
]
