"""Hosting strategies: which markets the scheduler may use and how.

The paper evaluates three scheduler scopes of increasing freedom
(Section 4) plus two baselines (Section 5):

* **single-market** — one size in one AZ, alternating with on-demand of the
  same size (Figs 6, 7, 11);
* **multi-market** — any size within one AZ, packing the service's nested
  VMs onto larger servers when their per-unit price is lower (Fig 8);
* **multi-region** — any size in any allowed AZ; cross-region moves pay
  WAN migration costs (Fig 9);
* **pure-spot** — spot only, no on-demand fallback: cheap but unavailable
  whenever the price exceeds the bid (Fig 11);
* **on-demand-only** — the cost baseline (100 % by construction).

A strategy answers: what markets are candidates, how many servers does the
service need in each, what does a placement cost per hour, and what is the
normalization baseline. ``service_units`` counts small-equivalents: a
single-market strategy hosts one server's worth of its chosen size, the
multi-market strategies host a fleet of small-sized nested VMs that can be
packed 2/4/8-to-a-server up the size ladder.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.instance_types import instance_type
from repro.cloud.provider import CloudProvider
from repro.core.bidding import BiddingPolicy
from repro.core.registry import ArgSpec, register_strategy
from repro.errors import ConfigurationError
from repro.traces.catalog import MarketKey
from repro.units import SECONDS_PER_HOUR
from repro.vm.memory import MemoryProfile

__all__ = [
    "PlacementTarget",
    "HostingStrategy",
    "SingleMarketStrategy",
    "MultiMarketStrategy",
    "MultiRegionStrategy",
    "PureSpotStrategy",
    "OnDemandOnlyStrategy",
    "StabilityAwareStrategy",
]


@dataclass(frozen=True)
class PlacementTarget:
    """A concrete placement option: a market plus the fleet rate there."""

    key: MarketKey
    n_servers: int
    rate: float  #: USD/hour for the whole fleet at current prices

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError("placement needs at least one server")


class HostingStrategy(ABC):
    """Base class: candidate markets plus packing/rate arithmetic."""

    #: Small-equivalent units of capacity the service needs.
    service_units: int = 1
    #: May the scheduler fall back to on-demand servers?
    allows_on_demand: bool = True
    #: May the scheduler use spot servers at all?
    allows_spot: bool = True
    #: Does the service checkpoint/restore its in-memory state? When
    #: False the scheduler skips checkpoint writes and restores: a
    #: revoked service rides the free partial hour, goes dark, and
    #: *recomputes* its state from the durable volume on re-grant
    #: (:class:`~repro.core.policies.NoFaultToleranceStrategy`).
    fault_tolerant: bool = True
    #: Opportunistic spot->spot switching while the current price is still
    #: below on-demand. The paper's multi-market algorithm only changes
    #: market inside the *planned* step (when the price has risen above
    #: on-demand); chasing cent-level differences between calm markets is
    #: an extension, off by default, gated by the two knobs below.
    opportunistic_switching: bool = False
    #: A spot->spot move must beat the current rate by this factor
    #: (hysteresis against churn between near-equal markets).
    improvement_factor: float = 0.75
    #: Minimum seconds between voluntary opportunistic switches.
    min_dwell_s: float = 12 * SECONDS_PER_HOUR
    #: May the vectorized batch engine pre-scan this strategy's boundary
    #: decisions as array operations? Requires that the vector engine's
    #: scan predicates never *under*-approximate the scalar decision at a
    #: boundary: either the decision is a pure function of (prices at
    #: that instant, static rates) with a zero :meth:`rate_adjustment`
    #: (the greedy built-ins), or the family supplies the closed-form
    #: dwell-model hooks below (:meth:`spot_rate_cap`,
    #: :meth:`vector_od_adjustment_floor`, ``_vector_dwell``,
    #: ``_vector_exact_od_ranking``) that let the scans err towards
    #: stopping. Subclasses overriding a decision-affecting hook without
    #: a matching vector model must leave this False.
    _vector_decisions: bool = False
    #: Does the vector engine model this strategy's opportunistic-switch
    #: dwell state in closed form? Requires that
    #: :meth:`best_spot_target` rank candidates by the raw fleet rate
    #: (zero :meth:`rate_adjustment`) filtered only by grantability and
    #: :meth:`spot_rate_cap` — then the dwell gate
    #: ``now - _last_spot_switch >= min_dwell_s`` and the hysteresis
    #: comparison are exact array ops over a tenure's boundary checks
    #: (``_last_spot_switch`` is constant within one tenure).
    _vector_dwell: bool = False
    #: Does :meth:`best_spot_target` rank by exactly ``servers x price``
    #: (optionally capped)? When False the vector engine's on-demand scan
    #: falls back to a sound any-candidate over-approximation: it stops
    #: at every boundary where *some* candidate could win, and the scalar
    #: decision (LP, windowed adjustment, ...) re-evaluates there.
    _vector_exact_od_ranking: bool = True

    @property
    def vectorizable(self) -> bool:
        """True when the vector engine may batch this strategy's epochs.

        Opportunistic switching consults ``_last_spot_switch`` dwell
        state at every boundary; it disables vectorization unless the
        family declares a closed-form dwell model via ``_vector_dwell``.
        """
        return self._vector_decisions and (
            not self.opportunistic_switching or self._vector_dwell
        )

    # ---------------------------------------------------- vector dwell hooks
    def spot_rate_cap(self, provider: CloudProvider) -> Optional[float]:
        """Highest fleet spot rate :meth:`best_spot_target` admits, or
        ``None`` when uncapped. The vector engine masks candidates whose
        rate exceeds the cap out of its scans with the same ``rate >
        cap`` comparison the scalar ranking applies
        (:class:`~repro.core.policies.IndexTrackingStrategy`'s tracking
        band)."""
        return None

    def vector_od_adjustment_floor(
        self, provider: CloudProvider, key: MarketKey, checks: "np.ndarray"
    ) -> Optional["np.ndarray"]:
        """A sound per-check lower bound on :meth:`rate_adjustment`.

        ``None`` (the default) means the adjustment is identically zero.
        Families with a nonzero adjustment return an array ``floor`` with
        ``floor[i] <= rate_adjustment(provider, key, checks[i])`` exactly
        — the vector engine adds it before comparing against the
        on-demand rate, so its scan can only *over*-approximate the
        scalar act set (IEEE addition and multiplication are monotonic).
        """
        return None

    # ----------------------------------------------------------- candidates
    @abstractmethod
    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        """Markets the scheduler may bid in."""

    def servers_needed(self, key: MarketKey) -> int:
        """Servers of ``key``'s size needed to host ``service_units``."""
        cache = self.__dict__.setdefault("_servers_memo", {})
        n = cache.get(key)
        if n is None:
            cap = instance_type(key.size).capacity_units
            n = cache[key] = max(1, math.ceil(self.service_units / cap))
        return n

    # ----------------------------------------------------------------- rates
    def spot_rate(self, key: MarketKey, price: float) -> float:
        """Fleet USD/hour in a spot market at the given price."""
        return self.servers_needed(key) * price

    def on_demand_rate(self, provider: CloudProvider, key: MarketKey) -> float:
        """Fleet USD/hour on on-demand servers of one market's size/zone."""
        return self.servers_needed(key) * provider.on_demand_price(key)

    def rate_adjustment(self, provider: CloudProvider, key: MarketKey, t: float) -> float:
        """Additive penalty applied when ranking spot targets (USD/hour).

        The greedy strategies return 0; :class:`StabilityAwareStrategy`
        penalizes volatile markets (the paper's future-work extension).
        """
        return 0.0

    # --------------------------------------------------------------- targets
    def best_spot_target(
        self,
        provider: CloudProvider,
        bidding: BiddingPolicy,
        t: float,
        exclude: Optional[MarketKey] = None,
    ) -> Optional[PlacementTarget]:
        """Cheapest currently-grantable spot placement, or ``None``.

        A market is usable when the bidding policy's bid would be granted
        right now (price <= bid).
        """
        if not self.allows_spot:
            return None
        best: Optional[PlacementTarget] = None
        for key in self.candidate_markets(provider):
            if exclude is not None and key == exclude:
                continue
            market = provider.market(key)
            bid = bidding.bid_price(market, t)
            market.validate_bid(bid)
            price = market.price_at(t)
            if price > bid:
                continue
            rate = self.spot_rate(key, price)
            ranked = rate + self.rate_adjustment(provider, key, t)
            if best is None or ranked < best.rate:
                best = PlacementTarget(key=key, n_servers=self.servers_needed(key), rate=ranked)
        return best

    def best_on_demand_target(self, provider: CloudProvider) -> Optional[PlacementTarget]:
        """Cheapest on-demand placement across candidate markets."""
        if not self.allows_on_demand:
            return None
        best: Optional[PlacementTarget] = None
        for key in self.candidate_markets(provider):
            rate = self.on_demand_rate(provider, key)
            if best is None or rate < best.rate:
                best = PlacementTarget(key=key, n_servers=self.servers_needed(key), rate=rate)
        return best

    # -------------------------------------------------------------- baseline
    def baseline_rate(self, provider: CloudProvider) -> float:
        """USD/hour of the all-on-demand baseline used for normalization.

        Default: the cheapest on-demand placement among candidates (the
        paper normalizes multi-region runs by "the lowest on-demand cost
        available in the two allowable regions").
        """
        best = None
        for key in self.candidate_markets(provider):
            rate = self.on_demand_rate(provider, key)
            best = rate if best is None else min(best, rate)
        if best is None:
            raise ConfigurationError("strategy has no candidate markets")
        return best

    # -------------------------------------------------------------- migration
    def migration_memory(self, key: MarketKey) -> MemoryProfile:
        """Memory that must move when leaving a placement in ``key``.

        Fleet transfers run in parallel across server pairs, so wall-clock
        migration time is governed by one server's nested memory.
        """
        cache = self.__dict__.setdefault("_memory_memo", {})
        mem = cache.get(key)
        if mem is None:
            mem = cache[key] = MemoryProfile(
                size_gib=instance_type(key.size).nested_memory_gib
            )
        return mem


#: The standard 2-region test grid the registry's example specs live on.
_EXAMPLE_KEY = MarketKey("us-east-1a", "small")
_EXAMPLE_REGIONS = ("us-east-1a", "us-west-1a")

#: Units argument shared by the fleet-of-nested-VMs families.
_UNITS_ARG = ArgSpec(
    "service_units", "int", required=False, default=8, cli="units",
    help="fleet size in small-equivalents",
)


# Cohort-draw callables for :func:`repro.fleet.spec.synthesize_fleet`.
# Each consumes RNG draws in a fixed order (determinism) and imports
# StrategySpec lazily — runtime.spec imports this module, not vice versa.
def _synth_single(rng, market, regions):
    from repro.runtime.spec import StrategySpec

    return StrategySpec.single(market)


def _synth_on_demand(rng, market, regions):
    from repro.runtime.spec import StrategySpec

    return StrategySpec.on_demand(market)


def _synth_multi_market(rng, market, regions):
    from repro.runtime.spec import StrategySpec

    return StrategySpec.multi_market(market.region)


def _synth_multi_region(rng, market, regions):
    from repro.runtime.spec import StrategySpec

    k = min(len(regions), 2)
    idx = sorted(rng.choice(len(regions), size=k, replace=False).tolist())
    return StrategySpec.multi_region(tuple(regions[j] for j in idx))


@register_strategy(
    "single",
    display_name="Single market",
    citation="HPDC 2015 source paper, §4.1 (Figs 6, 7, 11)",
    arg_schema=(ArgSpec("key", "market"),),
    example_args=(_EXAMPLE_KEY,),
    synthesis_weight=0.50,
    synthesize=_synth_single,
    summary="one size in one AZ, alternating with same-size on-demand",
)
class SingleMarketStrategy(HostingStrategy):
    """One size in one AZ, with on-demand fallback of the same size."""

    _vector_decisions = True

    def __init__(self, key: MarketKey) -> None:
        self.key = key
        self.service_units = instance_type(key.size).capacity_units

    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        return [self.key]

    def __repr__(self) -> str:  # pragma: no cover
        return f"SingleMarket({self.key})"


@register_strategy(
    "multi-market",
    display_name="Multi market",
    citation="HPDC 2015 source paper, §4.2 (Fig 8)",
    arg_schema=(ArgSpec("region", "region"), _UNITS_ARG),
    example_args=("us-east-1a",),
    synthesis_weight=0.18,
    synthesize=_synth_multi_market,
    summary="any size within one AZ, packed onto the cheapest per unit",
)
class MultiMarketStrategy(HostingStrategy):
    """All sizes within one AZ, packed onto the cheapest size.

    The fleet packs onto whichever size is currently cheapest per unit
    of capacity."""

    _vector_decisions = True

    def __init__(self, region: str, service_units: int = 8) -> None:
        if service_units <= 0:
            raise ConfigurationError("service_units must be positive")
        self.region = region
        self.service_units = service_units

    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        return provider.catalog.markets_in_region(self.region)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MultiMarket({self.region}, units={self.service_units})"


@register_strategy(
    "multi-region",
    display_name="Multi region",
    citation="HPDC 2015 source paper, §4.3 (Fig 9)",
    arg_schema=(ArgSpec("regions", "regions"), _UNITS_ARG),
    example_args=(_EXAMPLE_REGIONS,),
    synthesis_weight=0.13,
    synthesize=_synth_multi_region,
    summary="any size in any allowed AZ; cross-region moves pay WAN costs",
)
class MultiRegionStrategy(HostingStrategy):
    """All sizes across several AZs; cross-region moves are allowed."""

    _vector_decisions = True

    def __init__(self, regions: Sequence[str], service_units: int = 8) -> None:
        if not regions:
            raise ConfigurationError("need at least one region")
        if service_units <= 0:
            raise ConfigurationError("service_units must be positive")
        self.regions = tuple(regions)
        self.service_units = service_units

    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        out: List[MarketKey] = []
        for region in self.regions:
            out.extend(provider.catalog.markets_in_region(region))
        return sorted(out)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MultiRegion({','.join(self.regions)}, units={self.service_units})"


@register_strategy(
    "pure-spot",
    display_name="Pure spot",
    citation="HPDC 2015 source paper, §5 (Fig 11)",
    arg_schema=(ArgSpec("key", "market"),),
    example_args=(_EXAMPLE_KEY,),
    summary="spot only, no fallback: down whenever price exceeds bid",
)
class PureSpotStrategy(HostingStrategy):
    """Spot only — the Section 5 comparison showing why migration matters.

    When the price exceeds the bid the service is simply down until the
    price returns, the server is re-granted, and the checkpoint restores.
    """

    allows_on_demand = False
    _vector_decisions = True

    def __init__(self, key: MarketKey) -> None:
        self.key = key
        self.service_units = instance_type(key.size).capacity_units

    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        return [self.key]

    def baseline_rate(self, provider: CloudProvider) -> float:
        return self.on_demand_rate(provider, self.key)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PureSpot({self.key})"


@register_strategy(
    "on-demand",
    display_name="On-demand only",
    citation="HPDC 2015 source paper, §5 (cost baseline)",
    arg_schema=(ArgSpec("key", "market"),),
    example_args=(_EXAMPLE_KEY,),
    synthesis_weight=0.09,
    synthesize=_synth_on_demand,
    summary="non-revocable servers only: the 100% cost baseline",
)
class OnDemandOnlyStrategy(HostingStrategy):
    """The cost baseline: on-demand servers only, normalized cost 100 %."""

    allows_spot = False
    _vector_decisions = True

    def __init__(self, key: MarketKey) -> None:
        self.key = key
        self.service_units = instance_type(key.size).capacity_units

    def candidate_markets(self, provider: CloudProvider) -> List[MarketKey]:
        return [self.key]

    def __repr__(self) -> str:  # pragma: no cover
        return f"OnDemandOnly({self.key})"


@register_strategy(
    "stability",
    display_name="Stability aware",
    citation="HPDC 2015 source paper, §7 (future work: stability-aware bidding)",
    arg_schema=(
        ArgSpec("regions", "regions"),
        _UNITS_ARG,
        ArgSpec(
            "stability_weight", "float", required=False, default=1.0,
            cli="stability_weight", help="penalty per unit of trailing price std",
        ),
    ),
    example_args=(_EXAMPLE_REGIONS,),
    example_options=(("stability_weight", 2.0),),
    summary="multi-region ranking that penalizes volatile markets",
)
class StabilityAwareStrategy(MultiRegionStrategy):
    """Multi-region bidding that also weighs price *stability*.

    The paper's conclusion proposes "bidding strategies that take spot
    price stability into account" as future work; this extension penalizes
    each market's rate by ``stability_weight`` times the fleet-scaled price
    standard deviation over a trailing window, steering the scheduler away
    from cheap-but-volatile markets (the Fig 9c failure mode).
    """

    # The trailing-window std adjustment re-ranks targets per instant.
    # The vector engine cannot reproduce the ranking exactly, but it does
    # not need to: vector_od_adjustment_floor() gives a sound lower bound
    # on the adjustment from the compiled rolling-std table, so the
    # on-demand scan stops at (a superset of) the acting boundaries and
    # the scalar decision re-evaluates the exact ranking there.
    _vector_decisions = True
    _vector_exact_od_ranking = False

    def __init__(
        self,
        regions: Sequence[str],
        service_units: int = 8,
        stability_weight: float = 1.0,
        lookback_s: float = 3 * 24 * SECONDS_PER_HOUR,
    ) -> None:
        super().__init__(regions, service_units)
        if stability_weight < 0:
            raise ConfigurationError("stability weight must be >= 0")
        if lookback_s <= 0:
            raise ConfigurationError("lookback must be positive")
        self.stability_weight = stability_weight
        self.lookback_s = lookback_s

    def rate_adjustment(self, provider: CloudProvider, key: MarketKey, t: float) -> float:
        trace = provider.catalog.trace(key)
        t0 = max(trace.start, t - self.lookback_s)
        if t - t0 < SECONDS_PER_HOUR:
            return 0.0
        std = trace.price_std(t0, max(t, t0 + SECONDS_PER_HOUR))
        return self.stability_weight * self.servers_needed(key) * std

    def vector_od_adjustment_floor(
        self, provider: CloudProvider, key: MarketKey, checks: np.ndarray
    ) -> np.ndarray:
        """Sound per-check lower bound on :meth:`rate_adjustment`.

        Uses the compiled trace's approximate rolling-std table with a
        slack proportional to the trace's price scale subtracted, so the
        bound stays below the exact windowed std despite the prefix-sum
        form's rounding (see ``CompiledTrace.rolling_std``); windows
        shorter than an hour floor to the scalar's exact 0.
        """
        trace = provider.catalog.trace(key)
        t0 = np.maximum(trace.start, checks - self.lookback_s)
        std = trace.compiled.rolling_std(t0, checks)
        slack = 1e-3 * (1.0 + float(trace.prices.max()))
        floor = (self.stability_weight * self.servers_needed(key)) * np.maximum(
            std - slack, 0.0
        )
        floor[checks - t0 < SECONDS_PER_HOUR] = 0.0
        return floor

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"StabilityAware({','.join(self.regions)}, units={self.service_units}, "
            f"w={self.stability_weight})"
        )
