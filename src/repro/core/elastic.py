"""Elastic spot fleets under time-varying demand — extension beyond the paper.

The paper's introduction motivates cloud hosting with "just-in-time
allocation of capacity to handle peak workloads": dedicated infrastructure
must be provisioned for the peak, the cloud only for the moment. This
module quantifies that argument on the spot market for the *stateless*
scale-out tier of a service (web frontends behind the always-on core that
:class:`~repro.core.scheduler.CloudScheduler` hosts):

* a :class:`DemandCurve` gives the capacity units required over time
  (e.g. a diurnal sinusoid with a weekend dip);
* :class:`ElasticSpotFleet` tracks it with one spot server per unit,
  buying in the cheapest grantable market, replacing revoked units, and
  releasing surplus units at their billing boundaries;
* the result compares against two baselines computed exactly: dedicated
  peak-provisioned capacity, and elastic on-demand capacity.

Stateless units are *replaced*, not migrated — a revocation costs capacity
(tracked as shortfall) rather than state. The shortfall metric is the
demand-weighted fraction of capacity-seconds the fleet failed to supply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cloud.provider import CloudProvider, Lease, LeaseKind
from repro.core.bidding import BiddingPolicy, ProactiveBidding
from repro.errors import ConfigurationError, SchedulingError
from repro.simulator.engine import Engine
from repro.simulator.events import EventKind
from repro.traces.catalog import MarketKey
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["DemandCurve", "ElasticResult", "ElasticSpotFleet"]


class DemandCurve:
    """Capacity units required over time (sampled hourly by the fleet)."""

    def __init__(self, fn: Callable[[float], float], peak: int) -> None:
        if peak <= 0:
            raise ConfigurationError("peak capacity must be positive")
        self._fn = fn
        self.peak = int(peak)

    def at(self, t: float) -> int:
        """Required units at time ``t`` (clamped to [0, peak])."""
        return int(np.clip(round(self._fn(t)), 0, self.peak))

    @classmethod
    def diurnal(
        cls,
        base: int = 4,
        peak: int = 12,
        peak_hour: float = 20.0,
        weekend_factor: float = 0.7,
    ) -> "DemandCurve":
        """A day/night sinusoid with quieter weekends.

        Demand swings between ``base`` and ``peak`` with its maximum at
        ``peak_hour`` local time; days 5 and 6 of each week are scaled by
        ``weekend_factor``.
        """
        if not 0 < base <= peak:
            raise ConfigurationError("need 0 < base <= peak")

        def fn(t: float) -> float:
            hour = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
            day = int(t // SECONDS_PER_DAY) % 7
            phase = math.cos((hour - peak_hour) / 24.0 * 2.0 * math.pi)
            level = base + (peak - base) * (phase + 1.0) / 2.0
            if day >= 5:
                level *= weekend_factor
            return level

        return cls(fn, peak)

    def mean_units(self, horizon: float, step: float = 600.0) -> float:
        grid = np.arange(0.0, horizon, step)
        return float(np.mean([self.at(float(t)) for t in grid]))


@dataclass(frozen=True)
class ElasticResult:
    """Outcome of one elastic-fleet run."""

    total_cost: float
    peak_on_demand_cost: float  #: dedicated capacity provisioned for the peak
    elastic_on_demand_cost: float  #: cloud baseline: on-demand, right-sized
    shortfall_fraction: float  #: unsupplied capacity-seconds / demanded
    scale_ups: int
    scale_downs: int
    replacements: int  #: revoked units replaced

    @property
    def vs_peak_percent(self) -> float:
        return 100.0 * self.total_cost / self.peak_on_demand_cost

    @property
    def vs_elastic_od_percent(self) -> float:
        return 100.0 * self.total_cost / self.elastic_on_demand_cost


class ElasticSpotFleet:
    """Tracks a demand curve with spot servers.

    The fleet re-evaluates hourly: surplus units are released, missing
    units are bought in the cheapest grantable market (on-demand when no
    spot market is grantable). Revocation warnings trigger immediate
    replacement; the gap until the replacement boots is capacity shortfall.
    """

    TICK_S = SECONDS_PER_HOUR

    def __init__(
        self,
        engine: Engine,
        provider: CloudProvider,
        demand: DemandCurve,
        candidate_keys: List[MarketKey],
        bidding: Optional[BiddingPolicy] = None,
        horizon: float = 30 * SECONDS_PER_DAY,
        provision_lead_s: float = 2 * SECONDS_PER_HOUR,
    ) -> None:
        if not candidate_keys:
            raise ConfigurationError("need candidate markets")
        if provision_lead_s < 0:
            raise ConfigurationError("provision lead must be >= 0")
        self.engine = engine
        self.provider = provider
        self.demand = demand
        self.candidates = list(candidate_keys)
        self.bidding = bidding or ProactiveBidding()
        self.horizon = float(horizon)
        #: provision against demand this far ahead (covers boot time plus
        #: the ramp between hourly ticks; 0 = purely reactive scaling)
        self.provision_lead_s = float(provision_lead_s)
        self.active: Dict[str, Lease] = {}
        self._doomed: set = set()  #: warned units riding out their grace
        self._warnings: Dict[str, object] = {}  #: lease id -> event handle
        self.total_cost = 0.0
        self.scale_ups = 0
        self.scale_downs = 0
        self.replacements = 0
        #: (time, active_count) step samples for shortfall integration
        self._supply_log: List[tuple] = []

    # ----------------------------------------------------------------- market
    def _cheapest(self, t: float) -> Optional[MarketKey]:
        best, best_p = None, None
        for key in self.candidates:
            market = self.provider.market(key)
            bid = self.bidding.bid_price(market, t)
            if not market.grantable(bid, t):
                continue
            p = market.price_at(t)
            if best_p is None or p < best_p:
                best, best_p = key, p
        return best

    def _buy(self, t: float) -> Lease:
        key = self._cheapest(t)
        if key is not None:
            bid = self.bidding.bid_price(self.provider.market(key), t)
            lease = self.provider.request_spot(key, bid, t)
            self._arm_warning(lease)
        else:
            od_key = min(self.candidates, key=lambda k: self.provider.on_demand_price(k))
            lease = self.provider.request_on_demand(od_key, t)
        self.active[lease.lease_id] = lease
        return lease

    def _arm_warning(self, lease: Lease) -> None:
        warn = self.provider.revocation_warning_time(lease, self.engine.now)
        if warn is None or warn >= self.horizon:
            return
        handle = self.engine.schedule(
            warn,
            lambda _e, _ev, lid=lease.lease_id: self._on_warning(lid),
            kind=EventKind.REVOCATION_WARNING,
            label=f"elastic-warn-{lease.lease_id}",
        )
        self._warnings[lease.lease_id] = handle

    def _release(self, lease: Lease, t: float, *, revoked: bool) -> None:
        handle = self._warnings.pop(lease.lease_id, None)
        if handle is not None:
            handle.cancel()
        done = self.provider.terminate(lease, t, revoked=revoked)
        self.total_cost += done.total_cost
        self.active.pop(lease.lease_id, None)

    # ----------------------------------------------------------------- events
    def _on_warning(self, lease_id: str) -> None:
        lease = self.active.get(lease_id)
        if lease is None:
            return
        now = self.engine.now
        dead = min(now + self.provider.grace_s, self.horizon)
        self._doomed.add(lease_id)
        self.engine.schedule(
            dead,
            lambda _e, _ev: self._finish_revocation(lease_id),
            kind=EventKind.TERMINATION,
            label=f"elastic-revoke-{lease_id}",
        )
        # replacement ordered immediately; it boots while the doomed unit
        # rides out its grace window
        self._buy(now)
        self.replacements += 1

    def _finish_revocation(self, lease_id: str) -> None:
        lease = self.active.get(lease_id)
        if lease is None:
            return
        self._log_supply()
        self._release(lease, self.engine.now, revoked=True)
        self._doomed.discard(lease_id)
        self._log_supply()

    def _ready_count(self, t: float) -> int:
        return sum(1 for l in self.active.values() if l.ready_at <= t)

    def _log_supply(self) -> None:
        self._supply_log.append((self.engine.now, self._ready_count(self.engine.now)))

    def _tick(self) -> None:
        now = self.engine.now
        self._log_supply()
        # predictive scaling: never fall below current demand, and cover the
        # demand expected one lead-time ahead
        target = max(self.demand.at(now), self.demand.at(now + self.provision_lead_s))
        # units riding out a revocation grace window are already replaced
        # and must not count toward (or be shed from) the plan
        planned = [l for l in self.active.values() if l.lease_id not in self._doomed]
        have = len(planned)
        if have < target:
            for _ in range(target - have):
                self._buy(now)
                self.scale_ups += 1
        elif have > target:
            # shed the youngest units first (they have the least sunk hour)
            surplus = sorted(planned, key=lambda l: -l.ready_at)
            for lease in surplus[: have - target]:
                self._release(lease, now, revoked=False)
                self.scale_downs += 1
        self._log_supply()
        nxt = now + self.TICK_S
        if nxt < self.horizon:
            self.engine.schedule(nxt, lambda _e, _ev: self._tick(),
                                 kind=EventKind.TIMER, label="elastic-tick")

    # -------------------------------------------------------------------- run
    def run(self) -> ElasticResult:
        self.engine.schedule(self.engine.now, lambda _e, _ev: self._tick(),
                             kind=EventKind.TIMER, label="elastic-tick0")
        # boot-completion changes supply: sample every few minutes instead of
        # tracking each ready event (shortfall is an integral; 5-minute
        # resolution is plenty against ~5-minute boots)
        t = self.engine.now
        while t < self.horizon:
            t += 300.0
            self.engine.schedule(min(t, self.horizon), lambda _e, _ev: self._log_supply(),
                                 kind=EventKind.TIMER, label="elastic-sample")
        self.engine.run(until=self.horizon + 1.0)
        for lease in list(self.active.values()):
            self._release(lease, self.horizon, revoked=False)

        # ---- shortfall integral over the supply log
        log = sorted(self._supply_log)
        demanded = 0.0
        missed = 0.0
        for (t0, supply), (t1, _next) in zip(log, log[1:]):
            if t1 <= t0:
                continue
            target = self.demand.at(t0)
            demanded += target * (t1 - t0)
            missed += max(0, target - supply) * (t1 - t0)
        shortfall = missed / demanded if demanded > 0 else 0.0

        # ---- baselines
        od_rate = min(self.provider.on_demand_price(k) for k in self.candidates)
        hours = self.horizon / SECONDS_PER_HOUR
        peak_cost = self.demand.peak * od_rate * hours
        mean_units = self.demand.mean_units(self.horizon)
        elastic_od = mean_units * od_rate * hours

        return ElasticResult(
            total_cost=self.total_cost,
            peak_on_demand_cost=peak_cost,
            elastic_on_demand_cost=elastic_od,
            shortfall_fraction=shortfall,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            replacements=self.replacements,
        )
