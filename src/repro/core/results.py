"""Simulation result records and cross-seed aggregation.

The paper reports each metric as a mean over simulation runs seeded with
different trace samples (Section 4.1); :func:`aggregate` reproduces that
reduction and also exposes the spread, which EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError

__all__ = ["SimulationResult", "AggregateResult", "aggregate"]


@dataclass(frozen=True)
class SimulationResult:
    """Metrics of one scheduler run on one trace sample."""

    label: str
    seed: int
    duration_hours: float
    total_cost: float
    baseline_cost: float
    normalized_cost_percent: float
    unavailability_percent: float
    downtime_s: float
    degraded_s: float
    forced_migrations: int
    planned_migrations: int  #: planned + spot-switch moves
    reverse_migrations: int
    outages: int  #: pure-spot dark periods
    spot_cost: float
    on_demand_cost: float
    spot_time_fraction: float = 0.0  #: share of tenure spent on spot leases
    downtime_by_cause: Dict[str, float] = field(default_factory=dict)
    #: Start instants (simulation seconds) of every forced migration, in
    #: event order. The fleet layer sizes shared warm-spare pools from the
    #: cross-service concurrency of these instants (:mod:`repro.fleet`).
    forced_times: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        # JSON/ledger round-trips deliver lists; normalise so replayed
        # results compare equal to freshly computed ones.
        if not isinstance(self.forced_times, tuple):
            object.__setattr__(self, "forced_times", tuple(self.forced_times))

    @property
    def forced_per_hour(self) -> float:
        return self.forced_migrations / self.duration_hours if self.duration_hours else 0.0

    @property
    def planned_reverse_per_hour(self) -> float:
        if not self.duration_hours:
            return 0.0
        return (self.planned_migrations + self.reverse_migrations) / self.duration_hours

    @property
    def availability_percent(self) -> float:
        return 100.0 - self.unavailability_percent

    @property
    def savings_percent(self) -> float:
        """Cost saved versus the all-on-demand baseline."""
        return 100.0 - self.normalized_cost_percent


@dataclass(frozen=True)
class AggregateResult:
    """Mean/std of a metric set over several seeds."""

    label: str
    n_runs: int
    normalized_cost_percent: float
    normalized_cost_std: float
    unavailability_percent: float
    unavailability_std: float
    forced_per_hour: float
    planned_reverse_per_hour: float
    downtime_s_mean: float
    total_cost_mean: float

    def row(self) -> tuple:
        return (
            self.label,
            self.normalized_cost_percent,
            self.unavailability_percent,
            self.forced_per_hour,
            self.planned_reverse_per_hour,
        )


def aggregate(results: Sequence[SimulationResult], label: str | None = None) -> AggregateResult:
    """Reduce per-seed results to their means (and stds)."""
    if not results:
        raise SchedulingError("cannot aggregate zero results")
    labels = {r.label for r in results}
    if label is None:
        if len(labels) != 1:
            raise SchedulingError(f"mixed labels in aggregate: {sorted(labels)}")
        label = next(iter(labels))
    cost = np.array([r.normalized_cost_percent for r in results])
    unav = np.array([r.unavailability_percent for r in results])
    forced = np.array([r.forced_per_hour for r in results])
    pr = np.array([r.planned_reverse_per_hour for r in results])
    down = np.array([r.downtime_s for r in results])
    total = np.array([r.total_cost for r in results])
    return AggregateResult(
        label=label,
        n_runs=len(results),
        normalized_cost_percent=float(cost.mean()),
        normalized_cost_std=float(cost.std()),
        unavailability_percent=float(unav.mean()),
        unavailability_std=float(unav.std()),
        forced_per_hour=float(forced.mean()),
        planned_reverse_per_hour=float(pr.mean()),
        downtime_s_mean=float(down.mean()),
        total_cost_mean=float(total.mean()),
    )
