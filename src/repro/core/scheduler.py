"""The cloud scheduler: a DES process hosting one always-on service.

The scheduler owns a *placement* — a fleet of spot or on-demand leases in
one market — and walks the paper's three-step bidding loop (Section 3.1):

1. **Forced migration** — the spot price crossed the bid: the provider
   issues a revocation warning; the scheduler flushes the bounded
   checkpoint inside the grace window and restores on an on-demand server
   requested at the warning instant.
2. **Planned migration** — near the end of a billing hour the spot price
   sits above the on-demand price (but below the bid): migrate voluntarily
   to the cheapest alternative (another spot market if the strategy allows
   it, else on-demand), with as much time as the mechanism needs.
3. **Reverse migration** — near the end of a billing hour the spot price is
   back below the on-demand price while running on-demand: re-procure a
   spot server and migrate back.

Because spot hours are billed at the start-of-hour price, decisions are
evaluated a *lead time* before each billing boundary — long enough to
acquire the target server and complete the migration just before the
boundary. A price excursion that begins and ends between boundaries costs a
proactive bidder nothing and triggers no migration; the same excursion
revokes a reactive bidder immediately.

A planned migration in flight can still be overtaken by a sharp spike past
the bid ("a large sharp spike of the spot price above the bid price will
cause the spot server to be revoked ... before the proactive algorithm can
begin (or finish) its voluntary migration") — the scheduler detects the
overlap and converts the move into a forced migration. Likewise a reverse
migration is aborted when the freshly acquired spot server would be revoked
before the service even lands on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional

import numpy as np

from repro.cloud.provider import CloudProvider, Lease, LeaseKind
from repro.cloud.regions import link_between, region_of
from repro.cloud.startup import STARTUP_MEANS_S
from repro.core.accounting import AvailabilityTracker, CostLedger
from repro.core.bidding import BiddingPolicy
from repro.core.strategies import HostingStrategy, PlacementTarget
from repro.errors import SchedulingError
from repro.obs.events import (
    BidPlaced,
    BillingTick,
    CheckpointRestore,
    CheckpointWrite,
    ForcedMigration,
    MigrationAborted,
    PriceCrossing,
    Revocation,
    RevocationWarning,
    ServiceBlackout,
    VoluntaryMigration,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.simulator.engine import Engine
from repro.simulator.process import Process, Timeout
from repro.traces.catalog import MarketKey
from repro.units import SECONDS_PER_HOUR
from repro.vm.disk_copy import disk_copy_seconds_between
from repro.vm.mechanisms import MigrationModel

__all__ = ["MigrationRecord", "BoundaryDecision", "CloudScheduler"]


@dataclass(frozen=True)
class BoundaryDecision:
    """Outcome of one billing-boundary evaluation.

    Produced by the side-effect-free decision functions
    (:meth:`CloudScheduler.decide_spot_boundary` /
    :meth:`CloudScheduler.decide_on_demand_boundary`) and *applied* by the
    phase generators. Keeping policy evaluation separate from execution is
    what lets the vectorized batch engine reuse the exact same decision
    code: it predicts where the next non-``stay`` decision lands with
    array scans, then calls these functions at that instant to act.
    """

    action: str  #: 'stay' | 'migrate'
    target_key: Optional[MarketKey] = None
    n_servers: int = 0
    target_kind: Optional[LeaseKind] = None
    kind: str = ""  #: migration kind label ('planned' | 'reverse' | 'spot-switch')

    @property
    def migrates(self) -> bool:
        return self.action == "migrate"


_STAY = BoundaryDecision(action="stay")


@dataclass(frozen=True)
class MigrationRecord:
    """One migration (or aborted attempt) performed by the scheduler."""

    kind: str  #: 'forced' | 'planned' | 'reverse' | 'spot-switch' | 'aborted-reverse'
    started_at: float
    completed_at: float
    downtime_s: float
    source: str
    target: str


@dataclass(frozen=True)
class PlacementRecord:
    """One tenure on a placement: these leases held over [start, end).

    Together the records form the run's placement timeline."""

    start: float
    end: float
    kind: str  #: 'spot' | 'on_demand'
    market: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _Placement:
    """The fleet currently hosting the service."""

    kind: LeaseKind
    key: MarketKey
    leases: List[Lease] = field(default_factory=list)

    @property
    def ready_at(self) -> float:
        return max(l.ready_at for l in self.leases)


@dataclass
class ServiceContext:
    """Persistent identity of the hosted service: volume plus address.

    The networked volume (disk state + checkpoint images) survives
    revocations; the stable address is re-bound to whichever server
    currently runs the nested VM."""

    volume_id: str
    address: str


class CloudScheduler:
    """Hosts one always-on service over a simulated cloud.

    Construct over an :class:`Engine` and call :meth:`run`; read results
    from :attr:`ledger`, :attr:`availability` and :attr:`migrations`.
    The service's disk state lives on an EBS-style networked volume and its
    address on a VPC elastic IP; both follow the nested VM through every
    migration (cloned/re-homed on cross-region moves).

    Every decision is additionally narrated to ``sink`` as typed
    :mod:`repro.obs` trace events (free with the default null sink) and
    tallied into ``metrics`` — migrations by cause, downtime per blackout,
    spend per market, bid-to-revocation lead times. Neither affects the
    simulated behaviour.
    """

    #: Safety margin added to migration lead times (seconds).
    LEAD_MARGIN_S = 60.0

    def __init__(
        self,
        engine: Engine,
        provider: CloudProvider,
        bidding: BiddingPolicy,
        strategy: HostingStrategy,
        migration_model: MigrationModel,
        rng: np.random.Generator,
        horizon: float,
        service_disk_gib: float = 2.0,
        sink: TraceSink = NULL_SINK,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.provider = provider
        self.bidding = bidding
        self.strategy = strategy
        self.model = migration_model
        self.rng = rng
        self.horizon = float(horizon)
        self.service_disk_gib = float(service_disk_gib)
        self.sink = sink
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        self.ledger = CostLedger()
        self.availability = AvailabilityTracker()
        self.migrations: List[MigrationRecord] = []
        self.placement_log: List[PlacementRecord] = []
        self._placement: Optional[_Placement] = None
        self._open_tenure: Optional[tuple] = None  #: (start, kind, market)
        self._process: Optional[Process] = None
        self._last_spot_switch = -float("inf")
        self._lead_cache: dict[MarketKey, float] = {}
        #: Per market key: (str(key), its spend counter). Releases are the
        #: hottest metrics site; formatting the key and re-resolving the
        #: counter on each one is measurable across a month of churn.
        self._spend_cache: dict[MarketKey, tuple] = {}
        #: str(key) memo — placement records and migration records format
        #: the same handful of keys hundreds of times per run.
        self._keystr_cache: dict[MarketKey, str] = {}
        self._disk_copy_cache: dict[tuple, float] = {}
        self.service: Optional[ServiceContext] = None

    # ------------------------------------------------------------- placement
    @property
    def placement(self) -> Optional[_Placement]:
        """The fleet currently holding the service (None while dark)."""
        return self._placement

    @placement.setter
    def placement(self, value: Optional[_Placement]) -> None:
        now = min(self.engine.now, self.horizon)
        if self._open_tenure is not None:
            start, kind, market = self._open_tenure
            if now > start:
                self.placement_log.append(
                    PlacementRecord(start=start, end=now, kind=kind, market=market)
                )
            self._open_tenure = None
        if value is not None:
            self._open_tenure = (now, value.kind.value, self._key_str(value.key))
        self._placement = value

    def spot_time_fraction(self) -> float:
        """Fraction of recorded tenure spent on spot leases."""
        total = sum(r.duration for r in self.placement_log)
        if total <= 0:
            return 0.0
        spot = sum(r.duration for r in self.placement_log if r.kind == "spot")
        return spot / total

    # ------------------------------------------------------------------ run
    def start(self) -> None:
        """Register the scheduler process on the engine."""
        if self._process is not None:
            raise SchedulingError("scheduler already started")
        self._process = Process(self.engine, self._main(), label="cloud-scheduler")

    def run(self) -> None:
        """Start (if needed) and run the simulation to the horizon."""
        if self._process is None:
            self.start()
        self.engine.run(until=self.horizon + 1.0)
        if self._process is not None and self._process.alive:
            raise SchedulingError("scheduler process did not finish by the horizon")

    # ------------------------------------------------------------ reporting
    def migration_count(self, *kinds: str) -> int:
        """Number of migrations of the given kinds."""
        return sum(1 for m in self.migrations if m.kind in kinds)

    def migrations_per_hour(self, *kinds: str) -> float:
        """Migration rate over the availability window."""
        hours = self.availability.window_duration / SECONDS_PER_HOUR
        if hours <= 0:
            return 0.0
        return self.migration_count(*kinds) / hours

    # ---------------------------------------------------------------- leases
    def _acquire(self, key: MarketKey, n_servers: int, kind: LeaseKind, t: float) -> _Placement:
        leases: List[Lease] = []
        if kind is LeaseKind.SPOT:
            market = self.provider.market(key)
            bid = self.bidding.bid_price(market, t)
            for _ in range(n_servers):
                leases.append(self.provider.request_spot(key, bid, t))
            if self.sink.enabled:
                explain = getattr(self.bidding, "explain_bid", None)
                self.sink.emit(
                    BidPlaced(
                        t=t,
                        market=str(key),
                        bid=bid,
                        price=market.price_at(t),
                        policy=self.bidding.name,
                        n_servers=n_servers,
                        rationale=explain(market, t) if explain is not None else "",
                    )
                )
        else:
            for _ in range(n_servers):
                leases.append(self.provider.request_on_demand(key, t))
        return _Placement(kind=kind, key=key, leases=leases)

    def _release(self, placement: _Placement, t: float, *, revoked: bool, reason: str) -> None:
        entry = self._spend_cache.get(placement.key)
        if entry is None:
            market_str = str(placement.key)
            entry = (market_str, self.metrics.counter(f"spend_usd.{market_str}"))
            self._spend_cache[placement.key] = entry
        market_str, spend_counter = entry
        for lease in placement.leases:
            done = self.provider.terminate(lease, t, revoked=revoked, reason=reason)
            if done.billing is not None and len(done.billing):
                self.ledger.add_billing(done.billing, market=market_str)
                spend_counter.inc(done.total_cost)

    # ------------------------------------------------------- service identity
    def _provision_service(self, placement: _Placement, t: float) -> None:
        """Create the service's volume and address on first placement."""
        # Room for the root filesystem plus a full checkpoint image of the
        # *largest* server the strategy might ever migrate onto.
        biggest = max(
            self.strategy.migration_memory(key).size_gib
            for key in self.strategy.candidate_markets(self.provider)
        )
        size = self.service_disk_gib + biggest + 1.0
        vol = self.provider.volumes.create(placement.key.region, size)
        ip = self.provider.vpc.allocate(placement.key.region)
        self.provider.volumes.attach(vol.volume_id, placement.leases[0].lease_id,
                                     placement.key.region)
        self.provider.vpc.bind(ip.address, placement.leases[0].lease_id,
                               placement.key.region)
        self.provider.volumes.write(vol.volume_id, "root", self.service_disk_gib, at=t)
        self.service = ServiceContext(volume_id=vol.volume_id, address=ip.address)

    def _write_checkpoint(self, t: float) -> None:
        """Record the (incremental) checkpoint image on the service volume."""
        if self.service is None or self.placement is None:
            return
        mem = self.strategy.migration_memory(self.placement.key)
        self.provider.volumes.write(self.service.volume_id, "checkpoint",
                                    mem.size_gib, at=t)
        if self.sink.enabled:
            self.sink.emit(
                CheckpointWrite(t=t, market=str(self.placement.key), size_gib=mem.size_gib)
            )

    def _move_service(self, src_key: MarketKey, dst: _Placement, t: float) -> float:
        """Re-home volume and address onto the new placement.

        Returns the network-reconfiguration delay (0 in-region; the WAN
        re-bind delay across geo regions), which extends the blackout.
        """
        if self.service is None:
            return 0.0
        vols = self.provider.volumes
        vols.detach(self.service.volume_id)
        if src_key.region != dst.key.region:
            # EBS volumes are AZ-scoped: moving to any other zone switches to
            # the replica copied during prep (over the LAN within a geo, over
            # the WAN across geos — the WAN copy time is in the prep window).
            clone = vols.clone_to_zone(self.service.volume_id, dst.key.region)
            self.service.volume_id = clone.volume_id
        vols.attach(self.service.volume_id, dst.leases[0].lease_id, dst.key.region)
        return self.provider.vpc.bind(self.service.address,
                                      dst.leases[0].lease_id, dst.key.region)

    # -------------------------------------------------------------- helpers
    def _key_str(self, key: MarketKey) -> str:
        s = self._keystr_cache.get(key)
        if s is None:
            s = self._keystr_cache[key] = str(key)
        return s

    def _market(self, key: MarketKey):
        return self.provider.market(key)

    def _bid(self, key: MarketKey) -> float:
        return self.bidding.bid_price(self._market(key), self.engine.now)

    def _current_spot_rate(self, t: float) -> float:
        assert self.placement is not None
        return self.strategy.spot_rate(
            self.placement.key, self._market(self.placement.key).price_at(t)
        )

    def _disk_copy_s(self, src: MarketKey, dst: MarketKey) -> float:
        cached = self._disk_copy_cache.get((src, dst))
        if cached is not None:
            return cached
        # Fault injection may stretch WAN copies (testkit FaultPlan); a
        # plain provider has no such attribute and factors out to 1.
        factor = getattr(self.provider, "disk_copy_factor", 1.0)
        out = factor * disk_copy_seconds_between(
            self.service_disk_gib, src.region, dst.region
        )
        self._disk_copy_cache[(src, dst)] = out
        return out

    def _planned_lead(self, source: MarketKey) -> float:
        """Lead before a billing boundary at which to evaluate moves.

        Long enough to start the slowest plausible target server,
        pre-stage the migration and copy disk state cross-region, so the
        blackout lands just before the boundary. Capped at half an hour so
        boundary checks are never skipped.

        Deterministic per source (the planning model is evaluated with
        ``rng=None`` and candidate markets/links are fixed for a run), so
        the answer is memoized per market key.
        """
        cached = self._lead_cache.get(source)
        if cached is not None:
            return cached
        mem = self.strategy.migration_memory(source)
        worst_prep = 0.0
        worst_disk = 0.0
        for key in self.strategy.candidate_markets(self.provider):
            link = link_between(source.region, key.region)
            timing = self.model.planned(mem, link, rng=None)
            worst_prep = max(worst_prep, timing.total_s)
            worst_disk = max(worst_disk, self._disk_copy_s(source, key))
        geo = region_of(source.region).geo
        startup = max(STARTUP_MEANS_S["spot"][geo], STARTUP_MEANS_S["on_demand"][geo])
        lead = min(
            startup + worst_prep + worst_disk + self.LEAD_MARGIN_S,
            0.5 * SECONDS_PER_HOUR,
        )
        self._lead_cache[source] = lead
        return lead

    def _next_boundary_check(self, now: float, lead: float) -> float:
        """Next (billing boundary - lead) instant strictly after ``now``,
        with boundaries anchored at the placement's ready time."""
        assert self.placement is not None
        anchor = self.placement.ready_at
        k = max(1, math.ceil((now + lead - anchor) / SECONDS_PER_HOUR - 1e-9))
        check = anchor + k * SECONDS_PER_HOUR - lead
        while check <= now + 1e-9:
            k += 1
            check = anchor + k * SECONDS_PER_HOUR - lead
        return check

    def _best_local_on_demand(self, source: MarketKey):
        """Cheapest on-demand placement in the source's own region, falling
        back to the global best when the strategy has no local candidate."""
        from repro.core.strategies import PlacementTarget

        if not self.strategy.allows_on_demand:
            return None
        best: Optional[PlacementTarget] = None
        for key in self.strategy.candidate_markets(self.provider):
            if key.region != source.region:
                continue
            rate = self.strategy.on_demand_rate(self.provider, key)
            if best is None or rate < best.rate:
                best = PlacementTarget(
                    key=key, n_servers=self.strategy.servers_needed(key), rate=rate
                )
        return best or self.strategy.best_on_demand_target(self.provider)

    def _record_migration(
        self, kind: str, start: float, end: float, downtime: float, src: str, dst: str
    ) -> None:
        self.migrations.append(
            MigrationRecord(
                kind=kind,
                started_at=start,
                completed_at=end,
                downtime_s=downtime,
                source=src,
                target=dst,
            )
        )
        self.metrics.counter(f"migrations.{kind}").inc()

    def _blackout(self, start: float, end: float, cause: str, degraded_s: float) -> None:
        """Record a service blackout (clipped to the horizon) plus any
        lazy-restore degradation window that follows it."""
        if self.availability.window_start is None:
            return
        clipped_end = min(end, self.horizon)
        self.availability.record_downtime(start, clipped_end, cause)
        if self.sink.enabled:
            self.sink.emit(
                ServiceBlackout(
                    t=start, cause=cause, start=start, end=clipped_end, degraded_s=degraded_s
                )
            )
        self.metrics.histogram("downtime_s").observe(max(0.0, clipped_end - start))
        self.metrics.counter(f"blackouts.{cause}").inc()
        if degraded_s > 0 and end < self.horizon:
            self.availability.record_degraded(
                end, min(end + degraded_s, self.horizon), f"{cause}-degraded"
            )

    # ============================================================= main loop
    def _main(self) -> Generator:
        yield from self._initial_placement(self.engine.now)
        while self.engine.now < self.horizon and self.placement is not None:
            if self.placement.kind is LeaseKind.SPOT:
                yield from self._spot_phase()
            else:
                yield from self._on_demand_phase()
        self._finalize()

    def _finalize(self) -> None:
        now = min(self.engine.now, self.horizon)
        if self.placement is not None:
            self._release(self.placement, now, revoked=False, reason="horizon")
            self.placement = None
        if self.service is not None:
            self.provider.volumes.detach(self.service.volume_id)
            self.provider.vpc.unbind(self.service.address)
        if self.availability.window_start is None:
            # The service never came up (degenerate short horizons).
            self.availability.open_window(now)
        self.availability.close_window(self.horizon)

    # ----------------------------------------------------- initial placement
    def _initial_placement(self, t: float) -> Generator:
        spot = self.strategy.best_spot_target(self.provider, self.bidding, t)
        od = self.strategy.best_on_demand_target(self.provider)
        if spot is not None and (od is None or spot.rate < od.rate):
            self.placement = self._acquire(spot.key, spot.n_servers, LeaseKind.SPOT, t)
        elif od is not None:
            self.placement = self._acquire(od.key, od.n_servers, LeaseKind.ON_DEMAND, t)
        else:
            # Pure spot with the market currently above the bid: wait for it.
            key = self.strategy.candidate_markets(self.provider)[0]
            grant = self._market(key).next_grant_time(self._bid(key), t)
            if grant is None or grant >= self.horizon:
                self.availability.open_window(t)
                self.availability.record_downtime(t, self.horizon, "waiting-spot")
                yield Timeout(max(0.0, self.horizon - t))
                return
            yield Timeout(grant - t)
            n = self.strategy.servers_needed(key)
            self.placement = self._acquire(key, n, LeaseKind.SPOT, grant)
        ready = min(self.placement.ready_at, self.horizon)
        yield Timeout(max(0.0, ready - self.engine.now))
        self.availability.open_window(ready)
        self._provision_service(self.placement, ready)

    # ------------------------------------------------------------ spot phase
    def _spot_phase(self) -> Generator:
        placement = self.placement
        assert placement is not None and placement.kind is LeaseKind.SPOT
        now = self.engine.now
        bid = placement.leases[0].bid
        assert bid is not None
        market = self._market(placement.key)
        lead = self._planned_lead(placement.key)

        warning = market.revocation_warning_time(bid, now)
        check = self._next_boundary_check(now, lead)
        t_next = min(
            warning if warning is not None else float("inf"),
            check,
            self.horizon,
        )
        yield Timeout(max(0.0, t_next - now))
        now = self.engine.now
        if now >= self.horizon:
            return
        if warning is not None and now >= warning - 1e-9:
            yield from self._forced_migration(warning)
        else:
            yield from self._boundary_decision_on_spot(now)

    def decide_spot_boundary(self, now: float) -> BoundaryDecision:
        """Evaluate the planned-migration step at a boundary check on spot.

        Side-effect free except for narration to ``sink`` — no leases are
        touched, no RNG is drawn, no metrics move. Both engines call this
        with the same ``now`` and read the same answer.
        """
        placement = self.placement
        assert placement is not None
        market = self._market(placement.key)
        price = market.price_at(now)
        od_price = market.on_demand_price

        if self.sink.enabled:
            lead = self._planned_lead(placement.key)
            self.sink.emit(
                BillingTick(
                    t=now,
                    market=str(placement.key),
                    price=price,
                    on_demand_price=od_price,
                    boundary=now + lead,
                )
            )

        if self.bidding.wants_planned_migration(price, od_price):
            if self.sink.enabled:
                rose = market.last_rise_above(od_price, now)
                self.sink.emit(
                    PriceCrossing(
                        t=now if rose is None else rose,
                        market=str(placement.key),
                        price=price,
                        threshold=od_price,
                        direction="above-on-demand",
                    )
                )
            # Price above on-demand here: leave at the boundary, to the
            # cheapest spot sibling if one beats on-demand, else on-demand.
            od = self.strategy.best_on_demand_target(self.provider)
            alt = self.strategy.best_spot_target(
                self.provider, self.bidding, now, exclude=placement.key
            )
            if alt is not None and (od is None or alt.rate < od.rate):
                return BoundaryDecision("migrate", alt.key, alt.n_servers,
                                        LeaseKind.SPOT, "planned")
            if od is not None:
                return BoundaryDecision("migrate", od.key, od.n_servers,
                                        LeaseKind.ON_DEMAND, "planned")
            # Pure spot has no fallback: stay; a later boundary or the
            # revocation path (price > bid) handles it.
            return _STAY

        # Price is fine here. The opportunistic-switching extension (off by
        # default — the paper's algorithm only changes markets inside the
        # planned step) may still chase a sufficiently cheaper sibling,
        # subject to rate hysteresis and a dwell time.
        if not self.strategy.opportunistic_switching:
            return _STAY
        if now - self._last_spot_switch < self.strategy.min_dwell_s:
            return _STAY
        alt = self.strategy.best_spot_target(
            self.provider, self.bidding, now, exclude=placement.key
        )
        if alt is None:
            return _STAY
        if alt.rate < self._current_spot_rate(now) * self.strategy.improvement_factor:
            return BoundaryDecision("migrate", alt.key, alt.n_servers,
                                    LeaseKind.SPOT, "spot-switch")
        return _STAY

    def _boundary_decision_on_spot(self, now: float) -> Generator:
        decision = self.decide_spot_boundary(now)
        if decision.migrates:
            assert decision.target_key is not None and decision.target_kind is not None
            yield from self._voluntary_migration(
                now, decision.target_key, decision.n_servers,
                decision.target_kind, decision.kind,
            )

    # ------------------------------------------------------- on-demand phase
    def _on_demand_phase(self) -> Generator:
        placement = self.placement
        assert placement is not None and placement.kind is LeaseKind.ON_DEMAND
        now = self.engine.now
        lead = self._planned_lead(placement.key)
        check = min(self._next_boundary_check(now, lead), self.horizon)
        yield Timeout(max(0.0, check - now))
        now = self.engine.now
        if now >= self.horizon:
            return
        decision = self.decide_on_demand_boundary(now)
        if decision.migrates:
            assert decision.target_key is not None
            yield from self._voluntary_migration(now, decision.target_key,
                                                 decision.n_servers,
                                                 LeaseKind.SPOT, "reverse")

    def _reverse_wanted(self, key, price: float, od_single: float) -> bool:
        """Evaluate the reverse predicate for the winning spot candidate.

        A hook so :class:`~repro.runtime.vector.VectorScheduler` can record
        the compared price into its per-market reverse band (cross-run
        fusion); the comparison itself is the policy's unchanged scalar
        predicate.
        """
        return self.bidding.wants_reverse_migration(price, od_single)

    def decide_on_demand_boundary(self, now: float) -> BoundaryDecision:
        """Evaluate the reverse-migration step at a boundary check on
        on-demand. Side-effect free except for narration to ``sink``."""
        placement = self.placement
        assert placement is not None
        if self.sink.enabled:
            lead = self._planned_lead(placement.key)
            own = self._market(placement.key)
            self.sink.emit(
                BillingTick(
                    t=now,
                    market=str(placement.key),
                    price=own.price_at(now),
                    on_demand_price=own.on_demand_price,
                    boundary=now + lead,
                )
            )
        od_rate = self.strategy.on_demand_rate(self.provider, placement.key)
        spot = self.strategy.best_spot_target(self.provider, self.bidding, now)
        if spot is None:
            return _STAY
        price = self._market(spot.key).price_at(now)
        od_single = self.provider.on_demand_price(spot.key)
        if spot.rate < od_rate and self._reverse_wanted(spot.key, price, od_single):
            if self.sink.enabled:
                fell = self._market(spot.key).last_fall_below(od_single, now)
                self.sink.emit(
                    PriceCrossing(
                        t=now if fell is None else fell,
                        market=str(spot.key),
                        price=price,
                        threshold=od_single,
                        direction="below-on-demand",
                    )
                )
            return BoundaryDecision("migrate", spot.key, spot.n_servers,
                                    LeaseKind.SPOT, "reverse")
        return _STAY

    # ------------------------------------------------------------ migrations
    def _voluntary_migration(
        self,
        now: float,
        target_key: MarketKey,
        n_servers: int,
        target_kind: LeaseKind,
        kind: str,
    ) -> Generator:
        """A planned / reverse / spot-switch migration starting at ``now``.

        Sequence: request the target fleet, pre-stage state while the source
        keeps serving, suspend once both the state and the target are ready,
        blackout for the mechanism's downtime, resume on the target. If the
        source is a spot fleet and the price crosses the bid mid-flight, the
        move degenerates into a forced migration (source-revocation race).
        If the *target* is a spot fleet that would be revoked before the
        blackout even starts, the move is aborted and the source keeps
        serving.
        """
        placement = self.placement
        assert placement is not None
        source_key = placement.key
        mem = self.strategy.migration_memory(source_key)
        link = link_between(source_key.region, target_key.region)

        target = self._acquire(target_key, n_servers, target_kind, now)
        timing = self.model.planned(mem, link, self.rng)
        disk_s = self._disk_copy_s(source_key, target_key)
        prep_end = max(now + timing.prep_s + disk_s, target.ready_at)
        suspend_at = prep_end
        resume_at = suspend_at + timing.downtime_s

        # Source-revocation race (only when the source is a spot fleet).
        if placement.kind is LeaseKind.SPOT:
            bid = placement.leases[0].bid
            assert bid is not None
            warn = self._market(source_key).revocation_warning_time(bid, now)
            if warn is not None and warn < suspend_at:
                # The platform wins the race: cancel the voluntary target
                # (unless it is the on-demand server we need anyway) and
                # take the forced path from the warning instant.
                yield Timeout(max(0.0, warn - now))
                reuse = target if target_kind is LeaseKind.ON_DEMAND else None
                if reuse is None:
                    self._release(target, self.engine.now, revoked=False, reason="cancelled")
                yield from self._forced_migration(warn, prebuilt_target=reuse)
                return

        # Target-revocation race (only when the target is a spot fleet):
        # abort rather than land on a server about to vanish.
        if target_kind is LeaseKind.SPOT:
            tbid = target.leases[0].bid
            assert tbid is not None
            twarn = self._market(target_key).revocation_warning_time(tbid, now)
            if twarn is not None and twarn < resume_at + self.provider.grace_s:
                yield Timeout(max(0.0, min(twarn, self.horizon) - now))
                self._release(target, self.engine.now, revoked=False, reason="aborted-target")
                self._record_migration(
                    f"aborted-{kind}", now, self.engine.now, 0.0,
                    self._key_str(source_key), self._key_str(target_key),
                )
                if self.sink.enabled:
                    self.sink.emit(
                        MigrationAborted(
                            t=self.engine.now,
                            kind=kind,
                            source=str(source_key),
                            target=str(target_key),
                            reason="target-revoked",
                        )
                    )
                return

        if suspend_at >= self.horizon:
            # Migration cannot finish inside the window; cancel it.
            self._release(target, now, revoked=False, reason="horizon-cancel")
            if self.sink.enabled:
                self.sink.emit(
                    MigrationAborted(
                        t=now,
                        kind=kind,
                        source=str(source_key),
                        target=str(target_key),
                        reason="horizon",
                    )
                )
            yield Timeout(max(0.0, self.horizon - now))
            return

        yield Timeout(suspend_at - now)
        self._write_checkpoint(suspend_at)
        self._release(placement, suspend_at, revoked=False, reason=kind)
        self.placement = target
        rebind = self._move_service(source_key, target, suspend_at)
        resume_at += rebind
        if target_kind is LeaseKind.SPOT:
            self._last_spot_switch = suspend_at
        self._blackout(suspend_at, resume_at, f"{kind}-migration", timing.degraded_s)
        self._record_migration(
            kind, now, resume_at, timing.downtime_s + rebind,
            self._key_str(source_key), self._key_str(target_key),
        )
        if self.sink.enabled:
            next_cross = None
            if placement.kind is LeaseKind.SPOT and placement.leases[0].bid is not None:
                # Where the abandoned market's price would next have crossed
                # the bid — the revocation a proactive move side-stepped.
                next_cross = self._market(source_key).revocation_warning_time(
                    placement.leases[0].bid, now
                )
            self.sink.emit(
                VoluntaryMigration(
                    t=resume_at,
                    kind=kind,
                    source=str(source_key),
                    target=str(target_key),
                    started_at=now,
                    downtime_s=timing.downtime_s + rebind,
                    next_bid_crossing=next_cross,
                )
            )
        yield Timeout(max(0.0, min(resume_at, self.horizon) - suspend_at))

    def _forced_migration(
        self, warning: float, prebuilt_target: Optional[_Placement] = None
    ) -> Generator:
        """Handle a revocation warning at time ``warning``.

        Pure-spot strategies have no fallback: the service rides the grace
        window, checkpoints, and stays down until the market price returns
        below the bid and a new spot fleet boots.
        """
        placement = self.placement
        assert placement is not None and placement.kind is LeaseKind.SPOT
        source_key = placement.key
        mem = self.strategy.migration_memory(source_key)
        grace = self.provider.grace_s
        terminate_at = warning + grace

        bid = placement.leases[0].bid
        assert bid is not None
        if self.sink.enabled:
            price = self._market(source_key).price_at(warning)
            self.sink.emit(
                PriceCrossing(
                    t=warning,
                    market=str(source_key),
                    price=price,
                    threshold=bid,
                    direction="above-bid",
                )
            )
            self.sink.emit(
                RevocationWarning(
                    t=warning, market=str(source_key), bid=bid, price=price, grace_s=grace
                )
            )
        self.metrics.histogram("revocation_lead_s").observe(
            warning - placement.leases[0].requested_at
        )

        if not self.strategy.allows_on_demand:
            yield from self._pure_spot_outage(warning)
            return

        if prebuilt_target is not None:
            target = prebuilt_target
        else:
            # A forced migration races the grace window: the replacement
            # on-demand server must be in the *source* region so the restore
            # reads the checkpoint volume over the LAN. Cross-region
            # consolidation, if worthwhile, happens later as a planned move.
            od = self._best_local_on_demand(source_key)
            if od is None:
                raise SchedulingError("forced migration with no on-demand fallback")
            target = self._acquire(od.key, od.n_servers, LeaseKind.ON_DEMAND, warning)
        target_delay = max(0.0, target.ready_at - warning)
        link = link_between(source_key.region, target.key.region)
        timing = self.model.forced(mem, link, grace, target_delay, self.rng)
        suspend_at = warning + timing.prep_s
        resume_at = suspend_at + timing.downtime_s

        yield Timeout(max(0.0, min(terminate_at, self.horizon) - self.engine.now))
        self._write_checkpoint(min(suspend_at, self.horizon))
        self._release(placement, min(terminate_at, self.horizon), revoked=True, reason="revoked")
        if self.sink.enabled:
            self.sink.emit(
                Revocation(
                    t=min(terminate_at, self.horizon),
                    market=str(source_key),
                    bid=bid,
                    warned_at=warning,
                )
            )
        self.metrics.counter("revocations").inc()
        self.placement = target
        rebind = self._move_service(source_key, target, terminate_at)
        resume_at += rebind
        self._blackout(suspend_at, resume_at, "forced-migration", timing.degraded_s)
        self._record_migration(
            "forced", warning, resume_at, timing.downtime_s + rebind,
            self._key_str(source_key), self._key_str(target.key),
        )
        if self.sink.enabled:
            self.sink.emit(
                ForcedMigration(
                    t=resume_at,
                    source=str(source_key),
                    target=str(target.key),
                    started_at=warning,
                    downtime_s=timing.downtime_s + rebind,
                )
            )
            self.sink.emit(
                CheckpointRestore(
                    t=resume_at, market=str(target.key), downtime_s=timing.downtime_s + rebind
                )
            )
        yield Timeout(max(0.0, min(resume_at, self.horizon) - self.engine.now))

    def _pure_spot_outage(self, warning: float) -> Generator:
        """Pure-spot revocation: checkpoint, go dark, return when cheap.

        When the strategy is not ``fault_tolerant`` there is no
        checkpoint to write: the service rides the (free) revoked
        partial hour right up to termination, and on re-grant it
        *recomputes* its in-memory state from the durable volume instead
        of restoring (Alourani & Kshemkalyani).
        """
        placement = self.placement
        assert placement is not None
        key = placement.key
        mem = self.strategy.migration_memory(key)
        grace = self.provider.grace_s
        bid = placement.leases[0].bid
        assert bid is not None
        fault_tolerant = self.strategy.fault_tolerant
        if fault_tolerant:
            ckpt = self.model.params.checkpointer(mem)
            inc = min(ckpt.final_increment(self.rng).suspend_write_s, grace)
        else:
            inc = 0.0
        suspend_at = warning + grace - inc
        terminate_at = warning + grace

        yield Timeout(max(0.0, min(terminate_at, self.horizon) - self.engine.now))
        if fault_tolerant:
            self._write_checkpoint(min(suspend_at, self.horizon))
        self._release(placement, min(terminate_at, self.horizon), revoked=True, reason="revoked")
        if self.sink.enabled:
            self.sink.emit(
                Revocation(
                    t=min(terminate_at, self.horizon),
                    market=str(key),
                    bid=bid,
                    warned_at=warning,
                )
            )
        self.metrics.counter("revocations").inc()
        if self.service is not None:
            self.provider.volumes.detach(self.service.volume_id)
            self.provider.vpc.unbind(self.service.address)
        self.placement = None

        grant = self._market(key).next_grant_time(bid, terminate_at)
        if grant is None or grant >= self.horizon:
            self._blackout(suspend_at, self.horizon, "waiting-spot", 0.0)
            self._record_migration(
                "outage", warning, self.horizon, self.horizon - suspend_at, self._key_str(key), "-"
            )
            yield Timeout(max(0.0, self.horizon - self.engine.now))
            return

        yield Timeout(max(0.0, grant - self.engine.now))
        n = self.strategy.servers_needed(key)
        target = self._acquire(key, n, LeaseKind.SPOT, grant)
        if self.service is not None:
            self.provider.volumes.attach(self.service.volume_id,
                                         target.leases[0].lease_id, key.region)
            self.provider.vpc.bind(self.service.address,
                                   target.leases[0].lease_id, key.region)
        if fault_tolerant:
            link = link_between(key.region, key.region)
            # Restore once the replacement fleet boots; reuse the forced-path
            # restore arithmetic with the grace window already behind us.
            timing = self.model.forced(
                mem, link, 0.0, max(0.0, target.ready_at - grant), self.rng
            )
            downtime_s = timing.downtime_s
            degraded_s = timing.degraded_s
        else:
            # No checkpoint exists: boot, then rebuild in-memory state
            # from the durable volume at a flat recompute cost.
            downtime_s = max(0.0, target.ready_at - grant) + float(
                getattr(self.strategy, "recompute_s", 0.0)
            )
            degraded_s = 0.0
        resume_at = grant + downtime_s
        self.placement = target
        self._blackout(suspend_at, resume_at, "waiting-spot", degraded_s)
        self._record_migration(
            "outage", warning, resume_at, resume_at - suspend_at,
            self._key_str(key), self._key_str(key),
        )
        if fault_tolerant and self.sink.enabled:
            self.sink.emit(
                CheckpointRestore(t=resume_at, market=str(key), downtime_s=downtime_s)
            )
        yield Timeout(max(0.0, min(resume_at, self.horizon) - self.engine.now))
