"""Adaptive bidding: learn the bid from the market's trailing history.

The paper's proactive policy bids a fixed multiple of the on-demand price
(k = 4, the provider's cap). This extension instead runs the
:class:`~repro.analysis.bid_advisor.BidAnalysis` survival analysis over a
trailing window of the market's own price history each time a bid is
needed, and picks the cheapest bid whose *empirical* revocation rate fits a
monthly budget. In a calm market it can bid far below the cap without
losing availability; in a spiky one it converges to the cap — the same
answer the paper hard-codes, now derived from data.

Backward-looking only: the advisor never sees prices after the bidding
instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.analysis.bid_advisor import BidAnalysis
from repro.cloud.spot_market import SpotMarket
from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["AdaptiveBidding"]


@dataclass
class AdaptiveBidding:
    """Bid from trailing-window survival analysis of the market.

    Attributes
    ----------
    max_revocations_per_month:
        The availability budget handed to the advisor.
    lookback_s:
        Trailing history window (default one week).
    min_history_s:
        Below this much history, fall back to the static cap bid.
    grid_points:
        Bid grid resolution between the on-demand price and the cap.
    reverse_threshold_frac:
        Same return-to-spot hysteresis as the proactive policy.
    refresh_s:
        Recompute at most this often per market (bids are cached per
        time bucket; the advisor sweep is cheap but not free).
    """

    max_revocations_per_month: float = 3.0
    lookback_s: float = 7 * SECONDS_PER_DAY
    min_history_s: float = 1 * SECONDS_PER_DAY
    grid_points: int = 9
    reverse_threshold_frac: float = 0.9
    refresh_s: float = 6 * SECONDS_PER_HOUR
    name: str = "adaptive"
    _cache: Dict[Tuple[str, int], float] = field(default_factory=dict, repr=False)

    #: Not batchable by the vector engine: the bid is recomputed per time
    #: bucket from trailing history, so the revocation threshold (and with
    #: it every crossing table) shifts over a tenure.
    vectorizable = False

    def __post_init__(self) -> None:
        if self.max_revocations_per_month < 0:
            raise ConfigurationError("revocation budget must be >= 0")
        if self.lookback_s <= 0 or self.min_history_s <= 0:
            raise ConfigurationError("windows must be positive")
        if self.grid_points < 2:
            raise ConfigurationError("need at least two grid points")
        if not 0 < self.reverse_threshold_frac <= 1:
            raise ConfigurationError("reverse threshold must be in (0, 1]")
        if self.refresh_s <= 0:
            raise ConfigurationError("refresh period must be positive")

    # ----------------------------------------------------------------- bidding
    def bid_price(self, market: SpotMarket, t: float = 0.0) -> float:
        """The advisor-recommended bid for ``market`` at time ``t``."""
        bucket = int(t // self.refresh_s)
        key = (market.name, bucket)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        bid = self._compute_bid(market, t)
        self._cache[key] = bid
        return bid

    def _compute_bid(self, market: SpotMarket, t: float) -> float:
        trace = market.trace
        w0 = max(trace.start, t - self.lookback_s)
        if t - w0 < self.min_history_s or t > trace.horizon:
            return market.bid_cap  # not enough history: the paper's answer
        window = trace.slice(w0, min(t, trace.horizon))
        advisor = BidAnalysis(window, market.on_demand_price)
        # Grid from just above on-demand to the cap: an adaptive bidder never
        # bids below on-demand (that is the reactive policy's failure mode).
        lo = 1.05 * market.on_demand_price
        hi = market.bid_cap
        step = (hi - lo) / (self.grid_points - 1)
        grid = [lo + i * step for i in range(self.grid_points)]
        rec = advisor.recommend(self.max_revocations_per_month, bids=grid)
        return min(rec.bid, market.bid_cap)

    # ----------------------------------------------------- migration decisions
    def wants_planned_migration(self, spot_price: float, on_demand_price: float) -> bool:
        return spot_price > on_demand_price

    def wants_reverse_migration(self, spot_price: float, on_demand_price: float) -> bool:
        return spot_price <= on_demand_price * self.reverse_threshold_frac

    def explain_bid(self, market: SpotMarket, t: float = 0.0) -> str:
        bid = self.bid_price(market, t)
        return (
            f"survival-advised over trailing {self.lookback_s / SECONDS_PER_HOUR:.0f} h window "
            f"(${bid:.4f} vs on-demand ${market.on_demand_price:.4f})"
        )

    @property
    def is_proactive(self) -> bool:
        return True
