"""Cost and availability accounting.

The paper's two headline metrics:

* **normalized cost** — total spend as a percentage of hosting the same
  service entirely on on-demand servers for the same window (Figs 6a, 8a,
  9a, 11a);
* **unavailability** — fraction of the service window during which the
  service was down, in percent (Figs 6b, 7, 8c, 9c, 11b). Four nines of
  availability corresponds to 0.01 % unavailability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.cloud.billing import BillingRecord, LeaseBilling
from repro.errors import SchedulingError
from repro.units import SECONDS_PER_HOUR, percent

__all__ = ["CostEntry", "CostLedger", "DowntimeInterval", "AvailabilityTracker"]


@dataclass(frozen=True)
class CostEntry:
    """One billed amount with scheduling context."""

    time: float
    amount: float
    rate: float
    kind: str  #: 'spot' or 'on_demand'
    market: str
    note: str = ""


class CostLedger:
    """Accumulates billing records across every lease of a run.

    Entries are materialised lazily: the hot path (:meth:`add_billing`)
    folds a lease's billed hours in as arrays and keeps running totals —
    accumulated in insertion order with the same left-to-right float
    additions a ``sum`` over the entry list performs — while the
    :class:`CostEntry` objects themselves are only built when ``entries``
    is first read (oracles, tests, reports).
    """

    def __init__(self) -> None:
        self._items: List[tuple] = []  #: (LeaseBilling | records list, market)
        self._entries: List[CostEntry] | None = []
        self._total = 0.0
        self._kind_totals: dict[str, float] = {}
        self._count = 0

    def add_records(self, records: Iterable[BillingRecord], market: str) -> None:
        """Fold a terminated lease's billing records into the ledger."""
        records = list(records)
        self._items.append((records, market))
        self._entries = None
        total = self._total
        kinds = self._kind_totals
        for r in records:
            total += r.amount
            kinds[r.kind] = kinds.get(r.kind, 0.0) + r.amount
        self._total = total
        self._count += len(records)

    def add_billing(self, billing: LeaseBilling, market: str) -> None:
        """Array fast path: fold a lease's billed hours without
        materialising per-hour record objects."""
        amounts = billing.amounts.tolist()
        if not amounts:
            return
        self._items.append((billing, market))
        self._entries = None
        total = self._total
        kind_total = self._kind_totals.get(billing.kind, 0.0)
        # Left-to-right, one hour at a time: the exact additions a ``sum``
        # over the materialised entry list would perform.
        for amount in amounts:
            total += amount
            kind_total += amount
        self._total = total
        self._kind_totals[billing.kind] = kind_total
        self._count += len(amounts)

    @property
    def entries(self) -> List[CostEntry]:
        """Every billed hour as a :class:`CostEntry`, in billing order."""
        if self._entries is None:
            out: List[CostEntry] = []
            for item, market in self._items:
                records = item.records() if isinstance(item, LeaseBilling) else item
                for r in records:
                    out.append(
                        CostEntry(
                            time=r.hour_start,
                            amount=r.amount,
                            rate=r.rate,
                            kind=r.kind,
                            market=market,
                            note=r.note,
                        )
                    )
            self._entries = out
        return self._entries

    @property
    def total(self) -> float:
        """Total spend in USD."""
        return self._total

    def total_by_kind(self, kind: str) -> float:
        """Spend attributed to one lease kind ('spot' / 'on_demand')."""
        return self._kind_totals.get(kind, 0.0)

    def normalized_cost_percent(self, baseline_rate: float, duration_s: float) -> float:
        """Spend as a percentage of an always-on-demand baseline.

        ``baseline_rate`` is the USD/hour the baseline deployment pays
        (e.g. the on-demand price of the same instance size).
        """
        if baseline_rate <= 0 or duration_s <= 0:
            raise SchedulingError("baseline rate and duration must be positive")
        baseline = baseline_rate * duration_s / SECONDS_PER_HOUR
        return percent(self.total / baseline)

    def hours_billed(self) -> int:
        """Number of (possibly free) billing-hour records."""
        return len(self.entries)


@dataclass(frozen=True)
class DowntimeInterval:
    """One contiguous window of service unavailability."""

    start: float
    end: float
    cause: str  #: e.g. 'forced-migration', 'planned-migration', 'waiting-spot'

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SchedulingError(f"downtime interval ends before it starts: {self!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class AvailabilityTracker:
    """Tracks service downtime (and lazy-restore degradation) over a window.

    The observation window opens when the service first comes up
    (``open_window``) and closes at the simulation horizon. Downtime
    intervals must not overlap — the scheduler never runs two blackouts at
    once — and this is enforced.
    """

    def __init__(self) -> None:
        self.window_start: float | None = None
        self.window_end: float | None = None
        self.downtime: List[DowntimeInterval] = []
        self.degraded: List[DowntimeInterval] = []

    # ---------------------------------------------------------------- window
    def open_window(self, t: float) -> None:
        if self.window_start is not None:
            raise SchedulingError("availability window already open")
        self.window_start = float(t)

    def close_window(self, t: float) -> None:
        if self.window_start is None:
            raise SchedulingError("availability window never opened")
        if t < self.window_start:
            raise SchedulingError("window closes before it opens")
        self.window_end = float(t)

    # -------------------------------------------------------------- recording
    def record_downtime(self, start: float, end: float, cause: str) -> None:
        """Record a blackout; clamps to the open window and forbids overlap."""
        if self.window_start is None:
            raise SchedulingError("cannot record downtime before the window opens")
        start = max(start, self.window_start)
        if self.window_end is not None:
            end = min(end, self.window_end)
        if end <= start:
            return
        for iv in self.downtime:
            if start < iv.end and iv.start < end:
                raise SchedulingError(
                    f"overlapping downtime: [{start:.1f},{end:.1f}) vs "
                    f"[{iv.start:.1f},{iv.end:.1f}) ({iv.cause})"
                )
        self.downtime.append(DowntimeInterval(start, end, cause))

    def record_degraded(self, start: float, end: float, cause: str) -> None:
        """Record a post-resume degraded-performance window (may overlap)."""
        if end > start:
            self.degraded.append(DowntimeInterval(start, end, cause))

    # -------------------------------------------------------------- queries
    @property
    def window_duration(self) -> float:
        if self.window_start is None or self.window_end is None:
            raise SchedulingError("availability window not closed")
        return self.window_end - self.window_start

    def total_downtime(self, cause: str | None = None) -> float:
        """Total blackout seconds, optionally filtered by cause."""
        return sum(iv.duration for iv in self.downtime if cause is None or iv.cause == cause)

    def total_degraded(self) -> float:
        return sum(iv.duration for iv in self.degraded)

    def unavailability_percent(self) -> float:
        """Downtime as a percentage of the observation window."""
        dur = self.window_duration
        if dur <= 0:
            return 0.0
        return percent(self.total_downtime() / dur)

    def meets_availability(self, nines: int = 4) -> bool:
        """True when unavailability is at most one part in 10**nines * 100."""
        return self.unavailability_percent() <= 100.0 / (10**nines)
