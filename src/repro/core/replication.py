"""A replicated (hot-standby) spot scheduler — extension beyond the paper.

The paper's scheduler owns one server at a time and survives revocations by
checkpoint-migrating within the grace window. This extension instead keeps
a **Remus hot standby** on a *second, independent spot market*: when the
primary is revoked the service fails over in a couple of seconds, and a new
standby is procured in whichever market is cheapest. The standing cost is a
second spot price (still far below one on-demand price), buying downtime
that neither grows with memory size nor depends on any restore path.

Event loop (mirrors :class:`repro.core.scheduler.CloudScheduler`):

* **primary revocation** — ride the grace window, then fail over to the
  standby (if its initial sync completed; otherwise fall back to a
  checkpoint restore on an emergency on-demand server), then re-procure a
  standby;
* **standby revocation** — no downtime; replace the standby;
* **billing-boundary check** — if the primary's market has risen above the
  on-demand price, do a *planned* failover (sub-second) and re-procure; if
  the standby's market has, replace the standby.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

import numpy as np

from repro.cloud.instance_types import instance_type
from repro.cloud.provider import CloudProvider, Lease, LeaseKind
from repro.cloud.regions import link_between
from repro.core.accounting import AvailabilityTracker, CostLedger
from repro.core.bidding import BiddingPolicy
from repro.core.scheduler import MigrationRecord
from repro.errors import SchedulingError
from repro.simulator.engine import Engine
from repro.simulator.process import Process, Timeout
from repro.traces.catalog import MarketKey
from repro.units import SECONDS_PER_HOUR
from repro.vm.memory import MemoryProfile
from repro.vm.replication import RemusReplication
from repro.vm.restore import LazyRestore

__all__ = ["ReplicatedScheduler"]


@dataclass
class _Node:
    """One server of the replicated pair."""

    lease: Lease
    key: MarketKey
    protected_from: float  #: when the standby's initial sync completes


class ReplicatedScheduler:
    """Hosts one service as a Remus-protected primary/standby spot pair.

    Results are read from :attr:`ledger`, :attr:`availability` and
    :attr:`migrations` exactly as for the paper's scheduler, so the same
    aggregation machinery applies.
    """

    BOUNDARY_LEAD_S = 60.0
    #: Re-optimization hysteresis: a move must beat the current primary
    #: price by this factor, and happen at most once per dwell period —
    #: each planned failover costs a sub-second blackout, so chasing noise
    #: would spend the availability budget on pennies.
    REOPT_IMPROVEMENT = 0.70
    REOPT_DWELL_S = 12 * SECONDS_PER_HOUR

    def __init__(
        self,
        engine: Engine,
        provider: CloudProvider,
        bidding: BiddingPolicy,
        service_size: str,
        candidate_keys: List[MarketKey],
        remus: RemusReplication,
        rng: np.random.Generator,
        horizon: float,
    ) -> None:
        if not candidate_keys:
            raise SchedulingError("need at least one candidate market")
        cap_needed = instance_type(service_size).capacity_units
        self.candidates = [
            k for k in candidate_keys
            if instance_type(k.size).capacity_units >= cap_needed
        ]
        if not self.candidates:
            raise SchedulingError("no candidate market can host the service size")
        self.engine = engine
        self.provider = provider
        self.bidding = bidding
        self.service_size = service_size
        self.remus = remus
        self.rng = rng
        self.horizon = float(horizon)
        self.memory = MemoryProfile(size_gib=instance_type(service_size).nested_memory_gib)

        self.ledger = CostLedger()
        self.availability = AvailabilityTracker()
        self.migrations: List[MigrationRecord] = []
        self.primary: Optional[_Node] = None
        self.standby: Optional[_Node] = None
        self.unprotected_s = 0.0  #: time spent without a synced standby
        self._process: Optional[Process] = None
        self._last_reopt = -float("inf")

    # ------------------------------------------------------------------ run
    def run(self) -> None:
        if self._process is None:
            self._process = Process(self.engine, self._main(), label="replicated-scheduler")
        self.engine.run(until=self.horizon + 1.0)
        if self._process.alive:
            raise SchedulingError("replicated scheduler did not finish")

    def migration_count(self, *kinds: str) -> int:
        return sum(1 for m in self.migrations if m.kind in kinds)

    # -------------------------------------------------------------- helpers
    def _bid(self, key: MarketKey) -> float:
        return self.bidding.bid_price(self.provider.market(key), self.engine.now)

    def _cheapest_grantable(self, t: float, exclude: Optional[MarketKey]) -> Optional[MarketKey]:
        best_key, best_price = None, None
        for key in self.candidates:
            if key == exclude:
                continue
            market = self.provider.market(key)
            if not market.grantable(self._bid(key), t):
                continue
            price = market.price_at(t)
            if best_price is None or price < best_price:
                best_key, best_price = key, price
        return best_key

    def _acquire_spot(self, key: MarketKey, t: float) -> _Node:
        lease = self.provider.request_spot(key, self._bid(key), t)
        sync = self.remus.initial_sync_s(
            self.memory, link_between(key.region, key.region)
        )
        return _Node(lease=lease, key=key, protected_from=lease.ready_at + sync)

    def _release(self, node: _Node, t: float, *, revoked: bool, reason: str) -> None:
        done = self.provider.terminate(node.lease, t, revoked=revoked, reason=reason)
        if done.billing is not None:
            self.ledger.add_billing(done.billing, market=str(node.key))

    def _warning(self, node: Optional[_Node], from_t: float) -> Optional[float]:
        if node is None or node.lease.kind is not LeaseKind.SPOT:
            return None
        assert node.lease.bid is not None
        return self.provider.market(node.key).revocation_warning_time(
            node.lease.bid, from_t
        )

    def _record(self, kind: str, start: float, end: float, down: float,
                src: str, dst: str) -> None:
        self.migrations.append(MigrationRecord(kind, start, end, down, src, dst))

    def _procure_standby(self, t: float) -> None:
        """Acquire a fresh standby in the cheapest market not hosting the
        primary; falls back to on-demand when nothing is grantable."""
        assert self.primary is not None
        key = self._cheapest_grantable(t, exclude=self.primary.key)
        if key is not None:
            self.standby = self._acquire_spot(key, t)
        else:
            od_key = min(
                self.candidates, key=lambda k: self.provider.on_demand_price(k)
            )
            lease = self.provider.request_on_demand(od_key, t)
            sync = self.remus.initial_sync_s(
                self.memory, link_between(od_key.region, od_key.region)
            )
            self.standby = _Node(lease=lease, key=od_key,
                                 protected_from=lease.ready_at + sync)

    # ============================================================= main loop
    def _main(self) -> Generator:
        t = self.engine.now
        first = self._cheapest_grantable(t, exclude=None)
        if first is None:
            # No spot market grantable at t=0: start on-demand as primary.
            od_key = min(self.candidates, key=lambda k: self.provider.on_demand_price(k))
            lease = self.provider.request_on_demand(od_key, t)
            self.primary = _Node(lease=lease, key=od_key, protected_from=lease.ready_at)
        else:
            self.primary = self._acquire_spot(first, t)
        ready = min(self.primary.lease.ready_at, self.horizon)
        yield Timeout(max(0.0, ready - t))
        self.availability.open_window(ready)
        self._procure_standby(self.engine.now)

        while self.engine.now < self.horizon:
            yield from self._step()
        self._finalize()

    def _step(self) -> Generator:
        now = self.engine.now
        assert self.primary is not None
        wp = self._warning(self.primary, now)
        ws = self._warning(self.standby, now)
        anchor = self.primary.lease.ready_at
        k = int(max(1, np.ceil((now + self.BOUNDARY_LEAD_S - anchor) / SECONDS_PER_HOUR)))
        check = anchor + k * SECONDS_PER_HOUR - self.BOUNDARY_LEAD_S
        while check <= now + 1e-9:
            k += 1
            check = anchor + k * SECONDS_PER_HOUR - self.BOUNDARY_LEAD_S

        t_next = min(
            wp if wp is not None else float("inf"),
            ws if ws is not None else float("inf"),
            check,
            self.horizon,
        )
        # account unprotected exposure up to the next event
        if self.standby is None or self.standby.protected_from > now:
            shield = self.standby.protected_from if self.standby else t_next
            self.unprotected_s += max(0.0, min(t_next, shield) - now)
        yield Timeout(max(0.0, t_next - now))
        now = self.engine.now
        if now >= self.horizon:
            return
        if wp is not None and now >= wp - 1e-9:
            yield from self._primary_revoked(wp)
        elif ws is not None and now >= ws - 1e-9:
            yield from self._standby_revoked(ws)
        else:
            self._boundary_check(now)

    # ---------------------------------------------------------------- events
    def _primary_revoked(self, warning: float) -> Generator:
        assert self.primary is not None
        grace = self.provider.grace_s
        dead_at = min(warning + grace, self.horizon)
        yield Timeout(max(0.0, dead_at - self.engine.now))
        old = self.primary
        self._release(old, dead_at, revoked=True, reason="revoked")

        if self.standby is not None and self.standby.protected_from <= dead_at:
            fo = self.remus.failover()
            resume = dead_at + fo.downtime_s
            self.availability.record_downtime(dead_at, min(resume, self.horizon), "failover")
            self.primary = self.standby
            self.standby = None
            self._record("failover", warning, resume, fo.downtime_s,
                         str(old.key), str(self.primary.key))
        else:
            # Unprotected: emergency on-demand restore from the periodic
            # EBS checkpoint (lazy restore, size-independent).
            if self.standby is not None:
                self._release(self.standby, dead_at, revoked=False, reason="unsynced")
                self.standby = None
            od_key = min(self.candidates, key=lambda k: self.provider.on_demand_price(k))
            lease = self.provider.request_on_demand(od_key, warning)
            restore = LazyRestore().restore(self.memory)
            resume = max(dead_at, lease.ready_at) + restore.downtime_s
            self.availability.record_downtime(
                dead_at, min(resume, self.horizon), "unprotected-restore"
            )
            self.primary = _Node(lease=lease, key=od_key, protected_from=lease.ready_at)
            self._record("unprotected-restore", warning, resume,
                         resume - dead_at, str(old.key), str(od_key))
        if self.engine.now < self.horizon:
            self._procure_standby(max(self.engine.now, dead_at))
        yield Timeout(max(0.0, min(self.horizon, self.engine.now) - self.engine.now))

    def _standby_revoked(self, warning: float) -> Generator:
        grace = self.provider.grace_s
        dead_at = min(warning + grace, self.horizon)
        yield Timeout(max(0.0, dead_at - self.engine.now))
        if self.standby is not None:
            old = self.standby
            self._release(old, dead_at, revoked=True, reason="revoked")
            self.standby = None
            self._record("standby-replace", warning, dead_at, 0.0, str(old.key), "-")
        if self.engine.now < self.horizon:
            self._procure_standby(dead_at)

    def _planned_failover(self, now: float, reason: str) -> None:
        """Promote the (synced) standby, retire the primary, re-procure."""
        assert self.primary is not None and self.standby is not None
        fo = self.remus.planned_failover()
        old = self.primary
        self._release(old, now, revoked=False, reason=reason)
        self.availability.record_downtime(
            now, min(now + fo.downtime_s, self.horizon), "planned-failover"
        )
        self.primary = self.standby
        self.standby = None
        self._record(reason, now, now + fo.downtime_s,
                     fo.downtime_s, str(old.key), str(self.primary.key))
        self._procure_standby(now)

    def _swap_standby(self, now: float) -> None:
        assert self.standby is not None
        old = self.standby
        self._release(old, now, revoked=False, reason="standby-swap")
        self.standby = None
        self._record("standby-replace", now, now, 0.0, str(old.key), "-")
        self._procure_standby(now)

    def _boundary_check(self, now: float) -> None:
        assert self.primary is not None
        p_price = self.provider.market(self.primary.key).price_at(now)
        p_od = self.provider.on_demand_price(self.primary.key)
        standby_synced = (
            self.standby is not None
            and self.standby.protected_from <= now
            and self.standby.lease.kind is LeaseKind.SPOT
        )
        s_price = (
            self.provider.market(self.standby.key).price_at(now)
            if self.standby is not None else float("inf")
        )

        # Mandatory exit: the primary's market has risen above on-demand.
        if (
            self.primary.lease.kind is LeaseKind.SPOT
            and p_price > p_od
            and standby_synced
        ):
            self._planned_failover(now, "planned-failover")
            return
        # Cost re-optimization (phase 2): the staged standby is much
        # cheaper than the primary — promote it.
        if (
            standby_synced
            and s_price < self.REOPT_IMPROVEMENT * p_price
            and now - self._last_reopt >= self.REOPT_DWELL_S
        ):
            self._last_reopt = now
            self._planned_failover(now, "reopt-failover")
            return

        # Standby maintenance / re-optimization phase 1.
        if self.standby is None:
            self._procure_standby(now)
            return
        s_od = self.provider.on_demand_price(self.standby.key)
        too_expensive = (
            self.standby.lease.kind is LeaseKind.ON_DEMAND or s_price > s_od
        )
        cheapest = self._cheapest_grantable(now, self.primary.key)
        if too_expensive and cheapest is not None:
            self._swap_standby(now)
            return
        # Stage the standby in a much cheaper market so the next boundary
        # can fail over onto it (two-phase move toward the cheap market).
        if (
            cheapest is not None
            and cheapest != self.standby.key
            and self.provider.market(cheapest).price_at(now)
            < self.REOPT_IMPROVEMENT * min(p_price, s_price)
        ):
            self._swap_standby(now)

    def _finalize(self) -> None:
        now = min(self.engine.now, self.horizon)
        for node in (self.primary, self.standby):
            if node is not None and node.lease.active:
                self._release(node, now, revoked=False, reason="horizon")
        self.primary = None
        self.standby = None
        if self.availability.window_start is None:
            self.availability.open_window(now)
        self.availability.close_window(self.horizon)
