"""Checkpoint restoration: eager (standard) and lazy.

**Eager restore** reads the whole checkpointed image back into RAM before
resuming — tens of seconds per GiB of state, and it scales with VM size,
which is what makes pure checkpointing unacceptable for always-on services
(Figure 7, "CKPT").

**Lazy restore** (post-copy restoration; Hines & Gopalan [10], Zhang et
al. [24]) reads only a small critical working set, resumes immediately, and
pages the rest in behind execution. The paper assumes a 20 s
memory-size-independent resume latency, after which the VM runs *degraded*
until the background prefetch finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MigrationError
from repro.units import transfer_seconds
from repro.vm.memory import MemoryProfile

__all__ = ["RestoreResult", "EagerRestore", "LazyRestore"]


@dataclass(frozen=True)
class RestoreResult:
    """Timing of one checkpoint restoration."""

    downtime_s: float  #: suspend-to-resume blackout contributed by the restore
    degraded_s: float  #: post-resume window of page-fault slowdown (lazy only)
    data_read_gib: float  #: image bytes read before resume


@dataclass(frozen=True)
class EagerRestore:
    """Standard restore: read the full image, then resume.

    ``read_bandwidth_mbps`` is *random-access* read bandwidth — restoring
    faults the image in out of order, so it is lower than the sequential
    write bandwidth of checkpointing (150 vs 300 Mbit/s by default).
    """

    read_bandwidth_mbps: float = 150.0

    def restore(self, memory: MemoryProfile) -> RestoreResult:
        if self.read_bandwidth_mbps <= 0:
            raise MigrationError("restore bandwidth must be positive")
        t = transfer_seconds(memory.size_gib, self.read_bandwidth_mbps)
        return RestoreResult(downtime_s=t, degraded_s=0.0, data_read_gib=memory.size_gib)


@dataclass(frozen=True)
class LazyRestore:
    """Lazy restore: read the critical set, resume, prefetch the rest.

    ``resume_latency_s`` is the memory-size-independent blackout the paper
    assumes (20 s, from [10]); ``critical_set_frac`` sizes the data read
    before resume; the remaining image is prefetched at
    ``prefetch_bandwidth_mbps`` while the VM runs degraded.
    """

    resume_latency_s: float = 20.0
    critical_set_frac: float = 0.05
    prefetch_bandwidth_mbps: float = 150.0

    def restore(self, memory: MemoryProfile) -> RestoreResult:
        if self.resume_latency_s < 0:
            raise MigrationError("resume latency must be >= 0")
        if not 0 < self.critical_set_frac <= 1:
            raise MigrationError("critical-set fraction must be in (0, 1]")
        if self.prefetch_bandwidth_mbps <= 0:
            raise MigrationError("prefetch bandwidth must be positive")
        critical = memory.size_gib * self.critical_set_frac
        rest = memory.size_gib - critical
        degraded = transfer_seconds(rest, self.prefetch_bandwidth_mbps)
        return RestoreResult(
            downtime_s=self.resume_latency_s,
            degraded_s=degraded,
            data_read_gib=critical,
        )
