"""Memory-state model of a virtual machine.

Both live migration and incremental checkpointing are governed by how fast
the guest dirties memory relative to how fast state can be shipped. The
standard model (Clark et al. [7]): the guest dirties pages at
``dirty_rate_mbps`` but only within a bounded ``writable_working_set``
fraction of RAM — re-dirtying the same page adds no new data — so iterative
transfer converges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MigrationError
from repro.units import gib_to_megabits

__all__ = ["MemoryProfile"]


@dataclass(frozen=True)
class MemoryProfile:
    """Memory behaviour of one (nested) VM.

    Attributes
    ----------
    size_gib:
        Total RAM of the VM.
    dirty_rate_mbps:
        Rate at which the workload dirties pages (megabits/second of new
        dirty data while below the working-set cap). An interactive web
        stack dirties a few hundred Mbit/s under load.
    working_set_frac:
        Fraction of RAM in the writable working set; the dirty backlog can
        never exceed this.
    """

    size_gib: float
    dirty_rate_mbps: float = 100.0
    working_set_frac: float = 0.10

    def __post_init__(self) -> None:
        if self.size_gib <= 0:
            raise MigrationError(f"memory size must be positive, got {self.size_gib}")
        if self.dirty_rate_mbps < 0:
            raise MigrationError("dirty rate must be >= 0")
        if not 0 < self.working_set_frac <= 1:
            raise MigrationError("working-set fraction must be in (0, 1]")

    @property
    def size_megabits(self) -> float:
        """Total RAM in megabits."""
        return gib_to_megabits(self.size_gib)

    @property
    def working_set_megabits(self) -> float:
        """Writable working set in megabits (dirty-backlog cap)."""
        return self.size_megabits * self.working_set_frac

    def dirtied_during(self, seconds: float) -> float:
        """Megabits of *new* dirty data accumulated over ``seconds``.

        Saturates at the writable working set.
        """
        if seconds < 0:
            raise MigrationError("duration must be >= 0")
        return min(self.dirty_rate_mbps * seconds, self.working_set_megabits)

    def scaled(self, size_gib: float) -> "MemoryProfile":
        """Same behaviour on a different RAM size."""
        return MemoryProfile(
            size_gib=size_gib,
            dirty_rate_mbps=self.dirty_rate_mbps,
            working_set_frac=self.working_set_frac,
        )
