"""Background checkpointing as a running simulation process.

:class:`~repro.vm.checkpoint.BoundedCheckpointer` gives Yank's steady-state
*arithmetic*; this module runs the actual control loop on the event engine,
under a (possibly time-varying) dirty rate:

* dirty data accrues at the current rate, capped by the writable working set;
* when the backlog reaches the trigger level ``safety * tau * B`` a flush
  starts, draining at the write bandwidth while new dirtying accrues into
  the next increment;
* at any instant, suspending the VM costs ``backlog / B`` of final flush —
  and because the trigger never lets the backlog exceed ``tau * B``, that
  final flush always fits the bound, whatever the workload does (as long as
  its dirty rate stays below the write bandwidth).

The process records every flush, so tests can check both the invariant
(final flush <= tau at *every* instant) and the adaptive behaviour (flush
frequency tracks the dirty rate, the idle VM flushes rarely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointBoundError, MigrationError
from repro.simulator.engine import Engine
from repro.simulator.events import EventKind
from repro.vm.memory import MemoryProfile

__all__ = ["FlushRecord", "DirtyRateProfile", "BackgroundCheckpointProcess"]


@dataclass(frozen=True)
class FlushRecord:
    """One background flush."""

    start: float
    end: float
    megabits: float


class DirtyRateProfile:
    """A piecewise-constant dirty-rate schedule (Mbit/s over time)."""

    def __init__(self, times: Sequence[float], rates: Sequence[float]) -> None:
        t = np.asarray(times, dtype=float)
        r = np.asarray(rates, dtype=float)
        if t.ndim != 1 or t.shape != r.shape or t.size == 0:
            raise MigrationError("profile needs matching 1-D times/rates")
        if np.any(np.diff(t) <= 0):
            raise MigrationError("profile times must be strictly increasing")
        if np.any(r < 0):
            raise MigrationError("dirty rates must be >= 0")
        self.times = t
        self.rates = r

    @classmethod
    def constant(cls, rate: float) -> "DirtyRateProfile":
        return cls([0.0], [rate])

    def rate_at(self, t: float) -> float:
        idx = int(np.clip(np.searchsorted(self.times, t, side="right") - 1, 0,
                          len(self.times) - 1))
        return float(self.rates[idx])

    def next_change_after(self, t: float) -> Optional[float]:
        idx = int(np.searchsorted(self.times, t, side="right"))
        if idx >= len(self.times):
            return None
        return float(self.times[idx])

    @property
    def max_rate(self) -> float:
        return float(self.rates.max())


class BackgroundCheckpointProcess:
    """Runs Yank's background flush loop on an engine.

    Parameters
    ----------
    engine:
        The simulation engine (shared with whatever else is running).
    memory:
        VM memory; its ``working_set_frac`` caps the backlog.
    write_bandwidth_mbps / tau_s:
        As in :class:`~repro.vm.checkpoint.BoundedCheckpointer`.
    safety:
        Trigger level as a fraction of the bound's backlog budget
        (flush at ``safety * tau * B``); < 1 leaves margin for the
        scheduling quantum.
    profile:
        Dirty-rate schedule; defaults to the memory profile's constant rate.
    """

    def __init__(
        self,
        engine: Engine,
        memory: MemoryProfile,
        write_bandwidth_mbps: float = 300.0,
        tau_s: float = 10.0,
        safety: float = 0.9,
        profile: Optional[DirtyRateProfile] = None,
    ) -> None:
        if write_bandwidth_mbps <= 0 or tau_s <= 0:
            raise MigrationError("bandwidth and tau must be positive")
        if not 0 < safety <= 1:
            raise MigrationError("safety must be in (0, 1]")
        self.engine = engine
        self.memory = memory
        self.bandwidth = float(write_bandwidth_mbps)
        self.tau_s = float(tau_s)
        self.safety = float(safety)
        self.profile = profile or DirtyRateProfile.constant(memory.dirty_rate_mbps)
        if self.profile.max_rate >= self.bandwidth:
            raise CheckpointBoundError(
                f"peak dirty rate {self.profile.max_rate} >= write bandwidth "
                f"{self.bandwidth}: the flush loop can never keep up"
            )
        self.flushes: List[FlushRecord] = []
        self._start_time = engine.now
        self._pending = None
        self._started = False

    # ----------------------------------------------------------------- state
    @property
    def trigger_megabits(self) -> float:
        """Backlog level at which a flush starts."""
        budget = self.safety * self.tau_s * self.bandwidth
        return min(budget, self.memory.working_set_megabits)

    def _last_anchor(self, t: float) -> float:
        """Most recent instant (<= t) at which the new-dirty backlog was 0:
        the process start, or the start of the latest flush (whose data is
        then in flight, accounted separately)."""
        anchor = self._start_time
        for f in self.flushes:
            if f.start <= t:
                anchor = f.start
            else:
                break
        return anchor

    def backlog_at(self, t: float) -> float:
        """Un-flushed *new* dirty data at any time ``t`` since the start."""
        if t < self._start_time:
            raise MigrationError("cannot query before the process started")
        anchor = self._last_anchor(t)
        backlog = 0.0
        cur = anchor
        while cur < t:
            rate = self.profile.rate_at(cur)
            nxt = self.profile.next_change_after(cur)
            seg_end = min(t, nxt if nxt is not None else t)
            backlog += rate * (seg_end - cur)
            cur = seg_end
        return min(backlog, self.memory.working_set_megabits)

    def inflight_s(self, t: float) -> float:
        """Remaining drain time of a flush in progress at ``t`` (0 if none)."""
        for f in reversed(self.flushes):
            if f.start <= t < f.end:
                return f.end - t
            if f.end <= t:
                break
        return 0.0

    def final_flush_s_if_suspended(self, t: float) -> float:
        """Final-increment flush time if the VM suspended at ``t``.

        A suspend must finish any in-flight flush and then write the new
        backlog; because the trigger caps the pre-flush backlog, this total
        never exceeds the bound.
        """
        return self.inflight_s(t) + self.backlog_at(t) / self.bandwidth

    def bound_holds_at(self, t: float) -> bool:
        return self.final_flush_s_if_suspended(t) <= self.tau_s + 1e-9

    # ------------------------------------------------------------------ loop
    def start(self) -> None:
        if self._started:
            raise MigrationError("checkpoint process already started")
        self._started = True
        self._start_time = self.engine.now
        self._schedule_next()

    def _time_to_trigger(self, now: float) -> Optional[float]:
        """When will the backlog next reach the trigger (None = never)?"""
        target = self.trigger_megabits
        backlog = self.backlog_at(now)
        if backlog >= target:
            return now
        cur = now
        acc = backlog
        while True:
            rate = self.profile.rate_at(cur)
            nxt = self.profile.next_change_after(cur)
            if rate > 0:
                eta = cur + (target - acc) / rate
                if nxt is None or eta <= nxt:
                    return eta
                acc += rate * (nxt - cur)
                cur = nxt
            else:
                if nxt is None:
                    return None
                cur = nxt

    def _schedule_next(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        eta = self._time_to_trigger(self.engine.now)
        if eta is None:
            return
        self._pending = self.engine.schedule(
            max(eta, self.engine.now),
            lambda _e, _ev: self._begin_flush(),
            kind=EventKind.TIMER,
            label="ckpt-flush",
        )

    def _begin_flush(self) -> None:
        now = self.engine.now
        backlog = self.backlog_at(now)
        if backlog <= 0:
            self._schedule_next()
            return
        duration = backlog / self.bandwidth
        # new dirtying during the flush belongs to the *next* increment
        self.flushes.append(FlushRecord(start=now, end=now + duration, megabits=backlog))
        self._pending = self.engine.schedule(
            now + duration,
            lambda _e, _ev: self._end_flush(),
            kind=EventKind.TIMER,
            label="ckpt-flush-done",
        )

    def _end_flush(self) -> None:
        self._schedule_next()

    # ------------------------------------------------------------- reporting
    def flush_count(self) -> int:
        return len(self.flushes)

    def mean_period_s(self) -> float:
        """Mean spacing of flush starts (nan with fewer than two flushes)."""
        if len(self.flushes) < 2:
            return float("nan")
        starts = np.array([f.start for f in self.flushes])
        return float(np.diff(starts).mean())

    def bandwidth_fraction_used(self, t0: float, t1: float) -> float:
        """Share of [t0, t1) spent flushing."""
        if t1 <= t0:
            raise MigrationError("empty window")
        busy = sum(
            max(0.0, min(f.end, t1) - max(f.start, t0)) for f in self.flushes
        )
        return busy / (t1 - t0)
