"""Pre-copy live migration model (Clark et al., NSDI'05).

Round 0 ships all of RAM while the guest keeps running; each later round
ships the pages dirtied during the previous round. Because the dirty
backlog is capped by the writable working set and the link is faster than
the dirty rate, the residue shrinks geometrically; when it falls below the
stop-and-copy threshold the VM is paused, the last residue plus CPU state
is shipped, and the destination resumes. Downtime is just that final
blackout (plus an activation constant), which is why live migration is the
paper's mechanism of choice for planned and reverse migrations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.regions import RegionLink
from repro.errors import MigrationError
from repro.vm.memory import MemoryProfile

__all__ = ["LiveMigrationModel", "LiveMigrationResult"]


@dataclass(frozen=True)
class LiveMigrationResult:
    """Outcome of one modelled live migration."""

    total_time_s: float  #: start of pre-copy to destination resume
    downtime_s: float  #: stop-and-copy blackout
    rounds: int  #: pre-copy iterations (including round 0)
    data_sent_megabits: float  #: total data on the wire
    converged: bool  #: False when the round cap forced a stop-and-copy


@dataclass(frozen=True)
class LiveMigrationModel:
    """Analytic pre-copy iteration.

    Parameters
    ----------
    stop_copy_threshold_mbits:
        Residue below which the VM is paused (default ~64 Mbit = 8 MB).
    max_rounds:
        Safety cap; reaching it forces stop-and-copy of the full backlog
        (models a workload dirtying faster than the link can drain).
    activation_s:
        Constant blackout component: pause, final state, device re-attach,
        unsolicited ARP.
    """

    stop_copy_threshold_mbits: float = 64.0
    max_rounds: int = 30
    activation_s: float = 0.35

    def migrate(self, memory: MemoryProfile, link: RegionLink) -> LiveMigrationResult:
        """Model one migration of ``memory`` over ``link``.

        Pure in its (frozen, hashable) arguments, so results are memoized
        per model instance — a month-long run re-migrates the same
        (memory, link) pairs hundreds of times.
        """
        memo = self.__dict__.setdefault("_migrate_memo", {})
        out = memo.get((memory, link))
        if out is None:
            out = memo[(memory, link)] = self._migrate(memory, link)
        return out

    def _migrate(self, memory: MemoryProfile, link: RegionLink) -> LiveMigrationResult:
        bw = link.memory_bandwidth_mbps
        if bw <= 0:
            raise MigrationError("link bandwidth must be positive")
        rtt_s = link.rtt_ms / 1000.0

        to_send = memory.size_megabits
        total_time = 0.0
        total_data = 0.0
        rounds = 0
        converged = True
        while True:
            rounds += 1
            round_time = to_send / bw + rtt_s
            total_time += round_time
            total_data += to_send
            dirtied = memory.dirtied_during(round_time)
            if dirtied <= self.stop_copy_threshold_mbits:
                to_send = dirtied
                break
            if rounds >= self.max_rounds:
                converged = False
                to_send = dirtied
                break
            to_send = dirtied

        blackout = to_send / bw + rtt_s + self.activation_s
        total_time += blackout
        total_data += to_send
        return LiveMigrationResult(
            total_time_s=total_time,
            downtime_s=blackout,
            rounds=rounds,
            data_sent_megabits=total_data,
            converged=converged,
        )
