"""Migration-mechanism combinations and their downtime arithmetic.

Figure 7 of the paper compares four combinations, which this module models:

=================  =======================================  =====================
Mechanism          Planned / reverse migrations use          Forced migrations use
=================  =======================================  =====================
``CKPT``           pre-staged checkpoint, eager restore      checkpoint + eager restore
``CKPT_LR``        pre-staged checkpoint, lazy restore       checkpoint + lazy restore
``CKPT_LIVE``      live migration                            checkpoint + eager restore
``CKPT_LR_LIVE``   live migration                            checkpoint + lazy restore
=================  =======================================  =====================

Forced migrations always fall back to bounded checkpointing because live
migration of a large memory cannot be trusted to finish inside the 120 s
revocation grace window (Section 3.2). In a *planned* migration the target
server is already up and the checkpoint image is **pre-staged**: the full
image is written and read while the source keeps serving, so the blackout
covers only the final increment plus the un-staged fraction of the restore.

Two parameter sets reproduce the paper's "typical" and "pessimistic"
columns: pessimistic assumes a 10 s live-migration outage and a 120 s lazy
restore (Section 4.3), plus no overlap between the grace window and the
replacement server's startup.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cloud.regions import RegionLink
from repro.errors import MigrationError
from repro.vm.checkpoint import BoundedCheckpointer
from repro.vm.live_migration import LiveMigrationModel
from repro.vm.memory import MemoryProfile
from repro.vm.restore import EagerRestore, LazyRestore

__all__ = [
    "Mechanism",
    "MechanismParams",
    "TYPICAL_PARAMS",
    "PESSIMISTIC_PARAMS",
    "MigrationTiming",
    "MigrationModel",
]


class Mechanism(enum.Enum):
    """The four migration-mechanism combinations of Figure 7."""

    CKPT = "ckpt"
    CKPT_LR = "ckpt+lr"
    CKPT_LIVE = "ckpt+live"
    CKPT_LR_LIVE = "ckpt+lr+live"

    @property
    def uses_live(self) -> bool:
        """Planned/reverse migrations go through live migration."""
        return self in (Mechanism.CKPT_LIVE, Mechanism.CKPT_LR_LIVE)

    @property
    def uses_lazy_restore(self) -> bool:
        """Checkpoint restores resume lazily."""
        return self in (Mechanism.CKPT_LR, Mechanism.CKPT_LR_LIVE)

    @property
    def label(self) -> str:
        return {
            Mechanism.CKPT: "CKPT",
            Mechanism.CKPT_LR: "CKPT LR",
            Mechanism.CKPT_LIVE: "CKPT + Live",
            Mechanism.CKPT_LR_LIVE: "CKPT LR + Live",
        }[self]


@dataclass(frozen=True)
class MechanismParams:
    """Calibrated constants shared by all mechanism combinations.

    ``prestage_miss_frac`` is the fraction of the checkpoint image not yet
    staged on the target when a planned migration suspends (pages dirtied
    after their last background flush); it multiplies the eager-restore
    blackout of planned migrations. ``lazy_prestage_frac`` plays the same
    role for the lazy critical set. ``overlap_startup`` controls whether
    the replacement server's allocation overlaps the grace window during a
    forced migration (it does — the warning is the request trigger — except
    in the pessimistic scenario).
    """

    live: LiveMigrationModel = field(default_factory=LiveMigrationModel)
    eager: EagerRestore = field(default_factory=EagerRestore)
    lazy: LazyRestore = field(default_factory=LazyRestore)
    ckpt_write_bandwidth_mbps: float = 300.0
    tau_s: float = 10.0
    suspend_overhead_s: float = 1.0
    prestage_miss_frac: float = 0.07
    lazy_prestage_frac: float = 0.05
    overlap_startup: bool = True

    def checkpointer(self, memory: MemoryProfile) -> BoundedCheckpointer:
        """The Yank checkpointer for a VM under these parameters."""
        return BoundedCheckpointer(
            memory=memory,
            write_bandwidth_mbps=self.ckpt_write_bandwidth_mbps,
            tau_s=self.tau_s,
            suspend_overhead_s=self.suspend_overhead_s,
        )

    def with_overrides(self, **kw) -> "MechanismParams":
        """A copy with some fields replaced (ablation helper)."""
        return replace(self, **kw)


#: The paper's measured/assumed values: ~0.35 s live blackout for a small
#: nested VM, 20 s lazy restore, 28 s/GB sequential checkpoint writes.
TYPICAL_PARAMS = MechanismParams()

#: Section 4.3's pessimistic column: 10 s live-migration outage, 120 s lazy
#: restore, restore bandwidth degraded, no grace/startup overlap, weaker
#: pre-staging.
PESSIMISTIC_PARAMS = MechanismParams(
    live=LiveMigrationModel(activation_s=10.0),
    eager=EagerRestore(read_bandwidth_mbps=15.0),
    lazy=LazyRestore(resume_latency_s=120.0, prefetch_bandwidth_mbps=40.0),
    prestage_miss_frac=0.20,
    lazy_prestage_frac=0.10,
    overlap_startup=False,
)


@dataclass(frozen=True)
class MigrationTiming:
    """Timing of one migration, relative to its initiation instant.

    ``prep_s`` is work done while the service still runs on the source
    (pre-copy rounds, checkpoint pre-staging, WAN disk copy). The service
    then stops for ``downtime_s`` and may run degraded (lazy-restore page
    faults) for ``degraded_s`` after resuming.
    """

    prep_s: float
    downtime_s: float
    degraded_s: float
    description: str

    @property
    def total_s(self) -> float:
        return self.prep_s + self.downtime_s

    def __post_init__(self) -> None:
        if self.prep_s < 0 or self.downtime_s < 0 or self.degraded_s < 0:
            raise MigrationError(f"negative timing component in {self!r}")


class MigrationModel:
    """Computes planned/forced/reverse migration timings for one mechanism."""

    def __init__(self, mechanism: Mechanism, params: MechanismParams = TYPICAL_PARAMS) -> None:
        self.mechanism = mechanism
        self.params = params

    # ------------------------------------------------------------- internals
    def _restore_blackout(self, memory: MemoryProfile, link: RegionLink) -> tuple[float, float]:
        """(blackout_s, degraded_s) of a full checkpoint restore over ``link``."""
        p = self.params
        if self.mechanism.uses_lazy_restore:
            lazy = p.lazy
            if not link.intra:
                lazy = LazyRestore(
                    resume_latency_s=lazy.resume_latency_s,
                    critical_set_frac=lazy.critical_set_frac,
                    prefetch_bandwidth_mbps=min(
                        lazy.prefetch_bandwidth_mbps, link.memory_bandwidth_mbps
                    ),
                )
            r = lazy.restore(memory)
        else:
            eager = p.eager
            if not link.intra:
                eager = EagerRestore(
                    read_bandwidth_mbps=min(eager.read_bandwidth_mbps, link.memory_bandwidth_mbps)
                )
            r = eager.restore(memory)
        return r.downtime_s, r.degraded_s

    def _final_increment_s(
        self, memory: MemoryProfile, rng: np.random.Generator | None, planned: bool
    ) -> float:
        ckpt = self.params.checkpointer(memory)
        if planned:
            # Suspend is scheduled right after a background flush, so the
            # final increment is a fraction of the allowed backlog.
            cap = min(ckpt.max_backlog_megabits, memory.working_set_megabits)
            frac = 0.2 if rng is None else float(rng.uniform(0.1, 0.3))
            return frac * cap / ckpt.write_bandwidth_mbps + ckpt.suspend_overhead_s
        return ckpt.final_increment(rng).suspend_write_s

    # ----------------------------------------------------------------- public
    def planned(
        self,
        memory: MemoryProfile,
        link: RegionLink,
        rng: np.random.Generator | None = None,
        extra_prep_s: float = 0.0,
    ) -> MigrationTiming:
        """A voluntary migration (planned spot->on-demand, spot->spot, or
        reverse on-demand->spot). ``extra_prep_s`` folds in WAN disk copy."""
        if self.mechanism.uses_live:
            # Live-path timings draw no randomness, so they are a pure
            # function of (memory, link, extra_prep_s) — memoized: a
            # month-long run re-plans the same few moves hundreds of times.
            memo = self.__dict__.setdefault("_planned_memo", {})
            timing = memo.get((memory, link, extra_prep_s))
            if timing is None:
                lm = self.params.live.migrate(memory, link)
                timing = memo[(memory, link, extra_prep_s)] = MigrationTiming(
                    prep_s=lm.total_time_s - lm.downtime_s + extra_prep_s,
                    downtime_s=lm.downtime_s,
                    degraded_s=0.0,
                    description=f"live migration, {lm.rounds} pre-copy rounds",
                )
            return timing
        p = self.params
        ckpt = p.checkpointer(memory)
        inc = self._final_increment_s(memory, rng, planned=True)
        blackout, degraded = self._restore_blackout(memory, link)
        miss = p.lazy_prestage_frac if self.mechanism.uses_lazy_restore else p.prestage_miss_frac
        return MigrationTiming(
            prep_s=ckpt.full_image_write_s() + extra_prep_s,
            downtime_s=inc + miss * blackout,
            degraded_s=degraded * miss,
            description="pre-staged checkpoint migration",
        )

    def forced(
        self,
        memory: MemoryProfile,
        link: RegionLink,
        grace_s: float,
        target_ready_after_s: float,
        rng: np.random.Generator | None = None,
    ) -> MigrationTiming:
        """A forced migration triggered by a revocation warning.

        ``target_ready_after_s`` is the replacement server's readiness,
        measured from the warning instant (its request is issued at the
        warning). Forced migrations always use checkpoint + restore: the
        final increment is flushed inside the grace window (Yank's bound
        guarantees it fits), the source is terminated, and the VM restores
        on the target as soon as both the state and the server exist.
        """
        if grace_s < 0 or target_ready_after_s < 0:
            raise MigrationError("grace and target readiness must be >= 0")
        inc = self._final_increment_s(memory, rng, planned=False)
        inc = min(inc, grace_s)  # Yank sizes the increment to fit the window
        suspend_at = max(0.0, grace_s - inc)
        state_ready = suspend_at + inc
        if self.params.overlap_startup:
            restore_start = max(state_ready, target_ready_after_s)
        else:
            restore_start = state_ready + target_ready_after_s
        blackout, degraded = self._restore_blackout(memory, link)
        resume_at = restore_start + blackout
        return MigrationTiming(
            prep_s=suspend_at,
            downtime_s=resume_at - suspend_at,
            degraded_s=degraded,
            description="forced checkpoint migration within grace window",
        )

    def reverse(
        self,
        memory: MemoryProfile,
        link: RegionLink,
        rng: np.random.Generator | None = None,
        extra_prep_s: float = 0.0,
    ) -> MigrationTiming:
        """A reverse migration (on-demand back to spot): fully voluntary,
        identical mechanics to a planned migration."""
        return self.planned(memory, link, rng, extra_prep_s)
