"""Bounded incremental memory checkpointing (Yank, NSDI'13).

Yank continuously checkpoints the VM's memory to networked storage in the
background and **bounds** the time needed to complete the final increment:
given a bound tau, it adapts the checkpoint period so the accumulated dirty
state never needs more than tau seconds to flush. On a revocation warning,
the VM is suspended late enough that the final increment still lands on
disk before the grace window closes — no memory state is ever lost.

The steady-state arithmetic: with write bandwidth ``B`` (Mbit/s) and dirty
rate ``d`` (Mbit/s), the backlog allowed is ``tau * B`` megabits, so the
checkpointer must flush at least every ``tau * B / d`` seconds, and the
background write stream consumes a ``d / B`` fraction of storage bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CheckpointBoundError, MigrationError
from repro.units import transfer_seconds
from repro.vm.memory import MemoryProfile

__all__ = ["BoundedCheckpointer", "CheckpointResult"]


@dataclass(frozen=True)
class CheckpointResult:
    """Timing of one final (suspend-time) checkpoint increment."""

    suspend_write_s: float  #: time to flush the final increment after suspend
    increment_megabits: float  #: size of that increment
    within_bound: bool  #: increment flushed within tau


@dataclass(frozen=True)
class BoundedCheckpointer:
    """Yank-style checkpointing of one VM to a networked volume.

    Parameters
    ----------
    memory:
        The VM's memory profile.
    write_bandwidth_mbps:
        Sequential write bandwidth to the (networked) checkpoint volume —
        the paper measures ~28 s/GB, i.e. about 300 Mbit/s.
    tau_s:
        The bound: the final increment must flush within this window.
    suspend_overhead_s:
        Constant cost of pausing the VM and snapshotting device state.
    """

    memory: MemoryProfile
    write_bandwidth_mbps: float = 300.0
    tau_s: float = 10.0
    suspend_overhead_s: float = 1.0

    def __post_init__(self) -> None:
        if self.write_bandwidth_mbps <= 0:
            raise MigrationError("checkpoint write bandwidth must be positive")
        if self.tau_s <= 0:
            raise MigrationError("tau must be positive")
        if self.memory.dirty_rate_mbps >= self.write_bandwidth_mbps:
            raise CheckpointBoundError(
                f"dirty rate {self.memory.dirty_rate_mbps} Mbit/s >= write bandwidth "
                f"{self.write_bandwidth_mbps} Mbit/s: background checkpointing can never keep up"
            )

    # ----------------------------------------------------------- steady state
    @property
    def max_backlog_megabits(self) -> float:
        """Largest dirty backlog the bound permits (tau * B)."""
        return self.tau_s * self.write_bandwidth_mbps

    def steady_state_period_s(self) -> float:
        """Longest background checkpoint period that honours the bound.

        Infinite (capped at full-image period) when the working set itself
        fits the bound.
        """
        if self.memory.working_set_megabits <= self.max_backlog_megabits:
            # Even a saturated working set flushes within tau.
            return float("inf")
        if self.memory.dirty_rate_mbps == 0:
            return float("inf")
        return self.max_backlog_megabits / self.memory.dirty_rate_mbps

    def background_bandwidth_fraction(self) -> float:
        """Fraction of storage bandwidth the background stream consumes."""
        return min(1.0, self.memory.dirty_rate_mbps / self.write_bandwidth_mbps)

    def full_image_write_s(self) -> float:
        """Time to write a complete (initial) checkpoint image."""
        return transfer_seconds(self.memory.size_gib, self.write_bandwidth_mbps)

    # ----------------------------------------------------------- final flush
    def final_increment(self, rng: np.random.Generator | None = None) -> CheckpointResult:
        """The suspend-time increment at a random point in the cycle.

        The backlog at an arbitrary instant is uniform on (0, max_backlog]
        (deterministically ``max_backlog`` when ``rng`` is None, i.e. the
        worst case), capped by the working set.
        """
        cap = min(self.max_backlog_megabits, self.memory.working_set_megabits)
        if rng is None:
            backlog = cap
        else:
            backlog = float(rng.uniform(0.15, 1.0)) * cap
        write_s = backlog / self.write_bandwidth_mbps + self.suspend_overhead_s
        return CheckpointResult(
            suspend_write_s=write_s,
            increment_megabits=backlog,
            within_bound=write_s <= self.tau_s + self.suspend_overhead_s,
        )

    def fits_grace_window(self, grace_s: float) -> bool:
        """Can the final increment always flush inside a revocation grace window?"""
        worst = self.final_increment(None)
        return worst.suspend_write_s <= grace_s
