"""Virtualization substrate: nested VMs and migration mechanism models.

The paper combines four OS-level mechanisms (Section 3.2):

* **nested virtualization** (Xen-Blanket) — gives the tenant migration
  control inside an unmodified cloud; :mod:`repro.vm.nested`;
* **live migration** — iterative pre-copy with a short stop-and-copy
  blackout; :mod:`repro.vm.live_migration`;
* **bounded memory checkpointing** (Yank) — continuous background
  incremental checkpoints sized so the final increment always flushes
  within a bound tau; :mod:`repro.vm.checkpoint`;
* **lazy restore** — resume from a checkpoint after reading only a small
  critical set, paging the rest in behind execution; :mod:`repro.vm.restore`.

:mod:`repro.vm.mechanisms` composes them into the four combinations of
Figure 7 and computes the downtime of planned, forced and reverse
migrations.
"""

from repro.vm.memory import MemoryProfile
from repro.vm.nested import NestedVm, NestedOverheadModel
from repro.vm.live_migration import LiveMigrationModel, LiveMigrationResult
from repro.vm.checkpoint import BoundedCheckpointer, CheckpointResult
from repro.vm.restore import EagerRestore, LazyRestore, RestoreResult
from repro.vm.disk_copy import disk_copy_seconds
from repro.vm.replication import RemusReplication, FailoverTiming
from repro.vm.checkpoint_process import (
    BackgroundCheckpointProcess,
    DirtyRateProfile,
    FlushRecord,
)
from repro.vm.mechanisms import (
    Mechanism,
    MechanismParams,
    TYPICAL_PARAMS,
    PESSIMISTIC_PARAMS,
    MigrationModel,
    MigrationTiming,
)

__all__ = [
    "MemoryProfile",
    "NestedVm",
    "NestedOverheadModel",
    "LiveMigrationModel",
    "LiveMigrationResult",
    "BoundedCheckpointer",
    "CheckpointResult",
    "EagerRestore",
    "LazyRestore",
    "RestoreResult",
    "disk_copy_seconds",
    "RemusReplication",
    "FailoverTiming",
    "BackgroundCheckpointProcess",
    "DirtyRateProfile",
    "FlushRecord",
    "Mechanism",
    "MechanismParams",
    "TYPICAL_PARAMS",
    "PESSIMISTIC_PARAMS",
    "MigrationModel",
    "MigrationTiming",
]
