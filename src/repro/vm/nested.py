"""Nested virtualization (Xen-Blanket) model.

Running the service inside a nested VM is what makes tenant-controlled
migration possible on an unmodified cloud (Section 3.2). The cost is a
second hypervisor layer. Section 6 measures that cost on EC2 m3.medium:

* network TX/RX: indistinguishable (304/314 vs 304/316 Mbit/s, Table 4);
* disk I/O: ~2 % degradation (297.6/274.2 vs 304.6/280.4 Mbit/s, Table 4);
* CPU: load-dependent — negligible when I/O-bound, up to ~50 % extra
  service demand when CPU-bound under load (Figure 12).

:class:`NestedOverheadModel` exposes those three multipliers; the TPC-W
queueing model and the capacity/cost analysis of Section 6.2 consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.vm.memory import MemoryProfile

__all__ = ["NestedOverheadModel", "NestedVm"]


@dataclass(frozen=True)
class NestedOverheadModel:
    """Multiplicative overheads of the nested hypervisor layer.

    ``cpu_overhead(load)`` interpolates between ``cpu_overhead_idle`` at
    zero utilisation and ``cpu_overhead_peak`` at saturation: Xen-Blanket's
    extra VM exits grow with the request rate, which is why Figure 12(b)
    only diverges at high emulated-browser counts.
    """

    network_factor: float = 1.00  #: throughput multiplier (1.0 = native)
    disk_factor: float = 0.98  #: ~2 % disk degradation (Table 4)
    cpu_overhead_idle: float = 1.08  #: CPU demand multiplier at low load
    cpu_overhead_peak: float = 1.50  #: worst case (Fig 12b: "up to 50 %")

    def __post_init__(self) -> None:
        if not 0 < self.network_factor <= 1.0:
            raise ConfigurationError("network factor must be in (0, 1]")
        if not 0 < self.disk_factor <= 1.0:
            raise ConfigurationError("disk factor must be in (0, 1]")
        if self.cpu_overhead_idle < 1.0 or self.cpu_overhead_peak < self.cpu_overhead_idle:
            raise ConfigurationError("cpu overheads must satisfy 1 <= idle <= peak")

    def cpu_overhead(self, utilisation: float) -> float:
        """CPU service-demand multiplier at a given native utilisation."""
        u = min(max(utilisation, 0.0), 1.0)
        return self.cpu_overhead_idle + (self.cpu_overhead_peak - self.cpu_overhead_idle) * u


@dataclass
class NestedVm:
    """A nested virtual machine hosting the always-on service.

    The nested VM is the unit that migrates between spot and on-demand
    servers; its memory profile drives every migration-latency model.
    """

    name: str
    memory: MemoryProfile
    overheads: NestedOverheadModel = field(default_factory=NestedOverheadModel)
    disk_gib: float = 8.0

    def __post_init__(self) -> None:
        if self.disk_gib <= 0:
            raise ConfigurationError("disk size must be positive")

    @classmethod
    def for_instance_memory(cls, name: str, nested_memory_gib: float, **kw) -> "NestedVm":
        """Build a nested VM sized for a host's nested-memory allowance."""
        return cls(name=name, memory=MemoryProfile(size_gib=nested_memory_gib), **kw)
