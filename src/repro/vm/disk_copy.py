"""Bulk disk-state transfer for cross-region (WAN) migrations.

Inside a region the service's networked (EBS) volume is simply re-attached
to the destination server — no disk data moves. Across regions there is no
shared storage, so the volume must be copied over the WAN; the paper's
Table 2 measures 2-3 minutes per GB depending on the region pair. The copy
runs while the source VM keeps serving (it is a background transfer during
planned/reverse migrations), so it extends migration *duration*, not
downtime.
"""

from __future__ import annotations

from repro.cloud.regions import RegionLink, link_between
from repro.errors import MigrationError
from repro.units import transfer_seconds

__all__ = ["disk_copy_seconds", "disk_copy_seconds_between"]


def disk_copy_seconds(size_gib: float, link: RegionLink) -> float:
    """Seconds to copy ``size_gib`` of disk state over ``link``.

    Intra-region links return 0: the networked volume is re-attached
    instead of copied.
    """
    if size_gib < 0:
        raise MigrationError(f"disk size must be >= 0, got {size_gib}")
    if link.intra:
        return 0.0
    return transfer_seconds(size_gib, link.disk_bandwidth_mbps)


def disk_copy_seconds_between(size_gib: float, zone_a: str, zone_b: str) -> float:
    """Disk-copy time between two availability zones (0 when same geo)."""
    return disk_copy_seconds(size_gib, link_between(zone_a, zone_b))
