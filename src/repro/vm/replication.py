"""Remus-style continuous VM replication (Cully et al., NSDI'08 — ref [9]).

Remus runs a **hot standby** of the VM on a second server: execution is
checkpointed every epoch (tens of milliseconds) and shipped to the standby,
whose memory stays one epoch behind; outbound network output is buffered
until the epoch that produced it is replicated. When the primary dies the
standby resumes from the last epoch — downtime is failure detection plus
one epoch replay plus promotion, a couple of seconds, *independent of
memory size* and of any storage restore.

The costs: a second server running at all times, sustained replication
bandwidth equal to the dirty rate, and an output-commit latency penalty
while running. The paper's scheduler deliberately avoids this standing
cost; :mod:`repro.core.replication` explores the trade as an extension —
keeping the standby on a *different spot market* makes the standing cost
a second spot price rather than a second on-demand price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.regions import RegionLink
from repro.errors import MigrationError
from repro.units import transfer_seconds
from repro.vm.memory import MemoryProfile

__all__ = ["RemusReplication", "FailoverTiming"]


@dataclass(frozen=True)
class FailoverTiming:
    """Timing of one failover to the hot standby."""

    downtime_s: float  #: detection + last-epoch replay + promotion
    degraded_s: float  #: none — the standby is already warm


@dataclass(frozen=True)
class RemusReplication:
    """Replication-channel model for one protected VM.

    Attributes
    ----------
    epoch_ms:
        Checkpoint epoch length (Remus runs at 25-40 epochs/second).
    detection_s:
        Failure-detection timeout before the standby promotes itself.
    promote_s:
        Standby promotion: un-buffer output, gratuitous ARP, resume.
    output_latency_penalty_ms:
        Added client-visible latency from output commit buffering (one
        epoch on average) — reported, not charged as downtime.
    """

    epoch_ms: float = 40.0
    detection_s: float = 1.0
    promote_s: float = 0.5
    output_latency_penalty_ms: float = 40.0

    def __post_init__(self) -> None:
        if self.epoch_ms <= 0:
            raise MigrationError("epoch must be positive")
        if self.detection_s < 0 or self.promote_s < 0:
            raise MigrationError("detection/promotion must be >= 0")

    def replication_bandwidth_mbps(self, memory: MemoryProfile) -> float:
        """Sustained replication bandwidth: every dirtied byte ships."""
        return memory.dirty_rate_mbps

    def supports(self, memory: MemoryProfile, link: RegionLink) -> bool:
        """Can the link sustain replication for this VM?

        Remus needs headroom above the dirty rate or epochs back up.
        """
        return link.memory_bandwidth_mbps > 1.5 * self.replication_bandwidth_mbps(memory)

    def initial_sync_s(self, memory: MemoryProfile, link: RegionLink) -> float:
        """Time to bring a *new* standby in sync (full memory copy while
        the primary keeps running), after which protection is active."""
        if not self.supports(memory, link):
            raise MigrationError(
                "link cannot sustain Remus replication for this dirty rate"
            )
        spare = link.memory_bandwidth_mbps - self.replication_bandwidth_mbps(memory)
        return transfer_seconds(memory.size_gib, spare)

    def failover(self) -> FailoverTiming:
        """Unplanned failover (primary revoked/terminated)."""
        return FailoverTiming(
            downtime_s=self.detection_s + self.epoch_ms / 1000.0 + self.promote_s,
            degraded_s=0.0,
        )

    def planned_failover(self) -> FailoverTiming:
        """Planned promotion (no detection timeout: the scheduler initiates)."""
        return FailoverTiming(
            downtime_s=self.epoch_ms / 1000.0 + self.promote_s,
            degraded_s=0.0,
        )
