"""Fault injection: scripted and seeded hostile-market schedules.

A :class:`FaultPlan` describes a reproducible set of faults to inject into
one simulation run:

* **price spikes / revocation storms** — windows during which a market's
  price is raised to a multiple of its on-demand price. A factor above the
  4x bid cap guarantees every legal bid is revoked, which is how a
  "revocation storm" is expressed. Spikes may hit one market, a subset, or
  (``markets=None``) every market at once — the correlated multi-market
  case that defeats spot-to-spot escapes;
* **checkpoint-write faults** — each checkpoint write to the service
  volume may be delayed and/or transiently fail (and be retried), driven
  by a per-run seeded RNG;
* **stretched disk copies and startups** — multiplicative factors on
  cross-region disk-copy times and on sampled allocation latencies;
* **worker-process crashes** — run seeds whose first execution attempts
  raise inside :mod:`repro.runtime.executor`, exercising its
  retry/backoff path.

Separately, :func:`kill_orchestrator_after_n_runs` builds an
*orchestrator-death* fault: a ``run_batch`` progress hook that SIGKILLs
the batch parent after ``n`` completed runs, exercising the run ledger's
crash/resume path end-to-end (see :mod:`repro.runtime.ledger`).

Everything in a plan is deterministic given ``(plan, run seed)``: spike
schedules derive from ``FaultPlan.seed``, checkpoint faults from a stream
keyed on ``(plan seed, run seed)``. Plans are frozen, hashable and
pickleable, so they ride a :class:`~repro.runtime.spec.RunSpec` across the
process-pool boundary — a faulted batch is byte-identical at any
``--jobs`` value.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.catalog import TraceCatalog
from repro.traces.trace import PriceTrace

__all__ = ["PriceSpike", "FaultPlan", "FaultStats", "kill_orchestrator_after_n_runs"]

#: Seed-stream tags keeping fault RNG independent of simulation streams.
_STORM_STREAM = 0x5707B10
_CKPT_STREAM = 0xC4EC4B0


@dataclass(frozen=True)
class PriceSpike:
    """One price excursion: the market price is raised to
    ``factor * on_demand_price`` over ``[start_s, start_s + duration_s)``.

    ``markets`` restricts the spike to the named ``"region/size"`` markets;
    ``None`` hits every market in the catalog simultaneously (a correlated
    spike). The overlay never *lowers* a price: the effective price is the
    max of the base trace and the spike level.
    """

    start_s: float
    duration_s: float
    factor: float = 5.0
    markets: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError(f"spike start must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ConfigurationError(f"spike duration must be > 0, got {self.duration_s}")
        if self.factor <= 0:
            raise ConfigurationError(f"spike factor must be > 0, got {self.factor}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def hits(self, market: str) -> bool:
        """Does this spike apply to the given ``"region/size"`` market?"""
        return self.markets is None or market in self.markets


@dataclass
class FaultStats:
    """Mutable tally of faults actually injected during one run."""

    checkpoint_writes: int = 0
    checkpoint_delayed: int = 0
    checkpoint_failures: int = 0  #: transient failures (each retried)
    checkpoint_delay_total_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "checkpoint_writes": self.checkpoint_writes,
            "checkpoint_delayed": self.checkpoint_delayed,
            "checkpoint_failures": self.checkpoint_failures,
            "checkpoint_delay_total_s": self.checkpoint_delay_total_s,
        }


def kill_orchestrator_after_n_runs(
    n: int, *, sig: int = signal.SIGKILL
) -> Callable[[object], None]:
    """An orchestrator-death fault: SIGKILL the *batch parent* mid-flight.

    Returns a :func:`repro.runtime.run_batch` ``progress`` hook that kills
    the current process the moment the ``n``-th run completes. Because the
    executor journals a run to its ledger *before* reporting progress, a
    batch killed this way has exactly ``n`` intact run records (plus
    whatever concurrent workers finished) — resuming it with
    ``run_batch(..., ledger=..., resume=True)`` must replay those runs and
    re-execute only the remainder, byte-identically. Unlike
    :attr:`FaultPlan.crash_seeds` (worker deaths the executor retries
    in-line), this fault is unsurvivable by design: it exercises the
    recovery path end-to-end and is the testkit's SIGKILL stand-in for an
    OOM-killed or Ctrl-C'd orchestrator.

    Run it in a sacrificial subprocess — the default signal is SIGKILL and
    the process hosting the batch dies.
    """
    if n < 1:
        raise ConfigurationError(f"kill threshold must be >= 1, got {n}")
    completed = [0]

    def hook(telemetry: object) -> None:
        completed[0] += 1
        if completed[0] >= n:
            os.kill(os.getpid(), sig)

    return hook


class _StretchedStartup:
    """Startup sampler decorator multiplying every sampled latency."""

    def __init__(self, inner, factor: float) -> None:
        self._inner = inner
        self.factor = float(factor)

    def sample(self, mode: str, zone: str) -> float:
        return self.factor * float(self._inner.sample(mode, zone))

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _FaultyVolumeStore:
    """Volume-store decorator injecting checkpoint-write delays/failures.

    A transient failure is modelled as an immediate retry that costs one
    extra ``delay_s``; the write always lands eventually (the scheduler's
    availability argument assumes durable volumes), but its recorded time
    slips, and the injected faults are tallied in :class:`FaultStats`.
    """

    def __init__(
        self,
        inner,
        *,
        delay_s: float,
        failure_rate: float,
        rng: np.random.Generator,
        stats: FaultStats,
        max_retries: int = 3,
    ) -> None:
        self._inner = inner
        self.delay_s = float(delay_s)
        self.failure_rate = float(failure_rate)
        self.rng = rng
        self.stats = stats
        self.max_retries = int(max_retries)

    def write(self, volume_id: str, name: str, size_gib: float, at: float) -> None:
        delay = 0.0
        if name == "checkpoint":
            self.stats.checkpoint_writes += 1
            retries = 0
            while (
                self.failure_rate > 0.0
                and retries < self.max_retries
                and float(self.rng.random()) < self.failure_rate
            ):
                retries += 1
            if retries:
                self.stats.checkpoint_failures += retries
            delay = self.delay_s * (1 + retries)
            if delay > 0.0:
                self.stats.checkpoint_delayed += 1
                self.stats.checkpoint_delay_total_s += delay
        self._inner.write(volume_id, name, size_gib, at + delay)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _overlay(trace: PriceTrace, windows: list) -> PriceTrace:
    """Raise a trace to each window's floor price over its span.

    ``windows`` is a list of ``(start, end, floor_price)``; the result is a
    well-formed step function (strictly increasing times, compressed equal
    runs) with the same horizon.
    """
    if not windows:
        return trace
    bounds = {float(t) for t in trace.times}
    for s, e, _ in windows:
        for t in (s, e):
            if trace.start < t < trace.horizon:
                bounds.add(float(t))
    times = sorted(bounds)
    prices = []
    for t in times:
        p = float(trace.price_at(t))
        for s, e, floor in windows:
            if s <= t < e:
                p = max(p, floor)
        prices.append(p)
    ct, cp = [times[0]], [prices[0]]
    for t, p in zip(times[1:], prices[1:]):
        if p != cp[-1]:
            ct.append(t)
            cp.append(p)
    return PriceTrace(ct, cp, trace.horizon, market=trace.market, region=trace.region)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule for one simulation run.

    Attach a plan via ``SimulationConfig(..., faults=plan)`` (or
    ``RunSpec(..., faults=plan)``); the stack builder overlays the spikes
    onto the trace catalog and wraps the provider before the scheduler
    ever sees either. All fields have inert defaults — an empty plan is a
    no-op.
    """

    #: Seed for the plan's own randomness (storm schedules, checkpoint
    #: fault draws). Scripted plans may leave it unset.
    seed: Optional[int] = None
    spikes: Tuple[PriceSpike, ...] = ()
    #: Extra seconds added to each checkpoint write's recorded time.
    checkpoint_delay_s: float = 0.0
    #: Per-write probability of a transient checkpoint-write failure;
    #: each failure costs one extra ``checkpoint_delay_s``.
    checkpoint_failure_rate: float = 0.0
    #: Multiplier on cross-region disk-copy times (> 1 stretches blackouts).
    disk_copy_factor: float = 1.0
    #: Multiplier on sampled server-allocation latencies.
    startup_factor: float = 1.0
    #: Run seeds whose first ``crash_attempts`` execution attempts raise a
    #: :class:`~repro.errors.WorkerCrashError` inside the batch executor.
    crash_seeds: Tuple[int, ...] = ()
    crash_attempts: int = 1

    def __post_init__(self) -> None:
        if self.checkpoint_delay_s < 0:
            raise ConfigurationError("checkpoint delay must be >= 0")
        if not 0.0 <= self.checkpoint_failure_rate <= 1.0:
            raise ConfigurationError("checkpoint failure rate must be in [0, 1]")
        if self.disk_copy_factor <= 0 or self.startup_factor <= 0:
            raise ConfigurationError("stretch factors must be > 0")
        if self.crash_attempts < 1:
            raise ConfigurationError("crash_attempts must be >= 1")

    # -------------------------------------------------------------- builders
    @classmethod
    def revocation_storm(
        cls,
        seed: int,
        horizon_s: float,
        *,
        n_spikes: int = 6,
        duration_s: float = 900.0,
        factor: float = 5.0,
        markets: Optional[Tuple[str, ...]] = None,
        **kw,
    ) -> "FaultPlan":
        """A seeded storm: ``n_spikes`` windows drawn uniformly over the
        horizon, each raising the price to ``factor`` x on-demand (the
        default 5.0 sits above the 4x bid cap, so every legal bid is
        revoked). Same seed, same storm.
        """
        if horizon_s <= duration_s:
            raise ConfigurationError("storm horizon must exceed the spike duration")
        rng = np.random.default_rng([_STORM_STREAM, seed])
        starts = np.sort(rng.uniform(0.0, horizon_s - duration_s, size=n_spikes))
        spikes = tuple(
            PriceSpike(start_s=float(s), duration_s=duration_s, factor=factor, markets=markets)
            for s in starts
        )
        return cls(seed=seed, spikes=spikes, **kw)

    @classmethod
    def correlated_spike(
        cls,
        at_s: float,
        duration_s: float,
        *,
        factor: float = 5.0,
        markets: Optional[Tuple[str, ...]] = None,
        **kw,
    ) -> "FaultPlan":
        """A single scripted spike (all markets unless ``markets`` given)."""
        return cls(
            spikes=(PriceSpike(start_s=at_s, duration_s=duration_s, factor=factor, markets=markets),),
            **kw,
        )

    def with_(self, **kw) -> "FaultPlan":
        """A copy with fields replaced."""
        return replace(self, **kw)

    # -------------------------------------------------------------- queries
    @property
    def touches_catalog(self) -> bool:
        return bool(self.spikes)

    @property
    def touches_provider(self) -> bool:
        return (
            self.checkpoint_delay_s > 0
            or self.checkpoint_failure_rate > 0
            or self.disk_copy_factor != 1.0
            or self.startup_factor != 1.0
        )

    @property
    def is_active(self) -> bool:
        return self.touches_catalog or self.touches_provider or bool(self.crash_seeds)

    def should_crash(self, run_seed: int, attempt: int) -> bool:
        """Should execution attempt ``attempt`` (0-based) of ``run_seed``
        crash? Used by :func:`repro.runtime.run_batch`'s retry loop."""
        return run_seed in self.crash_seeds and attempt < self.crash_attempts

    # ------------------------------------------------------------ application
    def apply_to_catalog(self, catalog: TraceCatalog) -> TraceCatalog:
        """A new catalog with every spike overlaid on its traces.

        On-demand prices are untouched (spikes model spot-market pressure,
        not provider repricing), so billing, bid caps and planned-migration
        thresholds all see the spiked spot prices against the original
        on-demand baseline.
        """
        if not self.touches_catalog:
            return catalog
        traces = {}
        od = {}
        for key in catalog.markets():
            base = catalog.trace(key)
            odp = catalog.on_demand_price(key)
            windows = [
                (s.start_s, s.end_s, s.factor * odp)
                for s in self.spikes
                if s.hits(str(key))
            ]
            traces[key] = _overlay(base, windows)
            od[key] = odp
        return TraceCatalog(traces, od, catalog.horizon)

    def wrap_provider(self, provider, run_seed: int = 0):
        """Decorate a :class:`~repro.cloud.provider.CloudProvider` in place
        with this plan's provider-level faults; returns the provider.

        Attaches ``provider.fault_stats`` (a :class:`FaultStats`) so tests
        and oracles can see what was injected.
        """
        stats = FaultStats()
        if self.startup_factor != 1.0:
            provider.startup = _StretchedStartup(provider.startup, self.startup_factor)
        if self.disk_copy_factor != 1.0:
            provider.disk_copy_factor = self.disk_copy_factor
        if self.checkpoint_delay_s > 0 or self.checkpoint_failure_rate > 0:
            rng = np.random.default_rng([_CKPT_STREAM, self.seed or 0, run_seed])
            provider.volumes = _FaultyVolumeStore(
                provider.volumes,
                delay_s=self.checkpoint_delay_s,
                failure_rate=self.checkpoint_failure_rate,
                rng=rng,
                stats=stats,
            )
        provider.fault_stats = stats
        return provider
