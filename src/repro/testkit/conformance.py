"""The policy conformance suite: what every hosting strategy must obey.

The registry (:mod:`repro.core.registry`) makes strategy families
pluggable; this module makes them *accountable*. :func:`conformance_check`
runs one registered family through the contract every consumer of
:class:`~repro.core.strategies.HostingStrategy` relies on:

* **registered** — the family resolves to a
  :class:`~repro.core.registry.StrategyInfo` and its example spec builds
  an instance of the registered builder;
* **spec-round-trip** — the example :class:`~repro.runtime.spec.StrategySpec`
  pickles byte-identically and its fingerprint survives the round trip
  (the run-ledger resume path depends on this);
* **candidate-pricing** — every candidate market is in the catalog and
  ``spot_rate``/``on_demand_rate`` equal servers x price exactly;
* **unit-conservation** — ``servers_needed`` provisions at least
  ``service_units`` small-equivalents in every candidate market;
* **baseline-positive** — the normalization baseline is a positive rate;
* **vectorizable-honesty** — the registry's ``vectorizable`` flag matches
  the built instance, and when True the event and vector engines produce
  field-identical results on a standard run;
* **fault-survival** — a seeded revocation storm completes with every
  post-run invariant oracle green.

All checks run on the standard 2-region / 2-size test grid, so a new
family passes or fails for reasons intrinsic to the family, not its
configuration. The suite itself is strategy-agnostic: registering a new
kind via the ``repro.strategies`` entry point is enough to be audited by
``pytest -m conformance``.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Union

import numpy as np

from repro.cloud.instance_types import instance_type
from repro.cloud.provider import CloudProvider
from repro.core import registry
from repro.core.simulation import SimulationConfig, run_simulation_observed
from repro.core.strategies import HostingStrategy
from repro.errors import ConfigurationError
from repro.runtime.spec import StrategySpec, spec_fingerprint
from repro.testkit.faults import FaultPlan
from repro.testkit.oracles import OracleReport, run_verified
from repro.traces.catalog import build_catalog
from repro.units import days

__all__ = [
    "GRID_REGIONS",
    "GRID_SIZES",
    "conformance_check",
]

#: The standard grid every conformance check runs on.
GRID_REGIONS = ("us-east-1a", "us-west-1a")
GRID_SIZES = ("small", "medium")

#: Seeds/horizons pinned so conformance is deterministic per family.
_GRID_SEED = 202
_RUN_SEED = 7
_STORM_SEED = 777
_HORIZON_S = days(3)


def _resolve_spec(strategy: Union[str, StrategySpec, type]) -> StrategySpec:
    """Accept a registered kind, a spec, or a registered strategy class."""
    if isinstance(strategy, StrategySpec):
        return strategy
    if isinstance(strategy, str):
        return registry.example_spec(strategy)
    if isinstance(strategy, type):
        info = registry.info_for_builder(strategy)
        if info is None:
            raise ConfigurationError(
                f"{strategy.__name__} is not a registered strategy "
                f"(missing @register_strategy?)"
            )
        return registry.example_spec(info.kind)
    raise ConfigurationError(
        f"cannot resolve {strategy!r} to a strategy spec"
    )


def _config(spec: StrategySpec, **kw) -> SimulationConfig:
    return SimulationConfig(
        strategy=spec,
        seed=kw.pop("seed", _RUN_SEED),
        horizon_s=_HORIZON_S,
        regions=GRID_REGIONS,
        sizes=GRID_SIZES,
        label=f"conformance/{spec.kind}",
        **kw,
    )


def conformance_check(strategy: Union[str, StrategySpec, type]) -> OracleReport:
    """Audit one strategy family against the registry contract.

    ``strategy`` may be a registered kind name, a concrete
    :class:`~repro.runtime.spec.StrategySpec`, or a registered strategy
    class. Returns an :class:`~repro.testkit.oracles.OracleReport`; call
    ``.raise_on_failure()`` to turn red checks into
    :class:`~repro.errors.InvariantViolation`.
    """
    report = OracleReport()
    spec = _resolve_spec(strategy)
    info = registry.strategy_info(spec.kind)
    built = spec.build()

    ok = isinstance(built, HostingStrategy) and (
        not isinstance(info.builder, type) or isinstance(built, info.builder)
    )
    report.add(
        f"{spec.kind}: registered",
        ok,
        f"spec builds {type(built).__name__}; registered builder "
        f"{getattr(info.builder, '__name__', info.builder)!r}",
    )

    # --- spec round trip: the resume/ledger path serializes specs.
    blob = pickle.dumps(spec)
    thawed = pickle.loads(blob)
    report.add(
        f"{spec.kind}: spec-round-trip",
        thawed == spec
        and pickle.dumps(thawed) == blob
        and spec_fingerprint(_config(thawed)) == spec_fingerprint(_config(spec)),
        "pickle round trip is byte-identical and fingerprint-stable",
    )

    # --- pricing arithmetic on the standard grid.
    catalog = build_catalog(
        seed=_GRID_SEED, horizon=_HORIZON_S, regions=GRID_REGIONS, sizes=GRID_SIZES
    )
    provider = CloudProvider(catalog, rng=np.random.default_rng(0))
    known = set(catalog.markets())
    candidates = built.candidate_markets(provider)
    problems = []
    if not candidates:
        problems.append("no candidate markets")
    for key in candidates:
        if key not in known:
            problems.append(f"{key} not in catalog")
            continue
        n = built.servers_needed(key)
        price = catalog.trace(key).price_at(0.0)
        if built.spot_rate(key, price) != n * price:
            problems.append(f"{key}: spot_rate != servers x price")
        od = provider.on_demand_price(key)
        if built.on_demand_rate(provider, key) != n * od:
            problems.append(f"{key}: on_demand_rate != servers x od price")
    report.add(
        f"{spec.kind}: candidate-pricing",
        not problems,
        "; ".join(problems) or f"{len(candidates)} candidate market(s) priced",
    )

    conserved = [
        key
        for key in candidates
        if key in known
        and built.servers_needed(key) * instance_type(key.size).capacity_units
        < built.service_units
    ]
    report.add(
        f"{spec.kind}: unit-conservation",
        not conserved,
        (
            f"under-provisioned in {conserved}"
            if conserved
            else f"servers x capacity >= {built.service_units} unit(s) everywhere"
        ),
    )

    baseline = built.baseline_rate(provider)
    report.add(
        f"{spec.kind}: baseline-positive",
        baseline > 0,
        f"baseline rate {baseline:.4f} USD/h",
    )

    # --- vectorizable honesty: metadata == behaviour, parity when claimed.
    honest = info.vectorizable == built.vectorizable
    detail = (
        f"registry says {info.vectorizable}, instance says {built.vectorizable}"
    )
    if honest and info.vectorizable:
        event = run_simulation_observed(_config(spec), engine="event").result
        vector = run_simulation_observed(_config(spec), engine="vector").result
        honest = dataclasses.asdict(event) == dataclasses.asdict(vector)
        detail = (
            "event/vector engines agree field-for-field"
            if honest
            else "event and vector engines disagree on the standard run"
        )
    report.add(f"{spec.kind}: vectorizable-honesty", honest, detail)

    # --- survive a revocation storm with every invariant oracle green.
    storm = _config(
        spec,
        seed=_STORM_SEED,
        faults=FaultPlan.revocation_storm(
            _STORM_SEED, _HORIZON_S, n_spikes=3, duration_s=1800.0
        ),
    )
    _, oracle_report = run_verified(storm)
    report.add(
        f"{spec.kind}: fault-survival",
        oracle_report.passed,
        oracle_report.summary(),
    )
    return report
