"""Deterministic trace/catalog builders shared by tests and tools.

These started life as ad-hoc helpers in ``tests/conftest.py``; they live
here so unit tests, property tests, golden scenarios and downstream users
all build small markets the same way.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple

from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace

__all__ = [
    "make_step_trace",
    "make_constant_trace",
    "make_catalog",
    "single_market_catalog",
]


def make_step_trace(
    segments: Sequence[Tuple[float, float]], horizon: float, **kw: str
) -> PriceTrace:
    """Build a trace from ``[(time, price), ...]`` pairs.

    The first pair's time is the trace start; each price holds until the
    next pair's time (right-open), the last until ``horizon``.
    """
    times = [s[0] for s in segments]
    prices = [s[1] for s in segments]
    return PriceTrace(times, prices, horizon, **kw)


def make_constant_trace(price: float, horizon: float, start: float = 0.0, **kw: str) -> PriceTrace:
    """A single-price trace over ``[start, horizon)``."""
    return PriceTrace.constant(price, start, horizon, **kw)


def make_catalog(
    traces: Mapping[MarketKey, PriceTrace],
    on_demand: Mapping[MarketKey, float],
) -> TraceCatalog:
    """A catalog from explicit per-market traces and on-demand prices.

    The horizon is taken from the traces (they must agree, as
    :class:`~repro.traces.catalog.TraceCatalog` enforces).
    """
    horizon = next(iter(traces.values())).horizon
    return TraceCatalog(traces, on_demand, horizon)


def single_market_catalog(
    trace: PriceTrace,
    on_demand_price: float = 0.06,
    key: MarketKey | None = None,
) -> TraceCatalog:
    """A one-market catalog around ``trace`` (default market
    ``us-east-1a/small``), the workhorse of deterministic scheduler tests."""
    key = key or MarketKey("us-east-1a", "small")
    return TraceCatalog({key: trace}, {key: on_demand_price}, trace.horizon)
