"""``repro-verify`` — run invariant oracles and the golden-scenario corpus.

Modes
-----
* default / ``--all-golden``: run every committed golden scenario (with
  the invariant oracles) and diff against ``tests/golden/expected/``;
* ``--scenario NAME`` (repeatable): check a subset;
* ``--update-golden``: re-run scenarios and rewrite the expected JSON —
  review the diff like any other code change;
* ``--list``: print the corpus;
* ``--storm``: run a seeded revocation-storm :class:`FaultPlan` through
  the full battery — invariant oracles, rerun determinism, and jobs=1 vs
  ``--jobs`` byte-identity (the acceptance gate for the fault layer).

Exit status is 0 when everything is green, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.testkit.golden import (
    FLEET_SCENARIOS,
    SCENARIOS,
    check_scenarios,
    update_golden,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-verify",
        description="Verify simulation invariants and the golden-scenario corpus.",
    )
    p.add_argument(
        "--all-golden",
        action="store_true",
        help="check every golden scenario (the default action)",
    )
    p.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="check only the named scenario (repeatable)",
    )
    p.add_argument(
        "--update-golden",
        action="store_true",
        help="re-run scenarios and rewrite their expected reports",
    )
    p.add_argument("--list", action="store_true", help="list the golden corpus and exit")
    p.add_argument(
        "--golden-dir",
        type=Path,
        default=None,
        help="expected-report directory (default: tests/golden/expected)",
    )
    p.add_argument(
        "--storm",
        action="store_true",
        help="run the seeded revocation-storm determinism battery",
    )
    p.add_argument("--seed", type=int, default=0, help="storm battery base seed")
    p.add_argument("--jobs", type=int, default=4, help="worker count for the jobs check")
    p.add_argument("--days", type=float, default=7.0, help="storm battery horizon in days")
    return p


def _cmd_list() -> int:
    corpus = [*SCENARIOS, *FLEET_SCENARIOS]
    width = max(len(s.name) for s in corpus)
    for s in corpus:
        print(f"  {s.name:<{width}}  {s.description}")
    return 0


def _cmd_golden(names: Optional[List[str]], golden_dir: Optional[Path], update: bool) -> int:
    if update:
        written = update_golden(names, golden_dir)
        for name, path in written.items():
            print(f"updated {name}: {path}")
        print(f"{len(written)} expected report(s) written")
        return 0
    diffs = check_scenarios(names, golden_dir)
    failed = 0
    for name, problems in diffs.items():
        if problems:
            failed += 1
            print(f"FAIL {name}")
            for line in problems:
                print(f"    {line}")
        else:
            print(f"ok   {name}")
    total = len(diffs)
    print(f"{total - failed}/{total} golden scenario(s) match")
    return 0 if failed == 0 else 1


def _cmd_storm(seed: int, jobs: int, horizon_days: float) -> int:
    from repro.core.simulation import SimulationConfig
    from repro.runtime.spec import StrategySpec
    from repro.testkit.faults import FaultPlan
    from repro.testkit.oracles import (
        check_jobs_determinism,
        check_rerun_determinism,
        run_verified,
    )
    from repro.traces.catalog import MarketKey
    from repro.units import days

    horizon = days(horizon_days)
    plan = FaultPlan.revocation_storm(
        seed + 1000,
        horizon,
        n_spikes=6,
        duration_s=1800.0,
        checkpoint_delay_s=30.0,
        checkpoint_failure_rate=0.2,
        disk_copy_factor=1.5,
    )
    config = SimulationConfig(
        strategy=StrategySpec.single(MarketKey("us-east-1a", "small")),
        seed=seed,
        horizon_s=horizon,
        regions=("us-east-1a",),
        sizes=("small",),
        faults=plan,
        label="verify/storm",
    )
    observed, report = run_verified(config)
    check_rerun_determinism(config, report)
    check_jobs_determinism(config, seeds=[seed, seed + 1, seed + 2, seed + 3], jobs=jobs, report=report)
    print(report.summary())
    r = observed.result
    print(
        f"storm run: cost ${r.total_cost:.2f} "
        f"({r.normalized_cost_percent:.1f}% of on-demand), "
        f"unavailability {r.unavailability_percent:.4f}%, "
        f"{r.forced_migrations} forced / {r.planned_migrations} planned / "
        f"{r.reverse_migrations} reverse migrations"
    )
    if report.passed:
        print("all invariant oracles green")
        return 0
    print(f"{len(report.failures)} oracle(s) FAILED", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        return _cmd_list()
    if args.storm:
        return _cmd_storm(args.seed, args.jobs, args.days)
    return _cmd_golden(args.scenario, args.golden_dir, args.update_golden)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
