"""The golden-scenario corpus: small committed runs with expected reports.

Each :class:`GoldenScenario` is a fully seeded simulation small enough to
run in a second or two; its expected :class:`~repro.core.results`
report is committed as JSON under ``tests/golden/expected/``. The
regression test (``tests/golden/test_golden.py``) and ``repro-verify
--all-golden`` re-run every scenario and compare field-for-field; after an
*intentional* behaviour change, refresh the corpus with ``repro-verify
--update-golden`` and review the JSON diff like any other code change.

The corpus deliberately spans the regimes the paper's claims hang on:
calm markets, seeded revocation storms, a correlated spike straddling a
billing boundary, a pure-spot outage, slow checkpoints during a storm,
multi-market and multi-region escapes, and the all-on-demand baseline.
:data:`FLEET_SCENARIOS` extends it with a pinned multi-tenant
:class:`~repro.fleet.report.FleetReport` (shared market, shared spare
pool, churn) checked by the same machinery.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.simulation import SimulationConfig, run_simulation_observed
from repro.errors import ConfigurationError
from repro.fleet.spec import FleetSpec, ServiceSpec, synthesize_fleet
from repro.runtime.spec import StrategySpec
from repro.testkit.faults import FaultPlan
from repro.traces.catalog import MarketKey
from repro.units import days, hours

__all__ = [
    "GoldenScenario",
    "GoldenFleetScenario",
    "SCENARIOS",
    "FLEET_SCENARIOS",
    "scenario_by_name",
    "run_scenario",
    "run_fleet_scenario",
    "check_scenarios",
    "update_golden",
    "default_golden_dir",
]

#: Environment override for the expected-report directory.
GOLDEN_DIR_ENV = "REPRO_GOLDEN_DIR"

#: Tolerance for float fields (JSON round-trips floats exactly; the
#: tolerance only guards against cross-platform libm differences).
REL_TOL = 1e-9


@dataclass(frozen=True)
class GoldenScenario:
    """One committed scenario: a name, a story, and a seeded config."""

    name: str
    description: str
    build: Callable[[], SimulationConfig]

    def config(self) -> SimulationConfig:
        return self.build()


def default_golden_dir() -> Path:
    """``tests/golden/expected`` relative to the repo root (overridable via
    the ``REPRO_GOLDEN_DIR`` environment variable)."""
    env = os.environ.get(GOLDEN_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "expected"


# ------------------------------------------------------------------- scenarios
_EAST = MarketKey("us-east-1a", "small")
_WEEK = days(7)


def _calm_single() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=11,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small",),
        label="golden/calm-single",
    )


def _calm_large() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(MarketKey("us-east-1a", "large")),
        seed=23,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("large",),
        label="golden/calm-large",
    )


def _storm_single() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=31,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.revocation_storm(401, _WEEK, n_spikes=6, duration_s=1800.0),
        label="golden/storm-single",
    )


def _spike_at_boundary() -> SimulationConfig:
    # The spike opens 90 s before the lease's 5th billing boundary — the
    # window where revocation is cheapest for the provider-side adversary
    # and the partial-hour-free rule matters most.
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=43,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.correlated_spike(hours(5) - 90.0, hours(2)),
        label="golden/spike-at-boundary",
    )


def _pure_spot_outage() -> SimulationConfig:
    # No on-demand fallback: a correlated spike forces a dark period.
    return SimulationConfig(
        strategy=StrategySpec.pure_spot(_EAST),
        seed=53,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.correlated_spike(hours(30), hours(4)),
        label="golden/pure-spot-outage",
    )


def _on_demand_baseline() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.on_demand(_EAST),
        seed=61,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        label="golden/on-demand-baseline",
    )


def _multi_market_storm() -> SimulationConfig:
    # Spikes hit only the small market, so the multi-market strategy can
    # escape sideways within the region.
    return SimulationConfig(
        strategy=StrategySpec.multi_market("us-east-1a"),
        seed=71,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small", "medium", "large", "xlarge"),
        faults=FaultPlan.revocation_storm(
            402, _WEEK, n_spikes=4, duration_s=3600.0, markets=("us-east-1a/small",)
        ),
        label="golden/multi-market-storm",
    )


def _multi_region() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.multi_region(("us-east-1a", "us-west-1a")),
        seed=83,
        horizon_s=_WEEK,
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium", "large", "xlarge"),
        label="golden/multi-region",
    )


def _multi_region_correlated() -> SimulationConfig:
    # Every market spikes at once: cross-region escape can't help, the
    # scheduler must ride out the storm on on-demand.
    return SimulationConfig(
        strategy=StrategySpec.multi_region(("us-east-1a", "eu-west-1a")),
        seed=97,
        horizon_s=_WEEK,
        regions=("us-east-1a", "eu-west-1a"),
        sizes=("small", "medium", "large", "xlarge"),
        faults=FaultPlan.correlated_spike(days(2), hours(6)),
        label="golden/multi-region-correlated",
    )


def _slow_checkpoint_storm() -> SimulationConfig:
    # Storm plus degraded infrastructure: delayed/failing checkpoint
    # writes, doubled WAN disk copies, sluggish allocations.
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=101,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.revocation_storm(
            403,
            _WEEK,
            n_spikes=5,
            duration_s=2700.0,
            checkpoint_delay_s=45.0,
            checkpoint_failure_rate=0.25,
            disk_copy_factor=2.0,
            startup_factor=1.5,
        ),
        label="golden/slow-checkpoint-storm",
    )


def _index_tracking_basket() -> SimulationConfig:
    # The Shastri & Irwin index tracker: a 3-market basket across two
    # regions, rebalanced within a 15 % band of the on-demand index.
    return SimulationConfig(
        strategy=StrategySpec.index_tracking(("us-east-1a", "us-west-1a")),
        seed=113,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        label="golden/index-tracking-basket",
    )


def _no_ft_storm() -> SimulationConfig:
    # No checkpoints: the correlated spike revokes the tenant, the
    # partial hour rides free, and recovery recomputes from the volume.
    return SimulationConfig(
        strategy=StrategySpec.no_fault_tolerance(_EAST),
        seed=127,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.correlated_spike(hours(30), hours(4)),
        label="golden/no-ft-storm",
    )


def _portfolio_bid_lp() -> SimulationConfig:
    # The LP bid family: per-epoch risk/cost program over four markets.
    return SimulationConfig(
        strategy=StrategySpec.portfolio_bid(("us-east-1a", "us-west-1a")),
        seed=131,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        label="golden/portfolio-bid-lp",
    )


SCENARIOS: Tuple[GoldenScenario, ...] = (
    GoldenScenario("calm-single", "single market, calm generated trace", _calm_single),
    GoldenScenario("calm-large", "large instance, calm generated trace", _calm_large),
    GoldenScenario("storm-single", "seeded 6-spike revocation storm", _storm_single),
    GoldenScenario(
        "spike-at-boundary", "correlated spike opening just before a billing boundary",
        _spike_at_boundary,
    ),
    GoldenScenario(
        "pure-spot-outage", "pure-spot strategy rides through a forced dark period",
        _pure_spot_outage,
    ),
    GoldenScenario(
        "on-demand-baseline", "all-on-demand control: no migrations, 100% cost",
        _on_demand_baseline,
    ),
    GoldenScenario(
        "multi-market-storm", "storm on one market, sideways escape available",
        _multi_market_storm,
    ),
    GoldenScenario("multi-region", "two-region deployment, calm markets", _multi_region),
    GoldenScenario(
        "multi-region-correlated", "all markets spike at once across regions",
        _multi_region_correlated,
    ),
    GoldenScenario(
        "slow-checkpoint-storm", "storm with failing checkpoints and slow copies",
        _slow_checkpoint_storm,
    ),
    GoldenScenario(
        "index-tracking-basket", "spot basket tracking the on-demand index",
        _index_tracking_basket,
    ),
    GoldenScenario(
        "no-ft-storm", "no-checkpoint tenant revoked by a correlated spike",
        _no_ft_storm,
    ),
    GoldenScenario(
        "portfolio-bid-lp", "LP risk/cost market selection over four markets",
        _portfolio_bid_lp,
    ),
)


@dataclass(frozen=True)
class GoldenFleetScenario:
    """One committed fleet scenario: a seeded :class:`FleetSpec` whose
    :class:`~repro.fleet.report.FleetReport` is pinned as JSON."""

    name: str
    description: str
    build: Callable[[], FleetSpec]

    def spec(self) -> FleetSpec:
        return self.build()


def _fleet_small() -> FleetSpec:
    # Eight heterogeneous tenants plus seeded churn over a 2-region,
    # 2-size market grid: small enough for seconds, rich enough to
    # exercise the shared spare pool and the churn proration path. One
    # explicit index-tracking tenant pins the basket family in the fleet
    # corpus regardless of what the seeded cohort draw happens to pick.
    fleet = synthesize_fleet(
        8,
        seed=5,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        churn_per_week=4.0,
        spare_capacity=2,
    )
    tracker = ServiceSpec(
        name="svc-index-tracker",
        strategy=StrategySpec.index_tracking(("us-east-1a", "us-west-1a")),
    )
    return fleet.with_(services=fleet.services + (tracker,))


FLEET_SCENARIOS: Tuple[GoldenFleetScenario, ...] = (
    GoldenFleetScenario(
        "fleet-small",
        "8-service fleet with churn on a shared 4-market grid",
        _fleet_small,
    ),
)


def scenario_by_name(name: str):
    for s in (*SCENARIOS, *FLEET_SCENARIOS):
        if s.name == name:
            return s
    known = [s.name for s in SCENARIOS] + [s.name for s in FLEET_SCENARIOS]
    raise ConfigurationError(f"unknown golden scenario {name!r}; known: {known}")


# ------------------------------------------------------------------- execution
def run_scenario(scenario: GoldenScenario, verify: bool = True) -> Dict[str, object]:
    """Run one scenario (with the invariant oracles by default) and return
    its report as a JSON-ready dict."""
    observed = run_simulation_observed(scenario.config(), verify=verify)
    return dataclasses.asdict(observed.result)


def run_fleet_scenario(
    scenario: GoldenFleetScenario, verify: bool = True
) -> Dict[str, object]:
    """Run one fleet scenario (with the fleet invariant oracles by
    default) and return its :class:`~repro.fleet.report.FleetReport` as a
    JSON-ready dict."""
    from repro.fleet.runner import run_fleet

    return run_fleet(scenario.spec(), verify=verify).to_dict()


def _run_any(scenario, verify: bool) -> Dict[str, object]:
    if isinstance(scenario, GoldenFleetScenario):
        return run_fleet_scenario(scenario, verify=verify)
    return run_scenario(scenario, verify=verify)


def _expected_path(golden_dir: Path, scenario) -> Path:
    return golden_dir / f"{scenario.name}.json"


def _diff_value(path: str, e: object, a: object, out: List[str]) -> None:
    """Recursive comparison; problems are appended as ``path: detail``."""
    if isinstance(e, bool) or isinstance(a, bool):
        # bool is an int subclass — compare exactly, before the float branch.
        if e != a:
            out.append(f"{path}: expected {e!r}, got {a!r}")
    elif isinstance(e, float) and isinstance(a, (int, float)):
        if not math.isclose(e, float(a), rel_tol=REL_TOL, abs_tol=REL_TOL):
            out.append(f"{path}: expected {e!r}, got {a!r}")
    elif isinstance(e, dict) and isinstance(a, dict):
        for key in sorted(set(e) | set(a)):
            sub = f"{path}[{key!r}]" if path else str(key)
            if key not in e:
                out.append(f"{sub}: unexpected new field = {a[key]!r}")
            elif key not in a:
                out.append(f"{sub}: field missing (expected {e[key]!r})")
            else:
                _diff_value(sub, e[key], a[key], out)
    elif isinstance(e, (list, tuple)) and isinstance(a, (list, tuple)):
        if len(e) != len(a):
            out.append(f"{path}: expected {len(e)} item(s), got {len(a)}")
            return
        for i, (ev, av) in enumerate(zip(e, a)):
            _diff_value(f"{path}[{i}]", ev, av, out)
    elif e != a:
        out.append(f"{path}: expected {e!r}, got {a!r}")


def _diff(expected: Dict[str, object], actual: Dict[str, object]) -> List[str]:
    """Field-level differences between two (possibly nested) report dicts."""
    out: List[str] = []
    _diff_value("", expected, actual, out)
    return out


def check_scenarios(
    names: Optional[List[str]] = None,
    golden_dir: Optional[Path] = None,
    verify: bool = True,
) -> Dict[str, List[str]]:
    """Run scenarios and compare to their committed expected reports.

    Returns ``{scenario name: [differences]}`` — empty lists mean a clean
    match; a missing expected file reports as one difference.
    """
    golden_dir = golden_dir if golden_dir is not None else default_golden_dir()
    chosen = (
        [scenario_by_name(n) for n in names]
        if names
        else [*SCENARIOS, *FLEET_SCENARIOS]
    )
    out: Dict[str, List[str]] = {}
    for scenario in chosen:
        path = _expected_path(golden_dir, scenario)
        if not path.exists():
            out[scenario.name] = [
                f"no expected report at {path} (run repro-verify --update-golden)"
            ]
            continue
        expected = json.loads(path.read_text())
        actual = _run_any(scenario, verify=verify)
        out[scenario.name] = _diff(expected, actual)
    return out


def update_golden(
    names: Optional[List[str]] = None, golden_dir: Optional[Path] = None
) -> Dict[str, Path]:
    """(Re)write the expected reports; returns ``{name: path written}``."""
    golden_dir = golden_dir if golden_dir is not None else default_golden_dir()
    golden_dir.mkdir(parents=True, exist_ok=True)
    chosen = (
        [scenario_by_name(n) for n in names]
        if names
        else [*SCENARIOS, *FLEET_SCENARIOS]
    )
    written: Dict[str, Path] = {}
    for scenario in chosen:
        actual = _run_any(scenario, verify=True)
        path = _expected_path(golden_dir, scenario)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        written[scenario.name] = path
    return written
